"""Command-line interface for the figure reproductions.

Usage::

    python -m repro fig2 --attack random
    python -m repro fig3 --epsilon 0.2
    python -m repro fig4
    python -m repro fig5 --alpha 10
    python -m repro comm
    python -m repro convergence --rounds 120
    python -m repro ablation
    python -m repro faults --loss-rate 0.2 --crashes 2
    python -m repro adaptive --attack dispersion_mimicry
    python -m repro population --scale tiny
    python -m repro quickstart
    python -m repro perf --profile smoke

Scale is controlled by ``REPRO_BENCH_SCALE`` (smoke/reduced/paper) or the
``--scale`` flag. The execution backend of every run is controlled by
``REPRO_EXECUTION_BACKEND`` / ``REPRO_NUM_WORKERS`` or the ``--backend`` /
``--workers`` flags (see docs/execution.md).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .attacks import PAPER_ATTACKS, available_attacks
from .core.config import (
    EXECUTION_BACKEND_ENV,
    NUM_WORKERS_ENV,
    UPLOAD_CODECS_ENV,
)
from .execution import EXECUTION_BACKENDS
from .experiments import (
    PERF_PROFILES,
    SCALES,
    ascii_curves,
    current_scale,
    format_figure,
    format_report,
    run_adaptive_crossover,
    run_async_deadline,
    run_comm_codecs,
    run_comm_cost,
    run_population_comm,
    run_population_scale,
    run_convergence_rate,
    run_fault_tolerance,
    run_fig2_attack_panel,
    run_fig3_epsilon_panel,
    run_fig4_heterogeneity,
    run_fig5_alpha_panel,
    run_filter_ablation,
    run_round_loop_perf,
    write_bench_file,
)

__all__ = ["main", "build_parser"]


#: Grouped command index shown under ``python -m repro --help``.
HELP_EPILOG = """\
command groups:
  paper figures   fig2, fig3, fig4, fig5, comm, convergence, ablation, all
  extensions      faults, adaptive, population, async
  ops             quickstart, perf

Run 'python -m repro <command> --help' for per-command flags.
"""


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Fed-MS reproduction: regenerate the paper's figures.",
        epilog=HELP_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--scale", choices=sorted(SCALES),
                        help="workload scale (default: REPRO_BENCH_SCALE or "
                             "'reduced')")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--backend", choices=EXECUTION_BACKENDS,
                        help="execution backend for the round loop "
                             "(default: REPRO_EXECUTION_BACKEND or 'serial')")
    parser.add_argument("--workers", type=int,
                        help="worker-pool size for thread/process backends "
                             "(0 = one per core; default: REPRO_NUM_WORKERS)")
    parser.add_argument("--codec", action="append", dest="codecs",
                        metavar="SPEC",
                        help="upload codec stage, e.g. 'topk(0.05)' or "
                             "'int8'; repeat to chain stages in order "
                             "(default: REPRO_UPLOAD_CODECS or none)")
    commands = parser.add_subparsers(dest="command", required=True)

    fig2 = commands.add_parser(
        "fig2", help="accuracy under a Byzantine PS attack (Fig. 2)")
    fig2.add_argument("--attack", default="random",
                      choices=available_attacks())

    fig3 = commands.add_parser(
        "fig3", help="impact of the Byzantine fraction (Fig. 3)")
    fig3.add_argument("--epsilon", type=float, default=0.2)

    commands.add_parser("fig4", help="partition heterogeneity (Fig. 4)")

    fig5 = commands.add_parser(
        "fig5", help="impact of data heterogeneity (Fig. 5)")
    fig5.add_argument("--alpha", type=float, default=10.0)

    comm = commands.add_parser(
        "comm", help="sparse vs full upload cost (Sec. IV-A) plus the "
                     "codec x attack x filter compression sweep")
    comm.add_argument("--skip-codecs", action="store_true",
                      help="only run the sparse-vs-full message accounting, "
                           "not the codec sweep")
    comm.add_argument("--skip-population", action="store_true",
                      help="skip the population-topology traffic breakdown "
                           "(per-tier legs, peak materialized clients)")

    convergence = commands.add_parser(
        "convergence", help="Theorem 1 rate on a convex problem")
    convergence.add_argument("--rounds", type=int, default=120)
    convergence.add_argument("--byzantine", type=int, default=1)

    commands.add_parser("ablation", help="model-filter ablation")

    faults = commands.add_parser(
        "faults", help="PS crash/recovery + packet loss on top of Byzantine "
                       "PSs (extension)")
    faults.add_argument("--loss-rate", type=float, default=0.1,
                        help="i.i.d. packet-loss probability (default 0.1)")
    faults.add_argument("--crashes", type=int, default=2,
                        help="number of PS crashes; the first is permanent, "
                             "the rest recover (default 2)")
    faults.add_argument("--attack", default="noise",
                        choices=available_attacks())

    adaptive = commands.add_parser(
        "adaptive", help="adaptive-beta vs static-beta vs loss-based "
                         "crossover sweep (extension)")
    adaptive.add_argument("--attack", default="dispersion_mimicry",
                          choices=available_attacks())
    adaptive.add_argument("--no-faults", action="store_true",
                          help="skip the companion runs with one benign "
                               "PS crash")

    population = commands.add_parser(
        "population", help="population-scale sampling + churn + sharded "
                           "tier aggregation (extension)")
    population.add_argument("--attack", default="sign_flip",
                            choices=available_attacks(),
                            help="attack run by the Byzantine edge "
                                 "aggregators (default sign_flip)")
    population.add_argument("--population", action="append", type=int,
                            dest="populations", metavar="K",
                            help="population size; repeat for a sweep "
                                 "(default: the scale's preset size)")
    population.add_argument("--rounds", type=int, default=None,
                            help="override the scale's round count")
    population.add_argument("--sample-fraction", type=float, default=None,
                            help="per-round sampling fraction "
                                 "(default: the scale's preset, 0.1)")
    population.add_argument("--no-churn", action="store_true",
                            help="keep the population static (no "
                                 "join/leave/rejoin churn)")
    population.add_argument("--filter", dest="filter_rule", default=None,
                            choices=("trimmed_mean", "adaptive_trimmed_mean",
                                     "loss_based"),
                            help="filter rule applied at tiers >= 1 "
                                 "(default: per-tier static trimmed mean)")

    async_cmd = commands.add_parser(
        "async", help="deadline-driven aggregation vs the barrier baseline "
                      "under stragglers (extension)")
    async_cmd.add_argument("--attack", default="noise",
                           choices=available_attacks())
    async_cmd.add_argument("--quantile", action="append", type=float,
                           dest="quantiles", metavar="Q",
                           help="deadline quantile of the straggler-free "
                                "latency; repeat for a sweep "
                                "(default 0.5 and 0.9)")
    async_cmd.add_argument("--straggler-rate", action="append", type=float,
                           dest="straggler_rates", metavar="R",
                           help="per-message straggler probability; repeat "
                                "for a sweep (default 0.0 and 0.2)")
    async_cmd.add_argument("--rounds", type=int, default=None,
                           help="override the scale's round count")

    commands.add_parser("quickstart", help="tiny end-to-end demo run")

    perf = commands.add_parser(
        "perf", help="round-loop throughput per execution backend")
    perf.add_argument("--profile", default="smoke",
                      choices=sorted(PERF_PROFILES))
    perf.add_argument("--output", default=None,
                      help="where to write the JSON report (default: "
                           "BENCH_round_loop.json at the repo root)")
    perf.add_argument("--no-write", action="store_true",
                      help="print the table only, do not write the report")

    commands.add_parser(
        "all", help=f"every paper figure ({', '.join(PAPER_ATTACKS)} panels, "
                    "fig3 sweep, fig4, fig5 sweep, comm, convergence)")
    return parser


def _resolve_scale(args):
    if args.scale is not None:
        return SCALES[args.scale]
    return current_scale()


def _emit(result) -> None:
    print(format_figure(result))
    if result.curves:
        series = {
            curve.label: (list(map(float, curve.rounds)), curve.accuracies)
            for curve in result.curves
        }
        print(ascii_curves(series, y_min=0.0))


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    scale = _resolve_scale(args)
    seed = args.seed
    # Backend selection rides the environment so every trainer any
    # experiment constructs — however deep — picks it up.
    if args.backend is not None:
        os.environ[EXECUTION_BACKEND_ENV] = args.backend
    if args.workers is not None:
        os.environ[NUM_WORKERS_ENV] = str(args.workers)
    if args.codecs:
        os.environ[UPLOAD_CODECS_ENV] = ",".join(args.codecs)

    if args.command == "perf":
        report = run_round_loop_perf(args.profile,
                                     num_workers=args.workers or 0,
                                     seed=seed)
        print(format_report(report))
        if not args.no_write:
            path = write_bench_file(report, args.output)
            print(f"wrote {path}")
    elif args.command == "fig2":
        _emit(run_fig2_attack_panel(args.attack, scale=scale, seed=seed))
    elif args.command == "fig3":
        _emit(run_fig3_epsilon_panel(args.epsilon, scale=scale, seed=seed))
    elif args.command == "fig4":
        _emit(run_fig4_heterogeneity(scale=scale, seed=seed))
    elif args.command == "fig5":
        _emit(run_fig5_alpha_panel(args.alpha, scale=scale, seed=seed))
    elif args.command == "comm":
        _emit(run_comm_cost(scale=scale, seed=seed))
        if not args.skip_codecs:
            _emit(run_comm_codecs(scale=scale, seed=seed))
        if not args.skip_population:
            _emit(run_population_comm(scale=scale, seed=seed))
    elif args.command == "population":
        _emit(run_population_scale(
            attack_name=args.attack, scale=scale,
            populations=args.populations,
            sample_fraction=args.sample_fraction,
            num_rounds=args.rounds,
            with_churn=not args.no_churn,
            filter_rule_name=args.filter_rule,
            seed=seed,
        ))
    elif args.command == "convergence":
        _emit(run_convergence_rate(num_rounds=args.rounds,
                                   num_byzantine=args.byzantine, seed=seed))
    elif args.command == "ablation":
        _emit(run_filter_ablation(scale=scale, seed=seed))
    elif args.command == "faults":
        _emit(run_fault_tolerance(loss_rate=args.loss_rate,
                                  num_crashes=args.crashes,
                                  attack_name=args.attack,
                                  scale=scale, seed=seed))
    elif args.command == "async":
        _emit(run_async_deadline(
            attack_name=args.attack, scale=scale,
            deadline_quantiles=args.quantiles or (0.5, 0.9),
            straggler_rates=args.straggler_rates or (0.0, 0.2),
            num_rounds=args.rounds, seed=seed,
        ))
    elif args.command == "adaptive":
        _emit(run_adaptive_crossover(attack_name=args.attack,
                                     with_faults=not args.no_faults,
                                     scale=scale, seed=seed))
    elif args.command == "quickstart":
        from . import quick_fed_ms_run

        history = quick_fed_ms_run(seed=seed)
        print(f"Fed-MS quickstart: accuracies {history.accuracies} "
              f"(final {history.final_accuracy:.3f})")
    elif args.command == "all":
        for attack in PAPER_ATTACKS:
            _emit(run_fig2_attack_panel(attack, scale=scale, seed=seed))
        for epsilon in (0.0, 0.1, 0.2, 0.3):
            _emit(run_fig3_epsilon_panel(epsilon, scale=scale, seed=seed))
        _emit(run_fig4_heterogeneity(scale=scale, seed=seed))
        for alpha in (1.0, 5.0, 10.0, 1000.0):
            _emit(run_fig5_alpha_panel(alpha, scale=scale, seed=seed))
        _emit(run_comm_cost(scale=scale, seed=seed))
        _emit(run_convergence_rate(seed=seed))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
