"""Upload strategies: which PSs each client sends its local model to.

The paper's **sparse uploading** strategy has every client choose one PS
uniformly at random, so the aggregation-phase cost is ``K`` model transfers
per round — equal to classical single-PS FedAvg and ``P`` times cheaper than
the trivial upload-to-all scheme. ``FullUpload`` and ``MultiUpload``
implement the alternatives for the communication-cost benchmark.

Under faults an upload can fail (the chosen PS crashed, the link
partitioned, the packet was lost); :class:`RetryPolicy` bounds how a client
responds — retry the same PS once, then re-sample an alive PS, with
exponential backoff — so availability problems degrade throughput
gracefully instead of silently shrinking every PS's aggregate.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

import numpy as np

from ..common.errors import ConfigurationError

__all__ = ["UploadStrategy", "SparseUpload", "FullUpload", "MultiUpload",
           "RetryPolicy", "make_upload_strategy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry-with-backoff for failed uploads.

    Attempt 0 is the original send. On failure, attempt 1 re-sends to the
    *same* PS after ``base_backoff_s`` (the loss may be a transient packet
    drop); attempts 2..``max_retries`` re-sample a uniformly random alive
    PS — the failed PS is likely down, and uniform re-sampling preserves
    the sparse strategy's uniform-choice property over the alive set.
    """

    max_retries: int = 2
    base_backoff_s: float = 0.05
    backoff_factor: float = 2.0

    @classmethod
    def from_config(cls, config) -> "RetryPolicy":
        """The policy a :class:`~repro.core.config.FedMSConfig` prescribes.

        Accepts either a ``FedMSConfig`` (reads ``resolved_faults``) or a
        bare ``FaultConfig``; this is the one place the fault knobs are
        translated into a retry policy, so call sites no longer rebuild it
        from ad-hoc kwargs.
        """
        faults = getattr(config, "resolved_faults", config)
        return cls(
            max_retries=faults.max_upload_retries,
            base_backoff_s=faults.retry_backoff_s,
            backoff_factor=faults.backoff_factor,
        )

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.base_backoff_s < 0:
            raise ConfigurationError(
                f"base_backoff_s must be >= 0, got {self.base_backoff_s}"
            )
        if self.backoff_factor < 1.0:
            raise ConfigurationError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )

    def backoff_s(self, attempt: int) -> float:
        """Simulated wait before retry ``attempt`` (1-based)."""
        if attempt < 1:
            raise ConfigurationError(
                f"attempt must be >= 1, got {attempt}"
            )
        return self.base_backoff_s * self.backoff_factor ** (attempt - 1)

    def next_target(self, attempt: int, failed_target: int,
                    alive_servers: Sequence[int], *,
                    rng: np.random.Generator) -> Optional[int]:
        """PS to contact on retry ``attempt``; ``None`` when none is alive.

        Prefers re-sampling among alive PSs other than the one that just
        failed; falls back to the failed PS itself if it is the only one
        alive (its failure may have been a transient link loss).
        """
        if attempt == 1:
            return failed_target
        candidates = [s for s in alive_servers if s != failed_target]
        if not candidates:
            return failed_target if failed_target in alive_servers else None
        return int(candidates[rng.integers(0, len(candidates))])


class UploadStrategy:
    """Assigns each client the set of PSs it uploads to this round."""

    #: Registry name; subclasses override.
    name: str = ""

    def assign(self, num_clients: int, num_servers: int, *,
               rng: np.random.Generator) -> List[List[int]]:
        """Server indices per client: ``result[k]`` lists client ``k``'s PSs."""
        raise NotImplementedError

    def uploads_per_round(self, num_clients: int, num_servers: int) -> int:
        """Total number of model transfers in one aggregation phase."""
        raise NotImplementedError


class SparseUpload(UploadStrategy):
    """The paper's strategy: one uniformly random PS per client.

    Communication cost: ``K`` transfers per round.
    """

    name = "sparse"

    def assign(self, num_clients: int, num_servers: int, *,
               rng: np.random.Generator) -> List[List[int]]:
        picks = rng.integers(0, num_servers, size=num_clients)
        return [[int(pick)] for pick in picks]

    def uploads_per_round(self, num_clients: int, num_servers: int) -> int:
        return num_clients


class FullUpload(UploadStrategy):
    """Every client uploads to every PS.

    Communication cost: ``K x P`` transfers per round — the naive scheme the
    sparse strategy replaces.
    """

    name = "full"

    def assign(self, num_clients: int, num_servers: int, *,
               rng: np.random.Generator) -> List[List[int]]:
        everyone = list(range(num_servers))
        return [list(everyone) for _ in range(num_clients)]

    def uploads_per_round(self, num_clients: int, num_servers: int) -> int:
        return num_clients * num_servers


class MultiUpload(UploadStrategy):
    """Each client uploads to ``count`` distinct uniformly chosen PSs.

    Interpolates between sparse (``count=1``) and full (``count=P``);
    communication cost ``K x count``.
    """

    name = "multi"

    def __init__(self, count: int) -> None:
        if count <= 0:
            raise ConfigurationError(f"count must be positive, got {count}")
        self.count = count

    def assign(self, num_clients: int, num_servers: int, *,
               rng: np.random.Generator) -> List[List[int]]:
        if self.count > num_servers:
            raise ConfigurationError(
                f"cannot choose {self.count} distinct PSs out of {num_servers}"
            )
        return [
            sorted(int(s) for s in
                   rng.choice(num_servers, size=self.count, replace=False))
            for _ in range(num_clients)
        ]

    def uploads_per_round(self, num_clients: int, num_servers: int) -> int:
        return num_clients * self.count


def make_upload_strategy(config: Union[str, "object"], *,
                         uploads_per_client: Optional[int] = None
                         ) -> UploadStrategy:
    """Build an upload strategy from a :class:`FedMSConfig`.

    Pass the config object; the strategy name and ``uploads_per_client``
    are read from it (duck-typed on the ``upload_strategy`` attribute, so
    this module stays import-free of ``repro.core.config``).

    The legacy form ``make_upload_strategy("sparse", uploads_per_client=1)``
    is deprecated: it bypasses the config's eager validation (e.g.
    ``uploads_per_client <= num_servers``) and will be removed.
    """
    if isinstance(config, str):
        warnings.warn(
            "make_upload_strategy(name, uploads_per_client=...) is "
            "deprecated; pass a FedMSConfig and set its upload_strategy/"
            "uploads_per_client fields instead",
            DeprecationWarning, stacklevel=2,
        )
        name = config
        count = 1 if uploads_per_client is None else uploads_per_client
    elif hasattr(config, "upload_strategy"):
        if uploads_per_client is not None:
            raise ConfigurationError(
                "uploads_per_client is only accepted with the deprecated "
                "name form; set FedMSConfig.uploads_per_client instead"
            )
        name = config.upload_strategy
        count = config.uploads_per_client
    else:
        raise ConfigurationError(
            f"expected a FedMSConfig or a strategy name, got {config!r}"
        )
    if name == "sparse":
        return SparseUpload()
    if name == "full":
        return FullUpload()
    if name == "multi":
        return MultiUpload(count)
    raise ConfigurationError(
        f"unknown upload strategy {name!r}; expected sparse/full/multi"
    )
