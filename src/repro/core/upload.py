"""Upload strategies: which PSs each client sends its local model to.

The paper's **sparse uploading** strategy has every client choose one PS
uniformly at random, so the aggregation-phase cost is ``K`` model transfers
per round — equal to classical single-PS FedAvg and ``P`` times cheaper than
the trivial upload-to-all scheme. ``FullUpload`` and ``MultiUpload``
implement the alternatives for the communication-cost benchmark.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..common.errors import ConfigurationError

__all__ = ["UploadStrategy", "SparseUpload", "FullUpload", "MultiUpload",
           "make_upload_strategy"]


class UploadStrategy:
    """Assigns each client the set of PSs it uploads to this round."""

    #: Registry name; subclasses override.
    name: str = ""

    def assign(self, num_clients: int, num_servers: int, *,
               rng: np.random.Generator) -> List[List[int]]:
        """Server indices per client: ``result[k]`` lists client ``k``'s PSs."""
        raise NotImplementedError

    def uploads_per_round(self, num_clients: int, num_servers: int) -> int:
        """Total number of model transfers in one aggregation phase."""
        raise NotImplementedError


class SparseUpload(UploadStrategy):
    """The paper's strategy: one uniformly random PS per client.

    Communication cost: ``K`` transfers per round.
    """

    name = "sparse"

    def assign(self, num_clients: int, num_servers: int, *,
               rng: np.random.Generator) -> List[List[int]]:
        picks = rng.integers(0, num_servers, size=num_clients)
        return [[int(pick)] for pick in picks]

    def uploads_per_round(self, num_clients: int, num_servers: int) -> int:
        return num_clients


class FullUpload(UploadStrategy):
    """Every client uploads to every PS.

    Communication cost: ``K x P`` transfers per round — the naive scheme the
    sparse strategy replaces.
    """

    name = "full"

    def assign(self, num_clients: int, num_servers: int, *,
               rng: np.random.Generator) -> List[List[int]]:
        everyone = list(range(num_servers))
        return [list(everyone) for _ in range(num_clients)]

    def uploads_per_round(self, num_clients: int, num_servers: int) -> int:
        return num_clients * num_servers


class MultiUpload(UploadStrategy):
    """Each client uploads to ``count`` distinct uniformly chosen PSs.

    Interpolates between sparse (``count=1``) and full (``count=P``);
    communication cost ``K x count``.
    """

    name = "multi"

    def __init__(self, count: int) -> None:
        if count <= 0:
            raise ConfigurationError(f"count must be positive, got {count}")
        self.count = count

    def assign(self, num_clients: int, num_servers: int, *,
               rng: np.random.Generator) -> List[List[int]]:
        if self.count > num_servers:
            raise ConfigurationError(
                f"cannot choose {self.count} distinct PSs out of {num_servers}"
            )
        return [
            sorted(int(s) for s in
                   rng.choice(num_servers, size=self.count, replace=False))
            for _ in range(num_clients)
        ]

    def uploads_per_round(self, num_clients: int, num_servers: int) -> int:
        return num_clients * self.count


def make_upload_strategy(name: str, *, uploads_per_client: int = 1
                         ) -> UploadStrategy:
    """Build an upload strategy from a config name."""
    if name == "sparse":
        return SparseUpload()
    if name == "full":
        return FullUpload()
    if name == "multi":
        return MultiUpload(uploads_per_client)
    raise ConfigurationError(
        f"unknown upload strategy {name!r}; expected sparse/full/multi"
    )
