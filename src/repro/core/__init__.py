"""The Fed-MS algorithm: clients, parameter servers, training loop."""

from .client import Client
from .config import FaultConfig, FedMSConfig
from .filtering import (
    FilterOutcome,
    ResolvedFilter,
    RootLossEvaluator,
    resolve_filter,
)
from .hierarchical import HierarchicalTrainer
from .history import RoundRecord, TrainingHistory
from .server import ByzantineParameterServer, ParameterServer
from .trainer import FedMSTrainer, make_fedavg_trainer
from .upload import (
    FullUpload,
    MultiUpload,
    RetryPolicy,
    SparseUpload,
    UploadStrategy,
    make_upload_strategy,
)

__all__ = [
    "FedMSConfig",
    "FaultConfig",
    "RetryPolicy",
    "Client",
    "ParameterServer",
    "ByzantineParameterServer",
    "FedMSTrainer",
    "HierarchicalTrainer",
    "make_fedavg_trainer",
    "FilterOutcome",
    "ResolvedFilter",
    "RootLossEvaluator",
    "resolve_filter",
    "RoundRecord",
    "TrainingHistory",
    "UploadStrategy",
    "SparseUpload",
    "FullUpload",
    "MultiUpload",
    "make_upload_strategy",
]
