"""The Fed-MS algorithm: clients, parameter servers, training loop."""

from .client import Client
from .codecs import (
    Codec,
    CodecPipeline,
    CyclicSparsifier,
    EncodedUpdate,
    Int8Quantizer,
    SignQuantizer,
    TopKSparsifier,
    available_codecs,
    broadcast_variant,
    make_codec,
    make_codec_pipeline,
)
from .config import FaultConfig, FedMSConfig
from .filtering import (
    FilterOutcome,
    ResolvedFilter,
    RootLossEvaluator,
    quorum_floor,
    resolve_filter,
)
from .health import BreakerState, HealthLedger, HealthPolicy
from .hierarchical import HierarchicalTrainer
from .history import RoundRecord, TrainingHistory
from .server import ByzantineParameterServer, ParameterServer
from .trainer import FedMSTrainer, make_fedavg_trainer
from .upload import (
    FullUpload,
    MultiUpload,
    RetryPolicy,
    SparseUpload,
    UploadStrategy,
    make_upload_strategy,
)

__all__ = [
    "FedMSConfig",
    "FaultConfig",
    "RetryPolicy",
    "Codec",
    "CodecPipeline",
    "EncodedUpdate",
    "TopKSparsifier",
    "CyclicSparsifier",
    "SignQuantizer",
    "Int8Quantizer",
    "available_codecs",
    "broadcast_variant",
    "make_codec",
    "make_codec_pipeline",
    "Client",
    "ParameterServer",
    "ByzantineParameterServer",
    "FedMSTrainer",
    "HierarchicalTrainer",
    "make_fedavg_trainer",
    "FilterOutcome",
    "ResolvedFilter",
    "RootLossEvaluator",
    "quorum_floor",
    "resolve_filter",
    "BreakerState",
    "HealthLedger",
    "HealthPolicy",
    "RoundRecord",
    "TrainingHistory",
    "UploadStrategy",
    "SparseUpload",
    "FullUpload",
    "MultiUpload",
    "make_upload_strategy",
]
