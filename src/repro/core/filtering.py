"""Resolution of the client-side ``Def()`` filter from configuration.

The trainer accepts the filter three ways — an explicit closure, a
registry name in :attr:`FedMSConfig.filter_rule_name`, or the default
static beta-trimmed mean — and each way executes differently: the static
trimmed mean and plain mean have a picklable
:class:`~repro.execution.spec.FilterSpec` the execution backends fan out;
the estimating rules (adaptive-beta trimmed mean, FedGreed-style
loss-based selection) run in the main process so their evidence (the
per-round ``B-hat`` estimate, the rejected model identities) can be
recorded in :class:`~repro.core.history.TrainingHistory`; opaque closures
run in the main process with no recording. :class:`ResolvedFilter` carries
all of that in one place.

Every estimating rule here is a deterministic pure function of the
received stack, so running it in the main process preserves the execution
backends' bit-identity contract by construction.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

from ..aggregation import (
    AggregationRule,
    adaptive_trimmed_mean_info,
    loss_based_selection_info,
    make_rule,
    mean,
)
from ..common.errors import ConfigurationError
from ..data.datasets import ArrayDataset
from ..execution import FilterSpec
from ..nn.losses import cross_entropy
from ..nn.serialization import from_vector
from .config import FedMSConfig

__all__ = ["FilterOutcome", "RootLossEvaluator", "ResolvedFilter",
           "quorum_floor", "resolve_filter"]


def quorum_floor(num_byzantine: int) -> int:
    """Minimum countable quorum that still tolerates ``num_byzantine`` PSs.

    The trimmed filter keeps its absolute tolerance B only while
    ``q >= 2B+1`` (``degraded_trim_count`` returns ``None`` at
    ``q <= 2B``); health-based exclusions must never push the counted
    quorum below this floor.
    """
    if num_byzantine < 0:
        raise ConfigurationError(
            f"num_byzantine must be >= 0, got {num_byzantine}")
    return 2 * int(num_byzantine) + 1


class FilterOutcome:
    """What an estimating filter concluded about one received stack."""

    __slots__ = ("vector", "estimated_byzantine", "rejected_rows")

    def __init__(self, vector: np.ndarray,
                 estimated_byzantine: Optional[int],
                 rejected_rows: Tuple[int, ...]) -> None:
        self.vector = vector
        self.estimated_byzantine = estimated_byzantine
        self.rejected_rows = rejected_rows


class RootLossEvaluator:
    """Loss of a candidate model vector on a small trusted root batch.

    FedGreed assumes each client holds a small trusted dataset drawn from
    the true distribution; here the root batch is a deterministic sample
    of the held-out set (or an explicitly supplied root dataset). One
    scratch model replica is reused across evaluations — ``__call__`` is a
    pure function of the vector, so the evaluator is safe to share across
    clients and rounds.
    """

    def __init__(self, model_factory: Callable[[np.random.Generator], object],
                 dataset: ArrayDataset, batch_size: int, *,
                 include_buffers: bool, flatten_inputs: bool,
                 rng: np.random.Generator) -> None:
        if len(dataset) == 0:
            raise ConfigurationError(
                "loss_based filtering needs a non-empty root dataset"
            )
        size = min(batch_size, len(dataset))
        indices = np.sort(rng.choice(len(dataset), size=size, replace=False))
        self.features, self.labels = dataset[indices]
        self.include_buffers = include_buffers
        self.flatten_inputs = flatten_inputs
        self.model = model_factory(rng)
        self.model.eval()

    def __call__(self, vector: np.ndarray) -> float:
        from_vector(self.model, vector,
                    include_buffers=self.include_buffers)
        features = self.features
        if self.flatten_inputs:
            features = features.reshape(features.shape[0], -1)
        logits = self.model(features)
        loss, _ = cross_entropy(logits, self.labels)
        return float(loss)


class ResolvedFilter:
    """The ``Def()`` filter in every form the trainer needs.

    Attributes
    ----------
    rule:
        Plain ``stack -> vector`` closure (always available).
    spec:
        Picklable :class:`FilterSpec` for backend fan-out, or ``None``
        when the rule must run in the main process.
    degraded_trim_ratio:
        The beta used to recompute the trim count under a degraded
        quorum; only the static trimmed mean has one — estimating rules
        re-estimate on the reduced stack instead.
    info_fn:
        ``stack -> FilterOutcome`` for estimating rules, ``None``
        otherwise. Row indices in ``rejected_rows`` refer to the stack
        passed in; the caller maps them back to server ids.
    """

    def __init__(self, rule: AggregationRule, *,
                 spec: Optional[FilterSpec] = None,
                 degraded_trim_ratio: Optional[float] = None,
                 info_fn: Optional[Callable[[np.ndarray], FilterOutcome]]
                 = None) -> None:
        self.rule = rule
        self.spec = spec
        self.degraded_trim_ratio = degraded_trim_ratio
        self.info_fn = info_fn

    @property
    def records_estimates(self) -> bool:
        return self.info_fn is not None


def _adaptive_outcome(stack: np.ndarray, threshold: float) -> FilterOutcome:
    vector, b_hat, flagged = adaptive_trimmed_mean_info(
        stack, threshold=threshold
    )
    return FilterOutcome(vector, b_hat, flagged)


def _loss_based_outcome(stack: np.ndarray,
                        loss_fn: Callable[[np.ndarray], float]
                        ) -> FilterOutcome:
    vector, selected = loss_based_selection_info(stack, loss_fn)
    rejected = tuple(i for i in range(stack.shape[0]) if i not in selected)
    return FilterOutcome(vector, len(rejected), rejected)


def resolve_filter(config: FedMSConfig, *,
                   filter_rule: Optional[AggregationRule] = None,
                   model_factory: Optional[
                       Callable[[np.random.Generator], object]] = None,
                   root_dataset: Optional[ArrayDataset] = None,
                   flatten_inputs: bool = False,
                   root_rng: Optional[np.random.Generator] = None
                   ) -> ResolvedFilter:
    """Build the :class:`ResolvedFilter` a trainer will run.

    ``filter_rule`` (an explicit closure) wins over
    ``config.filter_rule_name``; with neither, the paper's static
    beta-trimmed mean at ``config.resolved_trim_ratio`` is used.
    ``root_dataset`` feeds the loss-based rule's trusted batch (the
    trainer passes its test set when no dedicated root set is supplied).
    """
    if filter_rule is not None:
        spec = FilterSpec("mean") if filter_rule is mean else None
        return ResolvedFilter(filter_rule, spec=spec)

    name = config.filter_rule_name
    if name is None or name == "trimmed_mean":
        beta = config.resolved_trim_ratio
        rule = make_rule("trimmed_mean", trim_ratio=beta,
                         num_models=config.num_servers)
        return ResolvedFilter(rule, spec=FilterSpec("trim_ratio", beta),
                              degraded_trim_ratio=beta)
    if name == "adaptive_trimmed_mean":
        threshold = config.mad_threshold
        rule = make_rule("adaptive_trimmed_mean", mad_threshold=threshold)
        return ResolvedFilter(
            rule, info_fn=lambda stack: _adaptive_outcome(stack, threshold)
        )
    if name == "loss_based":
        if model_factory is None or root_dataset is None:
            raise ConfigurationError(
                "loss_based filtering needs a model factory and a root "
                "dataset to evaluate candidate models on"
            )
        loss_fn = RootLossEvaluator(
            model_factory, root_dataset, config.root_batch_size,
            include_buffers=config.include_buffers,
            flatten_inputs=flatten_inputs,
            rng=(root_rng if root_rng is not None
                 else np.random.default_rng(config.seed)),
        )
        rule = make_rule("loss_based", loss_fn=loss_fn)
        return ResolvedFilter(
            rule, info_fn=lambda stack: _loss_based_outcome(stack, loss_fn)
        )
    rule = make_rule(
        name, trim_ratio=config.resolved_trim_ratio,
        num_byzantine=config.num_byzantine, num_models=config.num_servers,
    )
    spec = FilterSpec("mean") if name == "mean" else None
    return ResolvedFilter(rule, spec=spec)
