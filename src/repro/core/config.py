"""Configuration for Fed-MS training runs.

Mirrors the paper's notation (Table I): ``K`` clients, ``P`` parameter
servers, ``B`` Byzantine servers, ``E`` local iterations per round, trimmed
rate ``beta``. Validation enforces the feasibility condition of the threat
model — Byzantine PSs must be a strict minority (``2B < P``), otherwise the
problem is unsolvable and the trimmed mean is undefined.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Optional, Sequence

from ..aggregation.registry import validate_rule_params
from ..common.errors import ConfigurationError
from ..common.validation import (
    check_fraction,
    check_nonnegative_int,
    check_positive_int,
    require,
)
from .codecs import make_codec_pipeline
from .upload import RetryPolicy, make_upload_strategy

__all__ = ["FaultConfig", "FedMSConfig", "EXECUTION_BACKEND_ENV",
           "NUM_WORKERS_ENV", "UPLOAD_CODECS_ENV"]

#: Environment override for ``FedMSConfig.execution_backend`` (CLI --backend).
EXECUTION_BACKEND_ENV = "REPRO_EXECUTION_BACKEND"
#: Environment override for ``FedMSConfig.num_workers`` (CLI --workers).
NUM_WORKERS_ENV = "REPRO_NUM_WORKERS"
#: Environment override for ``FedMSConfig.upload_codecs`` (CLI --codec),
#: a comma-separated chain, e.g. ``"topk(0.05),int8"``.
UPLOAD_CODECS_ENV = "REPRO_UPLOAD_CODECS"

# Mirrors repro.execution.EXECUTION_BACKENDS; kept literal here because the
# execution package imports repro.core (a module-level import the other way
# would be circular). tests/execution asserts the two stay in sync.
_EXECUTION_BACKENDS = ("serial", "thread", "process")


@dataclass(frozen=True)
class FaultConfig:
    """Knobs for graceful degradation under faults.

    Parameters
    ----------
    round_deadline_s:
        The synchronous round barrier, in simulated seconds. A straggling
        PS whose extra delay exceeds this misses the round (its
        disseminations are dropped as deadline misses), and any traffic
        still queued when the round closes is expired and counted under
        ``cleared_total``.
    max_upload_retries:
        Retry budget per upload. The first retry re-sends to the same PS
        (the loss may be transient); later retries re-sample a uniformly
        random alive PS, preserving the sparse strategy's uniform-choice
        property. Retries are counted in ``TrafficStats.retries_by_tag``
        so the ``O(K)`` accounting stays honest.
    retry_backoff_s:
        Simulated backoff before the first retry.
    backoff_factor:
        Multiplier applied to the backoff on each successive retry
        (exponential backoff).
    """

    round_deadline_s: float = 1.0
    max_upload_retries: int = 2
    retry_backoff_s: float = 0.05
    backoff_factor: float = 2.0

    def __post_init__(self) -> None:
        require(self.round_deadline_s > 0,
                f"round_deadline_s must be positive, got "
                f"{self.round_deadline_s}")
        check_nonnegative_int(self.max_upload_retries, "max_upload_retries")
        require(self.retry_backoff_s >= 0,
                f"retry_backoff_s must be >= 0, got {self.retry_backoff_s}")
        require(self.backoff_factor >= 1.0,
                f"backoff_factor must be >= 1, got {self.backoff_factor}")


@dataclass
class FedMSConfig:
    """Hyper-parameters of a Fed-MS simulation.

    Parameters
    ----------
    num_clients:
        ``K`` — end devices performing local training.
    num_servers:
        ``P`` — edge parameter servers.
    num_byzantine:
        ``B`` — how many of the PSs are Byzantine. Must satisfy ``2B < P``.
    local_steps:
        ``E`` — mini-batch SGD iterations per client per round.
    batch_size:
        Mini-batch size for local SGD.
    learning_rate:
        Client learning rate (used when ``lr_schedule`` is not supplied to
        the trainer).
    trim_ratio:
        ``beta`` — the model filter's trimmed rate. Defaults to ``B / P``
        (the value the theory prescribes) when left ``None``.
    filter_rule_name:
        Which registry rule the clients' ``Def()`` filter uses (see
        :func:`repro.aggregation.available_rules`). ``None`` (default)
        keeps the paper's static beta-trimmed mean.
        ``"adaptive_trimmed_mean"`` estimates the Byzantine count per
        round from inter-model dispersion; ``"loss_based"`` ranks the
        received models by loss on a trusted root batch (FedGreed-style)
        and greedily selects while the loss improves. An explicit
        ``filter_rule`` closure passed to the trainer overrides this.
    mad_threshold:
        Modified-z-score cutoff of the adaptive Byzantine-count estimator
        (only used by ``filter_rule_name="adaptive_trimmed_mean"``).
    root_batch_size:
        Size of the trusted root batch the loss-based filter evaluates
        candidates on (only used by ``filter_rule_name="loss_based"``).
    upload_strategy:
        ``"sparse"`` (paper default — one uniformly random PS per client),
        ``"full"`` (every PS), or ``"multi"`` (a fixed number of PSs, see
        ``uploads_per_client``).
    uploads_per_client:
        Only for ``upload_strategy="multi"``: how many distinct PSs each
        client uploads to.
    upload_codecs:
        Codec chain applied to every model transfer (upload, retry and
        dissemination legs), as spec strings — e.g.
        ``["topk(0.05)", "int8"]`` for 5% top-k sparsification of the
        update delta followed by int8 quantization of the surviving
        values. ``None`` (default) defers to the ``REPRO_UPLOAD_CODECS``
        environment variable (comma-separated), then to the identity
        (dense float64) encoding. Parameter servers decode before the
        ``Def()`` filter runs, so every filter rule operates on dense
        updates — see ``docs/upload.md``.
    include_buffers:
        Whether batch-norm running statistics travel with the model vector.
    participation_fraction:
        Fraction of clients that perform local training and upload in each
        round (FedAvg-style partial device participation, per Li et al.
        2019). Non-participants stay synchronized by filtering the
        disseminated global models like everyone else. 1.0 = the paper's
        full participation.
    eval_clients:
        How many client models are evaluated (and averaged) when measuring
        test accuracy. After the filter step all clients hold nearly
        identical models, so a small sample is an accurate estimate.
    population_size:
        Total number of clients a population-scale run knows about (the
        :class:`~repro.population.ClientPopulation`'s ``K``). Only the
        clients sampled each round materialize datasets and models; the
        rest stay lightweight descriptors. ``None`` (default) means the
        run is a flat, full-materialization simulation and the
        population-scale fields below are unused.
    sample_fraction:
        Fraction of the *active* population sampled (uniformly, without
        replacement, from a ``(seed, round)``-derived stream) to train
        each round of a population-scale run.
    tier_spec:
        Aggregator counts per tier of the sharded topology, bottom-up —
        e.g. ``(8, 2, 1)`` is 8 edge aggregators feeding 2 regional
        aggregators feeding 1 global. Must be non-increasing and end in
        ``1``. Required by :class:`~repro.population.PopulationTrainer`.
    tier_byzantine:
        How many aggregators *at* each tier are Byzantine (same length as
        ``tier_spec``; the global tier must be honest). The filter at tier
        ``t+1`` trims ``tier_byzantine[t]`` from each side per parent, so
        feasibility requires every parent's child count to satisfy
        ``q >= 2B+1`` even under worst-case placement. ``None`` = all
        honest.
    churn_join_rate / churn_leave_rate / churn_rejoin_fraction /
    churn_dwell_rounds:
        Knobs for sampling a :class:`~repro.population.ChurnPlan` (see
        :meth:`ChurnPlan.from_config`): per-client probabilities of
        joining late or leaving mid-run, the fraction of leavers that
        rejoin, and how many rounds they stay away.
    faults:
        Graceful-degradation knobs (round deadline, upload retry budget
        and backoff); defaults are used when ``None``. The fault *events*
        themselves live in a
        :class:`~repro.simulation.faults.FaultPlan` passed to the trainer.
    retry_policy:
        The :class:`~repro.core.upload.RetryPolicy` both
        :class:`~repro.core.trainer.FedMSTrainer` and
        :class:`~repro.population.PopulationTrainer` consume for failed
        sends. ``None`` (default) derives one from ``faults``; supplying
        retry knobs through ``faults`` *and* a divergent ``retry_policy``
        is deprecated — the explicit policy wins.
    aggregation_mode:
        ``"barrier"`` (paper default — every round waits for all alive
        PSs) or ``"deadline"`` — aggregate whatever arrived when the
        round deadline fires, admitting bounded-staleness late arrivals
        next round. See ``docs/faults.md``.
    deadline_quantile:
        In deadline mode, the quantile of the straggler-free latency
        distribution used to calibrate the deadline (ignored when
        ``deadline_s`` is set).
    deadline_s:
        Explicit round deadline in simulated seconds; overrides
        ``deadline_quantile``.
    max_staleness:
        How many rounds a late arrival stays admissible: a model that
        missed round ``t``'s deadline may still be counted in rounds up
        to ``t + max_staleness``.
    straggler_rate:
        Probability that any single simulated transfer straggles (its
        latency is inflated by ``straggler_factor``), drawn per message
        from a ``(seed, round, leg, sender)`` stream.
    straggler_factor:
        Latency multiplier for straggling transfers.
    health_scoring:
        Enables the per-PS health ledger and circuit breaker
        (``core/health.py``): crash/straggle/filter evidence decays into
        a reputation score; persistently-bad PSs are excluded from upload
        sampling and quorum counting until they pass probation.
    health_decay / health_open_threshold / health_probation_rounds:
        :class:`~repro.core.health.HealthPolicy` knobs — score decay per
        round, the score below which the breaker opens, and how many
        clean rounds an open PS needs before half-open readmission.
    execution_backend:
        How the per-round client steps run: ``"serial"`` (one process, the
        default), ``"thread"`` (thread pool) or ``"process"`` (persistent
        ``multiprocessing`` workers over shared memory). ``None`` defers to
        the ``REPRO_EXECUTION_BACKEND`` environment variable, then
        ``"serial"``. All backends are bit-identical for the same seed —
        see ``docs/execution.md``.
    num_workers:
        Pool size for the thread/process backends. ``0`` (or the default
        ``None`` with no ``REPRO_NUM_WORKERS`` set) means auto: one worker
        per available core, capped at ``num_clients``.
    seed:
        Root seed for every random stream in the run.
    """

    num_clients: int = 50
    num_servers: int = 10
    num_byzantine: int = 2
    local_steps: int = 3
    batch_size: int = 32
    learning_rate: float = 0.05
    trim_ratio: Optional[float] = None
    filter_rule_name: Optional[str] = None
    mad_threshold: float = 3.5
    root_batch_size: int = 64
    upload_strategy: str = "sparse"
    uploads_per_client: int = 1
    upload_codecs: Optional[Sequence[str]] = None
    include_buffers: bool = True
    participation_fraction: float = 1.0
    eval_clients: int = 3
    population_size: Optional[int] = None
    sample_fraction: float = 0.1
    tier_spec: Optional[Sequence[int]] = None
    tier_byzantine: Optional[Sequence[int]] = None
    churn_join_rate: float = 0.0
    churn_leave_rate: float = 0.0
    churn_rejoin_fraction: float = 0.5
    churn_dwell_rounds: int = 3
    faults: Optional[FaultConfig] = None
    retry_policy: Optional[RetryPolicy] = None
    aggregation_mode: str = "barrier"
    deadline_quantile: float = 0.9
    deadline_s: Optional[float] = None
    max_staleness: int = 1
    straggler_rate: float = 0.0
    straggler_factor: float = 10.0
    health_scoring: bool = False
    health_decay: float = 0.7
    health_open_threshold: float = 0.4
    health_probation_rounds: int = 2
    execution_backend: Optional[str] = None
    num_workers: Optional[int] = None
    seed: int = 0

    resolved_trim_ratio: float = field(init=False, repr=False)

    def __post_init__(self) -> None:
        check_positive_int(self.num_clients, "num_clients")
        check_positive_int(self.num_servers, "num_servers")
        check_nonnegative_int(self.num_byzantine, "num_byzantine")
        check_positive_int(self.local_steps, "local_steps")
        check_positive_int(self.batch_size, "batch_size")
        check_positive_int(self.uploads_per_client, "uploads_per_client")
        check_positive_int(self.eval_clients, "eval_clients")
        require(self.learning_rate > 0,
                f"learning_rate must be positive, got {self.learning_rate}")
        require(2 * self.num_byzantine < self.num_servers,
                f"Byzantine PSs must be a strict minority: "
                f"2*{self.num_byzantine} >= {self.num_servers}")
        require(self.upload_strategy in ("sparse", "full", "multi"),
                f"unknown upload_strategy {self.upload_strategy!r}")
        require(self.uploads_per_client <= self.num_servers,
                f"uploads_per_client={self.uploads_per_client} exceeds "
                f"num_servers={self.num_servers}")
        # Eager: constructing the strategy here surfaces any remaining
        # strategy-level error at config time (the trainer builds its own
        # instance from this config later).
        make_upload_strategy(self)
        if self.upload_codecs is not None:
            self.upload_codecs = tuple(self.upload_codecs)
            # Eager, like filter_rule_name: a bad chain (unknown codec,
            # terminal codec mid-chain, out-of-range ratio) fails here,
            # not rounds into a run.
            make_codec_pipeline(self.upload_codecs)
        require(0.0 < self.participation_fraction <= 1.0,
                f"participation_fraction must be in (0, 1], got "
                f"{self.participation_fraction}")
        require(self.eval_clients <= self.num_clients,
                f"eval_clients={self.eval_clients} exceeds "
                f"num_clients={self.num_clients}")
        require(self.faults is None or isinstance(self.faults, FaultConfig),
                f"faults must be a FaultConfig, got {type(self.faults)}")
        require(self.retry_policy is None
                or isinstance(self.retry_policy, RetryPolicy),
                f"retry_policy must be a RetryPolicy, got "
                f"{type(self.retry_policy)}")
        if (self.retry_policy is not None and self.faults is not None
                and RetryPolicy.from_config(self.faults)
                != self.retry_policy):
            import warnings

            warnings.warn(
                "passing divergent retry knobs through both "
                "FedMSConfig.retry_policy and FaultConfig is deprecated; "
                "the explicit retry_policy wins — drop the FaultConfig "
                "retry fields",
                DeprecationWarning, stacklevel=3,
            )
        require(self.aggregation_mode in ("barrier", "deadline"),
                f"aggregation_mode must be 'barrier' or 'deadline', got "
                f"{self.aggregation_mode!r}")
        check_fraction(self.deadline_quantile, "deadline_quantile")
        require(self.deadline_quantile > 0.0,
                f"deadline_quantile must be > 0, got "
                f"{self.deadline_quantile}")
        require(self.deadline_s is None or self.deadline_s > 0,
                f"deadline_s must be positive, got {self.deadline_s}")
        check_nonnegative_int(self.max_staleness, "max_staleness")
        check_fraction(self.straggler_rate, "straggler_rate",
                       upper=1.0, inclusive_upper=False)
        require(self.straggler_factor >= 1.0,
                f"straggler_factor must be >= 1, got "
                f"{self.straggler_factor}")
        # Eager, like FaultConfig: bad health knobs fail at config time.
        if self.health_scoring:
            from .health import HealthPolicy

            HealthPolicy.from_config(self)
        if self.population_size is not None:
            check_positive_int(self.population_size, "population_size")
        require(0.0 < self.sample_fraction <= 1.0,
                f"sample_fraction must be in (0, 1], got "
                f"{self.sample_fraction}")
        require(self.tier_spec is not None or self.tier_byzantine is None,
                "tier_byzantine requires a tier_spec")
        if self.tier_spec is not None:
            self.tier_spec = tuple(int(n) for n in self.tier_spec)
            require(len(self.tier_spec) >= 1, "tier_spec must be non-empty")
            for n in self.tier_spec:
                check_positive_int(n, "tier_spec entries")
            require(self.tier_spec[-1] == 1,
                    f"the top tier must be a single global aggregator, got "
                    f"tier_spec={self.tier_spec}")
            require(all(a >= b for a, b in zip(self.tier_spec,
                                               self.tier_spec[1:])),
                    f"tier_spec must be non-increasing bottom-up, got "
                    f"{self.tier_spec}")
        if self.tier_byzantine is not None:
            self.tier_byzantine = tuple(int(b) for b in self.tier_byzantine)
            require(len(self.tier_byzantine) == len(self.tier_spec),
                    f"tier_byzantine has {len(self.tier_byzantine)} entries "
                    f"for {len(self.tier_spec)} tiers")
            for b in self.tier_byzantine:
                check_nonnegative_int(b, "tier_byzantine entries")
            require(self.tier_byzantine[-1] == 0,
                    "the global aggregator must be honest "
                    "(tier_byzantine must end in 0)")
            for t in range(1, len(self.tier_spec)):
                budget = self.tier_byzantine[t - 1]
                require(budget <= self.tier_spec[t - 1],
                        f"tier_byzantine[{t - 1}]={budget} exceeds the "
                        f"{self.tier_spec[t - 1]} aggregators at tier {t - 1}")
                min_children = self.tier_spec[t - 1] // self.tier_spec[t]
                require(min_children >= 2 * budget + 1,
                        f"tier {t} quorum infeasible: parents see "
                        f"{min_children} children but tolerating "
                        f"B={budget} Byzantine tier-{t - 1} aggregators "
                        f"needs q >= {2 * budget + 1}")
        check_fraction(self.churn_join_rate, "churn_join_rate",
                       upper=1.0, inclusive_upper=False)
        check_fraction(self.churn_leave_rate, "churn_leave_rate",
                       upper=1.0, inclusive_upper=False)
        check_fraction(self.churn_rejoin_fraction, "churn_rejoin_fraction")
        check_positive_int(self.churn_dwell_rounds, "churn_dwell_rounds")
        require(self.execution_backend is None
                or self.execution_backend in _EXECUTION_BACKENDS,
                f"execution_backend must be one of {_EXECUTION_BACKENDS}, "
                f"got {self.execution_backend!r}")
        if self.num_workers is not None:
            check_nonnegative_int(self.num_workers, "num_workers")
        if self.trim_ratio is None:
            self.resolved_trim_ratio = self.num_byzantine / self.num_servers
        else:
            self.resolved_trim_ratio = check_fraction(
                self.trim_ratio, "trim_ratio", upper=0.5, inclusive_upper=False
            )
        check_positive_int(self.root_batch_size, "root_batch_size")
        require(self.mad_threshold > 0,
                f"mad_threshold must be positive, got {self.mad_threshold}")
        if self.filter_rule_name is not None:
            # The loss-based rule's loss_fn is supplied by the trainer (it
            # needs the root dataset), so only the name-level parameters
            # are checked here — with the real stack size, so an
            # incompatible (rule, P, B) combination fails at config time.
            validate_rule_params(
                self.filter_rule_name,
                trim_ratio=self.resolved_trim_ratio,
                num_byzantine=self.num_byzantine,
                mad_threshold=self.mad_threshold,
                loss_fn=(lambda _: 0.0) if self.filter_rule_name
                == "loss_based" else None,
                num_models=self.num_servers,
            )

    @property
    def resolved_faults(self) -> "FaultConfig":
        """The fault knobs in effect (defaults when ``faults is None``)."""
        return self.faults if self.faults is not None else FaultConfig()

    @property
    def resolved_retry_policy(self) -> "RetryPolicy":
        """The retry policy both trainers consume.

        The explicit ``retry_policy`` wins; otherwise one is derived from
        the (possibly default) ``faults`` knobs, preserving the legacy
        FaultConfig route.
        """
        if self.retry_policy is not None:
            return self.retry_policy
        return RetryPolicy.from_config(self.resolved_faults)

    @property
    def deadline_mode(self) -> bool:
        """True when rounds aggregate on a deadline instead of a barrier."""
        return self.aggregation_mode == "deadline"

    @property
    def resolved_execution_backend(self) -> str:
        """The backend in effect: explicit field, then environment, then
        ``"serial"``. Read at trainer construction time."""
        if self.execution_backend is not None:
            return self.execution_backend
        name = os.environ.get(EXECUTION_BACKEND_ENV, "serial")
        require(name in _EXECUTION_BACKENDS,
                f"{EXECUTION_BACKEND_ENV}={name!r} is not one of "
                f"{_EXECUTION_BACKENDS}")
        return name

    @property
    def resolved_num_workers(self) -> int:
        """The worker count in effect (``0`` = auto-size to the machine)."""
        if self.num_workers is not None:
            return self.num_workers
        raw = os.environ.get(NUM_WORKERS_ENV)
        if raw is None:
            return 0
        try:
            workers = int(raw)
        except ValueError:
            raise ConfigurationError(
                f"{NUM_WORKERS_ENV}={raw!r} is not an integer"
            ) from None
        check_nonnegative_int(workers, NUM_WORKERS_ENV)
        return workers

    @property
    def resolved_upload_codecs(self) -> "tuple":
        """The codec chain in effect: explicit field, then the
        ``REPRO_UPLOAD_CODECS`` environment variable, then none (identity).
        Environment-supplied chains are validated here, eagerly."""
        if self.upload_codecs is not None:
            return tuple(self.upload_codecs)
        raw = os.environ.get(UPLOAD_CODECS_ENV)
        if not raw:
            return ()
        specs = tuple(piece.strip() for piece in raw.split(",")
                      if piece.strip())
        make_codec_pipeline(specs)
        return specs

    @property
    def resolved_tier_byzantine(self) -> "tuple":
        """Per-tier Byzantine counts (zeros when ``tier_byzantine`` unset).

        Only meaningful with a ``tier_spec``; returns ``()`` without one.
        """
        if self.tier_spec is None:
            return ()
        if self.tier_byzantine is not None:
            return tuple(self.tier_byzantine)
        return (0,) * len(self.tier_spec)

    @property
    def has_churn(self) -> bool:
        """True when the config asks for a sampled churn plan."""
        return self.churn_join_rate > 0.0 or self.churn_leave_rate > 0.0

    @property
    def participants_per_round(self) -> int:
        """Number of clients training each round (at least 1)."""
        return max(1, round(self.participation_fraction * self.num_clients))

    @property
    def byzantine_fraction(self) -> float:
        """The paper's ``epsilon = B / P``."""
        return self.num_byzantine / self.num_servers
