"""Hierarchical (grouped) multi-server FL — the related-work baseline.

The paper's Related Work (Section II) surveys multi-server FL systems
[26-30] in which clients are statically *grouped*, each group served by one
PS, with an inter-server exchange producing the global model. This module
implements that architecture so the reproduction can demonstrate the claim
motivating Fed-MS: grouped multi-server FL has no client-side redundancy —
a client only ever hears from its own PS, so a Byzantine group PS fully
controls its group regardless of any inter-server defense.

Round structure:

1. clients run local SGD (same as Fed-MS);
2. each client uploads to its *fixed* group PS (cost ``K`` per round);
3. each PS aggregates its group;
4. inter-server exchange: every PS sends its (possibly tampered) group
   aggregate to every other PS; each benign PS combines what it received
   with ``inter_server_rule`` (plain mean in classical hierarchical FL, a
   robust rule as a partial mitigation);
5. each PS disseminates its combined global model to its own group only —
   a Byzantine PS disseminates whatever it wants.
"""

from __future__ import annotations

import warnings
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..aggregation import AggregationRule, mean
from ..attacks.base import Attack
from ..common.errors import ConfigurationError
from ..common.rng import RngFactory
from ..data.datasets import ArrayDataset
from ..nn.module import Module
from ..nn.schedules import LRSchedule
from ..nn.serialization import to_vector
from ..simulation.network import Message, Network, NodeId
from .client import Client
from .config import FedMSConfig
from .history import RoundRecord, TrainingHistory
from .server import ByzantineParameterServer, ParameterServer

__all__ = ["HierarchicalTrainer"]

ModelFactory = Callable[[np.random.Generator], Module]


class HierarchicalTrainer:
    """Grouped multi-server FL with an inter-server aggregation stage.

    Accepts the same :class:`FedMSConfig` as :class:`FedMSTrainer`
    (``upload_strategy`` is ignored — grouping is static). Group membership
    defaults to ``client k -> PS (k mod P)``.
    """

    def __init__(self, config: FedMSConfig, *, model_factory: ModelFactory,
                 client_datasets: Sequence[ArrayDataset],
                 test_dataset: ArrayDataset,
                 attack: Optional[Attack] = None,
                 byzantine_ids: Optional[Sequence[int]] = None,
                 inter_server_rule: Optional[AggregationRule] = None,
                 group_of_client: Optional[Sequence[int]] = None,
                 lr_schedule: Optional[LRSchedule] = None,
                 flatten_inputs: bool = False,
                 network: Optional[Network] = None) -> None:
        if len(client_datasets) != config.num_clients:
            raise ConfigurationError(
                f"{len(client_datasets)} client datasets for "
                f"{config.num_clients} clients"
            )
        if config.num_byzantine > 0 and attack is None:
            raise ConfigurationError(
                "config.num_byzantine > 0 requires an attack"
            )
        ignored = []
        if config.upload_strategy != "sparse":
            ignored.append(f"upload_strategy={config.upload_strategy!r}")
        if config.resolved_upload_codecs:
            ignored.append(f"upload_codecs={config.resolved_upload_codecs!r}")
        if ignored:
            warnings.warn(
                "HierarchicalTrainer ignores " + " and ".join(ignored)
                + ": grouping is static and uploads travel uncoded",
                RuntimeWarning, stacklevel=2,
            )
        self.config = config
        self.test_dataset = test_dataset
        self.network = network if network is not None else Network()
        self.rngs = RngFactory(config.seed)
        self.inter_server_rule: AggregationRule = (
            inter_server_rule if inter_server_rule is not None else mean
        )

        if group_of_client is None:
            self.group_of_client = [
                k % config.num_servers for k in range(config.num_clients)
            ]
        else:
            groups = list(group_of_client)
            if len(groups) != config.num_clients:
                raise ConfigurationError(
                    f"group_of_client has {len(groups)} entries for "
                    f"{config.num_clients} clients"
                )
            if any(not 0 <= g < config.num_servers for g in groups):
                raise ConfigurationError(
                    f"group ids must be in [0, {config.num_servers})"
                )
            self.group_of_client = groups
        present = set(self.group_of_client)
        if len(present) < config.num_servers:
            raise ConfigurationError(
                "every PS needs at least one group member; groups "
                f"{sorted(set(range(config.num_servers)) - present)} are empty"
            )

        init_model = model_factory(self.rngs.make("init/global"))
        initial_vector = to_vector(init_model,
                                   include_buffers=config.include_buffers)

        self.clients: List[Client] = []
        for k in range(config.num_clients):
            client = Client(
                k,
                model_factory(self.rngs.make(f"init/client/{k}")),
                client_datasets[k],
                batch_size=config.batch_size,
                rng=self.rngs.make(f"batches/client/{k}"),
                lr_schedule=lr_schedule,
                learning_rate=config.learning_rate,
                include_buffers=config.include_buffers,
                flatten_inputs=flatten_inputs,
            )
            client.set_model_vector(initial_vector)
            self.clients.append(client)

        if byzantine_ids is None:
            chosen = self.rngs.make("byzantine/placement").choice(
                config.num_servers, size=config.num_byzantine, replace=False
            )
            self.byzantine_ids = frozenset(int(i) for i in chosen)
        else:
            self.byzantine_ids = frozenset(int(i) for i in byzantine_ids)
            if len(self.byzantine_ids) != config.num_byzantine:
                raise ConfigurationError(
                    f"byzantine_ids has {len(self.byzantine_ids)} ids, "
                    f"expected {config.num_byzantine}"
                )

        self.servers: List[ParameterServer] = []
        for i in range(config.num_servers):
            if i in self.byzantine_ids:
                assert attack is not None
                self.servers.append(ByzantineParameterServer(
                    i, attack, rng=self.rngs.make(f"attack/server/{i}"),
                    initial_model=initial_vector,
                ))
            else:
                self.servers.append(ParameterServer(
                    i, initial_model=initial_vector,
                ))

        self.history = TrainingHistory()
        self._round_index = 0

    # ------------------------------------------------------------------

    def run_round(self, *, evaluate: bool = True) -> RoundRecord:
        """One grouped round: train, group-aggregate, exchange, disseminate."""
        config = self.config
        t = self._round_index
        messages_before = self.network.stats.messages_by_tag.get("upload", 0)
        bytes_before = self.network.stats.bytes_by_tag.get("upload", 0)

        # 1+2: local training, upload to the fixed group PS.
        for client, group in zip(self.clients, self.group_of_client):
            vector = client.local_train(t, config.local_steps)
            self.network.send(Message(
                NodeId.client(client.client_id), NodeId.server(group),
                vector, tag="upload", round_index=t,
            ))

        # 3: per-group aggregation (honest on every PS).
        for server in self.servers:
            uploads = [m.payload for m in
                       self.network.receive(NodeId.server(server.server_id))]
            server.aggregate(uploads)
        all_aggregates = np.stack(
            [server.current_aggregate for server in self.servers]
        )

        # 4: inter-server exchange. What PS j *sends* to peers is its
        # dissemination output (tampered on Byzantine PSs); each benign PS
        # combines all P contributions (its own true aggregate included).
        outgoing = [
            server.disseminate(round_index=t,
                               all_server_aggregates=all_aggregates)
            for server in self.servers
        ]
        global_models: List[np.ndarray] = []
        for server in self.servers:
            contributions = [
                outgoing[peer.server_id]
                if peer.server_id != server.server_id
                else server.current_aggregate
                for peer in self.servers
            ]
            global_models.append(self.inter_server_rule(np.stack(contributions)))
            # Inter-server traffic: P-1 peer messages per PS.
            for peer in self.servers:
                if peer.server_id == server.server_id:
                    continue
                self.network.send(Message(
                    NodeId.server(peer.server_id),
                    NodeId.server(server.server_id),
                    outgoing[peer.server_id],
                    tag="inter_server", round_index=t,
                ))
                self.network.receive(NodeId.server(server.server_id))

        # 5: group dissemination — Byzantine PSs ignore the exchange and
        # send their tampered model; clients have no second opinion.
        train_loss = float(np.mean(
            [client.last_train_loss for client in self.clients]
        ))
        for client, group in zip(self.clients, self.group_of_client):
            server = self.servers[group]
            if server.is_byzantine:
                model = server.disseminate(
                    round_index=t, client_id=client.client_id,
                    all_server_aggregates=all_aggregates,
                )
            else:
                model = global_models[group]
            self.network.send(Message(
                NodeId.server(group), NodeId.client(client.client_id),
                model, tag="dissemination", round_index=t,
            ))
            received = self.network.receive(NodeId.client(client.client_id))
            if received:
                client.set_model_vector(received[-1].payload)
                client.optimizer.reset_state()

        record = RoundRecord(
            round_index=t,
            train_loss=train_loss,
            upload_messages=(
                self.network.stats.messages_by_tag.get("upload", 0)
                - messages_before
            ),
            upload_bytes=(
                self.network.stats.bytes_by_tag.get("upload", 0) - bytes_before
            ),
            dissemination_messages=config.num_clients,
        )
        if evaluate:
            record.test_loss, record.test_accuracy = self._evaluate()
        self.history.append(record)
        self._round_index += 1
        return record

    def _evaluate(self) -> "tuple[float, float]":
        """Mean (loss, accuracy) over one client per group, then averaged
        with group sizes as weights — the population-average accuracy."""
        group_sizes = np.bincount(self.group_of_client,
                                  minlength=self.config.num_servers)
        losses, accuracies, weights = [], [], []
        seen_groups = set()
        for client, group in zip(self.clients, self.group_of_client):
            if group in seen_groups:
                continue
            seen_groups.add(group)
            loss, acc = client.evaluate(self.test_dataset)
            losses.append(loss)
            accuracies.append(acc)
            weights.append(group_sizes[group])
        weights_arr = np.asarray(weights, dtype=np.float64)
        weights_arr /= weights_arr.sum()
        return (float(np.dot(losses, weights_arr)),
                float(np.dot(accuracies, weights_arr)))

    def run(self, num_rounds: int, *, eval_every: int = 1) -> TrainingHistory:
        """Run ``num_rounds`` rounds, evaluating every ``eval_every``."""
        if num_rounds <= 0:
            raise ConfigurationError(f"num_rounds must be positive, got {num_rounds}")
        if eval_every <= 0:
            raise ConfigurationError(f"eval_every must be positive, got {eval_every}")
        for offset in range(num_rounds):
            is_last = offset == num_rounds - 1
            self.run_round(
                evaluate=is_last or (self._round_index + 1) % eval_every == 0
            )
        return self.history
