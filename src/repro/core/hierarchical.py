"""Hierarchical (grouped) multi-server FL — the related-work baseline.

The paper's Related Work (Section II) surveys multi-server FL systems
[26-30] in which clients are statically *grouped*, each group served by one
PS, with an inter-server exchange producing the global model. This module
implements that architecture so the reproduction can demonstrate the claim
motivating Fed-MS: grouped multi-server FL has no client-side redundancy —
a client only ever hears from its own PS, so a Byzantine group PS fully
controls its group regardless of any inter-server defense.

Round structure:

1. clients run local SGD (same as Fed-MS);
2. each client uploads to its *fixed* group PS (cost ``K`` per round);
3. each PS aggregates its group;
4. inter-server exchange: every PS sends its (possibly tampered) group
   aggregate to every other PS; each benign PS combines what it received
   with ``inter_server_rule`` (plain mean in classical hierarchical FL, a
   robust rule as a partial mitigation);
5. each PS disseminates its combined global model to its own group only —
   a Byzantine PS disseminates whatever it wants.

Wire-level extensions shared with the other trainers (docs/upload.md,
docs/faults.md): ``config.upload_codecs`` compresses all three legs
(upload, inter-server exchange, dissemination) as deltas against a
trainer-wide reference model with per-sender error feedback; sends retry
per ``config.resolved_retry_policy``; and ``aggregation_mode="deadline"``
times the inter-server exchange with a
:class:`~repro.simulation.clock.VirtualClock` — a PS whose contribution
misses the deadline is excluded from every peer's combine this round and
its model is buffered for bounded-staleness admission next round.
"""

from __future__ import annotations

import warnings
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..aggregation import AggregationRule, mean
from ..attacks.base import Attack
from ..common.errors import ConfigurationError
from ..common.rng import RngFactory
from ..data.datasets import ArrayDataset
from ..nn.module import Module
from ..nn.schedules import LRSchedule
from ..nn.serialization import to_vector
from ..simulation.clock import VirtualClock, split_by_deadline
from ..simulation.network import Message, Network, NodeId
from .client import Client
from .codecs import (
    EncodedUpdate,
    broadcast_variant,
    make_codec_pipeline,
)
from .config import FedMSConfig
from .history import RoundRecord, TrainingHistory
from .server import ByzantineParameterServer, ParameterServer

__all__ = ["HierarchicalTrainer"]

ModelFactory = Callable[[np.random.Generator], Module]


class HierarchicalTrainer:
    """Grouped multi-server FL with an inter-server aggregation stage.

    Accepts the same :class:`FedMSConfig` as :class:`FedMSTrainer`
    (``upload_strategy`` is ignored — grouping is static). Group membership
    defaults to ``client k -> PS (k mod P)``.
    """

    def __init__(self, config: FedMSConfig, *, model_factory: ModelFactory,
                 client_datasets: Sequence[ArrayDataset],
                 test_dataset: ArrayDataset,
                 attack: Optional[Attack] = None,
                 byzantine_ids: Optional[Sequence[int]] = None,
                 inter_server_rule: Optional[AggregationRule] = None,
                 group_of_client: Optional[Sequence[int]] = None,
                 lr_schedule: Optional[LRSchedule] = None,
                 flatten_inputs: bool = False,
                 network: Optional[Network] = None) -> None:
        if len(client_datasets) != config.num_clients:
            raise ConfigurationError(
                f"{len(client_datasets)} client datasets for "
                f"{config.num_clients} clients"
            )
        if config.num_byzantine > 0 and attack is None:
            raise ConfigurationError(
                "config.num_byzantine > 0 requires an attack"
            )
        if config.upload_strategy != "sparse":
            warnings.warn(
                f"HierarchicalTrainer ignores "
                f"upload_strategy={config.upload_strategy!r}: grouping is "
                f"static, every client uploads to its fixed group PS",
                RuntimeWarning, stacklevel=2,
            )
        self.config = config
        self.test_dataset = test_dataset
        self.network = network if network is not None else Network()
        self.rngs = RngFactory(config.seed)
        self.inter_server_rule: AggregationRule = (
            inter_server_rule if inter_server_rule is not None else mean
        )

        if group_of_client is None:
            self.group_of_client = [
                k % config.num_servers for k in range(config.num_clients)
            ]
        else:
            groups = list(group_of_client)
            if len(groups) != config.num_clients:
                raise ConfigurationError(
                    f"group_of_client has {len(groups)} entries for "
                    f"{config.num_clients} clients"
                )
            if any(not 0 <= g < config.num_servers for g in groups):
                raise ConfigurationError(
                    f"group ids must be in [0, {config.num_servers})"
                )
            self.group_of_client = groups
        present = set(self.group_of_client)
        if len(present) < config.num_servers:
            raise ConfigurationError(
                "every PS needs at least one group member; groups "
                f"{sorted(set(range(config.num_servers)) - present)} are empty"
            )

        init_model = model_factory(self.rngs.make("init/global"))
        initial_vector = to_vector(init_model,
                                   include_buffers=config.include_buffers)

        self.clients: List[Client] = []
        for k in range(config.num_clients):
            client = Client(
                k,
                model_factory(self.rngs.make(f"init/client/{k}")),
                client_datasets[k],
                batch_size=config.batch_size,
                rng=self.rngs.make(f"batches/client/{k}"),
                lr_schedule=lr_schedule,
                learning_rate=config.learning_rate,
                include_buffers=config.include_buffers,
                flatten_inputs=flatten_inputs,
            )
            client.set_model_vector(initial_vector)
            self.clients.append(client)

        if byzantine_ids is None:
            chosen = self.rngs.make("byzantine/placement").choice(
                config.num_servers, size=config.num_byzantine, replace=False
            )
            self.byzantine_ids = frozenset(int(i) for i in chosen)
        else:
            self.byzantine_ids = frozenset(int(i) for i in byzantine_ids)
            if len(self.byzantine_ids) != config.num_byzantine:
                raise ConfigurationError(
                    f"byzantine_ids has {len(self.byzantine_ids)} ids, "
                    f"expected {config.num_byzantine}"
                )

        self.servers: List[ParameterServer] = []
        for i in range(config.num_servers):
            if i in self.byzantine_ids:
                assert attack is not None
                self.servers.append(ByzantineParameterServer(
                    i, attack, rng=self.rngs.make(f"attack/server/{i}"),
                    initial_model=initial_vector,
                ))
            else:
                self.servers.append(ParameterServer(
                    i, initial_model=initial_vector,
                ))

        self.retry_policy = config.resolved_retry_policy

        # Virtual timing of the inter-server exchange (the only stage
        # with cross-PS fan-in here; group uploads and dissemination are
        # intra-group). Barrier mode just measures; deadline mode excludes
        # the contributions that missed the deadline.
        self.clock = VirtualClock(
            config.seed,
            straggler_rate=config.straggler_rate,
            straggler_factor=config.straggler_factor,
        )
        self._deadline_s: Optional[float] = None
        if config.deadline_mode:
            self._deadline_s = (
                config.deadline_s if config.deadline_s is not None
                else self.clock.deadline_for_quantile(config.deadline_quantile)
            )
        # PS id -> (origin round, dense exchange model) for contributions
        # that missed a deadline, held for bounded-staleness admission.
        self._late_exchanges: Dict[int, Tuple[int, np.ndarray]] = {}

        # Codecs on all three legs. The shared reference is trainer-wide:
        # it starts at the initial model every party holds and advances to
        # the mean of the PSs' combined global models each round — the
        # natural "posted" model all groups track up to inter-server
        # disagreement. Error-feedback residuals are per sender and only
        # advance on delivered sends; per-receiver encodes (a Byzantine
        # PS's client-dependent dissemination) carry no residual.
        self.codec = make_codec_pipeline(config.resolved_upload_codecs)
        self.broadcast_codec = broadcast_variant(self.codec)
        self._codec_active = not self.codec.is_identity
        self._reference: Optional[np.ndarray] = (
            np.array(initial_vector) if self._codec_active else None
        )
        self._upload_residuals: Dict[int, np.ndarray] = {}
        self._exchange_residuals: Dict[int, np.ndarray] = {}
        self._dissemination_residuals: Dict[int, np.ndarray] = {}

        self.history = TrainingHistory()
        self._round_index = 0

    # -- wire helpers --------------------------------------------------------

    def _send_with_retry(self, message: Message,
                         counters: Dict[str, float]) -> bool:
        """Send to the fixed recipient, retrying per the policy.

        Group membership and the all-to-all exchange are static, so a
        retry re-offers the identical message after backoff. Dropped
        attempts are charged to the message's tag in ``TrafficStats``.
        """
        if self.network.send(message):
            return True
        policy = self.retry_policy
        for attempt in range(1, policy.max_retries + 1):
            self.network.stats.record_retry(message.tag)
            counters["retries"] += 1
            counters["backoff_s"] += policy.backoff_s(attempt)
            if self.network.send(message):
                return True
        counters["failures"] += 1
        return False

    def _encode_delta(self, pipeline, vector: np.ndarray, *,
                      residuals: Optional[Dict[int, np.ndarray]] = None,
                      residual_key: Optional[int] = None,
                      salt: Optional[int] = None) -> object:
        """Encode ``vector`` as a delta against the shared reference.

        With ``residuals``/``residual_key`` the sender's accumulated
        error feedback is folded in and advanced immediately — callers on
        lossy paths must instead pass no residual dict and manage adoption
        themselves (here all hierarchical legs deliver unless a custom
        network injects drops, in which case the truncation loss is the
        documented trade-off).
        """
        if not self._codec_active:
            return vector
        assert self._reference is not None
        delta = vector - self._reference
        if residuals is not None and residual_key is not None:
            residual = residuals.get(residual_key)
            if residual is not None:
                delta = delta + residual
        encoded = (pipeline.encode(delta, salt=salt) if salt is not None
                   else pipeline.encode(delta))
        if residuals is not None and residual_key is not None:
            residuals[residual_key] = delta - encoded.decode()
        return encoded

    def _decode_payload(self, payload: object) -> np.ndarray:
        """Dense vector a receiver reconstructs from a wire payload."""
        if isinstance(payload, EncodedUpdate):
            assert self._reference is not None
            return self._reference + payload.decode()
        return payload  # type: ignore[return-value]

    # ------------------------------------------------------------------

    def run_round(self, *, evaluate: bool = True) -> RoundRecord:
        """One grouped round: train, group-aggregate, exchange, disseminate."""
        config = self.config
        t = self._round_index
        messages_before = self.network.stats.messages_by_tag.get("upload", 0)
        bytes_before = self.network.stats.bytes_by_tag.get("upload", 0)
        counters: Dict[str, float] = {
            "retries": 0, "failures": 0, "backoff_s": 0.0,
        }

        # 1+2: local training, upload to the fixed group PS.
        for client, group in zip(self.clients, self.group_of_client):
            vector = client.local_train(t, config.local_steps)
            payload = self._encode_delta(
                self.codec, vector,
                residuals=self._upload_residuals,
                residual_key=client.client_id,
            )
            self._send_with_retry(Message(
                NodeId.client(client.client_id), NodeId.server(group),
                payload, tag="upload", round_index=t,
            ), counters)

        # 3: per-group aggregation (honest on every PS).
        for server in self.servers:
            uploads = [self._decode_payload(m.payload) for m in
                       self.network.receive(NodeId.server(server.server_id))]
            server.aggregate(uploads)
        all_aggregates = np.stack(
            [server.current_aggregate for server in self.servers]
        )

        # 4: inter-server exchange. What PS j *sends* to peers is its
        # dissemination output (tampered on Byzantine PSs); each benign PS
        # combines the contributions that reached it (its own true
        # aggregate always included — a PS is never late to itself).
        outgoing = [
            server.disseminate(round_index=t,
                               all_server_aggregates=all_aggregates)
            for server in self.servers
        ]
        num_servers = config.num_servers
        arrivals = self.clock.arrivals(t, "inter_server", range(num_servers))
        late_ids: "frozenset[int]" = frozenset()
        late_admitted = 0
        if self._deadline_s is not None:
            _, late = split_by_deadline(arrivals, self._deadline_s)
            late_ids = frozenset(late)
        stage_s = self.clock.stage_seconds(arrivals,
                                           deadline_s=self._deadline_s)
        # Bounded-staleness admission: a PS late *again* this round is
        # represented by its buffered previous model (the message finally
        # arriving); an on-time PS supersedes and drops its stale buffer.
        admitted_stale: Dict[int, np.ndarray] = {}
        for sid in sorted(self._late_exchanges):
            origin, stale_vector = self._late_exchanges[sid]
            del self._late_exchanges[sid]
            if t - origin > config.max_staleness:
                continue
            if sid in late_ids:
                admitted_stale[sid] = stale_vector
        for sid in late_ids:
            self._late_exchanges[sid] = (t, outgoing[sid])
        late_admitted = len(admitted_stale)
        # One encode per sender per round (the exchange is a broadcast of
        # the same model to every peer): residual-fed for fresh sends,
        # residual-free for stale re-sends. Receivers use the decoded
        # round-trip so the combine sees exactly what the wire carried.
        exchange_payloads: Dict[int, object] = {}
        exchange_vectors: Dict[int, np.ndarray] = {}
        for sid in range(num_servers):
            if sid in late_ids:
                if sid in admitted_stale:
                    payload = self._encode_delta(
                        self.broadcast_codec, admitted_stale[sid], salt=t,
                    )
                    exchange_payloads[sid] = payload
                    exchange_vectors[sid] = self._decode_payload(payload)
                continue
            payload = self._encode_delta(
                self.broadcast_codec, outgoing[sid],
                residuals=self._exchange_residuals, residual_key=sid,
                salt=t,
            )
            exchange_payloads[sid] = payload
            exchange_vectors[sid] = self._decode_payload(payload)
        global_models: List[np.ndarray] = []
        for server in self.servers:
            contributions = [
                exchange_vectors[peer.server_id]
                if peer.server_id != server.server_id
                else server.current_aggregate
                for peer in self.servers
                if peer.server_id == server.server_id
                or peer.server_id in exchange_vectors
            ]
            global_models.append(self.inter_server_rule(np.stack(contributions)))
            # Inter-server traffic: one message per contributing peer.
            for peer in self.servers:
                if peer.server_id == server.server_id:
                    continue
                if peer.server_id not in exchange_payloads:
                    continue
                self._send_with_retry(Message(
                    NodeId.server(peer.server_id),
                    NodeId.server(server.server_id),
                    exchange_payloads[peer.server_id],
                    tag="inter_server", round_index=t,
                ), counters)
                self.network.receive(NodeId.server(server.server_id))

        # 5: group dissemination — Byzantine PSs ignore the exchange and
        # send their tampered model; clients have no second opinion.
        train_loss = float(np.mean(
            [client.last_train_loss for client in self.clients]
        ))
        # Benign groups broadcast one model to all members: encode once
        # per group with the PS's dissemination residual. A Byzantine
        # PS's output is client-dependent, so it is encoded per receiver
        # without residual (a per-receiver encode must not advance one).
        group_payloads: Dict[int, object] = {}
        for group, server in enumerate(self.servers):
            if not server.is_byzantine:
                group_payloads[group] = self._encode_delta(
                    self.broadcast_codec, global_models[group],
                    residuals=self._dissemination_residuals,
                    residual_key=group, salt=t,
                )
        for client, group in zip(self.clients, self.group_of_client):
            server = self.servers[group]
            if server.is_byzantine:
                model = server.disseminate(
                    round_index=t, client_id=client.client_id,
                    all_server_aggregates=all_aggregates,
                )
                payload = self._encode_delta(self.broadcast_codec, model,
                                             salt=t)
            else:
                payload = group_payloads[group]
            self._send_with_retry(Message(
                NodeId.server(group), NodeId.client(client.client_id),
                payload, tag="dissemination", round_index=t,
            ), counters)
            received = self.network.receive(NodeId.client(client.client_id))
            if received:
                client.set_model_vector(
                    self._decode_payload(received[-1].payload)
                )
                client.optimizer.reset_state()

        if self._codec_active:
            # Next round's shared reference: the consensus the groups
            # track up to inter-server disagreement.
            self._reference = np.mean(np.stack(global_models), axis=0)

        record = RoundRecord(
            round_index=t,
            train_loss=train_loss,
            upload_messages=(
                self.network.stats.messages_by_tag.get("upload", 0)
                - messages_before
            ),
            upload_bytes=(
                self.network.stats.bytes_by_tag.get("upload", 0) - bytes_before
            ),
            upload_retries=int(counters["retries"]),
            upload_failures=int(counters["failures"]),
            dissemination_messages=config.num_clients,
            simulated_time_s=stage_s,
            deadline_missed=len(late_ids),
            late_admitted=late_admitted,
        )
        if evaluate:
            record.test_loss, record.test_accuracy = self._evaluate()
        self.history.append(record)
        self._round_index += 1
        return record

    def _evaluate(self) -> "tuple[float, float]":
        """Mean (loss, accuracy) over one client per group, then averaged
        with group sizes as weights — the population-average accuracy."""
        group_sizes = np.bincount(self.group_of_client,
                                  minlength=self.config.num_servers)
        losses, accuracies, weights = [], [], []
        seen_groups = set()
        for client, group in zip(self.clients, self.group_of_client):
            if group in seen_groups:
                continue
            seen_groups.add(group)
            loss, acc = client.evaluate(self.test_dataset)
            losses.append(loss)
            accuracies.append(acc)
            weights.append(group_sizes[group])
        weights_arr = np.asarray(weights, dtype=np.float64)
        weights_arr /= weights_arr.sum()
        return (float(np.dot(losses, weights_arr)),
                float(np.dot(accuracies, weights_arr)))

    def run(self, num_rounds: int, *, eval_every: int = 1) -> TrainingHistory:
        """Run ``num_rounds`` rounds, evaluating every ``eval_every``."""
        if num_rounds <= 0:
            raise ConfigurationError(f"num_rounds must be positive, got {num_rounds}")
        if eval_every <= 0:
            raise ConfigurationError(f"eval_every must be positive, got {eval_every}")
        for offset in range(num_rounds):
            is_last = offset == num_rounds - 1
            self.run_round(
                evaluate=is_last or (self._round_index + 1) % eval_every == 0
            )
        return self.history
