"""The end-side client: local SGD plus the trimmed-mean model filter.

Each round a client (Algorithm 1, client side):

1. adopts a feasible global model (``set_model_vector``),
2. runs ``E`` mini-batch SGD steps on its local dataset (``local_train``),
3. uploads its final local model (``model_vector``), and
4. filters the ``P`` received global models through ``Def()`` — the
   beta-trimmed mean — to obtain the next feasible global model
   (``filter_received``).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np

from ..aggregation import AggregationRule
from ..common.errors import ProtocolError
from ..common.rng import stream_seed
from ..data.datasets import ArrayDataset, DataLoader
from ..nn.losses import accuracy, cross_entropy
from ..nn.module import Module
from ..nn.optim import SGD
from ..nn.schedules import ConstantLR, LRSchedule
from ..nn.serialization import from_vector, to_vector

__all__ = ["Client"]


class Client:
    """A federated client with its own model replica and local data.

    Parameters
    ----------
    client_id:
        Index ``k`` of this client.
    model:
        The client's model replica (exclusively owned by this client).
    dataset:
        Local training data ``D_k``.
    batch_size:
        Mini-batch size for local SGD.
    rng:
        Random stream for mini-batch sampling.
    lr_schedule:
        Maps the global step index ``t * E + i`` to a learning rate;
        defaults to a constant.
    weight_decay:
        L2 coefficient applied by local SGD. The convergence experiments use
        it to make the local objectives ``weight_decay``-strongly convex.
    include_buffers:
        Whether model vectors include batch-norm running statistics.
    flatten_inputs:
        When true, image batches are reshaped to ``(N, -1)`` before the
        forward pass (for MLP/softmax models on image datasets).
    batch_seed:
        When set, the mini-batch stream of round ``t`` is re-derived from
        ``(batch_seed, client_id, t)`` at the start of every
        :meth:`local_train` call instead of advancing the constructor's
        ``rng`` across rounds. This makes a round's sampling a pure
        function of the round index, which is what lets serial and
        parallel execution backends draw bit-identical batches no matter
        which process runs the step.
    """

    def __init__(self, client_id: int, model: Module, dataset: ArrayDataset, *,
                 batch_size: int, rng: np.random.Generator,
                 lr_schedule: Optional[LRSchedule] = None,
                 learning_rate: float = 0.05,
                 weight_decay: float = 0.0,
                 include_buffers: bool = True,
                 flatten_inputs: bool = False,
                 batch_seed: Optional[int] = None) -> None:
        self.client_id = client_id
        self.model = model
        self.dataset = dataset
        self.loader = DataLoader(dataset, batch_size, rng=rng)
        self.lr_schedule: LRSchedule = (
            lr_schedule if lr_schedule is not None else ConstantLR(learning_rate)
        )
        self.include_buffers = include_buffers
        self.flatten_inputs = flatten_inputs
        self.batch_seed = batch_seed
        self.optimizer = SGD(model.parameters(), lr=self.lr_schedule(0),
                             weight_decay=weight_decay)
        self.last_train_loss: Optional[float] = None

    # -- model state --------------------------------------------------------

    def model_vector(self) -> np.ndarray:
        """The client's current local model as a flat vector."""
        return to_vector(self.model, include_buffers=self.include_buffers)

    def set_model_vector(self, vector: np.ndarray) -> None:
        """Adopt a (filtered) global model as the starting point."""
        from_vector(self.model, vector, include_buffers=self.include_buffers)

    def _prepare(self, features: np.ndarray) -> np.ndarray:
        if self.flatten_inputs:
            return features.reshape(features.shape[0], -1)
        return features

    # -- Algorithm 1, lines 8-10: local training ----------------------------

    def local_train(self, round_index: int, local_steps: int) -> np.ndarray:
        """Run ``E`` mini-batch SGD steps; returns the updated model vector.

        The learning rate of local iteration ``i`` in round ``t`` is
        ``lr_schedule(t * E + i)`` — the global-step indexing the paper's
        analysis uses.
        """
        if self.batch_seed is not None:
            self.loader.reseed(np.random.default_rng(stream_seed(
                self.batch_seed,
                f"batches/client/{self.client_id}/round/{round_index}",
            )))
        self.model.train()
        losses = []
        for i in range(local_steps):
            features, labels = self.loader.sample_batch()
            self.optimizer.set_lr(self.lr_schedule(round_index * local_steps + i))
            self.optimizer.zero_grad()
            logits = self.model(self._prepare(features))
            loss, grad = cross_entropy(logits, labels)
            self.model.backward(grad)
            self.optimizer.step()
            losses.append(loss)
        self.last_train_loss = float(np.mean(losses))
        return self.model_vector()

    # -- Algorithm 1, line 13: the Def() filter -----------------------------

    def filter_received(self, received: Sequence[np.ndarray],
                        rule: AggregationRule) -> np.ndarray:
        """Apply the model filter to the ``P`` received global models.

        Returns the feasible global model and adopts it as the client's
        current model (the start of next-round local training).
        """
        if not received:
            raise ProtocolError(
                f"client {self.client_id} received no global models"
            )
        stack = np.stack(received)
        feasible = rule(stack)
        self.set_model_vector(feasible)
        self.optimizer.reset_state()
        return feasible

    # -- evaluation ----------------------------------------------------------

    def evaluate(self, dataset: ArrayDataset, *,
                 batch_size: int = 256) -> "tuple[float, float]":
        """``(test_loss, test_accuracy)`` of the current model on ``dataset``."""
        self.model.eval()
        total_loss = 0.0
        total_correct = 0.0
        count = 0
        for start in range(0, len(dataset), batch_size):
            features, labels = dataset[np.arange(start, min(start + batch_size,
                                                            len(dataset)))]
            logits = self.model(self._prepare(features))
            loss, _ = cross_entropy(logits, labels)
            total_loss += loss * len(labels)
            total_correct += accuracy(logits, labels) * len(labels)
            count += len(labels)
        self.model.train()
        return total_loss / count, total_correct / count
