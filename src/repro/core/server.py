"""Edge-side parameter servers: benign and Byzantine.

A benign PS (Algorithm 1, server side) averages the local models uploaded
to it and broadcasts the result. A Byzantine PS performs the same honest
aggregation internally — the adversary controls what it *disseminates*, and
the strongest attacks (Safeguard, Backward) are defined in terms of the true
aggregate history — then tampers the outgoing model through an
:class:`~repro.attacks.base.Attack`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..aggregation import AggregationRule
from ..attacks.base import Attack, AttackContext
from ..common.errors import ProtocolError

__all__ = ["ParameterServer", "ByzantineParameterServer"]


class ParameterServer:
    """A benign edge parameter server.

    Keeps the history of its own aggregates — needed both for the
    empty-upload fallback (a PS that received nothing this round re-sends
    its previous model) and as the state Byzantine subclasses attack.
    """

    def __init__(self, server_id: int, *, max_history: int = 64,
                 initial_model: Optional[np.ndarray] = None,
                 aggregation_rule: Optional[AggregationRule] = None) -> None:
        self.server_id = server_id
        self.max_history = max_history
        # How this PS combines the uploads it receives. The paper's PSs
        # average (Algorithm 1, line 4); a robust rule (e.g. trimmed mean)
        # defends against Byzantine *clients* — the future-work extension.
        self.aggregation_rule = aggregation_rule
        self.initial_model = (
            np.asarray(initial_model, dtype=np.float64)
            if initial_model is not None else None
        )
        self.aggregate_history: List[np.ndarray] = []
        self.rounds_without_uploads = 0
        # Round of the most recent dissemination this PS produced; lets
        # deadline-mode consumers measure how stale a buffered or
        # readmitted broadcast is without re-deriving it from traces.
        self.last_disseminated_round: Optional[int] = None

    @property
    def is_byzantine(self) -> bool:
        return False

    @property
    def current_aggregate(self) -> np.ndarray:
        if not self.aggregate_history:
            raise ProtocolError(
                f"PS {self.server_id} has not aggregated anything yet"
            )
        return self.aggregate_history[-1]

    def aggregate(self, uploads: Sequence[np.ndarray]) -> np.ndarray:
        """Average the received local models (Algorithm 1, line 4).

        With the sparse upload strategy a PS occasionally receives zero
        uploads (the multinomial allocation has positive probability of an
        empty cell); it then keeps its previous aggregate — the behavior of
        a cache that saw no update — falling back to the initial global
        model ``w_0`` (which every PS distributed to the clients) when it
        happens in the very first round.
        """
        if uploads:
            stack = np.stack(uploads)
            if self.aggregation_rule is not None:
                aggregate = self.aggregation_rule(stack)
            else:
                aggregate = stack.mean(axis=0)
        else:
            self.rounds_without_uploads += 1
            if self.aggregate_history:
                aggregate = self.aggregate_history[-1].copy()
            elif self.initial_model is not None:
                aggregate = self.initial_model.copy()
            else:
                raise ProtocolError(
                    f"PS {self.server_id} received no uploads in the first "
                    f"round and has no initial model to fall back to"
                )
        self.aggregate_history.append(aggregate)
        if len(self.aggregate_history) > self.max_history:
            self.aggregate_history.pop(0)
        return aggregate

    def disseminate(self, *, round_index: int, client_id: Optional[int] = None,
                    all_server_aggregates: Optional[np.ndarray] = None
                    ) -> np.ndarray:
        """The model this PS sends to ``client_id`` (benign: the truth)."""
        self.last_disseminated_round = round_index
        return self.current_aggregate.copy()

    def __repr__(self) -> str:
        return f"ParameterServer(id={self.server_id})"


class ByzantineParameterServer(ParameterServer):
    """A PS controlled by the adversary.

    Aggregation is inherited unchanged (the adversary knows the true
    aggregate); dissemination routes through the attack.
    """

    def __init__(self, server_id: int, attack: Attack, *,
                 rng: np.random.Generator, max_history: int = 64,
                 initial_model: Optional[np.ndarray] = None,
                 aggregation_rule: Optional[AggregationRule] = None) -> None:
        super().__init__(server_id, max_history=max_history,
                         initial_model=initial_model,
                         aggregation_rule=aggregation_rule)
        self.attack = attack
        self._rng = rng

    @property
    def is_byzantine(self) -> bool:
        return True

    def disseminate(self, *, round_index: int, client_id: Optional[int] = None,
                    all_server_aggregates: Optional[np.ndarray] = None
                    ) -> np.ndarray:
        self.last_disseminated_round = round_index
        context = AttackContext(
            round_index=round_index,
            server_id=self.server_id,
            true_aggregate=self.current_aggregate,
            previous_aggregates=self.aggregate_history[:-1],
            rng=self._rng,
            all_server_aggregates=all_server_aggregates,
            client_id=client_id,
        )
        return self.attack.tamper(context)

    def __repr__(self) -> str:
        return (f"ByzantineParameterServer(id={self.server_id}, "
                f"attack={self.attack!r})")
