"""The Fed-MS training loop (Algorithm 1) and the vanilla FedAvg baseline.

:class:`FedMSTrainer` wires together every substrate in the library: clients
(:mod:`repro.core.client`) train locally and upload through the simulated
edge network (:mod:`repro.simulation`) to benign and Byzantine parameter
servers (:mod:`repro.core.server`, :mod:`repro.attacks`); each client then
filters the received global models with the beta-trimmed mean
(:mod:`repro.aggregation`) to obtain its next feasible global model.

The round itself is structured as named phases on a
:class:`~repro.simulation.scheduler.RoundScheduler` (train, upload,
aggregate, disseminate, filter), with an optional
:class:`~repro.simulation.faults.FaultInjector` driven as a per-round hook.
Under faults the loop degrades instead of crashing: failed uploads retry
with bounded backoff and re-sample an alive PS, crashed PSs simply miss
rounds, and a client receiving only ``q < P`` models filters them with the
degraded-quorum trim count (falling back to its previous feasible model
when ``q`` is too small to out-vote the Byzantine PSs).

Two orthogonal robustness layers ride on top (see docs/faults.md): with
``config.aggregation_mode="deadline"`` a deterministic
:class:`~repro.simulation.clock.VirtualClock` times every broadcast and
the round aggregates whatever arrived by the deadline (late broadcasts
are buffered and admitted next round within ``config.max_staleness``);
with ``config.health_scoring`` a per-PS reputation ledger
(:mod:`repro.core.health`) circuit-breaks persistently-bad PSs out of
upload sampling and quorum counting, never below the ``2B+1`` floor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set

import numpy as np

from ..aggregation import (
    AggregationRule,
    degraded_trim_count,
    make_rule,
)
from ..attacks.base import Attack
from ..attacks.client_attacks import ClientAttack, ClientAttackContext
from ..common.errors import ConfigurationError, ProtocolError
from ..common.rng import RngFactory
from ..data.datasets import ArrayDataset
from ..execution import FilterJob, FilterSpec, WorkerSpec, make_backend
from ..nn.module import Module
from ..nn.schedules import LRSchedule
from ..nn.serialization import from_vector, to_vector
from ..simulation.clock import VirtualClock, split_by_deadline
from ..simulation.faults import FaultInjector
from ..simulation.network import Message, Network, NodeId
from ..simulation.scheduler import RoundScheduler
from .client import Client
from .codecs import (
    CodecPipeline,
    EncodedUpdate,
    broadcast_variant,
    make_codec_pipeline,
)
from .config import FedMSConfig
from .filtering import FilterOutcome, quorum_floor, resolve_filter
from .health import HealthLedger, HealthPolicy
from .history import RoundRecord, TrainingHistory
from .server import ByzantineParameterServer, ParameterServer
from .upload import UploadStrategy, make_upload_strategy

__all__ = ["FedMSTrainer", "make_fedavg_trainer"]

ModelFactory = Callable[[np.random.Generator], Module]


@dataclass
class _RoundState:
    """Working state threaded through the phases of one round."""

    participants: List[Client] = field(default_factory=list)
    active_clients: List[Client] = field(default_factory=list)
    vectors: Dict[int, np.ndarray] = field(default_factory=dict)
    start_vectors: Dict[int, np.ndarray] = field(default_factory=dict)
    train_loss: float = float("nan")
    all_aggregates: Optional[np.ndarray] = None
    broadcast_cache: Dict[int, np.ndarray] = field(default_factory=dict)
    # With codecs active: the wire payload per broadcasting PS (the cache
    # above then holds its *decoded* round-trip, which is what clients see),
    # the decode memo for in-process payload -> dense lookups, and the
    # shared reference this round's payloads were encoded against (workers
    # decode with it; the live reference advances at the end of the filter
    # phase).
    broadcast_payloads: Dict[int, object] = field(default_factory=dict)
    decoded_payloads: Dict[int, "tuple"] = field(default_factory=dict)
    filter_references: Optional[np.ndarray] = None
    fault_events: List[str] = field(default_factory=list)
    alive_server_ids: List[int] = field(default_factory=list)
    # Alive minus health-excluded: the PSs that take uploads, broadcast
    # and count toward quorum this round. Equal to ``alive_server_ids``
    # when health scoring is off.
    admitted_server_ids: List[int] = field(default_factory=list)
    excluded_server_ids: List[int] = field(default_factory=list)
    late_server_ids: List[int] = field(default_factory=list)
    deadline_missed: int = 0
    late_admitted: int = 0
    simulated_time_s: float = 0.0
    upload_retries: int = 0
    upload_failures: int = 0
    backoff_s: float = 0.0
    models_received: Dict[int, int] = field(default_factory=dict)
    degraded_clients: List[int] = field(default_factory=list)
    fallback_clients: List[int] = field(default_factory=list)
    estimated_byzantine: Optional[int] = None
    filtered_model_ids: Set[int] = field(default_factory=set)


class FedMSTrainer:
    """Simulates Fed-MS end to end.

    Parameters
    ----------
    config:
        Topology and hyper-parameters (``K``, ``P``, ``B``, ``E``, beta, ...).
    model_factory:
        Builds one model replica from a random generator. Called once per
        client plus once for the shared initial model ``w_0``.
    client_datasets:
        One local dataset per client (length must equal ``config.num_clients``);
        typically the output of :func:`repro.data.dirichlet_partition`.
    test_dataset:
        Held-out data for accuracy measurements.
    attack:
        The Byzantine behavior deployed on every Byzantine PS. Required when
        ``config.num_byzantine > 0``.
    byzantine_ids:
        Which PSs are Byzantine. Default: a uniformly random subset of size
        ``B`` (their distribution is unknown to the clients, per the threat
        model).
    filter_rule:
        The client-side ``Def()``. Default: the rule named by
        ``config.filter_rule_name`` (the beta-trimmed mean with
        ``beta = config.resolved_trim_ratio`` when unset). Pass
        ``make_rule("mean")`` for the paper's undefended "Vanilla FL"
        comparison; an explicit closure wins over the config name.
    root_dataset:
        Trusted data for the ``loss_based`` filter's root batch; defaults
        to ``test_dataset``. Ignored by every other rule.
    lr_schedule:
        Optional global-step learning-rate schedule (e.g. the Theorem 1
        policy); defaults to a constant ``config.learning_rate``.
    flatten_inputs:
        Set when the model expects flat feature vectors but the datasets
        hold images.
    network:
        The simulated transport; a fresh loss-free :class:`Network` by
        default. Supply one with failure injection for robustness studies.
    fault_injector:
        Optional deterministic fault schedule (PS crashes, stragglers,
        client dropouts, link partitions). The injector is registered as a
        per-round scheduler hook and as a drop rule on the network; the
        degradation knobs (deadline, retry budget) come from
        ``config.faults``.
    client_attack / num_byzantine_clients / byzantine_client_ids:
        The future-work extension: Byzantine *clients* that tamper with the
        local model they upload. Placement defaults to a uniformly random
        subset, like the Byzantine PSs.
    server_rule:
        How benign PSs combine the uploads they receive. Default: the
        paper's plain average; pass a robust rule (e.g.
        ``make_rule("trimmed_mean", trim_ratio=...)``) to defend against
        Byzantine clients.
    """

    def __init__(self, config: FedMSConfig, *, model_factory: ModelFactory,
                 client_datasets: Sequence[ArrayDataset],
                 test_dataset: ArrayDataset,
                 attack: Optional[Attack] = None,
                 byzantine_ids: Optional[Sequence[int]] = None,
                 filter_rule: Optional[AggregationRule] = None,
                 root_dataset: Optional[ArrayDataset] = None,
                 lr_schedule: Optional[LRSchedule] = None,
                 weight_decay: float = 0.0,
                 flatten_inputs: bool = False,
                 network: Optional[Network] = None,
                 fault_injector: Optional[FaultInjector] = None,
                 client_attack: Optional[ClientAttack] = None,
                 num_byzantine_clients: int = 0,
                 byzantine_client_ids: Optional[Sequence[int]] = None,
                 server_rule: Optional[AggregationRule] = None) -> None:
        if len(client_datasets) != config.num_clients:
            raise ConfigurationError(
                f"{len(client_datasets)} client datasets for "
                f"{config.num_clients} clients"
            )
        if config.num_byzantine > 0 and attack is None:
            raise ConfigurationError(
                "config.num_byzantine > 0 requires an attack"
            )
        if num_byzantine_clients > 0 and client_attack is None:
            raise ConfigurationError(
                "num_byzantine_clients > 0 requires a client_attack"
            )
        if 2 * num_byzantine_clients >= config.num_clients \
                and num_byzantine_clients > 0:
            raise ConfigurationError(
                f"Byzantine clients must be a strict minority: "
                f"2*{num_byzantine_clients} >= {config.num_clients}"
            )
        self.config = config
        self.test_dataset = test_dataset
        self.network = network if network is not None else Network()
        self.rngs = RngFactory(config.seed)
        self.upload_strategy: UploadStrategy = make_upload_strategy(config)
        # Def() in every form the round loop needs: the plain closure, a
        # picklable FilterSpec when the backends can fan it out, the beta
        # for degraded-quorum trim-count recomputation (static trimmed
        # mean only — estimating rules re-estimate on the reduced stack),
        # and the info_fn that yields B-hat + rejected rows for recording.
        resolved = resolve_filter(
            config,
            filter_rule=filter_rule,
            model_factory=model_factory,
            root_dataset=(root_dataset if root_dataset is not None
                          else test_dataset),
            flatten_inputs=flatten_inputs,
            root_rng=self.rngs.make("filter/root_batch"),
        )
        self.filter_rule: AggregationRule = resolved.rule
        self._degraded_trim_ratio: Optional[float] = \
            resolved.degraded_trim_ratio
        self._filter_info_fn = resolved.info_fn
        self._resolved_filter = resolved

        self.fault_config = config.resolved_faults
        self.fault_injector = fault_injector
        if fault_injector is not None:
            fault_injector.plan.validate_topology(
                num_clients=config.num_clients,
                num_servers=config.num_servers,
            )
            if fault_injector.round_deadline_s is None:
                fault_injector.round_deadline_s = \
                    self.fault_config.round_deadline_s
            self.network.add_drop_rule(fault_injector.should_drop)
        self.retry_policy = config.resolved_retry_policy

        # Virtual message timing. Every arrival draw is a pure function of
        # (seed, round, leg, sender), so timing never perturbs the training
        # streams and stays bit-identical across execution backends. In
        # barrier mode the clock only *measures* (simulated round time); in
        # deadline mode it decides which broadcasts make the round.
        self.clock = VirtualClock(
            config.seed,
            straggler_rate=config.straggler_rate,
            straggler_factor=config.straggler_factor,
        )
        self._deadline_s: Optional[float] = None
        if config.deadline_mode:
            self._deadline_s = (
                config.deadline_s if config.deadline_s is not None
                else self.clock.deadline_for_quantile(config.deadline_quantile)
            )
        # Broadcasts that missed a round's deadline, buffered for
        # bounded-staleness admission: server_id -> (origin_round, vector).
        self._late_broadcasts: Dict[int, "tuple[int, np.ndarray]"] = {}

        # Per-PS reputation ledger + circuit breaker (docs/faults.md).
        # Runs entirely in the main process on structured evidence, so it
        # cannot break backend bit-identity.
        self._health: Optional[HealthLedger] = (
            HealthLedger(config.num_servers, HealthPolicy.from_config(config))
            if config.health_scoring else None
        )

        # Shared initial model w_0 (Algorithm 1, line 6).
        init_model = model_factory(self.rngs.make("init/global"))
        initial_vector = to_vector(init_model,
                                   include_buffers=config.include_buffers)
        self._initial_vector = initial_vector

        # Upload codec pipeline. Every wire leg carries the *delta* against
        # one shared reference every honest party knows: the previous
        # round's consensus filter output (w_0 before the first round).
        # Upload deltas are then pure local-training progress and decoded
        # broadcasts agree exactly on every coordinate the codec dropped
        # (they all decode to the reference there), so the coordinate-wise
        # trimmed mean is not skewed by per-PS staleness. Attacks tamper
        # with the pre-encode vector (dissemination encodes the PS's
        # already-tampered output), so colluders gain nothing from the
        # codec. See docs/upload.md.
        self.codec: CodecPipeline = make_codec_pipeline(
            config.resolved_upload_codecs
        )
        # The dissemination leg uses the trim-compatible variant: the
        # coordinate-wise Def() filters need every honest PS to transmit
        # the *same* support each round (a per-PS top-k makes each fresh
        # coordinate a minority outlier the trim removes), so magnitude
        # supports become the shared round-cycling support.
        self.broadcast_codec: CodecPipeline = broadcast_variant(self.codec)
        self._codec_active = not self.codec.is_identity
        self._reference: Optional[np.ndarray] = (
            np.array(initial_vector) if self._codec_active else None
        )
        # Error feedback (EF-SGD, Stich et al. 2018; Karimireddy et al.
        # 2019) on both legs: each client folds the part of its last upload
        # the codec truncated into its next upload delta, and each PS does
        # the same for its broadcast (the double-compression scheme of Tang
        # et al. 2019), so lossy compression delays information instead of
        # destroying it. Anything the *filter* declines only leaves the
        # reference unchanged — the senders' next deltas still contain it,
        # an automatic retransmission.
        self._upload_residuals: Dict[int, np.ndarray] = {}
        self._broadcast_residuals: Dict[int, np.ndarray] = {}

        self.clients: List[Client] = []
        for k in range(config.num_clients):
            client = Client(
                k,
                model_factory(self.rngs.make(f"init/client/{k}")),
                client_datasets[k],
                batch_size=config.batch_size,
                rng=self.rngs.make(f"batches/client/{k}"),
                lr_schedule=lr_schedule,
                learning_rate=config.learning_rate,
                weight_decay=weight_decay,
                include_buffers=config.include_buffers,
                flatten_inputs=flatten_inputs,
                batch_seed=config.seed,
            )
            client.set_model_vector(initial_vector)
            self.clients.append(client)

        # The execution backend runs the embarrassingly-parallel stages
        # (local training, client-side filtering); all backends are
        # bit-identical for the same seed, so this is purely a wall-clock
        # choice. See docs/execution.md.
        self.execution = make_backend(
            config.resolved_execution_backend,
            clients=self.clients,
            spec=WorkerSpec(
                seed=config.seed,
                local_steps=config.local_steps,
                batch_size=config.batch_size,
                learning_rate=config.learning_rate,
                weight_decay=weight_decay,
                include_buffers=config.include_buffers,
                flatten_inputs=flatten_inputs,
                model_dim=int(initial_vector.size),
                num_clients=config.num_clients,
                # Makes the process backend allocate the shared
                # codec-reference vector workers decode against.
                codec_references=self._codec_active,
                model_factory=model_factory,
                datasets=list(client_datasets),
                lr_schedule=lr_schedule,
            ),
            num_workers=config.resolved_num_workers,
        )
        # Picklable description of the Def() filter, when it has one:
        # fan-out-able to workers. Estimating rules and custom closures
        # are applied in-process.
        self._filter_spec: Optional[FilterSpec] = resolved.spec

        self.byzantine_ids = self._resolve_byzantine_ids(byzantine_ids)
        self.client_attack = client_attack
        self.byzantine_client_ids = self._resolve_byzantine_client_ids(
            num_byzantine_clients, byzantine_client_ids
        )
        self._client_attack_rngs = {
            k: self.rngs.make(f"client_attack/{k}")
            for k in self.byzantine_client_ids
        }
        self.servers: List[ParameterServer] = []
        for i in range(config.num_servers):
            if i in self.byzantine_ids:
                assert attack is not None
                self.servers.append(ByzantineParameterServer(
                    i, attack, rng=self.rngs.make(f"attack/server/{i}"),
                    initial_model=initial_vector,
                    aggregation_rule=server_rule,
                ))
            else:
                self.servers.append(ParameterServer(
                    i, initial_model=initial_vector,
                    aggregation_rule=server_rule,
                ))

        self._assignment_rng = self.rngs.make("upload/assignment")
        self._participation_rng = self.rngs.make("participation")
        self._retry_rng = self.rngs.make("upload/retry")
        self.history = TrainingHistory()

        # Algorithm 1's three synchronized stages, as scheduler phases
        # (per-phase wall-clock lands in ``scheduler.phase_seconds``).
        self.scheduler = RoundScheduler()
        if fault_injector is not None:
            self.scheduler.add_round_hook(self._begin_round_faults)
        self.scheduler.add_phase("train", self._phase_train)
        self.scheduler.add_phase("upload", self._phase_upload)
        self.scheduler.add_phase("aggregate", self._phase_aggregate)
        self.scheduler.add_phase("disseminate", self._phase_disseminate)
        self.scheduler.add_phase("filter", self._phase_filter)
        self._round: Optional[_RoundState] = None

    def _resolve_byzantine_ids(self,
                               byzantine_ids: Optional[Sequence[int]]) -> frozenset:
        config = self.config
        if byzantine_ids is None:
            chosen = self.rngs.make("byzantine/placement").choice(
                config.num_servers, size=config.num_byzantine, replace=False
            )
            return frozenset(int(i) for i in chosen)
        ids = frozenset(int(i) for i in byzantine_ids)
        if len(ids) != config.num_byzantine:
            raise ConfigurationError(
                f"byzantine_ids has {len(ids)} distinct ids, expected "
                f"{config.num_byzantine}"
            )
        if ids and (min(ids) < 0 or max(ids) >= config.num_servers):
            raise ConfigurationError(
                f"byzantine_ids out of range [0, {config.num_servers})"
            )
        return ids

    def _resolve_byzantine_client_ids(self, count: int,
                                      ids: Optional[Sequence[int]]
                                      ) -> frozenset:
        config = self.config
        if ids is None:
            if count == 0:
                return frozenset()
            chosen = self.rngs.make("byzantine/client_placement").choice(
                config.num_clients, size=count, replace=False
            )
            return frozenset(int(i) for i in chosen)
        resolved = frozenset(int(i) for i in ids)
        if len(resolved) != count:
            raise ConfigurationError(
                f"byzantine_client_ids has {len(resolved)} distinct ids, "
                f"expected {count}"
            )
        if resolved and (min(resolved) < 0
                         or max(resolved) >= config.num_clients):
            raise ConfigurationError(
                f"byzantine_client_ids out of range [0, {config.num_clients})"
            )
        return resolved

    # -- one global round ----------------------------------------------------

    def run_round(self, *, evaluate: bool = True) -> RoundRecord:
        """Execute local training, aggregation, dissemination and filtering."""
        stats = self.network.stats
        bytes_before = stats.bytes_by_tag.get("upload", 0)
        messages_before = stats.messages_by_tag.get("upload", 0)
        dissemination_before = stats.messages_by_tag.get("dissemination", 0)

        state = self._round = _RoundState()
        t = self.scheduler.run_round()
        # Round deadline: whatever is still queued (e.g. models addressed
        # to offline clients) expires here and is counted as cleared.
        cleared = self.network.clear()

        health_scores: Dict[int, float] = {}
        breaker_states: Dict[int, str] = {}
        if self._health is not None:
            # Fold this round's structured evidence into the ledger; the
            # resulting exclusions take effect at the *next* round's start.
            crashed = (set(range(self.config.num_servers))
                       - set(state.alive_server_ids))
            state.fault_events.extend(self._health.observe_round(
                t,
                crashed=crashed,
                straggling=state.late_server_ids,
                filtered=state.filtered_model_ids,
            ))
            snapshot = self._health.snapshot()
            health_scores = snapshot["scores"]
            breaker_states = snapshot["states"]

        record = RoundRecord(
            round_index=t,
            train_loss=state.train_loss,
            upload_messages=(
                stats.messages_by_tag.get("upload", 0) - messages_before
            ),
            upload_bytes=(
                stats.bytes_by_tag.get("upload", 0) - bytes_before
            ),
            dissemination_messages=(
                stats.messages_by_tag.get("dissemination", 0)
                - dissemination_before
            ),
            upload_retries=state.upload_retries,
            upload_failures=state.upload_failures,
            cleared_messages=cleared,
            alive_servers=len(state.alive_server_ids),
            models_received=dict(state.models_received),
            degraded_clients=sorted(state.degraded_clients),
            fallback_clients=sorted(state.fallback_clients),
            fault_events=list(state.fault_events),
            estimated_byzantine=state.estimated_byzantine,
            filtered_model_ids=sorted(state.filtered_model_ids),
            simulated_time_s=state.simulated_time_s,
            deadline_missed=state.deadline_missed,
            late_admitted=state.late_admitted,
            health_scores=health_scores,
            breaker_states=breaker_states,
            excluded_servers=list(state.excluded_server_ids),
        )
        if evaluate:
            record.test_loss, record.test_accuracy = self._evaluate()
        self.history.append(record)
        self._round = None
        return record

    # -- round hook + phases -------------------------------------------------

    def _begin_round_faults(self, t: int) -> None:
        assert self.fault_injector is not None and self._round is not None
        self._round.fault_events = self.fault_injector.begin_round(t)

    def _alive_server_ids(self) -> List[int]:
        if self.fault_injector is None:
            return list(range(self.config.num_servers))
        return self.fault_injector.alive_servers(self.config.num_servers)

    def _phase_train(self, t: int) -> None:
        """Stage 1 (client side): local training on this round's cohort.

        With partial participation only a sampled subset trains and
        uploads; dropped-out clients sit the round out entirely.
        """
        config = self.config
        state = self._round
        assert state is not None
        state.alive_server_ids = self._alive_server_ids()
        state.admitted_server_ids = list(state.alive_server_ids)
        if self._health is not None:
            # Exclusion is decided at round start from the evidence of
            # *previous* rounds, and the ledger readmits the best-scored
            # open breakers whenever exclusion would push the counted
            # quorum below the 2B+1 floor.
            excluded = self._health.excluded_servers(
                state.alive_server_ids,
                quorum_floor=quorum_floor(config.num_byzantine),
            )
            state.excluded_server_ids = sorted(excluded)
            state.admitted_server_ids = [
                s for s in state.alive_server_ids if s not in excluded
            ]
        if config.participation_fraction < 1.0:
            chosen = self._participation_rng.choice(
                config.num_clients, size=config.participants_per_round,
                replace=False,
            )
            participants = [self.clients[int(i)] for i in np.sort(chosen)]
        else:
            participants = list(self.clients)
        if self.fault_injector is not None:
            participants = [
                client for client in participants
                if self.fault_injector.client_active(client.client_id)
            ]
        state.participants = participants
        jobs = []
        for client in participants:
            # The pre-training vector is the client's previous feasible
            # model — the fallback target when this round's quorum turns
            # out to be too small to filter safely.
            start_vector = client.model_vector()
            state.start_vectors[client.client_id] = start_vector
            jobs.append((client.client_id, start_vector))
        results = self.execution.train_clients(t, jobs)
        for client in participants:
            vector, loss = results[client.client_id]
            # Sync the main-process replica with the trained state (pool
            # backends trained a worker-side replica; for the serial
            # backend this re-loads the values the model already holds).
            client.set_model_vector(vector)
            client.last_train_loss = loss
            if client.client_id in self.byzantine_client_ids:
                assert self.client_attack is not None
                vector = self.client_attack.tamper(ClientAttackContext(
                    round_index=t,
                    client_id=client.client_id,
                    honest_update=vector,
                    global_model=state.start_vectors[client.client_id],
                    rng=self._client_attack_rngs[client.client_id],
                ))
            state.vectors[client.client_id] = vector
        if participants:
            state.train_loss = float(np.mean(
                [client.last_train_loss for client in participants]
            ))

    # -- codec plumbing ------------------------------------------------------

    def _encode_for_wire(self, vector: np.ndarray, round_index: int,
                         state: _RoundState, *,
                         residual_key: Optional[int] = None) -> object:
        """Dissemination wire payload for ``vector``: the encoded delta
        against the shared reference (the dense vector itself with no
        codec). Uses the trim-compatible broadcast pipeline, salted with
        the round index so every PS transmits the same cyclic support.

        ``residual_key``, when given, applies and advances the sender PS's
        broadcast error-feedback residual — only the one-per-round
        broadcast path may use it (a per-client encode would advance the
        residual once per receiver). Because encode/decode are
        deterministic, the receiver-side decode is computed once right
        here and memoized on the round state, so in-process receive paths
        never decode twice.
        """
        if not self._codec_active:
            return vector
        assert self._reference is not None
        delta = vector - self._reference
        if residual_key is not None:
            residual = self._broadcast_residuals.get(residual_key)
            if residual is not None:
                delta = delta + residual
        encoded = self.broadcast_codec.encode(delta, salt=round_index)
        decoded_delta = encoded.decode()
        if residual_key is not None:
            self._broadcast_residuals[residual_key] = delta - decoded_delta
        state.decoded_payloads[id(encoded)] = (
            encoded, self._reference + decoded_delta
        )
        return encoded

    def _encode_upload(self, vector: np.ndarray, client_id: int,
                       state: _RoundState
                       ) -> "tuple[object, Optional[np.ndarray]]":
        """Encode one client upload; returns ``(payload, residual)``.

        The delta against the shared reference is topped up with the
        client's accumulated error-feedback residual before encoding. The
        residual produced here (what this encoding truncated) must only be
        adopted by the caller once the payload actually delivers — a
        dropped upload communicates nothing, so the old residual stays.
        """
        if not self._codec_active:
            return vector, None
        assert self._reference is not None
        delta = vector - self._reference
        residual = self._upload_residuals.get(client_id)
        if residual is not None:
            delta = delta + residual
        encoded = self.codec.encode(delta)
        decoded_delta = encoded.decode()
        state.decoded_payloads[id(encoded)] = (
            encoded, self._reference + decoded_delta
        )
        return encoded, delta - decoded_delta

    def _payload_vector(self, payload: object,
                        state: _RoundState) -> np.ndarray:
        """Dense vector a receiver obtains from a wire payload."""
        if isinstance(payload, EncodedUpdate):
            entry = state.decoded_payloads.get(id(payload))
            if entry is None or entry[0] is not payload:
                raise ProtocolError(
                    "encoded payload has no recorded decode; it was not "
                    "produced by this round's _encode_for_wire"
                )
            return entry[1]
        return payload  # type: ignore[return-value]

    def _phase_upload(self, t: int) -> None:
        """Stage 2 (client side): sparse upload with bounded retry.

        Health-excluded PSs are removed from the sampling pool: the
        strategy assigns indices into the candidate list, which is the
        full ``range(P)`` when nothing is excluded — so with health
        scoring off (or no open breakers) the draws are bit-identical to
        the unpooled assignment.
        """
        state = self._round
        assert state is not None
        excluded = set(state.excluded_server_ids)
        candidates = [s for s in range(self.config.num_servers)
                      if s not in excluded]
        assignment = self.upload_strategy.assign(
            len(state.participants), len(candidates),
            rng=self._assignment_rng,
        )
        for client, targets in zip(state.participants, assignment):
            vector = state.vectors[client.client_id]
            for index in targets:
                self._upload_with_retry(
                    client.client_id, vector, candidates[index], t, state
                )

    def _upload_with_retry(self, client_id: int, vector: np.ndarray,
                           target: int, t: int, state: _RoundState) -> bool:
        """Send one upload, retrying per the policy on failure.

        The successful send is the only one counted as an upload message
        (the ``O(K)`` accounting); failed attempts are attributed as drops
        and the retry attempts as ``retries_by_tag["upload"]``. The payload
        is encoded once — the reference is shared by every PS, so a retry
        re-sampled onto a different PS resends the same bytes — and dropped
        attempts are charged at encoded size too. The error-feedback
        residual advances only when an attempt delivers.
        """
        payload, residual = self._encode_upload(vector, client_id, state)
        if self.network.send(Message(
            NodeId.client(client_id), NodeId.server(target), payload,
            tag="upload", round_index=t,
        )):
            if residual is not None:
                self._upload_residuals[client_id] = residual
            return True
        policy = self.retry_policy
        current = target
        for attempt in range(1, policy.max_retries + 1):
            self.network.stats.record_retry("upload")
            state.upload_retries += 1
            state.backoff_s += policy.backoff_s(attempt)
            next_target = policy.next_target(
                attempt, current, state.admitted_server_ids,
                rng=self._retry_rng
            )
            if next_target is None:
                break
            current = next_target
            if self.network.send(Message(
                NodeId.client(client_id), NodeId.server(current), payload,
                tag="upload", round_index=t,
            )):
                if residual is not None:
                    self._upload_residuals[client_id] = residual
                return True
        state.upload_failures += 1
        return False

    def _phase_aggregate(self, t: int) -> None:
        """Stage 2 (server side): honest aggregation on every alive PS.

        Encoded uploads are decoded *before* aggregation — and therefore
        before any downstream ``Def()`` filtering — so robust rules always
        operate on dense updates.

        A crashed PS misses the round entirely — it neither drains its
        queue (uploads to it were already lost in transit) nor appends to
        its aggregate history, so on recovery it resumes from its last
        pre-crash aggregate like a rebooted cache.
        """
        state = self._round
        assert state is not None
        admitted = set(state.admitted_server_ids)
        for server in self.servers:
            # A health-excluded PS sits the round out like a crashed one:
            # it takes no uploads (clients did not sample it) and its
            # aggregate history freezes until readmission.
            if server.server_id not in admitted:
                continue
            uploads = [self._payload_vector(m.payload, state) for m in
                       self.network.receive(NodeId.server(server.server_id))]
            server.aggregate(uploads)
        # The adversary's view (Safeguard/Backward attacks) keeps the full
        # P-row shape; a crashed PS that never aggregated contributes w_0.
        state.all_aggregates = np.stack([
            server.aggregate_history[-1] if server.aggregate_history
            else self._initial_vector
            for server in self.servers
        ])

    def _phase_disseminate(self, t: int) -> None:
        """Stage 3 (server side): every admitted PS sends to every client.

        The virtual clock assigns each admitted PS's broadcast an arrival
        time. Barrier mode waits for the slowest (that max is the round's
        simulated duration); deadline mode closes the round at the
        deadline — broadcasts arriving later are withheld this round,
        buffered, and admitted next round while within the staleness
        bound, *only* when the sender produced no fresh on-time broadcast
        (a strategically-straggling PS never gets two votes in one round).
        """
        state = self._round
        assert state is not None
        admitted = set(state.admitted_server_ids)
        if self.fault_injector is None:
            state.active_clients = list(self.clients)
        else:
            state.active_clients = [
                client for client in self.clients
                if self.fault_injector.client_active(client.client_id)
            ]
        arrivals = self.clock.arrivals(t, "broadcast",
                                       sorted(admitted))
        deadline = self._deadline_s
        if deadline is not None:
            _, late_ids = split_by_deadline(arrivals, deadline)
        else:
            late_ids = []
        state.late_server_ids = list(late_ids)
        state.deadline_missed = len(late_ids)
        stage_s = self.clock.stage_seconds(arrivals, deadline_s=deadline)
        state.simulated_time_s = stage_s + state.backoff_s
        self.scheduler.record_simulated("disseminate", stage_s)
        late = set(late_ids)
        self._admit_stale_broadcasts(t, state, admitted, late)
        for client in self.clients:
            for server in self.servers:
                if server.server_id not in admitted \
                        or server.server_id in late:
                    continue
                payload = self._disseminated_payload(
                    server, client.client_id, t, state
                )
                self.network.send(Message(
                    NodeId.server(server.server_id),
                    NodeId.client(client.client_id),
                    payload,
                    tag="dissemination",
                    round_index=t,
                ))
        for server_id in late_ids:
            # The broadcast happened — it just missed the deadline. Buffer
            # the model as of *this* round for next-round stale admission.
            # Client-dependent attacks are flattened to their broadcast
            # form here (one vector per PS); a late tamperer loses its
            # per-client targeting, never gains from straggling.
            vector = self.servers[server_id].disseminate(
                round_index=t, client_id=None,
                all_server_aggregates=state.all_aggregates,
            )
            self._late_broadcasts[server_id] = (t, vector)
        if self._codec_active:
            assert self._reference is not None
            # Workers decoding this round's filter jobs do so against the
            # reference the payloads were encoded with; the live reference
            # advances at the end of the filter phase, after these jobs ran.
            state.filter_references = self._reference

    def _admit_stale_broadcasts(self, t: int, state: _RoundState,
                                admitted: Set[int], late: Set[int]) -> None:
        """Deliver buffered late broadcasts still within the staleness bound.

        A buffered broadcast from round ``t0`` is admitted in round ``t``
        when ``t - t0 <= max_staleness``, its sender is admitted, and the
        sender has no fresh on-time broadcast this round (fresh supersedes
        stale — the buffer is simply dropped). Senders currently crashed
        or excluded keep their buffer until it expires.
        """
        if not self._late_broadcasts:
            return
        max_staleness = self.config.max_staleness
        for server_id in sorted(self._late_broadcasts):
            origin, vector = self._late_broadcasts[server_id]
            if t - origin > max_staleness:
                del self._late_broadcasts[server_id]
                continue
            if server_id not in admitted:
                continue
            if server_id not in late:
                del self._late_broadcasts[server_id]
                continue
            payload = self._encode_for_wire(vector, t, state)
            for client in self.clients:
                self.network.send(Message(
                    NodeId.server(server_id),
                    NodeId.client(client.client_id),
                    payload,
                    tag="dissemination",
                    round_index=t,
                ))
            state.late_admitted += 1
            del self._late_broadcasts[server_id]

    def _phase_filter(self, t: int) -> None:
        """Stage 3 (client side): the Def() filter, quorum-aware.

        Per-client filtering is embarrassingly parallel, so every client
        whose rule has a picklable :class:`FilterSpec` is fanned out
        through the execution backend; custom filter closures run
        in-process.
        """
        state = self._round
        assert state is not None
        config = self.config
        shared_filtered = self._shared_filtered_model(state)
        expected = config.num_servers
        backend_jobs: List[FilterJob] = []
        for client in state.active_clients:
            messages = self.network.receive(NodeId.client(client.client_id))
            received = [self._payload_vector(message.payload, state)
                        for message in messages]
            quorum = len(received)
            state.models_received[client.client_id] = quorum
            if shared_filtered is not None:
                # Every client received the identical stack; adopt the
                # precomputed filter output instead of recomputing it K
                # times.
                client.set_model_vector(shared_filtered)
                client.optimizer.reset_state()
            elif quorum == 0:
                # A client can miss every global model this round; it
                # rolls back to its previous feasible model rather than
                # keep unfiltered local drift.
                self._fall_back(client, state)
            elif self._filter_info_fn is not None:
                # Estimating rules (adaptive-beta, loss-based) need no
                # expected-P trim count, so a reduced quorum is filtered
                # natively — B-hat is re-estimated on whatever arrived.
                if quorum < expected:
                    state.degraded_clients.append(client.client_id)
                outcome = self._filter_info_fn(np.stack(received))
                self._record_filter_outcome(
                    state, outcome,
                    sender_ids=[m.sender.index for m in messages],
                )
                client.set_model_vector(outcome.vector)
                client.optimizer.reset_state()
            elif quorum < expected and self._degraded_trim_ratio is not None:
                count = degraded_trim_count(
                    quorum, expected, self._degraded_trim_ratio
                )
                if count is None:
                    # Too few models to out-vote the Byzantine PSs
                    # (q <= 2B): keep the previous feasible model rather
                    # than adopt an adversary-controllable aggregate.
                    self._fall_back(client, state)
                else:
                    state.degraded_clients.append(client.client_id)
                    backend_jobs.append((
                        client.client_id,
                        self._filter_job_payload(messages, state),
                        FilterSpec("trim_count", count),
                    ))
            elif self._filter_spec is not None:
                backend_jobs.append((
                    client.client_id,
                    self._filter_job_payload(messages, state),
                    self._filter_spec,
                ))
            else:
                client.filter_received(received, self.filter_rule)
        if backend_jobs:
            results = self.execution.filter_clients(
                backend_jobs, references=state.filter_references
            )
            for client_id, vector in results.items():
                client = self.clients[client_id]
                client.set_model_vector(vector)
                client.optimizer.reset_state()
        if self._codec_active:
            # Advance the shared reference to the consensus the filter just
            # produced. Client 0's post-filter model is that consensus on
            # the healthy path (all clients coincide); on degraded rounds
            # any single choice works — the next deltas carry each party's
            # offset from it, so nothing is lost, only re-sent.
            self._reference = np.array(self.clients[0].model_vector())

    def _filter_job_payload(self, messages: Sequence[Message],
                            state: _RoundState) -> object:
        """Backend filter-job payload for one client's received models.

        With a codec active the *encoded* updates travel to the workers,
        which decode them against the shared reference — smaller
        executor-queue transfers is the point. Otherwise the dense stack
        is shipped, as before.
        """
        if self._codec_active:
            return [
                message.payload if isinstance(message.payload, EncodedUpdate)
                else np.asarray(message.payload)
                for message in messages
            ]
        return np.stack([message.payload for message in messages])

    def _fall_back(self, client: Client, state: _RoundState) -> None:
        """Restore ``client``'s previous feasible model.

        Undoes this round's local training (if the client trained): without
        a safely filterable quorum the client must not let unfiltered local
        drift replace the last model it knows satisfied the filter.
        """
        state.fallback_clients.append(client.client_id)
        start_vector = state.start_vectors.get(client.client_id)
        if start_vector is not None:
            client.set_model_vector(start_vector)
            client.optimizer.reset_state()

    def _disseminated_payload(self, server: ParameterServer, client_id: int,
                              round_index: int, state: _RoundState) -> object:
        """Wire payload ``server`` sends to ``client_id``.

        Attacks that are not client-dependent produce one tampered vector
        per round, so it is computed (and encoded) once and broadcast;
        ``state.broadcast_cache`` then holds the model *as receivers decode
        it* — the encode/decode round-trip when a codec is active — which
        is exactly what the shared-filter fast path must operate on.
        """
        client_dependent = (
            isinstance(server, ByzantineParameterServer)
            and server.attack.is_client_dependent
        )
        if client_dependent:
            model = server.disseminate(
                round_index=round_index, client_id=client_id,
                all_server_aggregates=state.all_aggregates,
            )
            # No broadcast residual: a per-receiver encode must not
            # advance per-round sender state once per client.
            return self._encode_for_wire(model, round_index, state)
        server_id = server.server_id
        if server_id not in state.broadcast_cache:
            model = server.disseminate(
                round_index=round_index, client_id=None,
                all_server_aggregates=state.all_aggregates,
            )
            payload = self._encode_for_wire(model, round_index, state,
                                            residual_key=server_id)
            state.broadcast_payloads[server_id] = payload
            state.broadcast_cache[server_id] = \
                self._payload_vector(payload, state)
        return state.broadcast_payloads[server_id]

    def _record_filter_outcome(self, state: _RoundState,
                               outcome: FilterOutcome,
                               sender_ids: Sequence[int]) -> None:
        """Fold one client's estimating-filter verdict into the round.

        ``estimated_byzantine`` keeps the worst (largest) per-client
        estimate; ``filtered_model_ids`` accumulates every PS whose model
        any client rejected.
        """
        if outcome.estimated_byzantine is not None:
            previous = state.estimated_byzantine
            state.estimated_byzantine = (
                outcome.estimated_byzantine if previous is None
                else max(previous, outcome.estimated_byzantine)
            )
        for row in outcome.rejected_rows:
            state.filtered_model_ids.add(int(sender_ids[row]))

    def _shared_filtered_model(self, state: _RoundState
                               ) -> Optional[np.ndarray]:
        """Filter output shared by all clients, when provably identical.

        When every PS broadcast one model this round (no client-dependent
        attack) and the network cannot drop messages, all clients receive
        the same ``P`` models and the filter is a pure function of that
        stack — so it is computed once. Returns ``None`` whenever per-client
        results could differ (inconsistent attacks, lossy networks, or any
        fault injection).
        """
        broadcast_cache = state.broadcast_cache
        if not self.network.is_lossless \
                or len(broadcast_cache) != len(self.servers):
            return None
        stack = np.stack([
            broadcast_cache[server.server_id] for server in self.servers
        ])
        if self._filter_info_fn is not None:
            # Stack rows follow server-id order, so rejected row i is PS i.
            outcome = self._filter_info_fn(stack)
            self._record_filter_outcome(
                state, outcome,
                sender_ids=[server.server_id for server in self.servers],
            )
            return outcome.vector
        return self.filter_rule(stack)

    def _evaluate(self) -> "tuple[float, float]":
        """Mean (loss, accuracy) over the first ``eval_clients`` clients.

        Hot path: after a lossless round without client-dependent attacks
        every client holds the *same* filtered model, so evaluating each
        one repeats identical forward passes. When the sampled clients'
        vectors are bit-equal the test set is scored once.
        """
        eval_clients = self.clients[:self.config.eval_clients]
        if len(eval_clients) > 1:
            reference = eval_clients[0].model_vector()
            if all(np.array_equal(reference, client.model_vector())
                   for client in eval_clients[1:]):
                loss, acc = eval_clients[0].evaluate(self.test_dataset)
                return float(loss), float(acc)
        losses, accuracies = [], []
        for client in eval_clients:
            loss, acc = client.evaluate(self.test_dataset)
            losses.append(loss)
            accuracies.append(acc)
        return float(np.mean(losses)), float(np.mean(accuracies))

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Release execution-backend resources (worker pools, shared memory).

        Idempotent; a trainer on the serial backend has nothing to release.
        Use the trainer as a context manager to get this automatically.
        """
        self.execution.close()

    def __enter__(self) -> "FedMSTrainer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- persistence -----------------------------------------------------------

    def save_checkpoint(self, path: str) -> None:
        """Persist the run so :meth:`load_checkpoint` can resume it.

        Stores the current shared global model (client 0's — after a round
        all clients coincide up to client-dependent attacks), every PS's
        latest aggregate (the state Backward/Safeguard attacks depend on),
        and the round index. RNG streams are derived from (seed, names), so
        a resumed run is reproducible though not bit-identical to an
        uninterrupted one (the streams do not record their position).
        """
        import os

        payload: Dict[str, np.ndarray] = {
            "round_index": np.asarray(self.scheduler.round_index),
            "global_model": self.clients[0].model_vector(),
        }
        for server in self.servers:
            if server.aggregate_history:
                payload[f"server/{server.server_id}/aggregate"] = \
                    server.current_aggregate
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        np.savez(path, **payload)

    def load_checkpoint(self, path: str) -> int:
        """Restore a run saved by :meth:`save_checkpoint`.

        Returns the restored round index. The next :meth:`run_round`
        continues from there.
        """
        import os

        if not os.path.exists(path) and os.path.exists(path + ".npz"):
            path = path + ".npz"
        with np.load(path, allow_pickle=False) as archive:
            round_index = int(archive["round_index"])
            global_model = archive["global_model"]
            for server in self.servers:
                key = f"server/{server.server_id}/aggregate"
                if key in archive.files:
                    server.aggregate_history = [archive[key]]
        for client in self.clients:
            client.set_model_vector(global_model)
            client.optimizer.reset_state()
        self.scheduler.set_round_index(round_index)
        return round_index

    # -- multi-round driver ----------------------------------------------------

    def run(self, num_rounds: int, *, eval_every: int = 1,
            progress: Optional[Callable[[RoundRecord], None]] = None
            ) -> TrainingHistory:
        """Run ``num_rounds`` rounds; evaluate every ``eval_every`` rounds.

        The final round is always evaluated. ``progress``, when given, is
        called with each completed :class:`RoundRecord`.
        """
        if num_rounds <= 0:
            raise ConfigurationError(f"num_rounds must be positive, got {num_rounds}")
        if eval_every <= 0:
            raise ConfigurationError(f"eval_every must be positive, got {eval_every}")
        for offset in range(num_rounds):
            is_last = offset == num_rounds - 1
            should_evaluate = (
                is_last or (self.scheduler.round_index + 1) % eval_every == 0
            )
            record = self.run_round(evaluate=should_evaluate)
            if progress is not None:
                progress(record)
        return self.history


def make_fedavg_trainer(*, model_factory: ModelFactory,
                        client_datasets: Sequence[ArrayDataset],
                        test_dataset: ArrayDataset,
                        local_steps: int = 3, batch_size: int = 32,
                        learning_rate: float = 0.05, seed: int = 0,
                        lr_schedule: Optional[LRSchedule] = None,
                        flatten_inputs: bool = False) -> FedMSTrainer:
    """Classical single-PS FedAvg as a special case of the Fed-MS machinery.

    One benign server, no trimming: every client uploads to the unique PS
    and adopts its average directly — McMahan et al. (2017). Used as the
    non-Byzantine reference in convergence experiments.
    """
    config = FedMSConfig(
        num_clients=len(client_datasets),
        num_servers=1,
        num_byzantine=0,
        local_steps=local_steps,
        batch_size=batch_size,
        learning_rate=learning_rate,
        trim_ratio=0.0,
        seed=seed,
    )
    return FedMSTrainer(
        config,
        model_factory=model_factory,
        client_datasets=client_datasets,
        test_dataset=test_dataset,
        filter_rule=make_rule("mean"),
        lr_schedule=lr_schedule,
        flatten_inputs=flatten_inputs,
    )
