"""Per-PS health scoring and circuit breaking.

Per-round Byzantine evidence is noisy: an honest PS can straggle past a
deadline once, and an estimating filter can reject an honest model in a
single round. The ledger therefore folds evidence *across* rounds into an
exponentially-decayed reputation score per parameter server, and a circuit
breaker turns the score into an admission decision:

* ``closed`` — healthy; the PS takes uploads and counts toward quorum.
* ``open`` — the score fell below ``open_threshold``; the PS is excluded
  from upload sampling and quorum counting. Every further bad round
  restarts probation.
* ``half_open`` — the PS stayed clean for ``probation_rounds`` while open;
  it is readmitted on trial. One clean round closes the breaker (and
  floors the score at the threshold so one more clean round keeps it
  closed); one bad round reopens it.

Exclusion never overrides the degraded-quorum floor from
:func:`repro.core.filtering.quorum_floor`: if opening breakers would leave
fewer than ``2B+1`` countable servers, the best-scored open servers are
readmitted for that round.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Sequence

from ..common.errors import ConfigurationError
from ..common.validation import check_fraction, check_positive_int

__all__ = ["BreakerState", "HealthPolicy", "HealthLedger"]


class BreakerState:
    """String constants for the circuit-breaker state machine."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


@dataclass(frozen=True)
class HealthPolicy:
    """Knobs of the reputation score and breaker state machine."""

    decay: float = 0.7
    open_threshold: float = 0.4
    probation_rounds: int = 2

    def __post_init__(self) -> None:
        check_fraction(self.decay, "decay")
        check_fraction(self.open_threshold, "open_threshold")
        if self.decay >= 1.0:
            raise ConfigurationError(
                f"decay must be < 1, got {self.decay}")
        check_positive_int(self.probation_rounds, "probation_rounds")

    @classmethod
    def from_config(cls, config) -> "HealthPolicy":
        """Build from any object carrying the ``health_*`` knobs."""
        return cls(
            decay=getattr(config, "health_decay", cls.decay),
            open_threshold=getattr(
                config, "health_open_threshold", cls.open_threshold),
            probation_rounds=getattr(
                config, "health_probation_rounds", cls.probation_rounds),
        )


class HealthLedger:
    """Tracks one reputation score and breaker state per parameter server.

    Evidence is structured (sets of server ids), never parsed from event
    strings: the trainer passes the injector's crash set, this round's
    deadline-missing stragglers, and the filter's rejected model ids.
    """

    def __init__(self, num_servers: int,
                 policy: HealthPolicy = HealthPolicy()) -> None:
        check_positive_int(num_servers, "num_servers")
        self.policy = policy
        self.num_servers = int(num_servers)
        self.scores: Dict[int, float] = {
            i: 1.0 for i in range(self.num_servers)}
        self.states: Dict[int, str] = {
            i: BreakerState.CLOSED for i in range(self.num_servers)}
        self._clean_streak: Dict[int, int] = {
            i: 0 for i in range(self.num_servers)}

    def observe_round(self, round_index: int, *,
                      crashed: Iterable[int] = (),
                      straggling: Iterable[int] = (),
                      filtered: Iterable[int] = ()) -> List[str]:
        """Fold one round of evidence; returns breaker-transition events.

        ``crashed``/``straggling``/``filtered`` are server-id sets; a server
        in any of them had a bad round. Returned event strings follow the
        ``fault_events`` idiom so they land in the same per-round trace.
        """
        bad = set(crashed) | set(straggling) | set(filtered)
        policy = self.policy
        events: List[str] = []
        for sid in range(self.num_servers):
            is_bad = sid in bad
            score = policy.decay * self.scores[sid] \
                + (1.0 - policy.decay) * (0.0 if is_bad else 1.0)
            self.scores[sid] = score
            state = self.states[sid]
            if state == BreakerState.CLOSED:
                if score < policy.open_threshold:
                    self.states[sid] = BreakerState.OPEN
                    self._clean_streak[sid] = 0
                    events.append(
                        f"server {sid} circuit opened "
                        f"(score {score:.3f} < {policy.open_threshold:g})")
            elif state == BreakerState.OPEN:
                if is_bad:
                    self._clean_streak[sid] = 0
                else:
                    self._clean_streak[sid] += 1
                    if self._clean_streak[sid] >= policy.probation_rounds:
                        self.states[sid] = BreakerState.HALF_OPEN
                        events.append(
                            f"server {sid} on probation "
                            f"(clean for {self._clean_streak[sid]} rounds)")
            else:  # HALF_OPEN: one trial round decides.
                if is_bad:
                    self.states[sid] = BreakerState.OPEN
                    self._clean_streak[sid] = 0
                    events.append(f"server {sid} circuit re-opened")
                else:
                    self.states[sid] = BreakerState.CLOSED
                    # Floor the score so the next round's decay cannot
                    # immediately re-open a breaker that just proved itself.
                    self.scores[sid] = max(score, policy.open_threshold)
                    events.append(f"server {sid} circuit closed")
        return events

    def open_servers(self) -> FrozenSet[int]:
        """Ids whose breaker is currently open (excluded from admission)."""
        return frozenset(
            sid for sid, state in self.states.items()
            if state == BreakerState.OPEN)

    def excluded_servers(self, candidates: Sequence[int], *,
                         quorum_floor: int) -> FrozenSet[int]:
        """Open servers to exclude, respecting the degraded-quorum floor.

        ``candidates`` are the servers otherwise admissible this round
        (e.g. the injector's alive set). If excluding every open breaker
        would leave fewer than ``quorum_floor`` of them, the open servers
        with the highest scores are readmitted — exclusion degrades
        gracefully exactly like the quorum itself does.
        """
        open_ids = [sid for sid in candidates if sid in self.open_servers()]
        floor = min(int(quorum_floor), len(candidates))
        max_excludable = len(candidates) - floor
        if max_excludable <= 0:
            return frozenset()
        if len(open_ids) <= max_excludable:
            return frozenset(open_ids)
        # Keep exclusion deterministic: drop the worst-scored servers
        # first, break score ties by id.
        ranked = sorted(open_ids, key=lambda sid: (self.scores[sid], -sid))
        return frozenset(ranked[:max_excludable])

    def snapshot(self) -> Dict[str, Dict[int, float]]:
        """Copies of the per-PS scores and states for history recording."""
        return {
            "scores": dict(self.scores),
            "states": dict(self.states),
        }
