"""Training-run records: per-round metrics plus communication accounting."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["RoundRecord", "TrainingHistory"]


@dataclass
class RoundRecord:
    """Metrics for one global round.

    ``test_accuracy``/``test_loss`` are ``None`` on rounds where evaluation
    was skipped (see the trainer's ``eval_every``).

    The availability fields record how the round degraded under faults:
    ``models_received`` maps each participating client to the number of
    global models it actually obtained this round (``P`` when everything
    was delivered), ``degraded_clients`` lists clients that filtered a
    reduced quorum with the recomputed trim count, and
    ``fallback_clients`` lists clients that kept their previous feasible
    model because the quorum was too small (``q <= 2B``) or empty.

    The robustness fields record what an *estimating* filter concluded:
    ``estimated_byzantine`` is the round's Byzantine-count estimate
    ``B-hat`` (the maximum across clients when they disagree under
    faults; ``None`` for rules that do not estimate), and
    ``filtered_model_ids`` lists the PSs whose disseminated model at
    least one client's filter rejected outright — the adaptive rule's
    flagged outliers, or the candidates loss-based selection declined.

    The population fields are filled by
    :class:`~repro.population.PopulationTrainer` runs and stay at their
    defaults for flat runs: ``num_active_clients``/``num_sampled_clients``/
    ``materialized_clients`` trace the per-round sampling funnel,
    ``churn_events`` lists this round's join/leave/rejoin transitions, and
    the ``tier_*`` dicts (keyed by tier index, 1 = first filtering tier)
    record what each tier's filter concluded: the maximum Byzantine-count
    estimate across that tier's aggregators, the *global aggregator
    indices* whose forwarded model some parent rejected, and the
    aggregators that degraded (reduced quorum) or fell back to their
    previous output (quorum at or below ``2B_t``).

    The timing/health fields record the deadline engine and the PS health
    ledger: ``simulated_time_s`` is the round's virtual-clock duration,
    ``deadline_missed``/``late_admitted`` count messages that missed the
    round deadline and stale messages admitted within the staleness bound,
    ``health_scores``/``breaker_states`` snapshot the per-PS reputation
    ledger after the round, and ``excluded_servers`` lists the PSs whose
    open circuit breaker excluded them from upload sampling and quorum
    counting this round.
    """

    round_index: int
    train_loss: float
    test_accuracy: Optional[float] = None
    test_loss: Optional[float] = None
    upload_messages: int = 0
    dissemination_messages: int = 0
    upload_bytes: int = 0
    upload_retries: int = 0
    upload_failures: int = 0
    cleared_messages: int = 0
    alive_servers: Optional[int] = None
    models_received: Dict[int, int] = field(default_factory=dict)
    degraded_clients: List[int] = field(default_factory=list)
    fallback_clients: List[int] = field(default_factory=list)
    fault_events: List[str] = field(default_factory=list)
    estimated_byzantine: Optional[int] = None
    filtered_model_ids: List[int] = field(default_factory=list)
    num_active_clients: Optional[int] = None
    num_sampled_clients: Optional[int] = None
    materialized_clients: Optional[int] = None
    churn_events: List[str] = field(default_factory=list)
    tier_estimated_byzantine: Dict[int, int] = field(default_factory=dict)
    tier_filtered_model_ids: Dict[int, List[int]] = field(default_factory=dict)
    tier_degraded_aggregators: Dict[int, List[int]] = field(
        default_factory=dict)
    tier_fallback_aggregators: Dict[int, List[int]] = field(
        default_factory=dict)
    simulated_time_s: Optional[float] = None
    deadline_missed: int = 0
    late_admitted: int = 0
    health_scores: Dict[int, float] = field(default_factory=dict)
    breaker_states: Dict[int, str] = field(default_factory=dict)
    excluded_servers: List[int] = field(default_factory=list)

    @property
    def min_models_received(self) -> Optional[int]:
        """Smallest per-client quorum this round (``None`` if unrecorded)."""
        if not self.models_received:
            return None
        return min(self.models_received.values())

    @property
    def degraded(self) -> bool:
        """True when any client filtered a reduced quorum or fell back."""
        return bool(self.degraded_clients or self.fallback_clients)

    @property
    def tier_degraded(self) -> bool:
        """True when any aggregation tier degraded or fell back."""
        return bool(self.tier_degraded_aggregators
                    or self.tier_fallback_aggregators)


@dataclass
class TrainingHistory:
    """Accumulated per-round records of a federated run."""

    records: List[RoundRecord] = field(default_factory=list)

    def append(self, record: RoundRecord) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    @property
    def rounds(self) -> List[int]:
        return [r.round_index for r in self.records]

    @property
    def train_losses(self) -> List[float]:
        return [r.train_loss for r in self.records]

    @property
    def accuracies(self) -> List[float]:
        """Test accuracies of the evaluated rounds, in round order."""
        return [r.test_accuracy for r in self.records
                if r.test_accuracy is not None]

    @property
    def evaluated_rounds(self) -> List[int]:
        return [r.round_index for r in self.records
                if r.test_accuracy is not None]

    @property
    def final_accuracy(self) -> Optional[float]:
        """Most recent measured test accuracy, or ``None`` if never measured."""
        accuracies = self.accuracies
        return accuracies[-1] if accuracies else None

    @property
    def best_accuracy(self) -> Optional[float]:
        accuracies = self.accuracies
        return max(accuracies) if accuracies else None

    @property
    def total_upload_messages(self) -> int:
        return sum(r.upload_messages for r in self.records)

    @property
    def total_upload_bytes(self) -> int:
        return sum(r.upload_bytes for r in self.records)

    @property
    def total_upload_retries(self) -> int:
        return sum(r.upload_retries for r in self.records)

    @property
    def total_upload_failures(self) -> int:
        return sum(r.upload_failures for r in self.records)

    @property
    def degraded_rounds(self) -> List[int]:
        """Rounds where some client filtered fewer than ``P`` models or
        fell back to its previous feasible model."""
        return [r.round_index for r in self.records if r.degraded]

    @property
    def min_models_received_per_round(self) -> List[Optional[int]]:
        """Per-round minimum quorum across clients, in round order."""
        return [r.min_models_received for r in self.records]

    @property
    def estimated_byzantine_trace(self) -> List[Optional[int]]:
        """Per-round ``B-hat`` of an estimating filter (``None`` where the
        rule does not estimate), in round order."""
        return [r.estimated_byzantine for r in self.records]

    @property
    def mean_estimated_byzantine(self) -> Optional[float]:
        """Average ``B-hat`` over the rounds that produced an estimate."""
        estimates = [e for e in self.estimated_byzantine_trace
                     if e is not None]
        if not estimates:
            return None
        return sum(estimates) / len(estimates)

    @property
    def churn_event_trace(self) -> List[List[str]]:
        """Per-round join/leave/rejoin transitions, in round order."""
        return [list(r.churn_events) for r in self.records]

    @property
    def total_churn_events(self) -> int:
        return sum(len(r.churn_events) for r in self.records)

    @property
    def peak_materialized_clients(self) -> int:
        """High-water mark of simultaneously materialized clients."""
        return max((r.materialized_clients for r in self.records
                    if r.materialized_clients is not None), default=0)

    @property
    def tier_fallback_rounds(self) -> List[int]:
        """Rounds where some aggregation tier fell back below quorum."""
        return [r.round_index for r in self.records
                if r.tier_fallback_aggregators]

    @property
    def tier_degraded_rounds(self) -> List[int]:
        """Rounds where some tier degraded (reduced quorum) or fell back."""
        return [r.round_index for r in self.records if r.tier_degraded]

    def tier_estimated_byzantine_trace(self, tier: int
                                       ) -> List[Optional[int]]:
        """Per-round maximum ``B-hat`` of one tier's estimating filters
        (``None`` where the tier produced no estimate), in round order."""
        return [r.tier_estimated_byzantine.get(tier) for r in self.records]

    @property
    def total_simulated_time_s(self) -> Optional[float]:
        """Sum of per-round simulated durations (``None`` if never timed)."""
        times = [r.simulated_time_s for r in self.records
                 if r.simulated_time_s is not None]
        if not times:
            return None
        return sum(times)

    @property
    def total_deadline_missed(self) -> int:
        """Messages that missed their round deadline, across the run."""
        return sum(r.deadline_missed for r in self.records)

    @property
    def total_late_admitted(self) -> int:
        """Late arrivals admitted within the staleness bound, run-wide."""
        return sum(r.late_admitted for r in self.records)

    def health_score_trace(self, server_id: int) -> List[Optional[float]]:
        """Per-round reputation score of one PS (``None`` where the health
        ledger was off), in round order."""
        return [r.health_scores.get(server_id) for r in self.records]

    def breaker_state_trace(self, server_id: int) -> List[Optional[str]]:
        """Per-round circuit-breaker state of one PS, in round order."""
        return [r.breaker_states.get(server_id) for r in self.records]

    @property
    def excluded_server_trace(self) -> List[List[int]]:
        """Per-round health-excluded PS ids, in round order."""
        return [list(r.excluded_servers) for r in self.records]

    @property
    def filtered_model_id_counts(self) -> Dict[int, int]:
        """How many rounds each PS's model was rejected by some client."""
        counts: Dict[int, int] = {}
        for record in self.records:
            for server_id in record.filtered_model_ids:
                counts[server_id] = counts.get(server_id, 0) + 1
        return counts

    def to_dict(self) -> Dict[str, object]:
        """A json-ready summary of the run."""
        return {
            "num_rounds": len(self.records),
            "final_accuracy": self.final_accuracy,
            "best_accuracy": self.best_accuracy,
            "rounds": self.rounds,
            "train_losses": self.train_losses,
            "evaluated_rounds": self.evaluated_rounds,
            "accuracies": self.accuracies,
            "total_upload_messages": self.total_upload_messages,
            "total_upload_bytes": self.total_upload_bytes,
            "total_upload_retries": self.total_upload_retries,
            "total_upload_failures": self.total_upload_failures,
            "degraded_rounds": self.degraded_rounds,
            "min_models_received_per_round":
                self.min_models_received_per_round,
            "estimated_byzantine_trace": self.estimated_byzantine_trace,
            "mean_estimated_byzantine": self.mean_estimated_byzantine,
            "filtered_model_id_counts": self.filtered_model_id_counts,
            "total_churn_events": self.total_churn_events,
            "peak_materialized_clients": self.peak_materialized_clients,
            "tier_fallback_rounds": self.tier_fallback_rounds,
            "tier_degraded_rounds": self.tier_degraded_rounds,
            "total_simulated_time_s": self.total_simulated_time_s,
            "total_deadline_missed": self.total_deadline_missed,
            "total_late_admitted": self.total_late_admitted,
            "excluded_server_trace": self.excluded_server_trace,
        }
