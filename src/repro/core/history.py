"""Training-run records: per-round metrics plus communication accounting."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["RoundRecord", "TrainingHistory"]


@dataclass
class RoundRecord:
    """Metrics for one global round.

    ``test_accuracy``/``test_loss`` are ``None`` on rounds where evaluation
    was skipped (see the trainer's ``eval_every``).
    """

    round_index: int
    train_loss: float
    test_accuracy: Optional[float] = None
    test_loss: Optional[float] = None
    upload_messages: int = 0
    dissemination_messages: int = 0
    upload_bytes: int = 0


@dataclass
class TrainingHistory:
    """Accumulated per-round records of a federated run."""

    records: List[RoundRecord] = field(default_factory=list)

    def append(self, record: RoundRecord) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    @property
    def rounds(self) -> List[int]:
        return [r.round_index for r in self.records]

    @property
    def train_losses(self) -> List[float]:
        return [r.train_loss for r in self.records]

    @property
    def accuracies(self) -> List[float]:
        """Test accuracies of the evaluated rounds, in round order."""
        return [r.test_accuracy for r in self.records
                if r.test_accuracy is not None]

    @property
    def evaluated_rounds(self) -> List[int]:
        return [r.round_index for r in self.records
                if r.test_accuracy is not None]

    @property
    def final_accuracy(self) -> Optional[float]:
        """Most recent measured test accuracy, or ``None`` if never measured."""
        accuracies = self.accuracies
        return accuracies[-1] if accuracies else None

    @property
    def best_accuracy(self) -> Optional[float]:
        accuracies = self.accuracies
        return max(accuracies) if accuracies else None

    @property
    def total_upload_messages(self) -> int:
        return sum(r.upload_messages for r in self.records)

    @property
    def total_upload_bytes(self) -> int:
        return sum(r.upload_bytes for r in self.records)

    def to_dict(self) -> Dict[str, object]:
        """A json-ready summary of the run."""
        return {
            "num_rounds": len(self.records),
            "final_accuracy": self.final_accuracy,
            "best_accuracy": self.best_accuracy,
            "rounds": self.rounds,
            "train_losses": self.train_losses,
            "evaluated_rounds": self.evaluated_rounds,
            "accuracies": self.accuracies,
            "total_upload_messages": self.total_upload_messages,
            "total_upload_bytes": self.total_upload_bytes,
        }
