"""Composable upload codecs: top-k sparsification and quantization.

Fed-MS's sparse uploading already cuts the aggregation phase to ``K`` model
*transfers* per round, but each transfer is still a dense float64 vector —
the dominant byte cost of a round and the serial hot path's dominant term.
Tao et al. (arXiv:2303.10434) argue that Byzantine resilience and
communication efficiency at the edge must be co-designed; this module
provides the communication half as a composable pipeline the trainer runs
on every wire leg (upload, retry, dissemination).

A :class:`Codec` transforms a dense vector into a cheaper representation
stage by stage; a :class:`CodecPipeline` chains codecs (e.g. top-k
sparsification followed by int8 quantization of the surviving values) and
produces one :class:`EncodedUpdate` whose ``encoded_nbytes`` is what the
simulated network charges for the message. Decoding reverses the stages
and always yields a dense vector again, so every Byzantine filter
(coordinate-wise trimmed mean, adaptive-beta, loss-based) operates on
decompressed updates exactly as it would on raw ones.

Codecs are *reference-agnostic*: they encode whatever vector they are
given. The trainer feeds them deltas against one shared reference all
parties honestly know (the previous round's consensus filter output — see
``docs/upload.md``), so a 5% top-k drops 95% of the *change*, not 95% of
the model. Encoding and decoding are deterministic pure functions of
``(vector, salt)`` — the salt is public protocol state (the round index),
never an RNG draw — which preserves the execution backends' bit-identity
contract by construction.

The dissemination leg needs one extra property the upload leg does not:
*support alignment*. Client-side ``Def()`` filters are coordinate-wise,
so if each PS independently top-k's its own broadcast delta, the few PSs
carrying a fresh value at a coordinate look like outliers against the
exact-tie majority still at the reference — and the trimmed mean trims
away precisely the signal. :class:`CyclicSparsifier` fixes this with a
round-cycling strided support every sender shares, and
:func:`broadcast_variant` derives that trim-compatible pipeline from an
upload pipeline.
"""

from __future__ import annotations

import math
import re
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..common.errors import ConfigurationError

__all__ = [
    "Codec",
    "CodecPipeline",
    "CyclicSparsifier",
    "EncodedUpdate",
    "StageEncoding",
    "IdentityCodec",
    "TopKSparsifier",
    "SignQuantizer",
    "Int8Quantizer",
    "available_codecs",
    "broadcast_variant",
    "make_codec",
    "make_codec_pipeline",
    "parse_codec_spec",
]

#: Default chunk length for the per-chunk scales of the quantizers.
DEFAULT_CHUNK = 1024

#: Keep-ratio floor for derived dissemination pipelines. A coordinate off
#: the cyclic support decodes to the reference, so the filter output can
#: only refresh it once per ``period = round(1 / ratio)`` rounds; flooring
#: the ratio bounds that staleness at 4 rounds, which empirically keeps
#: compressed runs within noise of uncompressed accuracy while the
#: quantizer stage still dominates the byte savings.
MIN_BROADCAST_KEEP_RATIO = 0.25


class StageEncoding:
    """One codec stage's contribution to an :class:`EncodedUpdate`.

    ``sides`` holds the stage's side arrays (indices, packed signs,
    quantized bytes, per-chunk scales); ``meta`` holds the small scalars
    decoding needs (original length, chunk size). Both are immutable by
    convention: an encoded update may be shared by many in-flight messages.
    """

    __slots__ = ("codec", "sides", "meta")

    def __init__(self, codec: str, sides: Dict[str, np.ndarray],
                 meta: Dict[str, int]) -> None:
        self.codec = codec
        self.sides = sides
        self.meta = meta

    def __repr__(self) -> str:
        shapes = {key: value.shape for key, value in self.sides.items()}
        return f"StageEncoding({self.codec!r}, sides={shapes}, meta={self.meta})"


class EncodedUpdate:
    """A model vector after one pass through a codec pipeline.

    Self-describing: :meth:`decode` needs no pipeline object, only this
    update, so receivers (parameter servers, execution-backend workers)
    can decode without sharing state with the encoder. ``encoded_nbytes``
    is the byte cost a real transport would pay — the payload arrays only,
    which is what :class:`~repro.simulation.network.Message` charges.
    """

    __slots__ = ("dim", "dtype", "codecs", "stages", "carrier")

    def __init__(self, dim: int, dtype: str, codecs: Tuple[str, ...],
                 stages: Tuple[StageEncoding, ...],
                 carrier: Optional[np.ndarray]) -> None:
        self.dim = dim
        self.dtype = dtype
        self.codecs = codecs
        self.stages = stages
        self.carrier = carrier

    @property
    def encoded_nbytes(self) -> int:
        """Total bytes of the encoded representation's arrays."""
        total = 0 if self.carrier is None else int(self.carrier.nbytes)
        for stage in self.stages:
            for side in stage.sides.values():
                total += int(side.nbytes)
        return total

    def decode(self) -> np.ndarray:
        """Reverse every stage; returns a dense vector of ``dim`` entries."""
        carrier = self.carrier
        for stage in reversed(self.stages):
            try:
                decoder = _DECODERS[stage.codec]
            except KeyError:
                raise ConfigurationError(
                    f"no decoder for codec {stage.codec!r}; "
                    f"available: {available_codecs()}"
                ) from None
            carrier = decoder(carrier, stage.sides, stage.meta)
        assert carrier is not None
        return np.asarray(carrier, dtype=self.dtype)

    # Pickled through executor queues by the process backend; slots-only
    # classes need explicit state methods.
    def __getstate__(self):
        return (self.dim, self.dtype, self.codecs, self.stages, self.carrier)

    def __setstate__(self, state) -> None:
        self.dim, self.dtype, self.codecs, self.stages, self.carrier = state

    def __repr__(self) -> str:
        return (f"EncodedUpdate(dim={self.dim}, codecs={self.codecs}, "
                f"{self.encoded_nbytes} bytes)")


def _as_flat_float(vector: np.ndarray) -> np.ndarray:
    flat = np.asarray(vector, dtype=np.float64).ravel()
    if flat.size == 0:
        raise ConfigurationError("cannot encode an empty vector")
    return flat


def _chunk_edges(dim: int, chunk: int) -> np.ndarray:
    return np.arange(0, dim, chunk)


def _expand_chunks(per_chunk: np.ndarray, dim: int, chunk: int) -> np.ndarray:
    """Broadcast one value per chunk back to a length-``dim`` vector."""
    return np.repeat(per_chunk.astype(np.float64), chunk)[:dim]


class Codec:
    """One stage of an upload codec pipeline.

    ``encode_stage`` maps a dense vector to ``(carrier, sides, meta)``:
    the carrier is the float vector the *next* codec in the chain encodes
    (``None`` for terminal codecs, whose representation is entirely in the
    side arrays); ``decode_stage`` inverts it. Stages must be deterministic
    pure functions — the bit-identity contract of the execution backends
    extends to codecs. Round-varying codecs set ``uses_salt`` and receive
    the pipeline's ``salt`` keyword (public protocol state, typically the
    round index) in ``encode_stage``.
    """

    #: Registry name; subclasses override.
    name: str = ""
    #: Terminal codecs admit no further stage after them in a pipeline.
    terminal: bool = False
    #: True for codecs whose ``encode_stage`` takes a ``salt`` keyword.
    uses_salt: bool = False

    def encode_stage(self, vector: np.ndarray) -> Tuple[
            Optional[np.ndarray], Dict[str, np.ndarray], Dict[str, int]]:
        raise NotImplementedError

    @staticmethod
    def decode_stage(carrier: Optional[np.ndarray],
                     sides: Dict[str, np.ndarray],
                     meta: Dict[str, int]) -> np.ndarray:
        raise NotImplementedError

    @property
    def spec(self) -> str:
        """The spec string that reconstructs this codec via :func:`make_codec`."""
        return self.name

    def __repr__(self) -> str:
        return self.spec


class IdentityCodec(Codec):
    """Pass-through: dense float64 on the wire (the pre-codec default)."""

    name = "identity"

    def encode_stage(self, vector):
        return _as_flat_float(vector), {}, {}

    @staticmethod
    def decode_stage(carrier, sides, meta):
        assert carrier is not None
        return carrier


class TopKSparsifier(Codec):
    """Keep the ``k = ceil(ratio * dim)`` largest-magnitude coordinates.

    The encoded form is (uint32 indices, float values); everything off the
    support decodes to zero — which, applied to a delta against a shared
    reference, means "unchanged" rather than "weight erased". ``ratio=1.0``
    keeps every coordinate and is exactly lossless.
    """

    name = "topk"

    def __init__(self, ratio: float = 0.05) -> None:
        if not 0.0 < ratio <= 1.0:
            raise ConfigurationError(
                f"topk ratio must be in (0, 1], got {ratio}"
            )
        self.ratio = float(ratio)

    @property
    def spec(self) -> str:
        return f"topk({self.ratio:g})"

    def encode_stage(self, vector):
        flat = _as_flat_float(vector)
        dim = flat.size
        k = min(dim, max(1, int(math.ceil(self.ratio * dim))))
        if k >= dim:
            indices = np.arange(dim, dtype=np.uint32)
        else:
            picked = np.argpartition(np.abs(flat), dim - k)[dim - k:]
            indices = np.sort(picked).astype(np.uint32)
        carrier = flat[indices]
        return carrier, {"indices": indices}, {"dim": dim}

    @staticmethod
    def decode_stage(carrier, sides, meta):
        assert carrier is not None
        dense = np.zeros(meta["dim"], dtype=np.float64)
        dense[sides["indices"]] = carrier
        return dense


class CyclicSparsifier(Codec):
    """Keep a round-cycling strided coordinate slice shared by all senders.

    Round ``t`` (the encode ``salt``) keeps coordinates
    ``salt % period, salt % period + period, ...`` where
    ``period = round(1 / ratio)`` — so every sender encoding in the same
    round transmits the *same* support, and every coordinate is refreshed
    exactly once per ``period`` rounds. That alignment is what
    coordinate-wise trimmed filters need on the dissemination leg: at any
    coordinate either all honest senders carry a fresh value (and the trim
    compares like with like) or all of them tie at the reference (and the
    trim is a no-op there) — a per-sender magnitude support (top-k) instead
    makes fresh values minority outliers that the trim removes.

    The support is implicit in ``(salt, period)``, so unlike top-k no index
    array is transmitted; ``ratio=1.0`` (period 1) keeps every coordinate
    and is exactly lossless.
    """

    name = "cyclic"
    uses_salt = True

    def __init__(self, ratio: float = 0.25) -> None:
        if not 0.0 < ratio <= 1.0:
            raise ConfigurationError(
                f"cyclic ratio must be in (0, 1], got {ratio}"
            )
        self.ratio = float(ratio)
        self.period = max(1, int(round(1.0 / self.ratio)))

    @property
    def spec(self) -> str:
        return f"cyclic({self.ratio:g})"

    def encode_stage(self, vector, *, salt: int = 0):
        flat = _as_flat_float(vector)
        dim = flat.size
        offset = int(salt) % self.period
        carrier = flat[offset::self.period].copy()
        if carrier.size == 0:  # dim < period: keep at least one coordinate
            offset = offset % dim
            carrier = flat[offset::self.period].copy()
        meta = {"dim": dim, "offset": offset, "step": self.period}
        return carrier, {}, meta

    @staticmethod
    def decode_stage(carrier, sides, meta):
        assert carrier is not None
        dense = np.zeros(meta["dim"], dtype=np.float64)
        dense[meta["offset"]::meta["step"]] = carrier
        return dense


class SignQuantizer(Codec):
    """1-bit sign per coordinate plus one float32 scale per chunk.

    The scale is the chunk's mean absolute value (signSGD with a per-chunk
    magnitude, Bernstein et al. 2018), so each coordinate decodes to
    ``±mean|chunk|``. Terminal: the representation is bits, there is
    nothing left for a later codec to compress.
    """

    name = "sign"
    terminal = True

    def __init__(self, chunk: int = DEFAULT_CHUNK) -> None:
        chunk = int(chunk)
        if chunk <= 0:
            raise ConfigurationError(f"chunk must be positive, got {chunk}")
        self.chunk = chunk

    @property
    def spec(self) -> str:
        return (f"sign({self.chunk})" if self.chunk != DEFAULT_CHUNK
                else "sign")

    def encode_stage(self, vector):
        flat = _as_flat_float(vector)
        dim = flat.size
        edges = _chunk_edges(dim, self.chunk)
        counts = np.minimum(edges + self.chunk, dim) - edges
        scales = (np.add.reduceat(np.abs(flat), edges) / counts
                  ).astype(np.float32)
        packed = np.packbits(flat >= 0.0)
        sides = {"signs": packed, "scales": scales}
        return None, sides, {"dim": dim, "chunk": self.chunk}

    @staticmethod
    def decode_stage(carrier, sides, meta):
        dim, chunk = meta["dim"], meta["chunk"]
        bits = np.unpackbits(sides["signs"])[:dim]
        signs = np.where(bits > 0, 1.0, -1.0)
        return signs * _expand_chunks(sides["scales"], dim, chunk)


class Int8Quantizer(Codec):
    """Per-chunk affine quantization to uint8 (one low/scale pair per chunk).

    Each chunk maps its ``[min, max]`` range onto 256 levels; the maximum
    reconstruction error is half a level, ``(max - min) / 510`` per chunk
    (plus float32 rounding of the per-chunk parameters). Terminal.
    """

    name = "int8"
    terminal = True

    LEVELS = 255

    def __init__(self, chunk: int = DEFAULT_CHUNK) -> None:
        chunk = int(chunk)
        if chunk <= 0:
            raise ConfigurationError(f"chunk must be positive, got {chunk}")
        self.chunk = chunk

    @property
    def spec(self) -> str:
        return (f"int8({self.chunk})" if self.chunk != DEFAULT_CHUNK
                else "int8")

    def encode_stage(self, vector):
        flat = _as_flat_float(vector)
        dim = flat.size
        edges = _chunk_edges(dim, self.chunk)
        low = np.minimum.reduceat(flat, edges).astype(np.float32)
        high = np.maximum.reduceat(flat, edges).astype(np.float32)
        span = (high - low).astype(np.float64)
        scale = np.where(span > 0, span / self.LEVELS, 1.0).astype(np.float32)
        low_e = _expand_chunks(low, dim, self.chunk)
        scale_e = _expand_chunks(scale, dim, self.chunk)
        levels = np.clip(np.rint((flat - low_e) / scale_e), 0, self.LEVELS)
        sides = {"q": levels.astype(np.uint8), "low": low, "scale": scale}
        return None, sides, {"dim": dim, "chunk": self.chunk}

    @staticmethod
    def decode_stage(carrier, sides, meta):
        dim, chunk = meta["dim"], meta["chunk"]
        low = _expand_chunks(sides["low"], dim, chunk)
        scale = _expand_chunks(sides["scale"], dim, chunk)
        return sides["q"].astype(np.float64) * scale + low


#: Decoder registry: codec name -> ``decode_stage``. Keeping decoders as
#: pure static functions is what lets an ``EncodedUpdate`` decode itself in
#: an execution-backend worker without re-building the encoder pipeline.
_DECODERS: Dict[str, Callable] = {
    IdentityCodec.name: IdentityCodec.decode_stage,
    TopKSparsifier.name: TopKSparsifier.decode_stage,
    CyclicSparsifier.name: CyclicSparsifier.decode_stage,
    SignQuantizer.name: SignQuantizer.decode_stage,
    Int8Quantizer.name: Int8Quantizer.decode_stage,
}

_CODEC_CLASSES = {
    IdentityCodec.name: IdentityCodec,
    TopKSparsifier.name: TopKSparsifier,
    CyclicSparsifier.name: CyclicSparsifier,
    SignQuantizer.name: SignQuantizer,
    Int8Quantizer.name: Int8Quantizer,
}

_SPEC_RE = re.compile(r"^\s*([A-Za-z0-9_]+)\s*(?:\(([^()]*)\))?\s*$")


def available_codecs() -> List[str]:
    """Registered codec names, sorted."""
    return sorted(_CODEC_CLASSES)


def parse_codec_spec(spec: str) -> Tuple[str, Tuple[float, ...]]:
    """Split ``"topk(0.05)"`` into ``("topk", (0.05,))``.

    Arguments are parsed as floats; a bare name yields no arguments.
    """
    match = _SPEC_RE.match(spec)
    if match is None:
        raise ConfigurationError(
            f"malformed codec spec {spec!r}; expected name or name(args)"
        )
    name = match.group(1).lower()
    raw_args = match.group(2)
    if raw_args is None or not raw_args.strip():
        return name, ()
    try:
        args = tuple(float(piece) for piece in raw_args.split(","))
    except ValueError:
        raise ConfigurationError(
            f"codec spec {spec!r} has non-numeric arguments"
        ) from None
    return name, args


def make_codec(spec: str) -> Codec:
    """Build one codec from a spec string, e.g. ``"topk(0.05)"``."""
    name, args = parse_codec_spec(spec)
    try:
        cls = _CODEC_CLASSES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown codec {name!r}; available: {available_codecs()}"
        ) from None
    try:
        return cls(*args)
    except TypeError:
        raise ConfigurationError(
            f"codec {name!r} does not accept arguments {args}"
        ) from None


class CodecPipeline:
    """An ordered chain of codecs applied to every wire leg.

    Stage ``i + 1`` encodes stage ``i``'s carrier (e.g. int8 quantizes the
    values that survived top-k), so terminal codecs — whose output is not a
    float vector — may only appear last; this is validated eagerly at
    construction, which is what lets ``FedMSConfig`` reject a bad
    ``upload_codecs`` chain at config time.
    """

    def __init__(self, codecs: Sequence[Codec]) -> None:
        codecs = tuple(codecs)
        for position, codec in enumerate(codecs[:-1]):
            if codec.terminal:
                raise ConfigurationError(
                    f"codec {codec.spec!r} (position {position}) is terminal "
                    f"and must be the last stage of the chain"
                )
        self.codecs = codecs

    @property
    def specs(self) -> Tuple[str, ...]:
        """Spec strings reconstructing this pipeline."""
        return tuple(codec.spec for codec in self.codecs)

    @property
    def is_identity(self) -> bool:
        """True when encoding would change neither values nor byte cost."""
        return all(isinstance(codec, IdentityCodec) for codec in self.codecs)

    def encode(self, vector: np.ndarray, *, salt: int = 0) -> EncodedUpdate:
        """Run every stage over ``vector``; returns one encoded update.

        ``salt`` is public protocol state (the trainer passes the round
        index) forwarded to round-varying stages such as
        :class:`CyclicSparsifier`; salt-blind codecs never see it.
        """
        flat = np.asarray(vector).ravel()
        dtype = str(flat.dtype)
        carrier: Optional[np.ndarray] = _as_flat_float(flat)
        stages: List[StageEncoding] = []
        for codec in self.codecs:
            assert carrier is not None  # terminal-last is enforced above
            if codec.uses_salt:
                carrier, sides, meta = codec.encode_stage(carrier, salt=salt)
            else:
                carrier, sides, meta = codec.encode_stage(carrier)
            stages.append(StageEncoding(codec.name, sides, meta))
        return EncodedUpdate(
            dim=int(flat.size), dtype=dtype,
            codecs=tuple(codec.name for codec in self.codecs),
            stages=tuple(stages), carrier=carrier,
        )

    def decode(self, encoded: EncodedUpdate) -> np.ndarray:
        """Inverse of :meth:`encode` (updates are self-describing)."""
        return encoded.decode()

    def __repr__(self) -> str:
        return f"CodecPipeline({' + '.join(self.specs) or 'identity'})"


def make_codec_pipeline(specs: Optional[Sequence[str]]) -> CodecPipeline:
    """Build a pipeline from spec strings; ``None``/empty means identity."""
    if not specs:
        return CodecPipeline(())
    return CodecPipeline([make_codec(spec) for spec in specs])


def broadcast_variant(pipeline: CodecPipeline) -> CodecPipeline:
    """The trim-compatible dissemination pipeline for an upload pipeline.

    Per-sender magnitude supports (:class:`TopKSparsifier`) are replaced
    by the shared round-cycling support (:class:`CyclicSparsifier`) so
    honest PS broadcasts stay coordinate-aligned under ``Def()`` trimming;
    the keep-ratio is floored at :data:`MIN_BROADCAST_KEEP_RATIO` to bound
    how stale a coordinate the filter holds at the reference can get.
    Quantizer and identity stages carry over unchanged.
    """
    return CodecPipeline([
        CyclicSparsifier(max(codec.ratio, MIN_BROADCAST_KEEP_RATIO))
        if isinstance(codec, TopKSparsifier) else codec
        for codec in pipeline.codecs
    ])
