"""Small reference models.

``SoftmaxRegression`` is the convex model the convergence experiments use
(its regularized objective is mu-strongly convex and L-smooth, so Theorem 1
applies exactly). ``MLP`` and ``SmallCNN`` are fast non-convex models used
by the test suite and the scaled-down benchmark runs.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..common.errors import ConfigurationError
from ..nn.layers import (
    BatchNorm2d,
    Conv2d,
    Flatten,
    GlobalAvgPool2d,
    Linear,
    MaxPool2d,
    ReLU,
)
from ..nn.module import Module, Sequential

__all__ = ["SoftmaxRegression", "MLP", "SmallCNN"]


class SoftmaxRegression(Module):
    """Multinomial logistic regression: a single linear layer.

    With an L2 penalty of coefficient ``lam`` (applied by the training loop
    as weight decay), the objective is ``lam``-strongly convex and
    ``(0.25 * max_eigval(X^T X / n) + lam)``-smooth, which makes it the right
    testbed for verifying the O(1/T) rate of Theorem 1.
    """

    def __init__(self, in_features: int, num_classes: int, *, bias: bool = True,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.in_features = in_features
        self.num_classes = num_classes
        self.linear = Linear(in_features, num_classes, bias=bias, rng=rng)
        # Start from zero so every client shares the deterministic origin;
        # convex convergence measurements then depend only on the data.
        self.linear.weight.data[...] = 0.0

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.linear(x)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return self.linear.backward(grad_output)


class MLP(Sequential):
    """Fully connected network with ReLU activations.

    ``hidden_sizes`` gives the widths of the hidden layers, e.g.
    ``MLP(784, (128, 64), 10)``.
    """

    def __init__(self, in_features: int, hidden_sizes: Sequence[int],
                 num_classes: int, *,
                 rng: Optional[np.random.Generator] = None) -> None:
        if not hidden_sizes:
            raise ConfigurationError("MLP needs at least one hidden layer; "
                                     "use SoftmaxRegression for a linear model")
        layers = []
        previous = in_features
        for width in hidden_sizes:
            layers.append(Linear(previous, width, rng=rng))
            layers.append(ReLU())
            previous = width
        layers.append(Linear(previous, num_classes, rng=rng))
        super().__init__(*layers)
        self.in_features = in_features
        self.num_classes = num_classes


class SmallCNN(Module):
    """Compact convolutional classifier for 3x32x32 images.

    Two conv/pool stages followed by a linear head — enough capacity to
    separate the synthetic CIFAR-10 classes while keeping federated rounds
    fast on a CPU. Used by the scaled-down figure benchmarks.
    """

    def __init__(self, num_classes: int = 10, *, channels: int = 16,
                 in_channels: int = 3,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if channels <= 0:
            raise ConfigurationError(f"channels must be positive, got {channels}")
        self.num_classes = num_classes
        self.body = Sequential(
            Conv2d(in_channels, channels, 3, padding=1, bias=False, rng=rng),
            BatchNorm2d(channels),
            ReLU(),
            MaxPool2d(2),
            Conv2d(channels, channels * 2, 3, padding=1, bias=False, rng=rng),
            BatchNorm2d(channels * 2),
            ReLU(),
            MaxPool2d(2),
            GlobalAvgPool2d(),
        )
        self.classifier = Linear(channels * 2, num_classes, rng=rng)

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.classifier(self.body(x))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return self.body.backward(self.classifier.backward(grad_output))
