"""Training models: the paper's MobileNet V2 plus small reference models."""

from .blocks import ConvBNReLU, InvertedResidual, make_divisible
from .mobilenet_v2 import IMAGENET_INVERTED_RESIDUAL_SETTING, MobileNetV2
from .simple import MLP, SmallCNN, SoftmaxRegression

__all__ = [
    "ConvBNReLU",
    "InvertedResidual",
    "make_divisible",
    "MobileNetV2",
    "IMAGENET_INVERTED_RESIDUAL_SETTING",
    "SoftmaxRegression",
    "MLP",
    "SmallCNN",
]
