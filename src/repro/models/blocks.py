"""Building blocks for MobileNet V2 (Sandler et al., CVPR 2018).

The inverted residual block is the paper's training model's core unit:
a 1x1 expansion convolution, a depthwise 3x3 convolution, and a 1x1 linear
projection, with a residual connection when the block preserves shape.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..common.errors import ConfigurationError
from ..nn.layers import BatchNorm2d, Conv2d, DepthwiseConv2d, ReLU6
from ..nn.module import Module, Sequential

__all__ = ["ConvBNReLU", "InvertedResidual", "make_divisible"]


def make_divisible(value: float, divisor: int = 8, min_value: Optional[int] = None) -> int:
    """Round channel counts to multiples of ``divisor`` (MobileNet convention).

    Ensures the rounded value does not drop more than 10% below ``value``.
    """
    if min_value is None:
        min_value = divisor
    rounded = max(min_value, int(value + divisor / 2) // divisor * divisor)
    if rounded < 0.9 * value:
        rounded += divisor
    return rounded


class ConvBNReLU(Sequential):
    """Conv -> BatchNorm -> ReLU6, the standard MobileNet stem/head block."""

    def __init__(self, in_channels: int, out_channels: int, *, kernel_size: int = 3,
                 stride: int = 1, rng: Optional[np.random.Generator] = None) -> None:
        padding = (kernel_size - 1) // 2
        super().__init__(
            Conv2d(in_channels, out_channels, kernel_size, stride=stride,
                   padding=padding, bias=False, rng=rng),
            BatchNorm2d(out_channels),
            ReLU6(),
        )


class _DepthwiseBNReLU(Sequential):
    """Depthwise conv -> BatchNorm -> ReLU6."""

    def __init__(self, channels: int, *, stride: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__(
            DepthwiseConv2d(channels, 3, stride=stride, padding=1, bias=False, rng=rng),
            BatchNorm2d(channels),
            ReLU6(),
        )


class InvertedResidual(Module):
    """MobileNet V2 inverted residual block.

    ``expand_ratio`` multiplies the input channels for the intermediate
    depthwise stage; the final 1x1 projection is *linear* (no activation).
    The residual shortcut is used iff ``stride == 1`` and input and output
    channel counts match.
    """

    def __init__(self, in_channels: int, out_channels: int, *, stride: int,
                 expand_ratio: int,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if stride not in (1, 2):
            raise ConfigurationError(f"stride must be 1 or 2, got {stride}")
        if expand_ratio < 1:
            raise ConfigurationError(f"expand_ratio must be >= 1, got {expand_ratio}")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.stride = stride
        self.expand_ratio = expand_ratio
        self.use_residual = stride == 1 and in_channels == out_channels

        hidden = in_channels * expand_ratio
        stages = []
        if expand_ratio != 1:
            stages.append(ConvBNReLU(in_channels, hidden, kernel_size=1, rng=rng))
        stages.append(_DepthwiseBNReLU(hidden, stride=stride, rng=rng))
        stages.append(
            Conv2d(hidden, out_channels, 1, bias=False, rng=rng)
        )
        stages.append(BatchNorm2d(out_channels))
        self.block = Sequential(*stages)

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = self.block(x)
        if self.use_residual:
            out = out + x
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad_input = self.block.backward(grad_output)
        if self.use_residual:
            grad_input = grad_input + grad_output
        return grad_input

    def __repr__(self) -> str:
        return (
            f"InvertedResidual({self.in_channels}->{self.out_channels}, "
            f"t={self.expand_ratio}, s={self.stride}, "
            f"residual={self.use_residual})"
        )
