"""MobileNet V2 (Sandler et al., CVPR 2018) on the numpy substrate.

This is the training model of the Fed-MS evaluation. Two knobs adapt it to
a pure-CPU reproduction without changing the architecture family:

* ``width_mult`` scales every channel count (as in the original paper).
* ``stem_stride`` — CIFAR-scale inputs conventionally use a stride-1 stem so
  a 32x32 image is not immediately reduced to 1x1 by the ImageNet stem.

``MobileNetV2.cifar(...)`` builds the configuration used by our benchmarks.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..common.errors import ConfigurationError
from ..nn.layers import Dropout, GlobalAvgPool2d, Linear
from ..nn.module import Module, Sequential
from .blocks import ConvBNReLU, InvertedResidual, make_divisible

__all__ = ["MobileNetV2", "IMAGENET_INVERTED_RESIDUAL_SETTING"]

# (expand_ratio t, output channels c, repeats n, first stride s) per stage —
# Table 2 of the MobileNet V2 paper.
IMAGENET_INVERTED_RESIDUAL_SETTING: Tuple[Tuple[int, int, int, int], ...] = (
    (1, 16, 1, 1),
    (6, 24, 2, 2),
    (6, 32, 3, 2),
    (6, 64, 4, 2),
    (6, 96, 3, 1),
    (6, 160, 3, 2),
    (6, 320, 1, 1),
)

# A shallow/narrow variant for CPU-budget experiments: same block structure,
# fewer stages and repeats. Keeps >= two stride-2 reductions so a 32x32 input
# still ends at a nontrivial spatial size.
CIFAR_TINY_SETTING: Tuple[Tuple[int, int, int, int], ...] = (
    (1, 16, 1, 1),
    (6, 24, 2, 2),
    (6, 32, 2, 2),
    (6, 64, 2, 2),
)


class MobileNetV2(Module):
    """MobileNet V2 classifier.

    Parameters
    ----------
    num_classes:
        Output classes (10 for CIFAR-10).
    width_mult:
        Channel multiplier applied to every stage.
    inverted_residual_setting:
        Sequence of ``(t, c, n, s)`` stage descriptors; defaults to the
        ImageNet configuration from the original paper.
    stem_stride:
        Stride of the first convolution (2 for ImageNet, 1 for CIFAR).
    dropout:
        Dropout probability before the final classifier.
    rng:
        Generator used for weight initialization.
    """

    def __init__(self, num_classes: int = 10, *, width_mult: float = 1.0,
                 inverted_residual_setting: Optional[Sequence[Tuple[int, int, int, int]]] = None,
                 stem_stride: int = 2, dropout: float = 0.2,
                 last_channel: int = 1280,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if num_classes <= 0:
            raise ConfigurationError(f"num_classes must be positive, got {num_classes}")
        if width_mult <= 0:
            raise ConfigurationError(f"width_mult must be positive, got {width_mult}")
        if stem_stride not in (1, 2):
            raise ConfigurationError(f"stem_stride must be 1 or 2, got {stem_stride}")
        setting = tuple(
            inverted_residual_setting
            if inverted_residual_setting is not None
            else IMAGENET_INVERTED_RESIDUAL_SETTING
        )
        for descriptor in setting:
            if len(descriptor) != 4:
                raise ConfigurationError(
                    f"each stage descriptor must be (t, c, n, s), got {descriptor}"
                )

        self.num_classes = num_classes
        self.width_mult = width_mult

        input_channel = make_divisible(32 * width_mult)
        self.last_channel = make_divisible(last_channel * max(1.0, width_mult))

        features: List[Module] = [
            ConvBNReLU(3, input_channel, stride=stem_stride, rng=rng)
        ]
        for t, c, n, s in setting:
            output_channel = make_divisible(c * width_mult)
            for block_index in range(n):
                stride = s if block_index == 0 else 1
                features.append(
                    InvertedResidual(
                        input_channel, output_channel,
                        stride=stride, expand_ratio=t, rng=rng,
                    )
                )
                input_channel = output_channel
        features.append(
            ConvBNReLU(input_channel, self.last_channel, kernel_size=1, rng=rng)
        )
        self.features = Sequential(*features)
        self.pool = GlobalAvgPool2d()
        self.head_dropout = Dropout(dropout, rng=rng) if dropout > 0 else None
        self.classifier = Linear(self.last_channel, num_classes, rng=rng)

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = self.features(x)
        out = self.pool(out)
        if self.head_dropout is not None:
            out = self.head_dropout(out)
        return self.classifier(out)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = self.classifier.backward(grad_output)
        if self.head_dropout is not None:
            grad = self.head_dropout.backward(grad)
        grad = self.pool.backward(grad)
        return self.features.backward(grad)

    @classmethod
    def cifar(cls, num_classes: int = 10, *, width_mult: float = 0.25,
              dropout: float = 0.0,
              rng: Optional[np.random.Generator] = None) -> "MobileNetV2":
        """CPU-budget CIFAR configuration: stride-1 stem, tiny stage table.

        The default ``width_mult=0.25`` keeps a forward/backward pass on a
        32x32 batch feasible on one CPU core while preserving the inverted
        residual structure the paper trains.
        """
        return cls(
            num_classes,
            width_mult=width_mult,
            inverted_residual_setting=CIFAR_TINY_SETTING,
            stem_stride=1,
            dropout=dropout,
            last_channel=256,
            rng=rng,
        )
