"""Loader for the real CIFAR-10 python/binary batches, when present on disk.

The reproduction runs offline, so the dataset cannot be downloaded; but if a
user has ``cifar-10-batches-py`` locally (the standard pickled batches from
https://www.cs.toronto.edu/~kriz/cifar.html), this loader turns it into the
same :class:`~repro.data.datasets.ArrayDataset` interface the synthetic
generator produces, and every experiment runs unchanged on the real data.
"""

from __future__ import annotations

import os
import pickle
from typing import List, Optional, Tuple

from numpy import concatenate, ndarray
import numpy as np

from ..common.errors import ConfigurationError
from .datasets import ArrayDataset

__all__ = ["cifar10_available", "load_cifar10", "CIFAR10_DIR_ENV"]

CIFAR10_DIR_ENV = "REPRO_CIFAR10_DIR"
_TRAIN_BATCHES = [f"data_batch_{i}" for i in range(1, 6)]
_TEST_BATCH = "test_batch"


def _resolve_directory(directory: Optional[str]) -> Optional[str]:
    if directory is not None:
        return directory
    return os.environ.get(CIFAR10_DIR_ENV)


def cifar10_available(directory: Optional[str] = None) -> bool:
    """True if all six CIFAR-10 batch files exist under ``directory``.

    ``directory`` defaults to the ``REPRO_CIFAR10_DIR`` environment variable.
    """
    directory = _resolve_directory(directory)
    if not directory or not os.path.isdir(directory):
        return False
    names = _TRAIN_BATCHES + [_TEST_BATCH]
    return all(os.path.isfile(os.path.join(directory, name)) for name in names)


def _load_batch(path: str) -> Tuple[ndarray, ndarray]:
    with open(path, "rb") as handle:
        batch = pickle.load(handle, encoding="bytes")
    raw = batch[b"data"].reshape(-1, 3, 32, 32).astype(np.float64)
    labels = np.asarray(batch[b"labels"], dtype=np.int64)
    return raw, labels


def load_cifar10(directory: Optional[str] = None, *,
                 normalize: bool = True) -> Tuple[ArrayDataset, ArrayDataset]:
    """Load the real CIFAR-10 train and test splits.

    Raises :class:`ConfigurationError` if the batch files are missing — call
    :func:`cifar10_available` first, or fall back to
    :func:`repro.data.synthetic.make_synthetic_cifar10`.
    """
    directory = _resolve_directory(directory)
    if not cifar10_available(directory):
        raise ConfigurationError(
            "CIFAR-10 batches not found; set REPRO_CIFAR10_DIR or pass "
            "directory= pointing to cifar-10-batches-py"
        )
    assert directory is not None
    train_parts: List[Tuple[ndarray, ndarray]] = [
        _load_batch(os.path.join(directory, name)) for name in _TRAIN_BATCHES
    ]
    train_x = concatenate([part[0] for part in train_parts])
    train_y = concatenate([part[1] for part in train_parts])
    test_x, test_y = _load_batch(os.path.join(directory, _TEST_BATCH))
    if normalize:
        mean = train_x.mean(axis=(0, 2, 3), keepdims=True)
        std = train_x.std(axis=(0, 2, 3), keepdims=True)
        train_x = (train_x - mean) / std
        test_x = (test_x - mean) / std
    return ArrayDataset(train_x, train_y), ArrayDataset(test_x, test_y)
