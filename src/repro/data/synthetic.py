"""Synthetic CIFAR-10 stand-in.

The real CIFAR-10 requires a download, which is unavailable offline, so this
module generates a class-conditional image dataset with the same geometry
(10 classes, 3x32x32, disjoint train/test splits). Each class is defined by a
deterministic *prototype* combining oriented sinusoidal gratings with a
class-specific color cast; samples are noisy, randomly shifted, optionally
flipped draws around the prototype.

The task is calibrated so that the phenomena the paper's evaluation measures
survive the substitution: with the default ``noise_scale=1.5`` a SmallCNN
trained centrally tops out around 76% test accuracy — the same ceiling the
paper reports for MobileNet V2 on the real CIFAR-10 — while a run wrecked by
Byzantine servers collapses to the 10% random-guess floor. See DESIGN.md,
"Substitutions".

If the real CIFAR-10 binary batches are available on disk, prefer
:func:`repro.data.cifar10.load_cifar10`.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from ..common.errors import ConfigurationError
from .datasets import ArrayDataset

__all__ = ["SyntheticCifar10Config", "class_prototypes", "make_synthetic_cifar10"]

NUM_CLASSES = 10
IMAGE_SHAPE = (3, 32, 32)


class SyntheticCifar10Config:
    """Generation parameters for the synthetic dataset.

    Parameters
    ----------
    noise_scale:
        Standard deviation of the additive Gaussian pixel noise. Larger
        values make the task harder.
    max_shift:
        Maximum absolute circular translation (pixels) applied per sample.
    flip_probability:
        Chance of mirroring a sample horizontally.
    contrast_range:
        Per-sample multiplicative contrast jitter ``(low, high)``.
    """

    def __init__(self, *, noise_scale: float = 1.5, max_shift: int = 3,
                 flip_probability: float = 0.5,
                 contrast_range: Tuple[float, float] = (0.8, 1.2)) -> None:
        if noise_scale < 0:
            raise ConfigurationError(f"noise_scale must be >= 0, got {noise_scale}")
        if max_shift < 0:
            raise ConfigurationError(f"max_shift must be >= 0, got {max_shift}")
        if not 0.0 <= flip_probability <= 1.0:
            raise ConfigurationError(
                f"flip_probability must be in [0, 1], got {flip_probability}"
            )
        low, high = contrast_range
        if not 0 < low <= high:
            raise ConfigurationError(f"invalid contrast_range {contrast_range}")
        self.noise_scale = float(noise_scale)
        self.max_shift = int(max_shift)
        self.flip_probability = float(flip_probability)
        self.contrast_range = (float(low), float(high))


def class_prototypes() -> np.ndarray:
    """Deterministic class prototype images, shape ``(10, 3, 32, 32)``.

    Class ``c`` combines a grating at orientation ``c * 18`` degrees with a
    frequency that alternates between classes, and a color cast rotating
    through RGB space. Adjacent classes share similar orientations, so the
    classes are not linearly separable from raw pixels — a useful property
    for making the CNN genuinely learn features.
    """
    height, width = IMAGE_SHAPE[1], IMAGE_SHAPE[2]
    ys, xs = np.mgrid[0:height, 0:width].astype(np.float64)
    prototypes = np.zeros((NUM_CLASSES,) + IMAGE_SHAPE)
    for label in range(NUM_CLASSES):
        angle = math.pi * label / NUM_CLASSES
        frequency = 2.0 * math.pi * (2 + label % 3) / width
        phase = 0.7 * label
        axis = xs * math.cos(angle) + ys * math.sin(angle)
        grating = np.sin(frequency * axis + phase)
        # Second, orthogonal component with a different frequency makes the
        # prototype 2-D structured rather than a pure 1-D wave.
        cross_axis = -xs * math.sin(angle) + ys * math.cos(angle)
        grating = grating + 0.5 * np.cos(
            frequency * 1.7 * cross_axis + 1.3 * phase
        )
        for channel in range(3):
            color_gain = 0.6 + 0.4 * math.cos(
                2.0 * math.pi * (label / NUM_CLASSES) + 2.1 * channel
            )
            prototypes[label, channel] = color_gain * grating
    return prototypes


def _random_roll(images: np.ndarray, shifts: np.ndarray) -> np.ndarray:
    """Circularly translate each image by its own (dy, dx)."""
    rolled = np.empty_like(images)
    for index, (dy, dx) in enumerate(shifts):
        rolled[index] = np.roll(images[index], (int(dy), int(dx)), axis=(1, 2))
    return rolled


def make_synthetic_cifar10(
    num_train: int = 5000,
    num_test: int = 1000,
    *,
    rng: np.random.Generator,
    config: SyntheticCifar10Config = SyntheticCifar10Config(),
) -> Tuple[ArrayDataset, ArrayDataset]:
    """Generate disjoint train and test splits.

    Labels are balanced (each class receives ``n // 10`` samples, remainders
    spread over the lowest labels). The same generator state never produces
    overlapping train/test samples because all draws are sequential.
    """
    if num_train <= 0 or num_test <= 0:
        raise ConfigurationError("num_train and num_test must be positive")
    prototypes = class_prototypes()

    def generate(count: int) -> ArrayDataset:
        labels = np.arange(count) % NUM_CLASSES
        rng.shuffle(labels)
        images = prototypes[labels].copy()
        contrast = rng.uniform(*config.contrast_range, size=(count, 1, 1, 1))
        images *= contrast
        if config.max_shift > 0:
            shifts = rng.integers(
                -config.max_shift, config.max_shift + 1, size=(count, 2)
            )
            images = _random_roll(images, shifts)
        flips = rng.random(count) < config.flip_probability
        images[flips] = images[flips, :, :, ::-1]
        images += rng.normal(scale=config.noise_scale, size=images.shape)
        return ArrayDataset(images, labels)

    return generate(num_train), generate(num_test)
