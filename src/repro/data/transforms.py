"""Data preprocessing and augmentation transforms.

Composable ``(batch) -> batch`` callables for image datasets: channel-wise
normalization (fit on the training split), random crops with padding, and
horizontal flips — the standard CIFAR-10 training pipeline. Deterministic
transforms apply anywhere; stochastic ones take a generator at construction
so that augmentation is reproducible per consumer.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np

from ..common.errors import ConfigurationError, ShapeError

__all__ = [
    "Transform",
    "Compose",
    "Normalize",
    "RandomHorizontalFlip",
    "RandomCrop",
    "Flatten",
    "fit_normalizer",
]

Transform = Callable[[np.ndarray], np.ndarray]


class Compose:
    """Apply transforms in sequence."""

    def __init__(self, transforms: Sequence[Transform]) -> None:
        self.transforms = list(transforms)

    def __call__(self, batch: np.ndarray) -> np.ndarray:
        for transform in self.transforms:
            batch = transform(batch)
        return batch

    def __repr__(self) -> str:
        inner = ", ".join(repr(t) for t in self.transforms)
        return f"Compose([{inner}])"


class Normalize:
    """Channel-wise standardization of ``(N, C, H, W)`` batches."""

    def __init__(self, mean: np.ndarray, std: np.ndarray) -> None:
        mean = np.asarray(mean, dtype=np.float64)
        std = np.asarray(std, dtype=np.float64)
        if mean.ndim != 1 or mean.shape != std.shape:
            raise ConfigurationError(
                f"mean/std must be matching 1-D arrays, got {mean.shape} "
                f"and {std.shape}"
            )
        if np.any(std <= 0):
            raise ConfigurationError("std entries must be positive")
        self.mean = mean
        self.std = std

    def __call__(self, batch: np.ndarray) -> np.ndarray:
        if batch.ndim != 4 or batch.shape[1] != self.mean.size:
            raise ShapeError(
                f"expected (N, {self.mean.size}, H, W), got {batch.shape}"
            )
        return (batch - self.mean[None, :, None, None]) \
            / self.std[None, :, None, None]

    def __repr__(self) -> str:
        return f"Normalize(channels={self.mean.size})"


def fit_normalizer(images: np.ndarray) -> Normalize:
    """Build a :class:`Normalize` from a training batch's statistics."""
    if images.ndim != 4:
        raise ShapeError(f"expected (N, C, H, W), got {images.shape}")
    mean = images.mean(axis=(0, 2, 3))
    std = images.std(axis=(0, 2, 3))
    std = np.where(std > 0, std, 1.0)
    return Normalize(mean, std)


class RandomHorizontalFlip:
    """Mirror each image independently with probability ``p``."""

    def __init__(self, p: float = 0.5, *,
                 rng: Optional[np.random.Generator] = None) -> None:
        if not 0.0 <= p <= 1.0:
            raise ConfigurationError(f"p must be in [0, 1], got {p}")
        self.p = float(p)
        self._rng = rng if rng is not None else np.random.default_rng(0)

    def __call__(self, batch: np.ndarray) -> np.ndarray:
        if batch.ndim != 4:
            raise ShapeError(f"expected (N, C, H, W), got {batch.shape}")
        flips = self._rng.random(batch.shape[0]) < self.p
        out = batch.copy()
        out[flips] = out[flips, :, :, ::-1]
        return out

    def __repr__(self) -> str:
        return f"RandomHorizontalFlip(p={self.p})"


class RandomCrop:
    """Zero-pad by ``padding`` then crop back to the original size at a
    random offset per image — the standard CIFAR augmentation."""

    def __init__(self, padding: int = 4, *,
                 rng: Optional[np.random.Generator] = None) -> None:
        if padding <= 0:
            raise ConfigurationError(f"padding must be positive, got {padding}")
        self.padding = int(padding)
        self._rng = rng if rng is not None else np.random.default_rng(0)

    def __call__(self, batch: np.ndarray) -> np.ndarray:
        if batch.ndim != 4:
            raise ShapeError(f"expected (N, C, H, W), got {batch.shape}")
        n, _, height, width = batch.shape
        pad = self.padding
        padded = np.pad(batch, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
        rows = self._rng.integers(0, 2 * pad + 1, size=n)
        cols = self._rng.integers(0, 2 * pad + 1, size=n)
        out = np.empty_like(batch)
        for index in range(n):
            out[index] = padded[index, :,
                                rows[index]:rows[index] + height,
                                cols[index]:cols[index] + width]
        return out

    def __repr__(self) -> str:
        return f"RandomCrop(padding={self.padding})"


class Flatten:
    """Reshape image batches ``(N, C, H, W)`` to feature rows ``(N, CHW)``."""

    def __call__(self, batch: np.ndarray) -> np.ndarray:
        return batch.reshape(batch.shape[0], -1)

    def __repr__(self) -> str:
        return "Flatten()"
