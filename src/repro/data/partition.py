"""Non-IID client partitioning.

Implements the Dirichlet partitioning of Hsu et al. (2019), the scheme the
paper uses to control data heterogeneity: for each class, the class's
samples are split across the ``K`` clients according to a draw from
``Dirichlet(alpha * 1_K)``. Small ``alpha`` (the paper's ``D_alpha``)
concentrates each class on few clients; large ``alpha`` approaches an IID
split. Figure 4 of the paper visualizes exactly these partitions.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..common.errors import ConfigurationError
from .datasets import ArrayDataset, Subset

__all__ = ["dirichlet_partition", "iid_partition", "shard_partition"]


def _validate(dataset: ArrayDataset, num_clients: int) -> None:
    if num_clients <= 0:
        raise ConfigurationError(f"num_clients must be positive, got {num_clients}")
    if len(dataset) < num_clients:
        raise ConfigurationError(
            f"dataset of size {len(dataset)} cannot cover {num_clients} clients"
        )


def iid_partition(dataset: ArrayDataset, num_clients: int, *,
                  rng: np.random.Generator) -> List[Subset]:
    """Shuffle and split the dataset into ``num_clients`` equal parts."""
    _validate(dataset, num_clients)
    order = rng.permutation(len(dataset))
    return [Subset(dataset, part) for part in np.array_split(order, num_clients)]


def dirichlet_partition(dataset: ArrayDataset, num_clients: int, *,
                        alpha: float, rng: np.random.Generator,
                        min_samples_per_client: int = 1,
                        max_retries: int = 100) -> List[Subset]:
    """Dirichlet non-IID partition (Hsu et al., 2019).

    Parameters
    ----------
    alpha:
        Dirichlet concentration — the paper's ``D_alpha``. Values used in the
        evaluation: 1, 5, 10, 1000.
    min_samples_per_client:
        Re-draw the allocation until every client holds at least this many
        samples, so no client is left unable to form a mini-batch.
    max_retries:
        Upper bound on redraws before giving up.

    Returns
    -------
    A list of ``num_clients`` dataset views covering the dataset exactly.
    """
    _validate(dataset, num_clients)
    if alpha <= 0:
        raise ConfigurationError(f"alpha must be positive, got {alpha}")
    if min_samples_per_client * num_clients > len(dataset):
        raise ConfigurationError(
            f"cannot guarantee {min_samples_per_client} samples for each of "
            f"{num_clients} clients with only {len(dataset)} samples"
        )

    labels = dataset.labels
    classes = np.unique(labels)
    for _ in range(max_retries):
        client_indices: List[List[int]] = [[] for _ in range(num_clients)]
        for cls in classes:
            cls_indices = np.flatnonzero(labels == cls)
            rng.shuffle(cls_indices)
            proportions = rng.dirichlet(np.full(num_clients, alpha))
            # Convert proportions to contiguous split points over this class.
            cut_points = (np.cumsum(proportions)[:-1] * len(cls_indices)).astype(int)
            for client, part in enumerate(np.split(cls_indices, cut_points)):
                client_indices[client].extend(part.tolist())
        sizes = [len(part) for part in client_indices]
        if min(sizes) >= min_samples_per_client:
            return [Subset(dataset, np.sort(part)) for part in client_indices]
    raise ConfigurationError(
        f"failed to draw a Dirichlet(alpha={alpha}) partition giving every "
        f"client >= {min_samples_per_client} samples in {max_retries} tries"
    )


def shard_partition(dataset: ArrayDataset, num_clients: int, *,
                    shards_per_client: int,
                    rng: np.random.Generator) -> List[Subset]:
    """McMahan et al. (2017) pathological shard partition.

    Sort by label, slice into ``num_clients * shards_per_client`` shards and
    deal ``shards_per_client`` shards to each client. With
    ``shards_per_client=2`` most clients see only two classes — an extreme
    non-IID baseline complementary to the Dirichlet scheme.
    """
    _validate(dataset, num_clients)
    if shards_per_client <= 0:
        raise ConfigurationError(
            f"shards_per_client must be positive, got {shards_per_client}"
        )
    num_shards = num_clients * shards_per_client
    if num_shards > len(dataset):
        raise ConfigurationError(
            f"{num_shards} shards requested but dataset has {len(dataset)} samples"
        )
    by_label = np.argsort(dataset.labels, kind="stable")
    shards = np.array_split(by_label, num_shards)
    order = rng.permutation(num_shards)
    partitions = []
    for client in range(num_clients):
        picked = order[client * shards_per_client:(client + 1) * shards_per_client]
        indices = np.concatenate([shards[s] for s in picked])
        partitions.append(Subset(dataset, np.sort(indices)))
    return partitions
