"""Datasets, synthetic CIFAR-10, and non-IID client partitioning."""

from .cifar10 import CIFAR10_DIR_ENV, cifar10_available, load_cifar10
from .datasets import ArrayDataset, DataLoader, Subset
from .partition import dirichlet_partition, iid_partition, shard_partition
from .stats import (
    effective_classes_per_client,
    label_distribution_matrix,
    mean_client_entropy,
    mean_total_variation_distance,
)
from .transforms import (
    Compose,
    Flatten,
    Normalize,
    RandomCrop,
    RandomHorizontalFlip,
    fit_normalizer,
)
from .synthetic import (
    SyntheticCifar10Config,
    class_prototypes,
    make_synthetic_cifar10,
)

__all__ = [
    "ArrayDataset",
    "DataLoader",
    "Subset",
    "SyntheticCifar10Config",
    "class_prototypes",
    "make_synthetic_cifar10",
    "cifar10_available",
    "load_cifar10",
    "CIFAR10_DIR_ENV",
    "dirichlet_partition",
    "iid_partition",
    "shard_partition",
    "label_distribution_matrix",
    "mean_total_variation_distance",
    "mean_client_entropy",
    "effective_classes_per_client",
    "Compose",
    "Normalize",
    "RandomHorizontalFlip",
    "RandomCrop",
    "Flatten",
    "fit_normalizer",
]
