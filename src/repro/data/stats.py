"""Partition-heterogeneity statistics (the content of the paper's Fig. 4).

Figure 4 shows, for each Dirichlet ``D_alpha``, how the class distribution
varies across the first 10 clients. These helpers compute the underlying
label-count matrix and scalar heterogeneity indices so the benchmark can
report the figure as numbers.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from .datasets import ArrayDataset

__all__ = [
    "label_distribution_matrix",
    "mean_total_variation_distance",
    "mean_client_entropy",
    "effective_classes_per_client",
]


def label_distribution_matrix(partitions: Sequence[ArrayDataset],
                              num_classes: int) -> np.ndarray:
    """Label counts per client: shape ``(num_clients, num_classes)``."""
    return np.stack(
        [part.label_histogram(num_classes) for part in partitions]
    ).astype(np.float64)


def _row_probabilities(matrix: np.ndarray) -> np.ndarray:
    totals = matrix.sum(axis=1, keepdims=True)
    safe_totals = np.where(totals > 0, totals, 1.0)
    return matrix / safe_totals


def mean_total_variation_distance(partitions: Sequence[ArrayDataset],
                                  num_classes: int) -> float:
    """Average TV distance between each client's label law and the global law.

    0 means perfectly IID; approaching ``1 - 1/num_classes`` means each
    client holds a single class. Decreases monotonically (in expectation)
    with the Dirichlet ``alpha`` — the scalar summary of Fig. 4.
    """
    matrix = label_distribution_matrix(partitions, num_classes)
    global_law = matrix.sum(axis=0)
    global_law = global_law / global_law.sum()
    client_laws = _row_probabilities(matrix)
    tv = 0.5 * np.abs(client_laws - global_law).sum(axis=1)
    return float(tv.mean())


def mean_client_entropy(partitions: Sequence[ArrayDataset],
                        num_classes: int) -> float:
    """Average Shannon entropy (nats) of client label distributions.

    ``log(num_classes)`` for IID clients, 0 for single-class clients.
    """
    laws = _row_probabilities(label_distribution_matrix(partitions, num_classes))
    with np.errstate(divide="ignore", invalid="ignore"):
        logs = np.where(laws > 0, np.log(laws), 0.0)
    entropy = -(laws * logs).sum(axis=1)
    return float(entropy.mean())


def effective_classes_per_client(partitions: Sequence[ArrayDataset],
                                 num_classes: int,
                                 *, threshold: float = 0.01) -> List[int]:
    """Number of classes holding more than ``threshold`` of each client's data."""
    laws = _row_probabilities(label_distribution_matrix(partitions, num_classes))
    return [int(np.sum(row > threshold)) for row in laws]
