"""Dataset and mini-batch loading primitives.

A :class:`Dataset` is an indexable collection of ``(x, y)`` pairs backed by
numpy arrays. :class:`DataLoader` draws the uniformly random mini-batches
``xi_{t,i}^k`` that the paper's local SGD step samples from each client's
local dataset ``D_k``.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence, Tuple

import numpy as np

from ..common.errors import ConfigurationError, ShapeError

__all__ = ["ArrayDataset", "DataLoader", "Subset"]


class ArrayDataset:
    """An in-memory dataset of features and integer labels."""

    def __init__(self, features: np.ndarray, labels: np.ndarray) -> None:
        features = np.asarray(features, dtype=np.float64)
        labels = np.asarray(labels)
        if features.shape[0] != labels.shape[0]:
            raise ShapeError(
                f"{features.shape[0]} feature rows but {labels.shape[0]} labels"
            )
        if labels.ndim != 1:
            raise ShapeError(f"labels must be 1-D, got shape {labels.shape}")
        self.features = features
        # copy=False keeps shared-memory-backed label arrays zero-copy.
        self.labels = labels.astype(np.int64, copy=False)

    def __len__(self) -> int:
        return int(self.features.shape[0])

    def __getitem__(self, index) -> Tuple[np.ndarray, np.ndarray]:
        return self.features[index], self.labels[index]

    @property
    def num_classes(self) -> int:
        """Number of distinct classes, inferred as ``max label + 1``."""
        if len(self) == 0:
            return 0
        return int(self.labels.max()) + 1

    def subset(self, indices: Sequence[int]) -> "Subset":
        """A view of this dataset restricted to ``indices``."""
        return Subset(self, indices)

    def label_histogram(self, num_classes: Optional[int] = None) -> np.ndarray:
        """Count of samples per class."""
        classes = num_classes if num_classes is not None else self.num_classes
        return np.bincount(self.labels, minlength=classes)


class Subset(ArrayDataset):
    """A dataset view over a subset of a parent dataset's rows."""

    def __init__(self, parent: ArrayDataset, indices: Sequence[int]) -> None:
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size and (indices.min() < 0 or indices.max() >= len(parent)):
            raise ConfigurationError(
                f"subset indices out of range for dataset of size {len(parent)}"
            )
        super().__init__(parent.features[indices], parent.labels[indices])
        self.indices = indices


class DataLoader:
    """Uniform random mini-batch sampler over a dataset.

    Each call to :meth:`sample_batch` draws a batch with replacement across
    calls (fresh uniform subset each time), matching the i.i.d. mini-batch
    assumption (Assumption 3) of the paper's analysis. :meth:`epoch` provides
    conventional shuffled full-epoch iteration for centralized training.
    """

    def __init__(self, dataset: ArrayDataset, batch_size: int, *,
                 rng: np.random.Generator) -> None:
        if batch_size <= 0:
            raise ConfigurationError(f"batch_size must be positive, got {batch_size}")
        if len(dataset) == 0:
            raise ConfigurationError("cannot load from an empty dataset")
        self.dataset = dataset
        self.batch_size = min(batch_size, len(dataset))
        self._rng = rng

    def reseed(self, rng: np.random.Generator) -> None:
        """Replace the sampling stream (e.g. with a per-round derived one).

        Execution backends use this to make mini-batch sampling a pure
        function of ``(seed, client, round)`` instead of cursor state, so
        that serial and parallel round loops draw identical batches.
        """
        self._rng = rng

    def sample_batch(self) -> Tuple[np.ndarray, np.ndarray]:
        """One uniformly random mini-batch (without replacement within the batch)."""
        indices = self._rng.choice(len(self.dataset), size=self.batch_size,
                                   replace=False)
        return self.dataset[indices]

    def epoch(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Iterate the dataset once in a fresh shuffled order."""
        order = self._rng.permutation(len(self.dataset))
        for start in range(0, len(order), self.batch_size):
            batch = order[start:start + self.batch_size]
            yield self.dataset[batch]
