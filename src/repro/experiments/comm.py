"""Codec x attack x filter communication-efficiency sweep.

The communication-efficiency claim this reproduces is two-sided: upload
codecs must cut bytes *and* leave the Byzantine filters effective — Tao et
al. (arXiv:2303.10434) show compression and resilience interact, so the
sweep measures both together. Each attack is run once per codec chain
under the adaptive-beta trimmed mean; per row we report offered bytes per
round (delivered plus dropped — what the senders put on the wire), the
compression ratio against the identity run of the same attack, and the
final-accuracy delta against that identity run.

``python -m repro comm`` emits this next to the sparse-vs-full message
accounting; ``benchmarks/test_comm_codecs.py`` asserts the acceptance
criteria (>= 10x byte reduction, accuracy within two points).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..attacks import make_attack
from ..core import FedMSConfig, FedMSTrainer
from .results import FigureResult
from .specs import ATTACK_KWARGS, DEFAULT_ALPHA, DEFAULT_EPSILON
from .workload import BenchScale, FigureWorkload, current_scale

__all__ = ["CODEC_SWEEP_CONFIGS", "COMM_SWEEP_ATTACKS", "run_comm_codecs"]

#: ``(label, codec chain)`` pairs the sweep compares. The identity row is
#: the uncompressed baseline the ratios and accuracy deltas refer to.
CODEC_SWEEP_CONFIGS: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ("identity", ()),
    ("topk+int8", ("topk(0.05)", "int8")),
    ("topk+sign", ("topk(0.05)", "sign")),
)

#: Attacks the sweep runs: the paper's Noise attack and the colluding
#: attack that stresses the adaptive-beta estimator.
COMM_SWEEP_ATTACKS: Tuple[str, ...] = ("noise", "colluding")


def run_comm_codecs(*, scale: Optional[BenchScale] = None,
                    attacks: Sequence[str] = COMM_SWEEP_ATTACKS,
                    codec_configs: Sequence[Tuple[str, Sequence[str]]]
                    = CODEC_SWEEP_CONFIGS,
                    filter_rule_name: str = "adaptive_trimmed_mean",
                    num_rounds: Optional[int] = None,
                    seed: int = 0) -> FigureResult:
    """Run every codec chain against every attack; returns one row each.

    All runs of one attack share the seed, partitions and Byzantine
    placement, so the only difference between a codec row and its identity
    baseline is the codec itself.
    """
    scale = scale or current_scale()
    workload = FigureWorkload(scale, seed=seed)
    partitions = workload.partitions(DEFAULT_ALPHA, tag="comm_codecs")
    num_byzantine = max(1, round(DEFAULT_EPSILON * scale.num_servers))
    rounds = num_rounds if num_rounds is not None else scale.num_rounds
    rows: List[Dict[str, object]] = []
    for attack_name in attacks:
        identity_row: Optional[Dict[str, object]] = None
        for label, codecs in codec_configs:
            config = FedMSConfig(
                num_clients=scale.num_clients,
                num_servers=scale.num_servers,
                num_byzantine=num_byzantine,
                local_steps=3,
                batch_size=scale.batch_size,
                upload_codecs=list(codecs),
                filter_rule_name=filter_rule_name,
                eval_clients=2,
                seed=seed,
            )
            attack = make_attack(
                attack_name, **ATTACK_KWARGS.get(attack_name, {})
            )
            with FedMSTrainer(
                config,
                model_factory=workload.model_factory(),
                client_datasets=partitions,
                test_dataset=workload.test,
                attack=attack,
                flatten_inputs=False,
            ) as trainer:
                history = trainer.run(rounds, eval_every=scale.eval_every)
                stats = trainer.network.stats
            row: Dict[str, object] = {
                "attack": attack_name,
                "codec": label,
                "codecs": list(codecs),
                "filter": filter_rule_name,
                "offered_bytes_per_round": stats.offered_bytes_total / rounds,
                "upload_bytes_per_round": (
                    stats.bytes_by_tag.get("upload", 0) / rounds
                ),
                "dissemination_bytes_per_round": (
                    stats.bytes_by_tag.get("dissemination", 0) / rounds
                ),
                "final_accuracy": history.final_accuracy,
            }
            if identity_row is None:
                identity_row = row
                row["compression_ratio"] = 1.0
                row["accuracy_delta"] = 0.0
            else:
                baseline = float(identity_row["offered_bytes_per_round"])
                row["compression_ratio"] = (
                    baseline / float(row["offered_bytes_per_round"])
                )
                row["accuracy_delta"] = (
                    float(row["final_accuracy"])
                    - float(identity_row["final_accuracy"])
                )
            rows.append(row)
    return FigureResult(
        figure_id="comm_codecs",
        params={
            "epsilon": DEFAULT_EPSILON,
            "num_byzantine": num_byzantine,
            "alpha": DEFAULT_ALPHA,
            "filter": filter_rule_name,
            "num_rounds": rounds,
            "scale": scale.name,
            "data_source": workload.source,
        },
        rows=rows,
        notes="offered bytes = delivered + dropped; compression_ratio and "
              "accuracy_delta are against the identity run of the same "
              "attack",
    )
