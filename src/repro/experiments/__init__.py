"""Runnable reproductions of the paper's figures and claims."""

from .ascii_plot import ascii_curve, ascii_curves
from .async_deadline import run_async_deadline
from .comm import CODEC_SWEEP_CONFIGS, COMM_SWEEP_ATTACKS, run_comm_codecs
from .paper import (
    PAPER_CLAIMS,
    PAPER_FIG2_FINAL_ACCURACY,
    PAPER_FIG3_VANILLA_FINAL,
    PAPER_FIG5_FEDMS_FINAL,
)
from .perf import (
    BENCH_FILENAME,
    PERF_PROFILES,
    POPULATION_PERF,
    PerfProfile,
    format_report,
    run_round_loop_perf,
    write_bench_file,
)
from .population import (
    POPULATION_PRESETS,
    PopulationPreset,
    build_population_trainer,
    run_population_comm,
    run_population_scale,
)
from .replication import ReplicatedCurve, ReplicationSummary, replicate
from .results import Curve, FigureResult
from .specs import (
    ADAPTIVE_CROSSOVER_VARIANTS,
    run_adaptive_crossover,
    run_comm_cost,
    run_convergence_rate,
    run_fault_tolerance,
    run_fig2_attack_panel,
    run_fig3_epsilon_panel,
    run_fig4_heterogeneity,
    run_fig5_alpha_panel,
    run_filter_ablation,
)
from .tables import format_curves, format_figure, format_rows
from .workload import SCALES, BenchScale, FigureWorkload, current_scale

__all__ = [
    "BenchScale",
    "SCALES",
    "current_scale",
    "FigureWorkload",
    "Curve",
    "FigureResult",
    "ReplicatedCurve",
    "ReplicationSummary",
    "replicate",
    "run_fig2_attack_panel",
    "run_fig3_epsilon_panel",
    "run_fig4_heterogeneity",
    "run_fig5_alpha_panel",
    "run_async_deadline",
    "run_comm_cost",
    "run_comm_codecs",
    "CODEC_SWEEP_CONFIGS",
    "COMM_SWEEP_ATTACKS",
    "run_convergence_rate",
    "run_filter_ablation",
    "run_fault_tolerance",
    "run_adaptive_crossover",
    "ADAPTIVE_CROSSOVER_VARIANTS",
    "BENCH_FILENAME",
    "PERF_PROFILES",
    "POPULATION_PERF",
    "POPULATION_PRESETS",
    "PopulationPreset",
    "build_population_trainer",
    "run_population_comm",
    "run_population_scale",
    "PerfProfile",
    "format_report",
    "run_round_loop_perf",
    "write_bench_file",
    "ascii_curve",
    "ascii_curves",
    "format_curves",
    "format_rows",
    "format_figure",
    "PAPER_CLAIMS",
    "PAPER_FIG2_FINAL_ACCURACY",
    "PAPER_FIG3_VANILLA_FINAL",
    "PAPER_FIG5_FEDMS_FINAL",
]
