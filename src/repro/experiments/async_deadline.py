"""Deadline-vs-barrier sweep: simulated round time against accuracy.

The barrier semantics of Algorithm 1 make every round as slow as its
slowest PS broadcast; the deadline engine (docs/faults.md) aggregates
whatever arrived when the round deadline fires and admits late broadcasts
next round within the staleness bound. This sweep quantifies the trade:
for each ``(deadline quantile, straggler rate)`` combination it runs a
deadline-mode trainer (health scoring on) and the barrier baseline of the
same seed/partitions/attack, and reports simulated time, deadline misses,
stale admissions and final accuracy side by side.

``python -m repro async`` prints the rows;
``benchmarks/test_async_deadline.py`` asserts the acceptance criteria
(deadline mode measurably faster under stragglers, accuracy within the
fig2 benchmark margin).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..attacks import make_attack
from ..core import FedMSConfig, FedMSTrainer
from .results import FigureResult
from .specs import ATTACK_KWARGS, DEFAULT_ALPHA, DEFAULT_EPSILON
from .workload import BenchScale, FigureWorkload, current_scale

__all__ = ["run_async_deadline"]


def run_async_deadline(*, attack_name: str = "noise",
                       scale: Optional[BenchScale] = None,
                       seed: int = 0,
                       deadline_quantiles: Sequence[float] = (0.5, 0.9),
                       straggler_rates: Sequence[float] = (0.0, 0.2),
                       num_rounds: Optional[int] = None) -> FigureResult:
    """Deadline-mode runs against their barrier baselines, one row each.

    Every combination shares the workload (seed, partitions, Byzantine
    placement, attack); within a straggler rate the barrier baseline runs
    once and each quantile's deadline run is compared to it via
    ``time_ratio`` (deadline simulated time / barrier simulated time).
    """
    scale = scale or current_scale()
    workload = FigureWorkload(scale, seed=seed)
    partitions = workload.partitions(DEFAULT_ALPHA, tag="async_deadline")
    num_byzantine = max(1, round(DEFAULT_EPSILON * scale.num_servers))
    rounds = num_rounds if num_rounds is not None else scale.num_rounds

    def run_one(*, rate: float, mode: str,
                quantile: Optional[float]) -> Dict[str, object]:
        config = FedMSConfig(
            num_clients=scale.num_clients,
            num_servers=scale.num_servers,
            num_byzantine=num_byzantine,
            local_steps=3,
            batch_size=scale.batch_size,
            trim_ratio=DEFAULT_EPSILON,
            eval_clients=2,
            seed=seed,
            straggler_rate=rate,
            aggregation_mode=mode,
            deadline_quantile=quantile if quantile is not None else 0.9,
            health_scoring=mode == "deadline",
        )
        attack = make_attack(attack_name,
                             **ATTACK_KWARGS.get(attack_name, {}))
        with FedMSTrainer(
            config,
            model_factory=workload.model_factory(),
            client_datasets=partitions,
            test_dataset=workload.test,
            attack=attack,
            flatten_inputs=False,
        ) as trainer:
            history = trainer.run(rounds, eval_every=scale.eval_every)
        return {
            "attack": attack_name,
            "mode": mode,
            "straggler_rate": rate,
            "deadline_quantile": quantile,
            "final_accuracy": history.final_accuracy,
            "simulated_time_s": history.total_simulated_time_s,
            "deadline_missed": history.total_deadline_missed,
            "late_admitted": history.total_late_admitted,
        }

    rows: List[Dict[str, object]] = []
    for rate in straggler_rates:
        barrier = run_one(rate=rate, mode="barrier", quantile=None)
        barrier["time_ratio"] = 1.0
        rows.append(barrier)
        barrier_time = float(barrier["simulated_time_s"] or 0.0)
        for quantile in deadline_quantiles:
            row = run_one(rate=rate, mode="deadline", quantile=quantile)
            deadline_time = float(row["simulated_time_s"] or 0.0)
            row["time_ratio"] = (deadline_time / barrier_time
                                 if barrier_time > 0 else None)
            rows.append(row)
    return FigureResult(
        figure_id="async_deadline",
        params={
            "attack": attack_name,
            "epsilon": DEFAULT_EPSILON,
            "num_byzantine": num_byzantine,
            "alpha": DEFAULT_ALPHA,
            "num_rounds": rounds,
            "deadline_quantiles": list(deadline_quantiles),
            "straggler_rates": list(straggler_rates),
            "scale": scale.name,
            "data_source": workload.source,
        },
        rows=rows,
        notes="time_ratio = deadline simulated time / barrier simulated "
              "time at the same straggler rate; deadline rows run with "
              "health scoring enabled",
    )
