"""Result containers for the figure reproductions."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["Curve", "FigureResult"]


@dataclass
class Curve:
    """One algorithm's test-accuracy trajectory."""

    label: str
    rounds: List[int]
    accuracies: List[float]

    @property
    def final_accuracy(self) -> float:
        if not self.accuracies:
            raise ValueError(f"curve {self.label!r} has no measurements")
        return self.accuracies[-1]

    @property
    def best_accuracy(self) -> float:
        if not self.accuracies:
            raise ValueError(f"curve {self.label!r} has no measurements")
        return max(self.accuracies)

    def to_dict(self) -> Dict[str, object]:
        return {
            "label": self.label,
            "rounds": self.rounds,
            "accuracies": self.accuracies,
            "final_accuracy": self.final_accuracy,
        }


@dataclass
class FigureResult:
    """A reproduced figure: its identity, parameters and curves/rows."""

    figure_id: str
    params: Dict[str, object] = field(default_factory=dict)
    curves: List[Curve] = field(default_factory=list)
    rows: List[Dict[str, object]] = field(default_factory=list)
    notes: Optional[str] = None

    def curve(self, label: str) -> Curve:
        for curve in self.curves:
            if curve.label == label:
                return curve
        raise KeyError(
            f"no curve {label!r} in {self.figure_id}; "
            f"have {[c.label for c in self.curves]}"
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "figure_id": self.figure_id,
            "params": self.params,
            "curves": [c.to_dict() for c in self.curves],
            "rows": self.rows,
            "notes": self.notes,
        }
