"""Population-scale experiment drivers (``python -m repro population``).

Two entry points:

* :func:`run_population_scale` — the headline extension run: a population
  of K clients (500-5000 depending on scale), 10% sampled per round, with
  join/leave churn and Byzantine edge aggregators, trained through the
  sharded edge -> region -> global topology. Reported against a benign run
  of the same population, so the fig2-shaped question — does the per-tier
  filter hold the accuracy? — is answered by two curves side by side.
* :func:`run_population_comm` — the traffic view: per-leg message/byte
  totals (``model_fetch``, ``tier0_upload``, ``tier<t>_exchange``) and the
  peak materialized-client gauge, surfaced by ``python -m repro comm``.

Both build on :func:`build_population_trainer`, which maps a
:class:`~repro.experiments.workload.BenchScale` name to a population
preset (size, tier shape, Byzantine budgets).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..attacks import make_attack
from ..common.rng import stream_seed
from ..core.config import FedMSConfig
from ..models import SoftmaxRegression
from ..population import (
    ChurnPlan,
    PopulationTrainer,
    make_blob_population,
    make_blob_test_dataset,
)
from .results import Curve, FigureResult
from .specs import ATTACK_KWARGS
from .workload import BenchScale, current_scale

__all__ = ["PopulationPreset", "POPULATION_PRESETS",
           "build_population_trainer", "run_population_scale",
           "run_population_comm"]


@dataclass(frozen=True)
class PopulationPreset:
    """Size knobs for one population run, keyed by bench scale name."""

    population_size: int
    tier_spec: Tuple[int, ...]
    #: Per-tier Byzantine budgets used when an attack is on. Each budget
    #: is feasible for the tier shape (``min_children >= 2B+1``), which
    #: :class:`FedMSConfig` validation enforces.
    tier_byzantine: Tuple[int, ...]
    num_rounds: int
    eval_every: int
    sample_fraction: float = 0.1
    samples_per_client: int = 24
    feature_dim: int = 10
    num_classes: int = 4
    local_steps: int = 2
    batch_size: int = 16
    learning_rate: float = 0.1
    heterogeneity: float = 0.3


POPULATION_PRESETS: Dict[str, PopulationPreset] = {
    "tiny": PopulationPreset(
        population_size=60, tier_spec=(6, 2, 1), tier_byzantine=(1, 0, 0),
        num_rounds=3, eval_every=1, sample_fraction=0.2,
    ),
    "smoke": PopulationPreset(
        population_size=200, tier_spec=(6, 2, 1), tier_byzantine=(1, 0, 0),
        num_rounds=6, eval_every=2,
    ),
    "reduced": PopulationPreset(
        population_size=1000, tier_spec=(8, 2, 1), tier_byzantine=(1, 0, 0),
        num_rounds=10, eval_every=2,
    ),
    # ISSUE acceptance shape: K=5000, 20% of the 10 edges Byzantine.
    "paper": PopulationPreset(
        population_size=5000, tier_spec=(10, 2, 1), tier_byzantine=(2, 0, 0),
        num_rounds=15, eval_every=3,
    ),
}


def build_population_trainer(preset: PopulationPreset, *, seed: int,
                             attack_name: Optional[str] = None,
                             with_churn: bool = True,
                             population_size: Optional[int] = None,
                             sample_fraction: Optional[float] = None,
                             num_rounds: Optional[int] = None,
                             filter_rule_name: Optional[str] = None
                             ) -> Tuple[PopulationTrainer, int]:
    """Build a ready-to-run trainer for ``preset`` (with overrides).

    Returns ``(trainer, num_rounds)``. The execution backend and worker
    count come from the environment (``REPRO_EXECUTION_BACKEND`` /
    ``REPRO_NUM_WORKERS``), like every other experiment.
    """
    population = (population_size if population_size is not None
                  else preset.population_size)
    rounds = num_rounds if num_rounds is not None else preset.num_rounds
    fraction = (sample_fraction if sample_fraction is not None
                else preset.sample_fraction)
    attacked = attack_name is not None
    config = FedMSConfig(
        num_clients=population,
        num_servers=sum(preset.tier_spec),
        num_byzantine=0,
        local_steps=preset.local_steps,
        batch_size=preset.batch_size,
        learning_rate=preset.learning_rate,
        seed=seed,
        filter_rule_name=filter_rule_name,
        population_size=population,
        sample_fraction=fraction,
        tier_spec=preset.tier_spec,
        tier_byzantine=preset.tier_byzantine if attacked else None,
        churn_join_rate=0.15 if with_churn else 0.0,
        churn_leave_rate=0.1 if with_churn else 0.0,
    )
    shard_specs = make_blob_population(
        population,
        samples_per_client=preset.samples_per_client,
        feature_dim=preset.feature_dim,
        num_classes=preset.num_classes,
        seed=seed,
        heterogeneity=preset.heterogeneity,
    )
    test = make_blob_test_dataset(
        num_samples=max(200, 4 * preset.samples_per_client),
        feature_dim=preset.feature_dim,
        num_classes=preset.num_classes,
        seed=seed,
    )
    churn_plan = None
    if config.has_churn and rounds > 1:
        # The plan is drawn once, up front, from its own named stream —
        # after that the run is fully deterministic (FaultPlan idiom).
        churn_plan = ChurnPlan.from_config(
            config, num_rounds=rounds,
            rng=np.random.default_rng(
                stream_seed(seed, "population/churn/plan")
            ),
        )
    attack = None
    if attacked:
        attack = make_attack(attack_name,
                             **ATTACK_KWARGS.get(attack_name, {}))
    dim, classes = preset.feature_dim, preset.num_classes
    trainer = PopulationTrainer(
        config,
        model_factory=lambda rng: SoftmaxRegression(dim, classes, rng=rng),
        shard_specs=shard_specs,
        test_dataset=test,
        attack=attack,
        churn_plan=churn_plan,
    )
    return trainer, rounds


def _history_curve(label: str, history) -> Curve:
    points = [(r.round_index + 1, r.test_accuracy)
              for r in history.records if r.test_accuracy is not None]
    return Curve(label=label,
                 rounds=[p[0] for p in points],
                 accuracies=[float(p[1]) for p in points])


def run_population_scale(*, attack_name: str = "sign_flip",
                         scale: Optional[BenchScale] = None,
                         populations: Optional[Sequence[int]] = None,
                         sample_fraction: Optional[float] = None,
                         num_rounds: Optional[int] = None,
                         with_churn: bool = True,
                         filter_rule_name: Optional[str] = None,
                         seed: int = 0) -> FigureResult:
    """Attacked vs benign population runs at one or more sizes.

    For each population size (default: the scale's preset size), runs the
    sharded topology once with Byzantine edge aggregators running
    ``attack_name`` and once benign, recording both accuracy curves plus a
    stats row per run (peak materialized clients, slots, churn volume,
    per-tier fallbacks).
    """
    scale = scale or current_scale()
    preset = POPULATION_PRESETS[scale.name]
    sizes = list(populations) if populations else [preset.population_size]
    curves: List[Curve] = []
    rows: List[Dict[str, object]] = []
    for population in sizes:
        for label_suffix, attacked in (("attacked", True), ("benign", False)):
            trainer, rounds = build_population_trainer(
                preset, seed=seed,
                attack_name=attack_name if attacked else None,
                with_churn=with_churn,
                population_size=population,
                sample_fraction=sample_fraction,
                num_rounds=num_rounds,
                filter_rule_name=filter_rule_name,
            )
            label = f"K={population} ({label_suffix})"
            with trainer:
                history = trainer.run(rounds,
                                      eval_every=preset.eval_every)
                stats = trainer.network.stats
                curves.append(_history_curve(label, history))
                rows.append({
                    "population": population,
                    "variant": label_suffix,
                    "attack": attack_name if attacked else None,
                    "tier_spec": list(trainer.topology.counts),
                    "tier_byzantine": list(trainer.topology.byzantine),
                    "final_accuracy": history.final_accuracy,
                    "sampled_per_round": [r.num_sampled_clients
                                          for r in history.records],
                    "peak_materialized_clients":
                        history.peak_materialized_clients,
                    "client_slots": trainer.population.num_slots,
                    "total_churn_events": history.total_churn_events,
                    "tier_fallback_rounds": history.tier_fallback_rounds,
                    "upload_bytes_per_round":
                        stats.bytes_by_tag.get("tier0_upload", 0) / rounds,
                })
    return FigureResult(
        figure_id="population_scale",
        params={
            "scale": scale.name,
            "attack": attack_name,
            "populations": sizes,
            "sample_fraction": (sample_fraction if sample_fraction
                                is not None else preset.sample_fraction),
            "num_rounds": (num_rounds if num_rounds is not None
                           else preset.num_rounds),
            "with_churn": with_churn,
            "filter": filter_rule_name or "per-tier trimmed mean",
        },
        curves=curves,
        notes="per-round sampling with lazy materialization; peak "
              "materialized clients stays O(sampled + tiers), not O(K)",
        rows=rows,
    )


def run_population_comm(*, scale: Optional[BenchScale] = None,
                        seed: int = 0) -> FigureResult:
    """Per-leg traffic accounting of one sharded population run.

    One row per traffic tag (``model_fetch``, ``tier0_upload``,
    ``tier<t>_exchange``) with messages and bytes per round, plus the
    peak materialized-client gauge in the params.
    """
    scale = scale or current_scale()
    preset = POPULATION_PRESETS[scale.name]
    trainer, rounds = build_population_trainer(preset, seed=seed,
                                               with_churn=True)
    with trainer:
        history = trainer.run(rounds, eval_every=preset.eval_every)
        stats = trainer.network.stats
    rows = [
        {
            "tag": tag,
            "messages_per_round": stats.messages_by_tag[tag] / rounds,
            "bytes_per_round": stats.bytes_by_tag[tag] / rounds,
        }
        for tag in sorted(stats.messages_by_tag)
    ]
    return FigureResult(
        figure_id="population_comm",
        params={
            "scale": scale.name,
            "population": preset.population_size,
            "sample_fraction": preset.sample_fraction,
            "tier_spec": list(preset.tier_spec),
            "num_rounds": rounds,
            "peak_materialized_clients": stats.peak_materialized_clients,
            "final_accuracy": history.final_accuracy,
        },
        rows=rows,
        notes="uploads are O(sampled), not O(K); exchange legs are "
              "O(aggregators) regardless of population size",
    )
