"""Shared workload construction for the figure reproductions.

Every evaluation figure in the paper uses the same substrate: CIFAR-10
partitioned across ``K = 50`` clients by a Dirichlet draw, ``P = 10`` edge
PSs, ``E = 3`` local iterations. This module builds that workload (on the
synthetic CIFAR-10 stand-in, or the real one when available on disk) at one
of three scales:

* ``smoke`` — seconds-long runs for CI;
* ``reduced`` — the paper's K/P topology with a smaller model and fewer
  rounds (default for ``benchmarks/``);
* ``paper`` — the full Table II configuration (60 rounds).

Select the scale with the ``REPRO_BENCH_SCALE`` environment variable.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, List, Tuple

import numpy as np

from ..common.errors import ConfigurationError
from ..common.rng import RngFactory
from ..data import (
    ArrayDataset,
    Subset,
    cifar10_available,
    dirichlet_partition,
    load_cifar10,
    make_synthetic_cifar10,
)
from ..models import MLP
from ..nn.module import Module

__all__ = ["BenchScale", "SCALES", "current_scale", "FigureWorkload"]

SCALE_ENV = "REPRO_BENCH_SCALE"


@dataclass(frozen=True)
class BenchScale:
    """Size knobs for a figure reproduction."""

    name: str
    num_train: int
    num_test: int
    num_clients: int
    num_servers: int
    num_rounds: int
    eval_every: int
    hidden_width: int
    batch_size: int

    @property
    def description(self) -> str:
        return (f"{self.name}: K={self.num_clients}, P={self.num_servers}, "
                f"{self.num_rounds} rounds, {self.num_train} train samples")


SCALES = {
    "tiny": BenchScale(
        name="tiny", num_train=300, num_test=100, num_clients=6,
        num_servers=3, num_rounds=3, eval_every=3, hidden_width=8,
        batch_size=16,
    ),
    "smoke": BenchScale(
        name="smoke", num_train=600, num_test=200, num_clients=10,
        num_servers=5, num_rounds=8, eval_every=4, hidden_width=16,
        batch_size=16,
    ),
    "reduced": BenchScale(
        name="reduced", num_train=2500, num_test=500, num_clients=50,
        num_servers=10, num_rounds=30, eval_every=5, hidden_width=32,
        batch_size=32,
    ),
    "paper": BenchScale(
        name="paper", num_train=5000, num_test=1000, num_clients=50,
        num_servers=10, num_rounds=60, eval_every=5, hidden_width=64,
        batch_size=32,
    ),
}


def current_scale() -> BenchScale:
    """The scale selected by ``REPRO_BENCH_SCALE`` (default ``reduced``)."""
    name = os.environ.get(SCALE_ENV, "reduced")
    try:
        return SCALES[name]
    except KeyError:
        raise ConfigurationError(
            f"{SCALE_ENV}={name!r} is not one of {sorted(SCALES)}"
        ) from None


class FigureWorkload:
    """The common data + model workload behind Figures 2, 3 and 5.

    Builds flattened train/test datasets once; per-experiment Dirichlet
    partitions are derived with independent named streams so that two
    experiments at different ``alpha`` do not share randomness.
    """

    NUM_CLASSES = 10
    INPUT_DIM = 3 * 32 * 32

    def __init__(self, scale: BenchScale, *, seed: int = 0) -> None:
        self.scale = scale
        self.seed = seed
        self.rngs = RngFactory(seed)
        if cifar10_available():
            train, test = load_cifar10()
            # Trim the real dataset to the configured scale.
            train = Subset(train, np.arange(min(scale.num_train, len(train))))
            test = Subset(test, np.arange(min(scale.num_test, len(test))))
            self.source = "cifar10"
        else:
            train, test = make_synthetic_cifar10(
                scale.num_train, scale.num_test, rng=self.rngs.make("data")
            )
            self.source = "synthetic"
        self.train = ArrayDataset(
            train.features.reshape(len(train), -1), train.labels
        )
        self.test = ArrayDataset(
            test.features.reshape(len(test), -1), test.labels
        )

    def partitions(self, alpha: float, *, tag: str = "") -> List[ArrayDataset]:
        """A Dirichlet(``alpha``) partition across ``K`` clients."""
        return dirichlet_partition(
            self.train, self.scale.num_clients, alpha=alpha,
            rng=self.rngs.make(f"partition/{alpha}/{tag}"),
            min_samples_per_client=2,
        )

    def model_factory(self) -> Callable[[np.random.Generator], Module]:
        """Factory building the (scaled) training model.

        The paper trains MobileNet V2; at benchmark scale we use an MLP on
        flattened pixels — see DESIGN.md, "Substitutions". Pass
        ``examples/attack_showdown.py --model smallcnn`` for the
        convolutional configuration.
        """
        hidden = self.scale.hidden_width

        def build(rng: np.random.Generator) -> Module:
            return MLP(self.INPUT_DIM, (hidden,), self.NUM_CLASSES, rng=rng)

        return build
