"""Runnable reproductions of every figure in the paper's evaluation.

Each ``run_*`` function regenerates the series of one figure (or one panel)
and returns a :class:`~repro.experiments.results.FigureResult`. The
``benchmarks/`` directory wraps these in pytest-benchmark cases that assert
the *shape* of each result — who wins, by roughly what factor — matches the
paper (see EXPERIMENTS.md for the measured-vs-paper record).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..aggregation import make_rule
from ..attacks import make_attack
from ..common.errors import ConfigurationError
from ..common.rng import RngFactory
from ..core import FedMSConfig, FedMSTrainer, TrainingHistory
from ..data import (
    ArrayDataset,
    effective_classes_per_client,
    iid_partition,
    label_distribution_matrix,
    mean_client_entropy,
    mean_total_variation_distance,
)
from ..models import SoftmaxRegression
from ..nn.schedules import InverseTimeDecay
from ..simulation import FaultInjector, FaultPlan, Network, ServerCrash
from ..theory import (
    ProblemConstants,
    empirical_gradient_stats,
    gamma_heterogeneity,
    softmax_loss_and_grad,
    softmax_smoothness,
    solve_softmax_optimum,
    theorem1_bound,
    theorem1_gamma,
)
from .results import Curve, FigureResult
from .workload import BenchScale, FigureWorkload, current_scale

__all__ = [
    "run_fig2_attack_panel",
    "run_fig3_epsilon_panel",
    "run_fig4_heterogeneity",
    "run_fig5_alpha_panel",
    "run_comm_cost",
    "run_convergence_rate",
    "run_filter_ablation",
    "run_fault_tolerance",
    "run_adaptive_crossover",
    "ADAPTIVE_CROSSOVER_VARIANTS",
]

#: Dirichlet parameter used by Fig. 2 / Fig. 3 (Section VI-B/C).
DEFAULT_ALPHA = 10.0
#: Byzantine fraction used by Fig. 2 / Fig. 5.
DEFAULT_EPSILON = 0.2
#: Noise-attack standard deviation, calibrated so undefended FL degrades
#: gracefully with the Byzantine fraction (the paper's Fig. 3 shape: ~48%
#: at epsilon=10% sliding to ~25% at 30%) rather than collapsing outright.
#: The paper's absolute sigma is tied to MobileNet's weight scale; this
#: value plays the same role for our substrate's weight scale.
NOISE_ATTACK_SCALE = 0.05

#: Per-attack constructor arguments used by every experiment that builds an
#: attack by name. The colluding lie is scaled well past the honest spread so
#: a single surviving colluder visibly drags an under-trimmed mean.
ATTACK_KWARGS = {
    "noise": {"scale": NOISE_ATTACK_SCALE},
    "colluding": {"scale": 3.0},
}


def _curve_from_history(label: str, history: TrainingHistory) -> Curve:
    return Curve(label=label, rounds=history.evaluated_rounds,
                 accuracies=history.accuracies)


def _run_one(workload: FigureWorkload, partitions, *, num_byzantine: int,
             attack_name: Optional[str], filter_name: str,
             trim_ratio: float, seed: int, label: str,
             num_rounds: Optional[int] = None) -> Curve:
    scale = workload.scale
    config = FedMSConfig(
        num_clients=scale.num_clients,
        num_servers=scale.num_servers,
        num_byzantine=num_byzantine,
        local_steps=3,
        batch_size=scale.batch_size,
        learning_rate=0.05,
        trim_ratio=trim_ratio,
        eval_clients=2,
        seed=seed,
    )
    rule = (make_rule("trimmed_mean", trim_ratio=trim_ratio)
            if filter_name == "trimmed_mean"
            else make_rule(filter_name, trim_ratio=trim_ratio,
                           num_byzantine=num_byzantine))
    attack = None
    if num_byzantine > 0 and attack_name is not None:
        attack = make_attack(attack_name, **ATTACK_KWARGS.get(attack_name, {}))
    with FedMSTrainer(
        config,
        model_factory=workload.model_factory(),
        client_datasets=partitions,
        test_dataset=workload.test,
        attack=attack,
        filter_rule=rule,
    ) as trainer:
        history = trainer.run(num_rounds or scale.num_rounds,
                              eval_every=scale.eval_every)
    return _curve_from_history(label, history)


def run_fig2_attack_panel(attack_name: str, *,
                          scale: Optional[BenchScale] = None,
                          seed: int = 0) -> FigureResult:
    """Fig. 2 (one panel): accuracy vs rounds under ``attack_name``.

    Three algorithms at ``epsilon = 20%``, ``D_alpha = 10``:

    * **Fed-MS** — trimmed mean with ``beta = 0.2 = epsilon``;
    * **Fed-MS-** — trimmed mean with ``beta = 0.1 < epsilon`` (under-trimmed);
    * **Vanilla FL** — plain mean, no defense.
    """
    scale = scale or current_scale()
    workload = FigureWorkload(scale, seed=seed)
    partitions = workload.partitions(DEFAULT_ALPHA, tag=f"fig2/{attack_name}")
    num_byzantine = round(DEFAULT_EPSILON * scale.num_servers)
    runs = [
        ("Fed-MS", "trimmed_mean", 0.2),
        ("Fed-MS-", "trimmed_mean", 0.1),
        ("Vanilla FL", "mean", 0.0),
    ]
    curves = [
        _run_one(workload, partitions, num_byzantine=num_byzantine,
                 attack_name=attack_name, filter_name=filter_name,
                 trim_ratio=trim, seed=seed, label=label)
        for label, filter_name, trim in runs
    ]
    return FigureResult(
        figure_id=f"fig2/{attack_name}",
        params={
            "attack": attack_name,
            "epsilon": DEFAULT_EPSILON,
            "alpha": DEFAULT_ALPHA,
            "num_byzantine": num_byzantine,
            "scale": scale.name,
            "data_source": workload.source,
        },
        curves=curves,
    )


def run_fig3_epsilon_panel(epsilon: float, *,
                           scale: Optional[BenchScale] = None,
                           seed: int = 0) -> FigureResult:
    """Fig. 3 (one panel): Fed-MS vs Vanilla FL at Byzantine fraction
    ``epsilon`` under the Noise attack, ``D_alpha = 10``."""
    scale = scale or current_scale()
    if not 0.0 <= epsilon < 0.5:
        raise ConfigurationError(f"epsilon must be in [0, 0.5), got {epsilon}")
    workload = FigureWorkload(scale, seed=seed)
    partitions = workload.partitions(DEFAULT_ALPHA, tag=f"fig3/{epsilon}")
    num_byzantine = round(epsilon * scale.num_servers)
    # Fed-MS trims at the true Byzantine fraction; with epsilon = 0 the
    # filter must still trim a sliver below 0.5 to stay well-defined, so
    # beta defaults to B/P = 0.
    beta = num_byzantine / scale.num_servers
    curves = [
        _run_one(workload, partitions, num_byzantine=num_byzantine,
                 attack_name="noise", filter_name="trimmed_mean",
                 trim_ratio=beta if beta > 0 else 0.2, seed=seed,
                 label="Fed-MS"),
        _run_one(workload, partitions, num_byzantine=num_byzantine,
                 attack_name="noise", filter_name="mean", trim_ratio=0.0,
                 seed=seed, label="Vanilla FL"),
    ]
    return FigureResult(
        figure_id=f"fig3/epsilon={epsilon:.0%}",
        params={
            "attack": "noise",
            "epsilon": epsilon,
            "num_byzantine": num_byzantine,
            "alpha": DEFAULT_ALPHA,
            "scale": scale.name,
            "data_source": workload.source,
        },
        curves=curves,
    )


def run_fig4_heterogeneity(alphas: Sequence[float] = (1.0, 5.0, 10.0, 1000.0),
                           *, scale: Optional[BenchScale] = None,
                           num_shown_clients: int = 10,
                           seed: int = 0) -> FigureResult:
    """Fig. 4: label distribution across the first 10 clients per ``D_alpha``.

    The paper shows this as per-client histograms; we report, per alpha, the
    label-count matrix of the first clients plus scalar heterogeneity
    indices (mean TV distance to the global law, mean label entropy, mean
    effective classes per client).
    """
    scale = scale or current_scale()
    workload = FigureWorkload(scale, seed=seed)
    rows: List[Dict[str, object]] = []
    for alpha in alphas:
        partitions = workload.partitions(alpha, tag="fig4")
        shown = partitions[:num_shown_clients]
        matrix = label_distribution_matrix(shown, workload.NUM_CLASSES)
        rows.append({
            "alpha": alpha,
            "tv_distance": mean_total_variation_distance(
                partitions, workload.NUM_CLASSES),
            "entropy": mean_client_entropy(partitions, workload.NUM_CLASSES),
            "effective_classes": float(np.mean(effective_classes_per_client(
                partitions, workload.NUM_CLASSES))),
            "first_clients_label_counts": matrix.astype(int).tolist(),
        })
    return FigureResult(
        figure_id="fig4",
        params={"alphas": list(alphas), "scale": scale.name,
                "data_source": workload.source},
        rows=rows,
        notes="Higher alpha -> lower TV distance / higher entropy (more IID).",
    )


def run_fig5_alpha_panel(alpha: float, *, scale: Optional[BenchScale] = None,
                         seed: int = 0) -> FigureResult:
    """Fig. 5 (one series): Fed-MS accuracy vs rounds at Dirichlet ``alpha``
    with the Noise attack at ``epsilon = 20%``."""
    scale = scale or current_scale()
    workload = FigureWorkload(scale, seed=seed)
    partitions = workload.partitions(alpha, tag="fig5")
    num_byzantine = round(DEFAULT_EPSILON * scale.num_servers)
    curve = _run_one(
        workload, partitions, num_byzantine=num_byzantine,
        attack_name="noise", filter_name="trimmed_mean", trim_ratio=0.2,
        seed=seed, label=f"Fed-MS (alpha={alpha:g})",
    )
    return FigureResult(
        figure_id=f"fig5/alpha={alpha:g}",
        params={"alpha": alpha, "epsilon": DEFAULT_EPSILON,
                "attack": "noise", "scale": scale.name,
                "data_source": workload.source},
        curves=[curve],
    )


def run_comm_cost(*, scale: Optional[BenchScale] = None,
                  num_rounds: int = 3, seed: int = 0) -> FigureResult:
    """Section IV-A claim: sparse upload costs ``K`` transfers per round
    (single-PS FedAvg parity), full upload costs ``K x P``.

    Measured from the network's message accounting, not from the formulas.
    """
    scale = scale or current_scale()
    workload = FigureWorkload(scale, seed=seed)
    partitions = workload.partitions(DEFAULT_ALPHA, tag="comm")
    rows = []
    for strategy in ("sparse", "full"):
        config = FedMSConfig(
            num_clients=scale.num_clients,
            num_servers=scale.num_servers,
            num_byzantine=0,
            local_steps=3,
            batch_size=scale.batch_size,
            upload_strategy=strategy,
            eval_clients=1,
            seed=seed,
        )
        with FedMSTrainer(
            config,
            model_factory=workload.model_factory(),
            client_datasets=partitions,
            test_dataset=workload.test,
        ) as trainer:
            history = trainer.run(num_rounds, eval_every=num_rounds)
        per_round = history.total_upload_messages / num_rounds
        stats = trainer.network.stats
        rows.append({
            "strategy": strategy,
            "upload_messages_per_round": per_round,
            "upload_bytes_per_round": history.total_upload_bytes / num_rounds,
            "dissemination_bytes_per_round": (
                stats.bytes_by_tag.get("dissemination", 0) / num_rounds
            ),
            "total_bytes": stats.bytes_total,
            "offered_bytes": stats.offered_bytes_total,
            "expected_messages": (
                scale.num_clients if strategy == "sparse"
                else scale.num_clients * scale.num_servers
            ),
            "final_accuracy": history.final_accuracy,
        })
    return FigureResult(
        figure_id="comm_cost",
        params={"scale": scale.name, "num_rounds": num_rounds},
        rows=rows,
        notes="sparse = K per round; full = K*P per round.",
    )


def run_convergence_rate(*, num_clients: int = 20, num_servers: int = 5,
                         num_byzantine: int = 1, local_steps: int = 3,
                         num_rounds: int = 120, dim: int = 6,
                         num_classes: int = 3, samples_per_client: int = 30,
                         l2: float = 0.1, seed: int = 0) -> FigureResult:
    """Theorem 1 instantiated end to end on a strongly convex problem.

    Builds an L2-regularized softmax-regression FEEL problem whose constants
    (mu, L, G, sigma_k, Gamma, ||w0 - w*||) are measured, runs Fed-MS with
    the prescribed ``eta_t = 2 / (mu (gamma + t))`` schedule under a Noise
    attack, and reports the measured suboptimality ``F(w_t) - F*`` next to
    the closed-form bound at every evaluation round.
    """
    rngs = RngFactory(seed)
    data_rng = rngs.make("convex/data")
    centers = data_rng.normal(scale=2.0, size=(num_classes, dim))
    total = num_clients * samples_per_client
    labels = np.arange(total) % num_classes
    features = centers[labels] + data_rng.normal(size=(total, dim))
    order = data_rng.permutation(total)
    dataset = ArrayDataset(features[order], labels[order])
    partitions = iid_partition(dataset, num_clients, rng=rngs.make("convex/part"))

    # --- measure the problem constants -----------------------------------
    mu = l2
    smoothness = softmax_smoothness(dataset.features, l2)
    optimum_weights, optimum_value = solve_softmax_optimum(
        dataset, num_classes, l2=l2
    )
    gamma_het = gamma_heterogeneity(partitions, num_classes, l2=l2,
                                    global_optimum_value=optimum_value)
    g_sq, sigma_sq_list = 0.0, []
    for index, part in enumerate(partitions):
        client_g_sq, client_sigma_sq = empirical_gradient_stats(
            part, num_classes, l2=l2, batch_size=8, num_probes=40,
            rng=rngs.make(f"convex/probe/{index}"), weights=optimum_weights * 0,
        )
        g_sq = max(g_sq, client_g_sq)
        sigma_sq_list.append(client_sigma_sq)
    # G must bound the gradient along the whole trajectory; probing at w0=0
    # underestimates it, so pad by the standard 2x safety factor.
    gradient_bound = 2.0 * math.sqrt(g_sq)
    initial_gap_sq = float(np.sum(optimum_weights ** 2))  # w0 = 0

    constants = ProblemConstants(
        mu=mu,
        smoothness=smoothness,
        gradient_bound=gradient_bound,
        sigma_sq=sigma_sq_list,
        gamma_heterogeneity=gamma_het,
        num_clients=num_clients,
        num_servers=num_servers,
        num_byzantine=num_byzantine,
        local_steps=local_steps,
        initial_gap_sq=initial_gap_sq,
    )
    gamma = theorem1_gamma(constants)
    schedule = InverseTimeDecay(phi=2.0 / mu, gamma=gamma)

    # --- run Fed-MS with the prescribed schedule --------------------------
    config = FedMSConfig(
        num_clients=num_clients,
        num_servers=num_servers,
        num_byzantine=num_byzantine,
        local_steps=local_steps,
        batch_size=8,
        eval_clients=1,
        seed=seed,
    )
    rows: List[Dict[str, object]] = []
    all_features = dataset.features
    all_labels = dataset.labels
    with FedMSTrainer(
        config,
        model_factory=lambda rng: SoftmaxRegression(dim, num_classes,
                                                    bias=False, rng=rng),
        client_datasets=partitions,
        test_dataset=dataset,
        attack=make_attack("noise") if num_byzantine > 0 else None,
        lr_schedule=schedule,
        weight_decay=l2,
    ) as trainer:
        for round_index in range(num_rounds):
            trainer.run_round(evaluate=False)
            if (round_index + 1) % max(num_rounds // 12, 1) == 0:
                weights = trainer.clients[0].model_vector().reshape(
                    dim, num_classes
                )
                value, _ = softmax_loss_and_grad(weights, all_features,
                                                 all_labels, l2)
                step = (round_index + 1) * local_steps
                rows.append({
                    "round": round_index + 1,
                    "global_step": step,
                    "suboptimality": value - optimum_value,
                    "theorem1_bound": theorem1_bound(constants, step),
                })
    return FigureResult(
        figure_id="convergence_rate",
        params={
            "mu": mu,
            "smoothness": smoothness,
            "gradient_bound": gradient_bound,
            "gamma": gamma,
            "gamma_heterogeneity": gamma_het,
            "num_clients": num_clients,
            "num_servers": num_servers,
            "num_byzantine": num_byzantine,
        },
        rows=rows,
        notes="suboptimality should decay ~1/t and stay below theorem1_bound",
    )


def run_filter_ablation(attack_names: Sequence[str] = ("random",
                                                       "adaptive_trimmed_mean"),
                        filter_names: Sequence[str] = ("trimmed_mean",
                                                       "median",
                                                       "geometric_median",
                                                       "krum",
                                                       "mean"),
                        *, scale: Optional[BenchScale] = None,
                        seed: int = 0) -> FigureResult:
    """Ablation: the paper's trimmed-mean filter vs other robust rules.

    Runs the Fig. 2 workload (``epsilon = 20%``) with each (attack, filter)
    pair and reports final accuracies. Not a paper figure — an extension
    called out in DESIGN.md.
    """
    scale = scale or current_scale()
    workload = FigureWorkload(scale, seed=seed)
    partitions = workload.partitions(DEFAULT_ALPHA, tag="ablation")
    num_byzantine = round(DEFAULT_EPSILON * scale.num_servers)
    rows = []
    for attack_name in attack_names:
        for filter_name in filter_names:
            curve = _run_one(
                workload, partitions, num_byzantine=num_byzantine,
                attack_name=attack_name, filter_name=filter_name,
                trim_ratio=DEFAULT_EPSILON, seed=seed,
                label=f"{filter_name} vs {attack_name}",
            )
            rows.append({
                "attack": attack_name,
                "filter": filter_name,
                "final_accuracy": curve.final_accuracy,
                "best_accuracy": curve.best_accuracy,
            })
    return FigureResult(
        figure_id="filter_ablation",
        params={"epsilon": DEFAULT_EPSILON, "scale": scale.name},
        rows=rows,
    )


def run_fault_tolerance(*, loss_rate: float = 0.1, num_crashes: int = 2,
                        scale: Optional[BenchScale] = None, seed: int = 0,
                        attack_name: str = "noise",
                        num_rounds: Optional[int] = None) -> FigureResult:
    """Extension: Fed-MS under PS crashes on top of Byzantine PSs and loss.

    Two runs on the usual Fig. 2 workload (``epsilon = 20%`` Byzantine PSs,
    ``D_alpha = 10``): a fault-free reference, and the same configuration
    with ``num_crashes`` PS crashes (the first permanent, the rest
    crash-recover windows) plus i.i.d. packet loss at ``loss_rate``. The
    faulty run exercises the whole graceful-degradation stack — upload
    retries re-sampling alive PSs, degraded-quorum trimmed-mean filtering,
    round-deadline queue expiry — and the rows record its per-round
    availability so degradation is auditable, not just survivable.
    """
    scale = scale or current_scale()
    if num_crashes < 0:
        raise ConfigurationError(
            f"num_crashes must be >= 0, got {num_crashes}"
        )
    workload = FigureWorkload(scale, seed=seed)
    partitions = workload.partitions(DEFAULT_ALPHA, tag="faults")
    num_byzantine = max(round(DEFAULT_EPSILON * scale.num_servers), 1)
    if num_byzantine + num_crashes > scale.num_servers:
        raise ConfigurationError(
            f"{num_crashes} crashes + {num_byzantine} Byzantine PSs exceed "
            f"P = {scale.num_servers}"
        )
    rounds = num_rounds or scale.num_rounds
    # Byzantine placement and crash placement are made disjoint so the
    # adversary keeps its full strength while benign capacity shrinks —
    # the worst case for the filter.
    byzantine_ids = list(range(num_byzantine))
    crashes = []
    for j in range(num_crashes):
        server_id = scale.num_servers - 1 - j
        start = min(max(1, rounds // 3 + j), rounds - 1)
        if j == 0:
            crashes.append(ServerCrash(server_id, start))
        else:
            recover = min(rounds, start + max(2, rounds // 4))
            crashes.append(ServerCrash(server_id, start, recover))
    plan = FaultPlan(crashes=tuple(crashes))

    def run(label: str, faulty: bool) -> TrainingHistory:
        config = FedMSConfig(
            num_clients=scale.num_clients,
            num_servers=scale.num_servers,
            num_byzantine=num_byzantine,
            local_steps=3,
            batch_size=scale.batch_size,
            learning_rate=0.05,
            trim_ratio=DEFAULT_EPSILON,
            eval_clients=2,
            seed=seed,
        )
        network = Network()
        if faulty and loss_rate > 0:
            network = Network(
                drop_probability=loss_rate,
                rng=RngFactory(seed).make(f"faults/loss/{loss_rate}"),
            )
        with FedMSTrainer(
            config,
            model_factory=workload.model_factory(),
            client_datasets=partitions,
            test_dataset=workload.test,
            attack=make_attack(attack_name,
                               **ATTACK_KWARGS.get(attack_name, {})),
            byzantine_ids=byzantine_ids,
            network=network,
            fault_injector=FaultInjector(plan) if faulty else None,
        ) as trainer:
            history = trainer.run(rounds, eval_every=scale.eval_every)
        rows.append({
            "run": label,
            "final_accuracy": history.final_accuracy,
            "degraded_rounds": len(history.degraded_rounds),
            "upload_retries": history.total_upload_retries,
            "upload_failures": history.total_upload_failures,
            "dropped_by_tag":
                dict(trainer.network.stats.dropped_by_tag),
            "cleared_total": trainer.network.stats.cleared_total,
            "min_models_received":
                [q for q in history.min_models_received_per_round
                 if q is not None],
        })
        curves.append(_curve_from_history(label, history))
        return history

    rows: List[Dict[str, object]] = []
    curves: List[Curve] = []
    run("fault-free", faulty=False)
    run(f"{num_crashes} crashes + {loss_rate:.0%} loss", faulty=True)
    return FigureResult(
        figure_id="ext_fault_tolerance",
        params={
            "attack": attack_name,
            "epsilon": DEFAULT_EPSILON,
            "loss_rate": loss_rate,
            "num_crashes": num_crashes,
            "scale": scale.name,
        },
        rows=rows,
        curves=curves,
        notes="Fed-MS with PS crash/recovery and packet loss on top of "
              "Byzantine PSs",
    )


#: The four Def() variants the adaptive crossover compares at each true B.
ADAPTIVE_CROSSOVER_VARIANTS = ("static-oracle", "static-under", "adaptive",
                               "loss_based")


def run_adaptive_crossover(*, attack_name: str = "dispersion_mimicry",
                           byzantine_counts: Optional[Sequence[int]] = None,
                           with_faults: bool = True,
                           scale: Optional[BenchScale] = None,
                           seed: int = 0,
                           num_rounds: Optional[int] = None) -> FigureResult:
    """Fig. 3-style crossover: static beta vs adaptive beta vs loss-based.

    For every true Byzantine count ``B`` (default: ``0..floor((P-1)/2)``)
    four ``Def()`` variants run the same workload under ``attack_name``:

    * **static-oracle** — trimmed mean at the unknowable truth
      ``beta = B/P`` (the paper's setting, upper bound for trimming);
    * **static-under** — trimmed mean at ``beta = (B//2)/P``, the
      under-estimate that colluding/mimicry attacks exploit;
    * **adaptive** — per-round ``B-hat`` from MAD dispersion scoring;
    * **loss_based** — FedGreed-style greedy selection on a trusted root
      batch, which needs no count estimate at all.

    With ``with_faults`` each combination additionally runs with one
    benign PS crashing permanently a third of the way in, so the rows
    show how each defense degrades when benign capacity shrinks while
    the adversary keeps full strength. Rows record the per-round
    ``B-hat`` trace and which PSs were rejected (the estimating filters'
    audit trail); curves cover the fault-free runs at the largest ``B``.
    """
    scale = scale or current_scale()
    P = scale.num_servers
    feasible_max = (P - 1) // 2
    if byzantine_counts is None:
        byzantine_counts = tuple(range(feasible_max + 1))
    for count in byzantine_counts:
        if not 0 <= count <= feasible_max:
            raise ConfigurationError(
                f"true Byzantine count {count} infeasible for P = {P} "
                f"(need 0 <= B <= {feasible_max})"
            )
    workload = FigureWorkload(scale, seed=seed)
    partitions = workload.partitions(DEFAULT_ALPHA, tag="adaptive")
    rounds = num_rounds or scale.num_rounds
    crash_round = min(max(1, rounds // 3), rounds - 1)

    def run(num_byzantine: int, variant: str, faulty: bool):
        config_kwargs = dict(
            num_clients=scale.num_clients,
            num_servers=P,
            num_byzantine=num_byzantine,
            local_steps=3,
            batch_size=scale.batch_size,
            learning_rate=0.05,
            eval_clients=2,
            seed=seed,
        )
        if variant == "static-oracle":
            config_kwargs["trim_ratio"] = num_byzantine / P
        elif variant == "static-under":
            config_kwargs["trim_ratio"] = (num_byzantine // 2) / P
        elif variant == "adaptive":
            config_kwargs["filter_rule_name"] = "adaptive_trimmed_mean"
        elif variant == "loss_based":
            config_kwargs["filter_rule_name"] = "loss_based"
        else:
            raise ConfigurationError(f"unknown variant {variant!r}")
        # Byzantine placement and the crash are disjoint: the adversary
        # keeps full strength while benign capacity shrinks.
        injector = None
        if faulty:
            injector = FaultInjector(FaultPlan(crashes=(
                ServerCrash(P - 1, crash_round),
            )))
        attack = None
        if num_byzantine > 0:
            attack = make_attack(attack_name,
                                 **ATTACK_KWARGS.get(attack_name, {}))
        with FedMSTrainer(
            FedMSConfig(**config_kwargs),
            model_factory=workload.model_factory(),
            client_datasets=partitions,
            test_dataset=workload.test,
            attack=attack,
            byzantine_ids=list(range(num_byzantine)) or None,
            fault_injector=injector,
        ) as trainer:
            history = trainer.run(rounds, eval_every=scale.eval_every)
        return history

    rows: List[Dict[str, object]] = []
    curves: List[Curve] = []
    largest = max(byzantine_counts)
    fault_conditions = (False, True) if with_faults else (False,)
    for num_byzantine in byzantine_counts:
        for variant in ADAPTIVE_CROSSOVER_VARIANTS:
            for faulty in fault_conditions:
                history = run(num_byzantine, variant, faulty)
                rows.append({
                    "true_byzantine": num_byzantine,
                    "variant": variant,
                    "faults": faulty,
                    "final_accuracy": history.final_accuracy,
                    "mean_estimated_byzantine":
                        history.mean_estimated_byzantine,
                    "estimated_byzantine_trace":
                        history.estimated_byzantine_trace,
                    "filtered_model_id_counts":
                        history.filtered_model_id_counts,
                    "degraded_rounds": len(history.degraded_rounds),
                })
                if num_byzantine == largest and not faulty:
                    curves.append(_curve_from_history(variant, history))
    return FigureResult(
        figure_id="ext_adaptive_crossover",
        params={
            "attack": attack_name,
            "byzantine_counts": list(byzantine_counts),
            "with_faults": with_faults,
            "scale": scale.name,
            "data_source": workload.source,
        },
        rows=rows,
        curves=curves,
        notes="static-oracle trims at the true B/P; static-under at "
              "(B//2)/P; adaptive estimates B-hat per round; loss_based "
              "greedily selects by trusted-batch loss.",
    )
