"""Multi-seed replication of figure experiments.

A single federated run is noisy; the paper reports single curves, but a
careful reproduction should know the seed-to-seed spread. These helpers run
a ``seed -> FigureResult`` experiment across several seeds and aggregate
the curves into mean +/- standard-deviation summaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

import numpy as np

from ..common.errors import ConfigurationError
from .results import FigureResult

__all__ = ["ReplicatedCurve", "ReplicationSummary", "replicate"]


@dataclass
class ReplicatedCurve:
    """Per-round mean/std of one labelled curve across seeds."""

    label: str
    rounds: List[int]
    mean_accuracies: List[float]
    std_accuracies: List[float]
    num_seeds: int

    @property
    def final_mean(self) -> float:
        return self.mean_accuracies[-1]

    @property
    def final_std(self) -> float:
        return self.std_accuracies[-1]

    def final_interval(self, *, num_std: float = 2.0) -> "tuple[float, float]":
        """``mean +/- num_std * std`` at the last evaluated round."""
        half_width = num_std * self.final_std
        return (self.final_mean - half_width, self.final_mean + half_width)


@dataclass
class ReplicationSummary:
    """All curves of a replicated figure, plus the raw per-seed results."""

    figure_id: str
    seeds: List[int]
    curves: List[ReplicatedCurve]
    raw_results: List[FigureResult]

    def curve(self, label: str) -> ReplicatedCurve:
        for curve in self.curves:
            if curve.label == label:
                return curve
        raise KeyError(
            f"no curve {label!r}; have {[c.label for c in self.curves]}"
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "figure_id": self.figure_id,
            "seeds": self.seeds,
            "curves": [
                {
                    "label": c.label,
                    "rounds": c.rounds,
                    "mean_accuracies": c.mean_accuracies,
                    "std_accuracies": c.std_accuracies,
                }
                for c in self.curves
            ],
        }


def replicate(experiment: Callable[[int], FigureResult],
              seeds: Sequence[int]) -> ReplicationSummary:
    """Run ``experiment(seed)`` for every seed and aggregate the curves.

    Every seed's result must contain the same curve labels over the same
    evaluation rounds (guaranteed when the experiment only varies its seed).
    """
    seeds = list(seeds)
    if not seeds:
        raise ConfigurationError("need at least one seed")
    if len(set(seeds)) != len(seeds):
        raise ConfigurationError(f"duplicate seeds in {seeds}")

    results = [experiment(seed) for seed in seeds]
    first = results[0]
    labels = [curve.label for curve in first.curves]
    for result in results[1:]:
        if [c.label for c in result.curves] != labels:
            raise ConfigurationError(
                "experiment produced different curve labels across seeds"
            )
        for reference, other in zip(first.curves, result.curves):
            if reference.rounds != other.rounds:
                raise ConfigurationError(
                    f"curve {reference.label!r} evaluated at different "
                    f"rounds across seeds"
                )

    replicated: List[ReplicatedCurve] = []
    for index, label in enumerate(labels):
        stacked = np.array([
            result.curves[index].accuracies for result in results
        ])
        replicated.append(ReplicatedCurve(
            label=label,
            rounds=list(first.curves[index].rounds),
            mean_accuracies=stacked.mean(axis=0).tolist(),
            std_accuracies=stacked.std(axis=0).tolist(),
            num_seeds=len(seeds),
        ))
    return ReplicationSummary(
        figure_id=first.figure_id,
        seeds=seeds,
        curves=replicated,
        raw_results=results,
    )
