"""Plain-text rendering of figure results (the benchmark harness's output)."""

from __future__ import annotations

from typing import List, Sequence

from .results import FigureResult

__all__ = ["format_curves", "format_rows", "format_figure"]


def format_curves(result: FigureResult) -> str:
    """Render accuracy curves as an aligned text table, one row per round."""
    if not result.curves:
        return "(no curves)"
    labels = [curve.label for curve in result.curves]
    rounds = result.curves[0].rounds
    header = ["round"] + labels
    lines = ["  ".join(f"{h:>14s}" for h in header)]
    for index, round_index in enumerate(rounds):
        cells = [f"{round_index:>14d}"]
        for curve in result.curves:
            if index < len(curve.accuracies):
                cells.append(f"{curve.accuracies[index]:>14.3f}")
            else:
                cells.append(f"{'-':>14s}")
        lines.append("  ".join(cells))
    finals = "  ".join(
        f"{curve.label}={curve.final_accuracy:.3f}" for curve in result.curves
    )
    lines.append(f"final: {finals}")
    return "\n".join(lines)


def format_rows(result: FigureResult,
                columns: Sequence[str] = ()) -> str:
    """Render row-style results (Fig. 4, comm cost, ablations) as a table."""
    if not result.rows:
        return "(no rows)"
    keys: List[str] = list(columns) if columns else [
        key for key in result.rows[0] if not isinstance(result.rows[0][key],
                                                        (list, dict))
    ]
    lines = ["  ".join(f"{key:>22s}" for key in keys)]
    for row in result.rows:
        cells = []
        for key in keys:
            value = row.get(key, "")
            if isinstance(value, float):
                cells.append(f"{value:>22.4g}")
            else:
                cells.append(f"{str(value):>22s}")
        lines.append("  ".join(cells))
    return "\n".join(lines)


def format_figure(result: FigureResult) -> str:
    """Full text report for one reproduced figure."""
    parts = [f"=== {result.figure_id} ===",
             f"params: {result.params}"]
    if result.curves:
        parts.append(format_curves(result))
    if result.rows:
        parts.append(format_rows(result))
    if result.notes:
        parts.append(f"note: {result.notes}")
    return "\n".join(parts)
