"""Terminal line charts for experiment output (no plotting dependencies).

Renders accuracy curves as fixed-width character grids so the CLI and
examples can show training dynamics directly in a terminal or log file.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..common.errors import ConfigurationError

__all__ = ["ascii_curve", "ascii_curves"]

_MARKERS = "ox+*#@%&"


def _scale(value: float, low: float, high: float, size: int) -> int:
    if high <= low:
        return 0
    position = (value - low) / (high - low)
    return min(int(position * (size - 1) + 0.5), size - 1)


def ascii_curve(xs: Sequence[float], ys: Sequence[float], *,
                width: int = 60, height: int = 12,
                y_min: float = None, y_max: float = None,
                label: str = "") -> str:
    """Render one series; convenience wrapper over :func:`ascii_curves`."""
    return ascii_curves({label or "series": (list(xs), list(ys))},
                        width=width, height=height, y_min=y_min, y_max=y_max)


def ascii_curves(series: Dict[str, "tuple[List[float], List[float]]"], *,
                 width: int = 60, height: int = 12,
                 y_min: float = None, y_max: float = None) -> str:
    """Render several ``label -> (xs, ys)`` series on one shared grid.

    Each series gets its own marker; the legend maps markers to labels.
    Axes are annotated with the data ranges.
    """
    if not series:
        raise ConfigurationError("need at least one series")
    if width < 10 or height < 4:
        raise ConfigurationError(
            f"grid too small: width={width}, height={height}"
        )
    if len(series) > len(_MARKERS):
        raise ConfigurationError(
            f"at most {len(_MARKERS)} series supported, got {len(series)}"
        )
    all_xs = [x for xs, _ in series.values() for x in xs]
    all_ys = [y for _, ys in series.values() for y in ys]
    if not all_xs:
        raise ConfigurationError("series contain no points")
    for label, (xs, ys) in series.items():
        if len(xs) != len(ys):
            raise ConfigurationError(
                f"series {label!r}: {len(xs)} x values but {len(ys)} y values"
            )
    x_low, x_high = min(all_xs), max(all_xs)
    y_low = y_min if y_min is not None else min(all_ys)
    y_high = y_max if y_max is not None else max(all_ys)
    if y_high == y_low:
        y_high = y_low + 1.0

    grid = [[" "] * width for _ in range(height)]
    for marker, (label, (xs, ys)) in zip(_MARKERS, series.items()):
        for x, y in zip(xs, ys):
            column = _scale(x, x_low, x_high, width)
            row = height - 1 - _scale(
                min(max(y, y_low), y_high), y_low, y_high, height
            )
            grid[row][column] = marker

    lines = []
    for index, row in enumerate(grid):
        if index == 0:
            axis_label = f"{y_high:8.3f} |"
        elif index == height - 1:
            axis_label = f"{y_low:8.3f} |"
        else:
            axis_label = "         |"
        lines.append(axis_label + "".join(row))
    lines.append("         +" + "-" * width)
    lines.append(f"          {x_low:<10.4g}"
                 + " " * max(width - 22, 1)
                 + f"{x_high:>10.4g}")
    legend = "   ".join(
        f"{marker}={label}" for marker, label in zip(_MARKERS, series)
    )
    lines.append(f"          {legend}")
    return "\n".join(lines)
