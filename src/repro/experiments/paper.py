"""The paper's reported numbers, for measured-vs-paper comparisons.

These are the quantitative claims extracted from Section VI; the benchmark
assertions check the *shape* of each (orderings and rough factors), and
EXPERIMENTS.md records our measured values next to them.
"""

from __future__ import annotations

__all__ = [
    "PAPER_FIG2_FINAL_ACCURACY",
    "PAPER_FIG3_VANILLA_FINAL",
    "PAPER_FIG5_FEDMS_FINAL",
    "PAPER_CLAIMS",
]

#: Fig. 2 — final test accuracy after 60 rounds, epsilon = 20%, alpha = 10.
#: Fed-MS reaches 73-76% on every attack; Fed-MS- and Vanilla collapse to
#: 8-20% under Random and Safeguard, Fed-MS- partially survives Noise and
#: Backward (10-30% above Vanilla).
PAPER_FIG2_FINAL_ACCURACY = {
    "fed_ms": (0.73, 0.76),
    "vanilla_under_random": (0.08, 0.20),
    "vanilla_under_safeguard": (0.08, 0.20),
}

#: Fig. 3 — Vanilla FL final accuracy drops from ~48% (epsilon = 10%) to
#: ~25% (epsilon = 30%) under the Noise attack, while Fed-MS stays at the
#: no-attack level (~75%).
PAPER_FIG3_VANILLA_FINAL = {
    0.0: (0.70, 0.80),
    0.1: (0.40, 0.55),
    0.3: (0.20, 0.30),
}

#: Fig. 5 — Fed-MS final accuracy by Dirichlet alpha (epsilon = 20%, Noise).
#: alpha = 1 ends ~8% below alpha = 1000.
PAPER_FIG5_FEDMS_FINAL = {
    1.0: (0.66, 0.72),
    1000.0: (0.74, 0.78),
}

#: Headline claims, as machine-checkable descriptions.
PAPER_CLAIMS = {
    "abstract": "Fed-MS improves accuracy from 10% to >= 76% under attack",
    "fig2": "Fed-MS >= 70% on all four attacks; Vanilla <= 20% on "
            "Random/Safeguard",
    "fig3a": "with epsilon = 0, Fed-MS matches Vanilla FL",
    "fig3bcd": "Vanilla degrades as epsilon grows; Fed-MS stays flat",
    "fig5": "Fed-MS accuracy increases with alpha (more IID is easier)",
    "comm": "sparse upload costs K messages per round, like single-PS FedAvg",
    "theorem1": "O(1/T) expected convergence with the five-term Delta",
}
