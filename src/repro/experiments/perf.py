"""Wall-clock performance harness for the round loop.

Measures what the execution backends actually buy: rounds/sec and
client-steps/sec of the full Fed-MS round (train, upload, aggregate,
disseminate, filter) at several client counts, per backend, plus the
bytes the simulated network moves each round. Results land in
``BENCH_round_loop.json`` at the repo root (see the ``perf`` CLI
subcommand and ``benchmarks/test_perf_harness.py``).

The workload is deliberately *round-loop-bound*, not data-bound: a small
softmax model on Gaussian blobs, so the numbers isolate scheduler +
backend + transport overhead rather than BLAS throughput. Because every
backend computes bit-identical rounds (see ``docs/execution.md``), the
harness also cross-checks final train losses across backends and refuses
to report a speedup for a run that diverged.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..common.errors import ConfigurationError
from ..common.rng import RngFactory
from ..core import FedMSConfig, FedMSTrainer
from ..data import ArrayDataset, iid_partition
from ..models import SoftmaxRegression

__all__ = ["PerfProfile", "PERF_PROFILES", "run_round_loop_perf",
           "write_bench_file", "format_report", "BENCH_FILENAME"]

BENCH_FILENAME = "BENCH_round_loop.json"


@dataclass(frozen=True)
class PerfProfile:
    """Size knobs for one harness run."""

    name: str
    client_counts: Tuple[int, ...]
    num_servers: int
    local_steps: int
    batch_size: int
    samples_per_client: int
    feature_dim: int
    num_classes: int
    warmup_rounds: int
    timed_rounds: int


PERF_PROFILES = {
    # CI-friendly: a couple of seconds end to end.
    "smoke": PerfProfile(
        name="smoke", client_counts=(16, 64), num_servers=5, local_steps=2,
        batch_size=8, samples_per_client=24, feature_dim=10, num_classes=3,
        warmup_rounds=1, timed_rounds=3,
    ),
    # The acceptance configuration: K up to 256.
    "full": PerfProfile(
        name="full", client_counts=(16, 64, 256), num_servers=5,
        local_steps=2, batch_size=8, samples_per_client=24, feature_dim=10,
        num_classes=3, warmup_rounds=1, timed_rounds=5,
    ),
}


def _make_workload(profile: PerfProfile, num_clients: int, seed: int
                   ) -> Tuple[List[ArrayDataset], ArrayDataset]:
    """Blob datasets sized to ``num_clients``, identical across backends."""
    rngs = RngFactory(seed)
    centers = np.random.default_rng(42).normal(
        scale=4.0, size=(profile.num_classes, profile.feature_dim)
    )
    total = num_clients * profile.samples_per_client
    rng = rngs.make(f"perf/data/{num_clients}")
    labels = np.arange(total) % profile.num_classes
    features = centers[labels] + rng.normal(
        size=(total, profile.feature_dim)
    )
    order = rng.permutation(total)
    train = ArrayDataset(features[order], labels[order])
    test = ArrayDataset(features[order[:64]], labels[order[:64]])
    partitions = iid_partition(train, num_clients,
                               rng=rngs.make(f"perf/part/{num_clients}"))
    return partitions, test


def _measure(profile: PerfProfile, backend: str, num_clients: int,
             partitions: List[ArrayDataset], test: ArrayDataset, *,
             num_workers: int, seed: int,
             upload_codecs: Sequence[str] = ()) -> Dict[str, object]:
    config = FedMSConfig(
        num_clients=num_clients,
        num_servers=profile.num_servers,
        num_byzantine=0,
        local_steps=profile.local_steps,
        batch_size=profile.batch_size,
        eval_clients=1,
        execution_backend=backend,
        num_workers=num_workers,
        upload_codecs=list(upload_codecs),
        seed=seed,
    )
    dim, classes = profile.feature_dim, profile.num_classes
    with FedMSTrainer(
        config,
        model_factory=lambda rng: SoftmaxRegression(dim, classes, rng=rng),
        client_datasets=partitions,
        test_dataset=test,
    ) as trainer:
        for _ in range(profile.warmup_rounds):
            trainer.run_round(evaluate=False)
        bytes_before = trainer.network.stats.bytes_total
        start = time.perf_counter()
        for _ in range(profile.timed_rounds):
            trainer.run_round(evaluate=False)
        elapsed = time.perf_counter() - start
        bytes_moved = trainer.network.stats.bytes_total - bytes_before
        final_loss = trainer.history.records[-1].train_loss
        degraded = bool(getattr(trainer.execution, "degraded", False))
        shared_nbytes = int(getattr(trainer.execution, "shared_nbytes", 0))

    rounds_per_sec = profile.timed_rounds / elapsed if elapsed > 0 else 0.0
    steps_per_round = num_clients * profile.local_steps
    return {
        "backend": backend,
        "num_clients": num_clients,
        "rounds_per_sec": rounds_per_sec,
        "client_steps_per_sec": rounds_per_sec * steps_per_round,
        "bytes_per_round": bytes_moved / profile.timed_rounds,
        "shared_memory_bytes": shared_nbytes,
        "seconds_per_round": elapsed / profile.timed_rounds,
        "final_train_loss": float(final_loss),
        "degraded": degraded,
    }


#: Fixed shape of the perf harness's population row: K=1000 with 10%
#: sampling through the (8, 2, 1) tier topology, serial backend — the
#: sampled-cohort cost of a population 4-60x larger than the flat rows.
POPULATION_PERF = {"population_size": 1000, "sample_fraction": 0.1,
                   "tier_spec": (8, 2, 1)}


def _measure_population(*, profile: PerfProfile, seed: int,
                        warmup_rounds: int, timed_rounds: int
                        ) -> Dict[str, object]:
    from ..population import (
        PopulationTrainer,
        make_blob_population,
        make_blob_test_dataset,
    )

    population = POPULATION_PERF["population_size"]
    config = FedMSConfig(
        num_clients=population,
        num_servers=sum(POPULATION_PERF["tier_spec"]),
        num_byzantine=0,
        local_steps=profile.local_steps,
        batch_size=profile.batch_size,
        execution_backend="serial",
        seed=seed,
        population_size=population,
        sample_fraction=POPULATION_PERF["sample_fraction"],
        tier_spec=POPULATION_PERF["tier_spec"],
    )
    shard_specs = make_blob_population(
        population, samples_per_client=profile.samples_per_client,
        feature_dim=profile.feature_dim, num_classes=profile.num_classes,
        seed=seed,
    )
    test = make_blob_test_dataset(
        num_samples=64, feature_dim=profile.feature_dim,
        num_classes=profile.num_classes, seed=seed,
    )
    dim, classes = profile.feature_dim, profile.num_classes
    with PopulationTrainer(
        config,
        model_factory=lambda rng: SoftmaxRegression(dim, classes, rng=rng),
        shard_specs=shard_specs,
        test_dataset=test,
    ) as trainer:
        for _ in range(warmup_rounds):
            trainer.run_round(evaluate=False)
        bytes_before = trainer.network.stats.bytes_total
        start = time.perf_counter()
        for _ in range(timed_rounds):
            trainer.run_round(evaluate=False)
        elapsed = time.perf_counter() - start
        bytes_moved = trainer.network.stats.bytes_total - bytes_before
        sampled = trainer.history.records[-1].num_sampled_clients
        peak = trainer.network.stats.peak_materialized_clients
    rounds_per_sec = timed_rounds / elapsed if elapsed > 0 else 0.0
    return {
        "population_size": population,
        "sample_fraction": POPULATION_PERF["sample_fraction"],
        "tier_spec": list(POPULATION_PERF["tier_spec"]),
        "backend": "serial",
        "sampled_per_round": sampled,
        "peak_materialized_clients": peak,
        "rounds_per_sec": rounds_per_sec,
        "seconds_per_round": (elapsed / timed_rounds if timed_rounds
                              else 0.0),
        "bytes_per_round": bytes_moved / timed_rounds,
    }


#: Fixed shape of the deadline-vs-barrier perf row: 20% stragglers, the
#: 0.9 quantile deadline — the acceptance criterion is a time_ratio < 1.
DEADLINE_PERF = {"straggler_rate": 0.2, "deadline_quantile": 0.9}


def _measure_deadline(*, profile: PerfProfile, seed: int,
                      rounds: int) -> Dict[str, object]:
    """Simulated-time comparison of barrier vs deadline aggregation.

    Both runs share the workload and seed at the profile's smallest
    client count; the metric is *virtual-clock* seconds (the barrier
    waits out every straggling broadcast, the deadline does not), so the
    section is wall-clock-noise free and deterministic per seed.
    """
    num_clients = profile.client_counts[0]
    partitions, test = _make_workload(profile, num_clients, seed)
    dim, classes = profile.feature_dim, profile.num_classes
    times: Dict[str, float] = {}
    for mode in ("barrier", "deadline"):
        config = FedMSConfig(
            num_clients=num_clients,
            num_servers=profile.num_servers,
            num_byzantine=0,
            local_steps=profile.local_steps,
            batch_size=profile.batch_size,
            eval_clients=1,
            execution_backend="serial",
            seed=seed,
            aggregation_mode=mode,
            straggler_rate=DEADLINE_PERF["straggler_rate"],
            deadline_quantile=DEADLINE_PERF["deadline_quantile"],
        )
        with FedMSTrainer(
            config,
            model_factory=lambda rng: SoftmaxRegression(dim, classes,
                                                        rng=rng),
            client_datasets=partitions,
            test_dataset=test,
        ) as trainer:
            for _ in range(rounds):
                trainer.run_round(evaluate=False)
            times[mode] = float(
                trainer.history.total_simulated_time_s or 0.0
            )
    barrier_s, deadline_s = times["barrier"], times["deadline"]
    return {
        "num_clients": num_clients,
        "num_rounds": rounds,
        "straggler_rate": DEADLINE_PERF["straggler_rate"],
        "deadline_quantile": DEADLINE_PERF["deadline_quantile"],
        "barrier_simulated_s": barrier_s,
        "deadline_simulated_s": deadline_s,
        "time_ratio": (deadline_s / barrier_s if barrier_s > 0 else None),
    }


def run_round_loop_perf(profile: str = "smoke", *,
                        backends: Sequence[str] = ("serial", "thread",
                                                   "process"),
                        num_workers: int = 0,
                        seed: int = 0) -> Dict[str, object]:
    """Time the round loop per backend and client count.

    Returns a report dict: a header (profile, cpu_count, worker request)
    plus one row per ``(backend, num_clients)`` with throughput, byte
    traffic and the speedup relative to the serial backend at the same
    ``num_clients``. Rows where the final train loss diverged from
    serial's (which bit-identity forbids) are flagged with
    ``matches_serial = False`` and get no speedup.

    A ``codec`` section compares the wire bytes of one compressed run
    (``topk(0.05) + int8`` on the serial backend, at the profile's largest
    client count) against the matching identity row, recording the
    achieved ``compression_ratio`` in the bench file so CI can gate on it.

    A ``population`` section times one sampled population run (see
    :data:`POPULATION_PERF`: K=1000 at 10% sampling through the sharded
    tier topology), recording throughput, the sampled cohort size and the
    peak materialized-client gauge alongside the flat rows.

    A ``deadline`` section compares the *simulated* time of one
    deadline-mode run against its barrier twin under 20% stragglers (see
    :data:`DEADLINE_PERF`), recording ``time_ratio`` so CI can gate on
    the deadline engine actually being faster.
    """
    try:
        spec = PERF_PROFILES[profile]
    except KeyError:
        raise ConfigurationError(
            f"unknown perf profile {profile!r}; "
            f"available: {sorted(PERF_PROFILES)}"
        ) from None

    rows: List[Dict[str, object]] = []
    for num_clients in spec.client_counts:
        partitions, test = _make_workload(spec, num_clients, seed)
        serial_row: Optional[Dict[str, object]] = None
        for backend in backends:
            row = _measure(spec, backend, num_clients, partitions, test,
                           num_workers=num_workers, seed=seed)
            if backend == "serial":
                serial_row = row
            if serial_row is not None:
                row["speedup_vs_serial"] = (
                    row["rounds_per_sec"] / serial_row["rounds_per_sec"]
                    if serial_row["rounds_per_sec"] > 0 else None
                )
                row["matches_serial"] = (
                    row["final_train_loss"] == serial_row["final_train_loss"]
                )
                if not row["matches_serial"]:
                    row["speedup_vs_serial"] = None
            else:
                row["speedup_vs_serial"] = None
                row["matches_serial"] = None
            rows.append(row)

    # Codec compression check: same workload, serial backend, largest K,
    # with the acceptance chain topk(0.05) + int8 on the wire.
    codec_chain = ("topk(0.05)", "int8")
    codec_clients = spec.client_counts[-1]
    partitions, test = _make_workload(spec, codec_clients, seed)
    identity_bytes = next(
        float(row["bytes_per_round"]) for row in rows
        if row["backend"] == "serial"
        and row["num_clients"] == codec_clients
    )
    codec_row = _measure(spec, "serial", codec_clients, partitions, test,
                         num_workers=num_workers, seed=seed,
                         upload_codecs=codec_chain)
    codec_bytes = float(codec_row["bytes_per_round"])
    codec_section = {
        "codecs": list(codec_chain),
        "num_clients": codec_clients,
        "bytes_per_round": codec_bytes,
        "identity_bytes_per_round": identity_bytes,
        "compression_ratio": (identity_bytes / codec_bytes
                              if codec_bytes > 0 else None),
    }
    population_section = _measure_population(
        profile=spec, seed=seed,
        warmup_rounds=spec.warmup_rounds, timed_rounds=spec.timed_rounds,
    )
    deadline_section = _measure_deadline(
        profile=spec, seed=seed,
        rounds=spec.warmup_rounds + spec.timed_rounds,
    )
    return {
        "bench": "round_loop",
        "profile": spec.name,
        "cpu_count": os.cpu_count(),
        "requested_workers": num_workers,
        "backends": list(backends),
        "client_counts": list(spec.client_counts),
        "local_steps": spec.local_steps,
        "rows": rows,
        "codec": codec_section,
        "population": population_section,
        "deadline": deadline_section,
    }


def write_bench_file(report: Dict[str, object],
                     path: Optional[str] = None) -> str:
    """Write ``report`` as JSON; default path is ``BENCH_round_loop.json``
    at the repository root (the directory containing ``src/``)."""
    if path is None:
        # .../<root>/src/repro/experiments/perf.py -> <root>
        here = os.path.dirname(os.path.abspath(__file__))
        root = os.path.dirname(os.path.dirname(os.path.dirname(here)))
        path = os.path.join(root, BENCH_FILENAME)
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def format_report(report: Dict[str, object]) -> str:
    """A small fixed-width table for the CLI."""
    lines = [
        f"=== round-loop perf ({report['profile']}, "
        f"{report['cpu_count']} cpus) ===",
        f"{'backend':>8} {'K':>5} {'rounds/s':>10} {'steps/s':>10} "
        f"{'KiB/round':>10} {'vs serial':>10}",
    ]
    for row in report["rows"]:
        speedup = row.get("speedup_vs_serial")
        lines.append(
            f"{row['backend']:>8} {row['num_clients']:>5} "
            f"{row['rounds_per_sec']:>10.2f} "
            f"{row['client_steps_per_sec']:>10.1f} "
            f"{row['bytes_per_round'] / 1024:>10.1f} "
            + (f"{speedup:>9.2f}x" if speedup is not None else f"{'-':>10}")
            + ("  [degraded]" if row["degraded"] else "")
        )
    codec = report.get("codec")
    if codec:
        ratio = codec.get("compression_ratio")
        lines.append(
            f"codec {'+'.join(codec['codecs'])} @ K={codec['num_clients']}: "
            f"{codec['bytes_per_round'] / 1024:.1f} KiB/round vs "
            f"{codec['identity_bytes_per_round'] / 1024:.1f} identity"
            + (f" ({ratio:.1f}x)" if ratio is not None else "")
        )
    population = report.get("population")
    if population:
        lines.append(
            f"population K={population['population_size']} "
            f"@{population['sample_fraction']:.0%} sampling "
            f"(tiers {'x'.join(map(str, population['tier_spec']))}): "
            f"{population['rounds_per_sec']:.2f} rounds/s, "
            f"{population['sampled_per_round']} sampled, "
            f"peak {population['peak_materialized_clients']} materialized"
        )
    deadline = report.get("deadline")
    if deadline:
        ratio = deadline.get("time_ratio")
        lines.append(
            f"deadline q={deadline['deadline_quantile']} @ "
            f"{deadline['straggler_rate']:.0%} stragglers: "
            f"{deadline['deadline_simulated_s']:.2f}s simulated vs "
            f"{deadline['barrier_simulated_s']:.2f}s barrier"
            + (f" ({ratio:.2f}x)" if ratio is not None else "")
        )
    return "\n".join(lines)
