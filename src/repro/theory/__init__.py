"""Convergence theory: Theorem 1 / Lemma bounds and empirical verifiers."""

from .bounds import (
    ProblemConstants,
    delta,
    delta_decomposition,
    lemma1_bound,
    lemma2_bound,
    lemma3_bound,
    theorem1_bound,
    theorem1_gamma,
    theorem1_learning_rate,
)
from .constants import (
    empirical_gradient_stats,
    gamma_heterogeneity,
    softmax_loss_and_grad,
    softmax_smoothness,
    solve_softmax_optimum,
)
from .rates import PowerLawFit, fit_power_law, halving_steps
from .verify import (
    VerificationResult,
    verify_lemma2_trimmed_mean,
    verify_lemma3_sparse_upload,
)

__all__ = [
    "ProblemConstants",
    "lemma1_bound",
    "lemma2_bound",
    "lemma3_bound",
    "delta",
    "delta_decomposition",
    "theorem1_gamma",
    "theorem1_learning_rate",
    "theorem1_bound",
    "softmax_loss_and_grad",
    "softmax_smoothness",
    "solve_softmax_optimum",
    "gamma_heterogeneity",
    "empirical_gradient_stats",
    "VerificationResult",
    "verify_lemma2_trimmed_mean",
    "verify_lemma3_sparse_upload",
    "PowerLawFit",
    "fit_power_law",
    "halving_steps",
]
