"""Closed-form bounds from the paper's convergence analysis (Section V).

Implements, as pure functions of the problem constants:

* Lemma 1 — client-drift bound ``E (1/K) sum ||w_bar - w_k||^2 <= 4 eta^2 E^2 G^2``;
* Lemma 2 — trimmed-mean estimation error
  ``E ||e_bar - a_bar||^2 <= 4P / (P - 2B)^2 * eta^2 E^2 G^2``;
* Lemma 3 — sparse-upload sampling variance
  ``E ||a_bar - v_bar||^2 <= (K-P)/(K-1) * 4/P * eta^2 E^2 G^2``;
* Theorem 1 — the O(1/T) suboptimality bound with its five-term Delta.

Everything is written against :class:`ProblemConstants`, which mirrors the
assumptions (L-smoothness, mu-strong convexity, bounded gradient variance
sigma_k^2, bounded gradient norm G^2) plus the topology (K, P, B, E).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence

from ..common.errors import ConfigurationError

__all__ = [
    "ProblemConstants",
    "lemma1_bound",
    "lemma2_bound",
    "lemma3_bound",
    "delta_decomposition",
    "delta",
    "theorem1_gamma",
    "theorem1_learning_rate",
    "theorem1_bound",
]


@dataclass(frozen=True)
class ProblemConstants:
    """Constants of the federated problem, in the paper's notation.

    Parameters
    ----------
    mu:
        Strong-convexity constant (Assumption 2).
    smoothness:
        Smoothness constant ``L`` (Assumption 1); must satisfy ``L >= mu``.
    gradient_bound:
        ``G`` with ``E ||grad F_k(w, xi)||^2 <= G^2`` (Assumption 4).
    sigma_sq:
        Per-client stochastic-gradient variances ``sigma_k^2``
        (Assumption 3).
    gamma_heterogeneity:
        ``Gamma = F* - (1/K) sum_k F_k*`` — the data-heterogeneity gap
        (0 for IID data).
    num_clients, num_servers, num_byzantine:
        ``K``, ``P``, ``B``.
    local_steps:
        ``E``.
    initial_gap_sq:
        ``||w_0 - w*||^2``.
    """

    mu: float
    smoothness: float
    gradient_bound: float
    sigma_sq: Sequence[float]
    gamma_heterogeneity: float
    num_clients: int
    num_servers: int
    num_byzantine: int
    local_steps: int
    initial_gap_sq: float = 0.0

    def __post_init__(self) -> None:
        if self.mu <= 0:
            raise ConfigurationError(f"mu must be positive, got {self.mu}")
        if self.smoothness < self.mu:
            raise ConfigurationError(
                f"L must be >= mu ({self.smoothness} < {self.mu})"
            )
        if self.gradient_bound < 0:
            raise ConfigurationError("gradient_bound must be >= 0")
        if len(self.sigma_sq) != self.num_clients:
            raise ConfigurationError(
                f"{len(self.sigma_sq)} sigma_sq values for "
                f"{self.num_clients} clients"
            )
        if any(s < 0 for s in self.sigma_sq):
            raise ConfigurationError("sigma_sq values must be >= 0")
        if self.gamma_heterogeneity < 0:
            raise ConfigurationError("gamma_heterogeneity must be >= 0")
        if self.num_clients < self.num_servers:
            raise ConfigurationError(
                "the analysis requires K >= P (each PS expects K/P >= 1 uploads)"
            )
        if 2 * self.num_byzantine >= self.num_servers:
            raise ConfigurationError(
                f"Byzantine minority violated: 2*{self.num_byzantine} >= "
                f"{self.num_servers}"
            )
        if self.local_steps <= 0:
            raise ConfigurationError("local_steps must be positive")
        if self.initial_gap_sq < 0:
            raise ConfigurationError("initial_gap_sq must be >= 0")

    @property
    def mean_sigma_sq(self) -> float:
        return sum(self.sigma_sq) / len(self.sigma_sq)


def _eg_sq(constants: ProblemConstants) -> float:
    """``E^2 G^2`` — the recurring drift factor."""
    return (constants.local_steps * constants.gradient_bound) ** 2


def lemma1_bound(constants: ProblemConstants, learning_rate: float) -> float:
    """Client-drift bound ``4 eta^2 E^2 G^2`` (Lemma 1)."""
    return 4.0 * learning_rate ** 2 * _eg_sq(constants)


def lemma2_bound(constants: ProblemConstants, learning_rate: float) -> float:
    """Trimmed-mean estimation error bound (Lemma 2).

    ``4P / (P - 2B)^2 * eta^2 E^2 G^2`` — grows as the Byzantine fraction
    approaches 1/2 and vanishes only in the ``P -> inf`` limit.
    """
    p, b = constants.num_servers, constants.num_byzantine
    return 4.0 * p / (p - 2 * b) ** 2 * learning_rate ** 2 * _eg_sq(constants)


def lemma3_bound(constants: ProblemConstants, learning_rate: float) -> float:
    """Sparse-upload sampling variance bound (Lemma 3).

    ``(K - P)/(K - 1) * 4/P * eta^2 E^2 G^2`` — zero when ``K == P`` (each
    PS is a singleton sample) and decreasing in ``P``.
    """
    k, p = constants.num_clients, constants.num_servers
    if k == 1:
        return 0.0
    return ((k - p) / (k - 1)) * (4.0 / p) * learning_rate ** 2 \
        * _eg_sq(constants)


def delta_decomposition(constants: ProblemConstants) -> Dict[str, float]:
    """The five terms of Theorem 1's Delta, by name.

    ``heterogeneity`` + ``drift`` + ``sgd_variance`` + ``byzantine`` +
    ``partial_participation`` — the last two are Lemma 2/3's bounds with the
    ``eta^2`` factor removed (Theorem 1 folds eta into the recursion).
    """
    eg_sq = _eg_sq(constants)
    p, b = constants.num_servers, constants.num_byzantine
    k = constants.num_clients
    return {
        "heterogeneity": 6.0 * constants.smoothness
        * constants.gamma_heterogeneity,
        "drift": 8.0 * eg_sq,
        "sgd_variance": constants.mean_sigma_sq,
        "byzantine": 4.0 * p / (p - 2 * b) ** 2 * eg_sq,
        "partial_participation": (
            0.0 if k == 1 else ((k - p) / (k - 1)) * (4.0 / p) * eg_sq
        ),
    }


def delta(constants: ProblemConstants) -> float:
    """Theorem 1's Delta — the sum of the five error terms."""
    return sum(delta_decomposition(constants).values())


def theorem1_gamma(constants: ProblemConstants) -> float:
    """``gamma = max(8 L / mu, E)`` from Theorem 1."""
    return max(8.0 * constants.smoothness / constants.mu,
               float(constants.local_steps))


def theorem1_learning_rate(constants: ProblemConstants, step: int) -> float:
    """``eta_t = 2 / (mu (gamma + t))`` — the prescribed schedule."""
    if step < 0:
        raise ConfigurationError(f"step must be >= 0, got {step}")
    return 2.0 / (constants.mu * (theorem1_gamma(constants) + step))


def theorem1_bound(constants: ProblemConstants, step: int) -> float:
    """The suboptimality bound of Theorem 1 at global step ``t``.

    ``E[F(w_bar_t) - F*] <= L / (2 mu (gamma + t)) *
    (4 Delta + gamma mu^2 ||w_0 - w*||^2)``.
    """
    if step < 0:
        raise ConfigurationError(f"step must be >= 0, got {step}")
    gamma = theorem1_gamma(constants)
    numerator = (4.0 * delta(constants)
                 + gamma * constants.mu ** 2 * constants.initial_gap_sq)
    return constants.smoothness / (2.0 * constants.mu * (gamma + step)) \
        * numerator
