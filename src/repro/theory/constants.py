"""Estimating the analysis constants for concrete convex problems.

The convergence experiments instantiate Theorem 1 on L2-regularized softmax
regression, whose constants are computable:

* strong convexity ``mu`` = the L2 coefficient;
* smoothness ``L <= 0.5 * lambda_max(X^T X / n) + l2`` (the multinomial
  logistic Hessian is dominated by ``0.5 * X^T X / n`` per class block);
* ``F*`` and ``w*`` by full-batch gradient descent to high precision;
* ``Gamma``, ``G^2`` and ``sigma_k^2`` measured empirically.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..common.errors import ConfigurationError, ConvergenceError
from ..data.datasets import ArrayDataset
from ..nn.functional import log_softmax, softmax

__all__ = [
    "softmax_loss_and_grad",
    "softmax_smoothness",
    "solve_softmax_optimum",
    "gamma_heterogeneity",
    "empirical_gradient_stats",
]


def softmax_loss_and_grad(weights: np.ndarray, features: np.ndarray,
                          labels: np.ndarray, l2: float
                          ) -> Tuple[float, np.ndarray]:
    """Loss and gradient of L2-regularized softmax regression.

    ``weights`` has shape ``(dim, num_classes)``; the loss is the mean
    cross-entropy plus ``(l2 / 2) ||weights||^2``.
    """
    n = features.shape[0]
    logits = features @ weights
    log_probs = log_softmax(logits, axis=1)
    loss = -float(log_probs[np.arange(n), labels].mean())
    loss += 0.5 * l2 * float(np.sum(weights * weights))
    probs = softmax(logits, axis=1)
    probs[np.arange(n), labels] -= 1.0
    grad = features.T @ probs / n + l2 * weights
    return loss, grad


def softmax_smoothness(features: np.ndarray, l2: float) -> float:
    """An upper bound on the smoothness constant ``L``.

    Uses ``L <= 0.5 * lambda_max(X^T X / n) + l2``.
    """
    n = features.shape[0]
    covariance = features.T @ features / n
    lambda_max = float(np.linalg.eigvalsh(covariance)[-1])
    return 0.5 * lambda_max + l2


def solve_softmax_optimum(dataset: ArrayDataset, num_classes: int, *,
                          l2: float, tolerance: float = 1e-9,
                          max_iterations: int = 20000
                          ) -> Tuple[np.ndarray, float]:
    """``(w*, F*)`` of the regularized softmax problem, by full-batch GD.

    Deterministic (starts from zero); raises :class:`ConvergenceError` if
    the gradient norm does not drop below ``tolerance`` within the budget.
    """
    if l2 <= 0:
        raise ConfigurationError(
            "l2 must be positive for a strongly convex problem"
        )
    features = dataset.features.reshape(len(dataset), -1)
    labels = dataset.labels
    weights = np.zeros((features.shape[1], num_classes))
    smoothness = softmax_smoothness(features, l2)
    step = 1.0 / smoothness
    for _ in range(max_iterations):
        loss, grad = softmax_loss_and_grad(weights, features, labels, l2)
        grad_norm = float(np.linalg.norm(grad))
        if grad_norm < tolerance:
            return weights, loss
        weights = weights - step * grad
    raise ConvergenceError(
        f"full-batch GD did not reach grad norm {tolerance} in "
        f"{max_iterations} iterations (last {grad_norm:.3e})"
    )


def gamma_heterogeneity(client_datasets: Sequence[ArrayDataset],
                        num_classes: int, *, l2: float,
                        global_optimum_value: Optional[float] = None
                        ) -> float:
    """``Gamma = F* - (1/K) sum_k F_k*`` (Theorem 1's heterogeneity gap).

    Solves every client's local problem and, unless supplied, the global
    one (on the concatenation of all client data). Non-negative by
    convexity; ~0 for IID partitions.
    """
    if not client_datasets:
        raise ConfigurationError("need at least one client dataset")
    if global_optimum_value is None:
        all_features = np.concatenate(
            [d.features.reshape(len(d), -1) for d in client_datasets]
        )
        all_labels = np.concatenate([d.labels for d in client_datasets])
        merged = ArrayDataset(all_features, all_labels)
        _, global_optimum_value = solve_softmax_optimum(
            merged, num_classes, l2=l2
        )
    local_optima: List[float] = []
    for dataset in client_datasets:
        _, local_value = solve_softmax_optimum(dataset, num_classes, l2=l2)
        local_optima.append(local_value)
    gamma = global_optimum_value - float(np.mean(local_optima))
    return max(gamma, 0.0)


def empirical_gradient_stats(dataset: ArrayDataset, num_classes: int, *,
                             l2: float, batch_size: int,
                             num_probes: int, rng: np.random.Generator,
                             weights: Optional[np.ndarray] = None
                             ) -> Tuple[float, float]:
    """Measure ``(G^2, sigma^2)`` for a client at given weights.

    Draws ``num_probes`` mini-batches; ``G^2`` is the max observed squared
    stochastic-gradient norm, ``sigma^2`` the mean squared deviation from
    the full-batch gradient (Assumptions 3 and 4 instantiated empirically).
    """
    if num_probes <= 0:
        raise ConfigurationError(f"num_probes must be positive, got {num_probes}")
    features = dataset.features.reshape(len(dataset), -1)
    labels = dataset.labels
    if weights is None:
        weights = np.zeros((features.shape[1], num_classes))
    _, full_grad = softmax_loss_and_grad(weights, features, labels, l2)
    max_sq_norm = 0.0
    deviations = np.empty(num_probes)
    for probe in range(num_probes):
        batch = rng.choice(len(dataset), size=min(batch_size, len(dataset)),
                           replace=False)
        _, grad = softmax_loss_and_grad(weights, features[batch],
                                        labels[batch], l2)
        max_sq_norm = max(max_sq_norm, float(np.sum(grad * grad)))
        deviations[probe] = float(np.sum((grad - full_grad) ** 2))
    return max_sq_norm, float(deviations.mean())
