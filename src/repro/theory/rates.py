"""Empirical convergence-rate estimation.

Theorem 1 claims an ``O(1/T)`` rate. Given a measured suboptimality
trajectory, :func:`fit_power_law` recovers the empirical exponent by
least-squares in log-log space, so the convergence benchmark can assert
"the measured decay exponent is at most -0.8" instead of eyeballing a
curve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..common.errors import ConfigurationError

__all__ = ["PowerLawFit", "fit_power_law", "halving_steps"]


@dataclass(frozen=True)
class PowerLawFit:
    """``value ~ coefficient * step^exponent`` fit summary.

    ``r_squared`` is the coefficient of determination of the log-log
    regression; close to 1 means the trajectory really is a power law.
    """

    exponent: float
    coefficient: float
    r_squared: float

    def predict(self, step: float) -> float:
        """Fitted value at ``step``."""
        if step <= 0:
            raise ConfigurationError(f"step must be positive, got {step}")
        return self.coefficient * step ** self.exponent


def fit_power_law(steps: Sequence[float],
                  values: Sequence[float]) -> PowerLawFit:
    """Least-squares power-law fit of ``values`` against ``steps``.

    Both inputs must be positive; at least three points are required for a
    meaningful ``r_squared``.
    """
    steps = np.asarray(steps, dtype=np.float64)
    values = np.asarray(values, dtype=np.float64)
    if steps.shape != values.shape or steps.ndim != 1:
        raise ConfigurationError(
            f"steps and values must be matching 1-D sequences, got "
            f"{steps.shape} and {values.shape}"
        )
    if steps.size < 3:
        raise ConfigurationError(
            f"need at least 3 points to fit, got {steps.size}"
        )
    if np.any(steps <= 0) or np.any(values <= 0):
        raise ConfigurationError("steps and values must be strictly positive")

    log_steps = np.log(steps)
    log_values = np.log(values)
    design = np.stack([log_steps, np.ones_like(log_steps)], axis=1)
    (slope, intercept), residuals, _, _ = np.linalg.lstsq(
        design, log_values, rcond=None
    )
    predicted = design @ np.array([slope, intercept])
    total = float(np.sum((log_values - log_values.mean()) ** 2))
    residual = float(np.sum((log_values - predicted) ** 2))
    r_squared = 1.0 - residual / total if total > 0 else 1.0
    return PowerLawFit(
        exponent=float(slope),
        coefficient=float(np.exp(intercept)),
        r_squared=r_squared,
    )


def halving_steps(steps: Sequence[float], values: Sequence[float]) -> float:
    """Average multiplicative step growth needed to halve the value.

    For a perfect ``1/t`` decay this is 2.0 (doubling ``t`` halves the
    error); returns ``2 ** (-1 / exponent)`` of the fitted power law.
    """
    fit = fit_power_law(steps, values)
    if fit.exponent >= 0:
        return float("inf")
    return float(2.0 ** (-1.0 / fit.exponent))
