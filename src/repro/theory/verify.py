"""Monte-Carlo verification of the paper's lemmas.

Each verifier samples the random object a lemma reasons about, applies a
worst-case-style adversary, measures the quantity the lemma bounds and
returns ``(measured, bound)``. The property tests assert
``measured <= bound``; the lemma-bounds benchmark reports the tightness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from ..aggregation import trimmed_mean
from ..common.errors import ConfigurationError

__all__ = [
    "VerificationResult",
    "verify_lemma2_trimmed_mean",
    "verify_lemma3_sparse_upload",
]


@dataclass(frozen=True)
class VerificationResult:
    """Outcome of a Monte-Carlo lemma check.

    ``measured`` is the Monte-Carlo mean of the bounded quantity and
    ``std_error`` its standard error; :attr:`holds` allows a 3-sigma
    statistical margin, since for edge cases (e.g. Lemma 2 with ``B = 0``)
    the bound equals the exact expectation and sampling noise sits on it.
    """

    measured: float
    bound: float
    trials: int
    std_error: float = 0.0

    @property
    def holds(self) -> bool:
        return self.measured <= self.bound + 3.0 * self.std_error

    @property
    def tightness(self) -> float:
        """``measured / bound`` — 1.0 means the bound is tight."""
        return self.measured / self.bound if self.bound > 0 else float("inf")


TamperFn = Callable[[np.ndarray, np.random.Generator], np.ndarray]


def _default_tamper(values: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Adversarial tampering: push values far outside the benign range."""
    return rng.choice([-1.0, 1.0], size=values.shape) * 1e6


def verify_lemma2_trimmed_mean(*, num_servers: int, num_byzantine: int,
                               sigma: float, trials: int = 2000,
                               rng: np.random.Generator,
                               tamper: Optional[TamperFn] = None
                               ) -> VerificationResult:
    """Check Lemma 2's scalar core: tampering ``B`` of ``P`` i.i.d. values
    with variance ``sigma^2`` leaves the beta-trimmed mean within
    ``P sigma^2 / (P - 2B)^2`` mean-squared error of the true mean.

    Each trial draws ``P`` values from ``N(mu, sigma^2)`` with a random
    ``mu``, replaces ``B`` of them adversarially and measures
    ``(trmean - mu)^2``.
    """
    if 2 * num_byzantine >= num_servers:
        raise ConfigurationError("Byzantine minority violated")
    if sigma <= 0:
        raise ConfigurationError(f"sigma must be positive, got {sigma}")
    if trials <= 0:
        raise ConfigurationError(f"trials must be positive, got {trials}")
    tamper = tamper if tamper is not None else _default_tamper
    beta = num_byzantine / num_servers
    squared_errors = np.empty(trials)
    for trial in range(trials):
        true_mean = rng.normal(scale=10.0)
        values = rng.normal(loc=true_mean, scale=sigma, size=num_servers)
        if num_byzantine > 0:
            victims = rng.choice(num_servers, size=num_byzantine, replace=False)
            values[victims] = tamper(values[victims], rng)
        estimate = trimmed_mean(values.reshape(-1, 1), beta)[0]
        squared_errors[trial] = (estimate - true_mean) ** 2
    measured = float(squared_errors.mean())
    std_error = float(squared_errors.std(ddof=1) / np.sqrt(trials))
    bound = num_servers * sigma ** 2 / (num_servers - 2 * num_byzantine) ** 2
    return VerificationResult(measured=measured, bound=bound, trials=trials,
                              std_error=std_error)


def verify_lemma3_sparse_upload(*, num_clients: int, num_servers: int,
                                dim: int = 8, deviation: float = 1.0,
                                trials: int = 2000,
                                rng: np.random.Generator
                                ) -> VerificationResult:
    """Check Lemma 3: with sparse uploading, the per-server-average
    aggregate ``a_bar`` is an unbiased estimate of the client average
    ``v_bar`` with variance at most ``(K-P)/(K-1) * 4/P * D^2`` where
    ``D = eta E G`` bounds each client's drift ``||v_k - v_bar|| <= 2 D``
    (Lemma 1's guarantee).

    Client vectors are drawn on the drift sphere of radius ``2 * deviation``
    (the worst case Lemma 1 allows with ``D = deviation``); servers with no
    uploads fall back to ``v_bar`` (the previous-aggregate behavior
    linearized at the current round).
    """
    if num_clients < num_servers:
        raise ConfigurationError("requires K >= P")
    if trials <= 0:
        raise ConfigurationError(f"trials must be positive, got {trials}")
    # Fixed client vectors across trials: v_k = v_bar + r_k, ||r_k|| = 2D.
    raw = rng.normal(size=(num_clients, dim))
    raw -= raw.mean(axis=0)  # center so v_bar = 0
    norms = np.linalg.norm(raw, axis=1, keepdims=True)
    vectors = raw / norms * (2.0 * deviation)
    vectors -= vectors.mean(axis=0)  # recenter after normalization
    v_bar = vectors.mean(axis=0)

    squared_errors = np.empty(trials)
    sum_a_bar = np.zeros(dim)
    for trial in range(trials):
        picks = rng.integers(0, num_servers, size=num_clients)
        aggregates = np.empty((num_servers, dim))
        for server in range(num_servers):
            members = picks == server
            if members.any():
                aggregates[server] = vectors[members].mean(axis=0)
            else:
                aggregates[server] = v_bar
        a_bar = aggregates.mean(axis=0)
        sum_a_bar += a_bar
        squared_errors[trial] = float(np.sum((a_bar - v_bar) ** 2))
    measured = float(squared_errors.mean())
    std_error = float(squared_errors.std(ddof=1) / np.sqrt(trials))
    k, p = num_clients, num_servers
    bound = ((k - p) / (k - 1)) * (4.0 / p) * deviation ** 2 if k > 1 else 0.0
    return VerificationResult(measured=measured, bound=bound, trials=trials,
                              std_error=std_error)
