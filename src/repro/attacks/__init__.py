"""Byzantine parameter-server attacks: the paper's four plus extensions."""

from .base import Attack, AttackContext
from .client_attacks import (
    ClientAttack,
    ClientAttackContext,
    ClientNoiseAttack,
    ClientSameValueAttack,
    ClientScalingAttack,
    ClientSignFlipAttack,
    available_client_attacks,
    make_client_attack,
)
from .catalog import (
    AdaptiveTrimmedMeanAttack,
    BackwardAttack,
    ColludingAttack,
    DispersionMimicryAttack,
    IdentityAttack,
    InconsistentAttack,
    InnerProductManipulationAttack,
    NoiseAttack,
    RandomAttack,
    SafeguardAttack,
    SignFlipAttack,
    ZeroAttack,
)
from .registry import PAPER_ATTACKS, available_attacks, make_attack

__all__ = [
    "Attack",
    "AttackContext",
    "IdentityAttack",
    "NoiseAttack",
    "RandomAttack",
    "SafeguardAttack",
    "BackwardAttack",
    "SignFlipAttack",
    "ZeroAttack",
    "InconsistentAttack",
    "AdaptiveTrimmedMeanAttack",
    "InnerProductManipulationAttack",
    "ColludingAttack",
    "DispersionMimicryAttack",
    "available_attacks",
    "make_attack",
    "PAPER_ATTACKS",
    "ClientAttack",
    "ClientAttackContext",
    "ClientSignFlipAttack",
    "ClientNoiseAttack",
    "ClientScalingAttack",
    "ClientSameValueAttack",
    "available_client_attacks",
    "make_client_attack",
]
