"""Attack protocol for Byzantine parameter servers.

The paper's threat model (Section III-A) gives Byzantine PSs three powers:

* **Arbitrary tampering** — the disseminated model can be anything;
* **Inconsistency** — different clients may receive different tampered
  models in the same round (clients cannot cross-check, they never talk to
  each other);
* **Adaptive knowledge** — the adversary sees the full algorithm, history
  and current state, and may react to them.

:class:`AttackContext` carries exactly that information to an
:class:`Attack` implementation, whose single method produces the tampered
vector a given client will receive.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

__all__ = ["AttackContext", "Attack"]


class AttackContext:
    """Everything a Byzantine PS knows when it tampers with its aggregate.

    Attributes
    ----------
    round_index:
        Zero-based global round ``t``.
    server_id:
        Identifier of the attacking PS.
    true_aggregate:
        The honest aggregate ``a_{t+1}^i`` this PS computed from the local
        models it received (the adversary controls the PS *after* it follows
        the aggregation step, so it knows the true value).
    previous_aggregates:
        This PS's honest aggregates from earlier rounds, oldest first
        (the state a Backward/Safeguard attack needs).
    all_server_aggregates:
        Adaptive knowledge: the honest aggregates of *all* PSs this round,
        shape ``(P, dim)``, or ``None`` for attacks that do not use it.
    client_id:
        The client about to receive the tampered model, or ``None`` when the
        same model is broadcast to everyone. Lets an attack send different
        lies to different clients.
    rng:
        Dedicated random stream for this PS's attack noise.
    """

    def __init__(self, *, round_index: int, server_id: int,
                 true_aggregate: np.ndarray,
                 previous_aggregates: List[np.ndarray],
                 rng: np.random.Generator,
                 all_server_aggregates: Optional[np.ndarray] = None,
                 client_id: Optional[int] = None) -> None:
        self.round_index = round_index
        self.server_id = server_id
        self.true_aggregate = true_aggregate
        self.previous_aggregates = previous_aggregates
        self.all_server_aggregates = all_server_aggregates
        self.client_id = client_id
        self.rng = rng


class Attack:
    """Base class for Byzantine PS behaviors.

    Subclasses implement :meth:`tamper`, mapping the context to the vector
    the PS actually disseminates. Implementations must not modify
    ``context.true_aggregate`` in place.
    """

    #: Registry name; subclasses override.
    name: str = "identity"

    def tamper(self, context: AttackContext) -> np.ndarray:
        """Return the tampered dissemination vector."""
        raise NotImplementedError

    @property
    def is_client_dependent(self) -> bool:
        """True when the attack may send different models to different clients.

        The training loop uses this to decide whether one tampered vector can
        be broadcast or whether :meth:`tamper` must run per client.
        """
        return False

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
