"""The Byzantine PS attacks evaluated in the paper, plus extensions.

Paper attacks (Section VI-A, following the Blades benchmark suite):

* :class:`NoiseAttack` — Gaussian perturbation of the true aggregate;
* :class:`RandomAttack` — replace the aggregate with ``U[-10, 10]`` noise;
* :class:`SafeguardAttack` — reverse-pseudo-gradient:
  ``a - gamma * (a_t - a_{t-1})`` with ``gamma = 0.6``;
* :class:`BackwardAttack` — staleness: replay the aggregate from ``T``
  rounds ago (``T = 2`` in the paper).

Extensions used by the ablation benchmarks:

* :class:`SignFlipAttack`, :class:`ZeroAttack` — classic baselines;
* :class:`InconsistentAttack` — sends a *different* tampered model to every
  client, the worst case the threat model explicitly allows;
* :class:`AdaptiveTrimmedMeanAttack` — an adaptive adversary that knows the
  defense is a beta-trimmed mean and biases its lie to the edge of what
  survives trimming (an ALIE-style attack);
* :class:`ColludingAttack` — every Byzantine PS disseminates the *same*
  poisoned vector, so under-trimming admits multiple aligned copies;
* :class:`DispersionMimicryAttack` — a colluding lie shaped to match the
  honest inter-model variance, so a static-beta trimmed mean admits it.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..common.errors import ConfigurationError
from ..common.rng import stream_seed
from .base import Attack, AttackContext

__all__ = [
    "IdentityAttack",
    "NoiseAttack",
    "RandomAttack",
    "SafeguardAttack",
    "BackwardAttack",
    "SignFlipAttack",
    "ZeroAttack",
    "InconsistentAttack",
    "AdaptiveTrimmedMeanAttack",
    "InnerProductManipulationAttack",
    "ColludingAttack",
    "DispersionMimicryAttack",
]


class IdentityAttack(Attack):
    """No tampering — turns a Byzantine PS into a benign one.

    Useful as the ``epsilon = 0%`` control case in the Fig. 3 sweep.
    """

    name = "identity"

    def tamper(self, context: AttackContext) -> np.ndarray:
        return context.true_aggregate.copy()


class NoiseAttack(Attack):
    """Additive Gaussian noise: ``a + N(0, scale^2 I)``."""

    name = "noise"

    def __init__(self, scale: float = 1.0) -> None:
        if scale <= 0:
            raise ConfigurationError(f"scale must be positive, got {scale}")
        self.scale = float(scale)

    def tamper(self, context: AttackContext) -> np.ndarray:
        noise = context.rng.normal(scale=self.scale,
                                   size=context.true_aggregate.shape)
        return context.true_aggregate + noise

    def __repr__(self) -> str:
        return f"NoiseAttack(scale={self.scale})"


class RandomAttack(Attack):
    """Replace the aggregate with uniform noise on ``[low, high]``.

    The paper samples from ``[-10, 10]`` — enormous relative to trained
    network weights, which is why this attack destroys undefended FL.
    """

    name = "random"

    def __init__(self, low: float = -10.0, high: float = 10.0) -> None:
        if low >= high:
            raise ConfigurationError(f"need low < high, got [{low}, {high}]")
        self.low = float(low)
        self.high = float(high)

    def tamper(self, context: AttackContext) -> np.ndarray:
        return context.rng.uniform(self.low, self.high,
                                   size=context.true_aggregate.shape)

    def __repr__(self) -> str:
        return f"RandomAttack(low={self.low}, high={self.high})"


class SafeguardAttack(Attack):
    """Reverse-pseudo-gradient attack.

    Following the paper: ``tilde(a)_{t+1} = a_{t+1} - gamma * g_{t+1}`` where
    ``g_{t+1} = a_{t+1} - a_t`` is the pseudo global gradient and
    ``gamma = 0.6``. In the first round there is no previous aggregate, so the
    attack degenerates to honesty.
    """

    name = "safeguard"

    def __init__(self, gamma: float = 0.6) -> None:
        if gamma <= 0:
            raise ConfigurationError(f"gamma must be positive, got {gamma}")
        self.gamma = float(gamma)

    def tamper(self, context: AttackContext) -> np.ndarray:
        if not context.previous_aggregates:
            return context.true_aggregate.copy()
        pseudo_gradient = context.true_aggregate - context.previous_aggregates[-1]
        return context.true_aggregate - self.gamma * pseudo_gradient

    def __repr__(self) -> str:
        return f"SafeguardAttack(gamma={self.gamma})"


class BackwardAttack(Attack):
    """Staleness attack: disseminate the aggregate from ``delay`` rounds ago.

    ``tilde(a)_{t+1} = a_{t+1-T}`` with ``T = 2`` in the paper. While fewer
    than ``delay`` rounds have elapsed, the oldest available aggregate is
    replayed.
    """

    name = "backward"

    def __init__(self, delay: int = 2) -> None:
        if delay <= 0:
            raise ConfigurationError(f"delay must be positive, got {delay}")
        self.delay = int(delay)

    def tamper(self, context: AttackContext) -> np.ndarray:
        history = context.previous_aggregates
        if not history:
            return context.true_aggregate.copy()
        # history[-1] is a_t (delay 1); index -self.delay is a_{t+1-T}.
        index = max(len(history) - self.delay, 0)
        return history[index].copy()

    def __repr__(self) -> str:
        return f"BackwardAttack(delay={self.delay})"


class SignFlipAttack(Attack):
    """Disseminate ``-scale * a`` — inverts the training signal."""

    name = "sign_flip"

    def __init__(self, scale: float = 1.0) -> None:
        if scale <= 0:
            raise ConfigurationError(f"scale must be positive, got {scale}")
        self.scale = float(scale)

    def tamper(self, context: AttackContext) -> np.ndarray:
        return -self.scale * context.true_aggregate

    def __repr__(self) -> str:
        return f"SignFlipAttack(scale={self.scale})"


class ZeroAttack(Attack):
    """Disseminate the all-zeros model."""

    name = "zero"

    def tamper(self, context: AttackContext) -> np.ndarray:
        return np.zeros_like(context.true_aggregate)


class InconsistentAttack(Attack):
    """Send a *different* random perturbation to every client.

    Exercises the threat model's worst case: "a Byzantine PS can send
    various tampered models to different clients. Such a Byzantine behavior
    cannot be detected since the clients cannot directly communicate with
    each other." The perturbation for client ``c`` in round ``t`` is a
    deterministic function of ``(t, c)`` so the attack is reproducible.
    """

    name = "inconsistent"

    def __init__(self, scale: float = 5.0) -> None:
        if scale <= 0:
            raise ConfigurationError(f"scale must be positive, got {scale}")
        self.scale = float(scale)

    @property
    def is_client_dependent(self) -> bool:
        return True

    def tamper(self, context: AttackContext) -> np.ndarray:
        client = context.client_id if context.client_id is not None else 0
        seed_material = (context.round_index, context.server_id, client)
        per_client_rng = np.random.default_rng(
            abs(hash(seed_material)) % (2 ** 32)
        )
        noise = per_client_rng.normal(scale=self.scale,
                                      size=context.true_aggregate.shape)
        return context.true_aggregate + noise

    def __repr__(self) -> str:
        return f"InconsistentAttack(scale={self.scale})"


class AdaptiveTrimmedMeanAttack(Attack):
    """Defense-aware attack against a beta-trimmed-mean filter.

    Uses the adaptive adversary's full knowledge: it reads the honest
    aggregates of *all* PSs this round (``context.all_server_aggregates``),
    computes each coordinate's benign mean and standard deviation, and
    disseminates ``mean - z_max * std``. For small ``z_max`` the lie hides
    inside the benign spread, survives trimming, and biases every coordinate
    of the filtered model in a consistent direction — the "a little is
    enough" strategy adapted to server-side attacks.

    Falls back to sign-flipping when the adaptive knowledge is unavailable.
    """

    name = "adaptive_trimmed_mean"

    def __init__(self, z_max: float = 1.0) -> None:
        if z_max <= 0:
            raise ConfigurationError(f"z_max must be positive, got {z_max}")
        self.z_max = float(z_max)

    def tamper(self, context: AttackContext) -> np.ndarray:
        stack = context.all_server_aggregates
        if stack is None or stack.shape[0] < 2:
            return -context.true_aggregate
        benign_mean = stack.mean(axis=0)
        benign_std = stack.std(axis=0)
        return benign_mean - self.z_max * benign_std

    def __repr__(self) -> str:
        return f"AdaptiveTrimmedMeanAttack(z_max={self.z_max})"


class InnerProductManipulationAttack(Attack):
    """Inner-product manipulation (Xie et al., 2020), server-side variant.

    Disseminates ``-epsilon`` times the mean of the *benign* aggregates, so
    the tampered model's inner product with the true update direction is
    negative while its magnitude stays comparable to benign models — a
    subtler lie than sign-flipping the full aggregate. Uses the adaptive
    adversary's knowledge of all PS aggregates; falls back to its own
    aggregate when that knowledge is unavailable.
    """

    name = "inner_product"

    def __init__(self, epsilon: float = 0.5) -> None:
        if epsilon <= 0:
            raise ConfigurationError(f"epsilon must be positive, got {epsilon}")
        self.epsilon = float(epsilon)

    def tamper(self, context: AttackContext) -> np.ndarray:
        stack = context.all_server_aggregates
        if stack is None or stack.shape[0] < 2:
            return -self.epsilon * context.true_aggregate
        return -self.epsilon * stack.mean(axis=0)

    def __repr__(self) -> str:
        return f"InnerProductManipulationAttack(epsilon={self.epsilon})"


class ColludingAttack(Attack):
    """Coordinated lie: every Byzantine PS disseminates the same vector.

    The tampered model is the benign mean pushed along a shared poisoned
    direction derived deterministically from ``(seed, round)`` — *not*
    from the per-server attack stream — so all colluders produce a
    bit-identical lie without communicating. Against a trimmed mean whose
    ``beta`` under-estimates the true Byzantine count, ``B - t`` aligned
    copies survive trimming in every coordinate and bias the filtered
    model in a consistent direction round after round; with the oracle
    ``beta = B / P`` all copies sit in the trimmed tails and the attack is
    neutralized. Loss-based selection rejects the whole cohort at once:
    the shared lie ranks last on the trusted batch no matter how many
    copies arrive.
    """

    name = "colluding"

    def __init__(self, scale: float = 1.0, seed: int = 0) -> None:
        if scale <= 0:
            raise ConfigurationError(f"scale must be positive, got {scale}")
        self.scale = float(scale)
        self.seed = int(seed)

    def _shared_direction(self, round_index: int, dim: int) -> np.ndarray:
        rng = np.random.default_rng(stream_seed(
            self.seed, f"attack/colluding/round/{round_index}"
        ))
        return rng.normal(size=dim)

    def tamper(self, context: AttackContext) -> np.ndarray:
        stack = context.all_server_aggregates
        base = (stack.mean(axis=0) if stack is not None
                and stack.shape[0] >= 1 else context.true_aggregate)
        direction = self._shared_direction(context.round_index, base.size)
        return base + self.scale * direction

    def __repr__(self) -> str:
        return f"ColludingAttack(scale={self.scale}, seed={self.seed})"


class DispersionMimicryAttack(Attack):
    """Colluding lie shaped to hide inside the honest inter-model spread.

    Adaptive knowledge in full: the attack reads all PSs' honest
    aggregates, takes their coordinate-wise median ``m`` and standard
    deviation ``s``, and disseminates::

        m + envelope * max_i ||a_i - m|| * unit(sign ⊙ s)

    — a vector whose per-coordinate offset is proportional to the honest
    spread in that coordinate (so a static-beta trimmed mean sees it as
    one more plausibly-honest model and admits it when under-trimmed) and
    whose distance from the median is ``envelope`` times the largest
    *honest* deviation. The sign pattern is fixed per attack instance, so
    the admitted bias compounds across rounds; like the colluding attack,
    the lie is identical on every Byzantine PS.

    With ``envelope <= 1`` the lie is indistinguishable from the outermost
    honest model by dispersion alone; the default ``envelope = 2`` is the
    attacker's sweet spot against a *static* under-trimmed filter — far
    enough out to hurt, close enough in to survive trimming — while the
    MAD-based adaptive estimator scores it as an outlier and trims it.

    Falls back to honesty while fewer than three aggregates are visible
    (no spread to mimic).
    """

    name = "dispersion_mimicry"

    def __init__(self, envelope: float = 2.0, seed: int = 0) -> None:
        if envelope <= 0:
            raise ConfigurationError(
                f"envelope must be positive, got {envelope}"
            )
        self.envelope = float(envelope)
        self.seed = int(seed)
        self._signs: Optional[np.ndarray] = None

    def _sign_pattern(self, dim: int) -> np.ndarray:
        if self._signs is None or self._signs.size != dim:
            rng = np.random.default_rng(stream_seed(
                self.seed, "attack/mimicry/signs"
            ))
            self._signs = np.where(rng.random(dim) < 0.5, -1.0, 1.0)
        return self._signs

    def tamper(self, context: AttackContext) -> np.ndarray:
        stack = context.all_server_aggregates
        if stack is None or stack.shape[0] < 3:
            return context.true_aggregate.copy()
        center = np.median(stack, axis=0)
        spread = stack.std(axis=0)
        spread_norm = float(np.linalg.norm(spread))
        deltas = stack - center
        distances = np.sqrt(np.einsum("ij,ij->i", deltas, deltas))
        target = self.envelope * float(distances.max())
        if spread_norm <= 0.0 or target <= 0.0:
            # All honest models coincide: any deviation would stand out,
            # so the optimal mimicry is a perfect copy.
            return center
        direction = self._sign_pattern(center.size) * spread / spread_norm
        return center + target * direction

    def __repr__(self) -> str:
        return (f"DispersionMimicryAttack(envelope={self.envelope}, "
                f"seed={self.seed})")
