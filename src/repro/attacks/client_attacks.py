"""Byzantine *client* attacks — the paper's stated future work.

The paper concludes: "Considering the FEEL problem with both Byzantine PSs
and clients will be our work in the future." This module implements that
extension: a Byzantine client tampers with the local model it uploads
during the aggregation stage. Combined with server-side robust aggregation
(benign PSs applying a trimmed mean over the uploads they receive instead
of a plain average — the classical Yin et al. defense), the trainer can run
with adversaries on both sides.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..common.errors import ConfigurationError

__all__ = [
    "ClientAttackContext",
    "ClientAttack",
    "ClientSignFlipAttack",
    "ClientNoiseAttack",
    "ClientScalingAttack",
    "ClientSameValueAttack",
    "available_client_attacks",
    "make_client_attack",
]


class ClientAttackContext:
    """What a Byzantine client knows when it tampers with its upload.

    Attributes
    ----------
    round_index:
        Current global round ``t``.
    client_id:
        The attacking client.
    honest_update:
        The local model vector an honest execution of local training
        produced (Byzantine clients still *can* train; the strongest
        attacks are functions of the true update).
    global_model:
        The feasible global model the client started the round from.
    rng:
        Dedicated random stream for this client's attack.
    """

    def __init__(self, *, round_index: int, client_id: int,
                 honest_update: np.ndarray, global_model: np.ndarray,
                 rng: np.random.Generator) -> None:
        self.round_index = round_index
        self.client_id = client_id
        self.honest_update = honest_update
        self.global_model = global_model
        self.rng = rng


class ClientAttack:
    """Base class for Byzantine client behaviors."""

    name: str = "client_identity"

    def tamper(self, context: ClientAttackContext) -> np.ndarray:
        """The vector the Byzantine client actually uploads."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class ClientSignFlipAttack(ClientAttack):
    """Upload the *negated* local update direction.

    Uploads ``global - scale * (honest - global)``: the honest progress,
    reversed — steering the aggregate backwards.
    """

    name = "client_sign_flip"

    def __init__(self, scale: float = 1.0) -> None:
        if scale <= 0:
            raise ConfigurationError(f"scale must be positive, got {scale}")
        self.scale = float(scale)

    def tamper(self, context: ClientAttackContext) -> np.ndarray:
        progress = context.honest_update - context.global_model
        return context.global_model - self.scale * progress


class ClientNoiseAttack(ClientAttack):
    """Upload the honest update plus large Gaussian noise."""

    name = "client_noise"

    def __init__(self, scale: float = 1.0) -> None:
        if scale <= 0:
            raise ConfigurationError(f"scale must be positive, got {scale}")
        self.scale = float(scale)

    def tamper(self, context: ClientAttackContext) -> np.ndarray:
        noise = context.rng.normal(scale=self.scale,
                                   size=context.honest_update.shape)
        return context.honest_update + noise


class ClientScalingAttack(ClientAttack):
    """Upload an inflated update (model-replacement / boosting attack).

    Scales the honest progress by a large factor so a plain averaging PS is
    dominated by this client's direction.
    """

    name = "client_scaling"

    def __init__(self, factor: float = 10.0) -> None:
        if factor <= 1:
            raise ConfigurationError(f"factor must exceed 1, got {factor}")
        self.factor = float(factor)

    def tamper(self, context: ClientAttackContext) -> np.ndarray:
        progress = context.honest_update - context.global_model
        return context.global_model + self.factor * progress


class ClientSameValueAttack(ClientAttack):
    """Upload a constant vector, ignoring the data entirely."""

    name = "client_same_value"

    def __init__(self, value: float = 1.0) -> None:
        self.value = float(value)

    def tamper(self, context: ClientAttackContext) -> np.ndarray:
        return np.full_like(context.honest_update, self.value)


_BUILDERS = {
    "client_sign_flip": ClientSignFlipAttack,
    "client_noise": ClientNoiseAttack,
    "client_scaling": ClientScalingAttack,
    "client_same_value": ClientSameValueAttack,
}


def available_client_attacks() -> List[str]:
    """Names accepted by :func:`make_client_attack`."""
    return sorted(_BUILDERS)


def make_client_attack(name: str, **kwargs) -> ClientAttack:
    """Instantiate a client-side attack by name."""
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown client attack {name!r}; "
            f"available: {available_client_attacks()}"
        ) from None
    return builder(**kwargs)
