"""Name-based attack construction for benchmarks and CLI examples."""

from __future__ import annotations

from typing import Callable, Dict, List

from ..common.errors import ConfigurationError
from .base import Attack
from .catalog import (
    AdaptiveTrimmedMeanAttack,
    BackwardAttack,
    ColludingAttack,
    DispersionMimicryAttack,
    IdentityAttack,
    InconsistentAttack,
    InnerProductManipulationAttack,
    NoiseAttack,
    RandomAttack,
    SafeguardAttack,
    SignFlipAttack,
    ZeroAttack,
)

__all__ = ["available_attacks", "make_attack", "PAPER_ATTACKS"]

#: The four attacks of the paper's evaluation (Fig. 2), by registry name.
PAPER_ATTACKS = ("noise", "random", "safeguard", "backward")

_BUILDERS: Dict[str, Callable[[], Attack]] = {
    "identity": IdentityAttack,
    "noise": NoiseAttack,
    "random": RandomAttack,
    "safeguard": SafeguardAttack,
    "backward": BackwardAttack,
    "sign_flip": SignFlipAttack,
    "zero": ZeroAttack,
    "inconsistent": InconsistentAttack,
    "adaptive_trimmed_mean": AdaptiveTrimmedMeanAttack,
    "inner_product": InnerProductManipulationAttack,
    "colluding": ColludingAttack,
    "dispersion_mimicry": DispersionMimicryAttack,
}


def available_attacks() -> List[str]:
    """Names accepted by :func:`make_attack`."""
    return sorted(_BUILDERS)


def make_attack(name: str, **kwargs) -> Attack:
    """Instantiate an attack by registry name.

    Keyword arguments are forwarded to the attack constructor, e.g.
    ``make_attack("noise", scale=2.0)``.
    """
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown attack {name!r}; available: {available_attacks()}"
        ) from None
    return builder(**kwargs)
