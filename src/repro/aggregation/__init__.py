"""Robust aggregation rules: the trimmed-mean filter and baselines."""

from .registry import AggregationRule, available_rules, make_rule
from .rules import (
    bulyan,
    coordinate_median,
    degraded_trim_count,
    geometric_median,
    krum,
    krum_index,
    mean,
    multi_krum,
    trim_count,
    trimmed_mean,
    trimmed_mean_by_count,
)

__all__ = [
    "mean",
    "trimmed_mean",
    "trimmed_mean_by_count",
    "trim_count",
    "degraded_trim_count",
    "coordinate_median",
    "geometric_median",
    "krum",
    "krum_index",
    "multi_krum",
    "bulyan",
    "AggregationRule",
    "available_rules",
    "make_rule",
]
