"""Robust aggregation rules: the trimmed-mean filter and baselines."""

from .registry import AggregationRule, available_rules, make_rule
from .rules import (
    bulyan,
    coordinate_median,
    geometric_median,
    krum,
    krum_index,
    mean,
    multi_krum,
    trim_count,
    trimmed_mean,
)

__all__ = [
    "mean",
    "trimmed_mean",
    "trim_count",
    "coordinate_median",
    "geometric_median",
    "krum",
    "krum_index",
    "multi_krum",
    "bulyan",
    "AggregationRule",
    "available_rules",
    "make_rule",
]
