"""Name-based construction of aggregation rules.

Benchmarks and examples select filters by name (``"trimmed_mean"``,
``"median"``, ...); this registry maps those names to closures with a
uniform ``stack -> vector`` signature.
"""

from __future__ import annotations

from typing import Callable, Dict, List

import numpy as np

from ..common.errors import ConfigurationError
from . import rules

__all__ = ["AggregationRule", "available_rules", "make_rule"]

AggregationRule = Callable[[np.ndarray], np.ndarray]


def available_rules() -> List[str]:
    """Names accepted by :func:`make_rule`."""
    return ["mean", "trimmed_mean", "median", "geometric_median", "krum",
            "multi_krum", "bulyan"]


def make_rule(name: str, *, trim_ratio: float = 0.0,
              num_byzantine: int = 0) -> AggregationRule:
    """Build a ``stack -> vector`` aggregation closure.

    Parameters
    ----------
    name:
        One of :func:`available_rules`.
    trim_ratio:
        Used by ``trimmed_mean`` (the paper's beta).
    num_byzantine:
        Used by ``krum`` / ``multi_krum`` (their ``f`` parameter).
    """
    builders: Dict[str, AggregationRule] = {
        "mean": rules.mean,
        "trimmed_mean": lambda stack: rules.trimmed_mean(stack, trim_ratio),
        "median": rules.coordinate_median,
        "geometric_median": rules.geometric_median,
        "krum": lambda stack: rules.krum(stack, num_byzantine),
        "multi_krum": lambda stack: rules.multi_krum(stack, num_byzantine),
        "bulyan": lambda stack: rules.bulyan(stack, num_byzantine),
    }
    try:
        return builders[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown aggregation rule {name!r}; available: {available_rules()}"
        ) from None
