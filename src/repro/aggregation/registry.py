"""Name-based construction of aggregation rules.

Benchmarks and examples select filters by name (``"trimmed_mean"``,
``"median"``, ...); this registry maps those names to closures with a
uniform ``stack -> vector`` signature.

Parameters are validated eagerly: a ``trim_ratio`` outside ``[0, 0.5)`` or
a ``num_byzantine`` the stack size cannot tolerate raises
:class:`~repro.common.errors.ConfigurationError` at construction time with
an actionable message, instead of silently mis-aggregating (or failing
rounds deep into a run).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

from ..common.errors import ConfigurationError
from . import rules

__all__ = ["AggregationRule", "available_rules", "make_rule",
           "validate_rule_params"]

AggregationRule = Callable[[np.ndarray], np.ndarray]

#: Rules parameterized by ``num_byzantine`` and their minimum stack size
#: as a function of ``f`` (Blanchard et al. 2017; Guerraoui & Rouault 2018).
_MIN_STACK = {
    "krum": lambda f: 2 * f + 3,
    "multi_krum": lambda f: 2 * f + 3,
    "bulyan": lambda f: 4 * f + 3,
}


def available_rules() -> List[str]:
    """Names accepted by :func:`make_rule`."""
    return ["mean", "trimmed_mean", "adaptive_trimmed_mean", "median",
            "geometric_median", "krum", "multi_krum", "bulyan", "loss_based"]


def validate_rule_params(name: str, *, trim_ratio: float = 0.0,
                         num_byzantine: int = 0,
                         mad_threshold: float = rules.DEFAULT_MAD_THRESHOLD,
                         loss_fn: Optional[Callable[[np.ndarray], float]]
                         = None,
                         num_models: Optional[int] = None) -> None:
    """Validate the parameters of rule ``name`` without building it.

    ``num_models``, when given, is the stack size the rule will be applied
    to (``P`` in the trainer); it enables the compatibility checks that
    depend on it — ``n >= 2f + 3`` for krum/multi-krum, ``n >= 4f + 3``
    for bulyan, and a trim that leaves at least one survivor for the
    trimmed mean.
    """
    if name not in available_rules():
        raise ConfigurationError(
            f"unknown aggregation rule {name!r}; available: "
            f"{available_rules()}"
        )
    if not 0.0 <= trim_ratio < 0.5:
        raise ConfigurationError(
            f"trim_ratio must be in [0, 0.5), got {trim_ratio}: trimming "
            f"half or more from each tail leaves no models to average"
        )
    if num_byzantine < 0:
        raise ConfigurationError(
            f"num_byzantine must be >= 0, got {num_byzantine}"
        )
    if mad_threshold <= 0:
        raise ConfigurationError(
            f"mad_threshold must be positive, got {mad_threshold}"
        )
    if name == "loss_based" and loss_fn is None:
        raise ConfigurationError(
            "loss_based requires a loss_fn (model vector -> trusted-batch "
            "loss); pass loss_fn= to make_rule, or let the trainer build "
            "one from its root dataset via FedMSConfig.filter_rule_name"
        )
    if num_models is not None:
        if num_models <= 0:
            raise ConfigurationError(
                f"num_models must be positive, got {num_models}"
            )
        if name == "trimmed_mean":
            # Raises with the exact infeasible count when nothing survives.
            rules.trim_count(num_models, trim_ratio)
        minimum = _MIN_STACK.get(name)
        if minimum is not None and num_models < minimum(num_byzantine):
            raise ConfigurationError(
                f"{name} needs n >= {minimum(num_byzantine)} models to "
                f"tolerate f = {num_byzantine} Byzantine ones, but only "
                f"{num_models} will be aggregated; lower num_byzantine or "
                f"add servers"
            )


def make_rule(name: str, *, trim_ratio: float = 0.0,
              num_byzantine: int = 0,
              mad_threshold: float = rules.DEFAULT_MAD_THRESHOLD,
              loss_fn: Optional[Callable[[np.ndarray], float]] = None,
              num_models: Optional[int] = None) -> AggregationRule:
    """Build a ``stack -> vector`` aggregation closure.

    Parameters
    ----------
    name:
        One of :func:`available_rules`.
    trim_ratio:
        Used by ``trimmed_mean`` (the paper's beta). Must be in [0, 0.5).
    num_byzantine:
        Used by ``krum`` / ``multi_krum`` / ``bulyan`` (their ``f``).
    mad_threshold:
        Used by ``adaptive_trimmed_mean``: the modified-z-score cutoff of
        the per-round Byzantine-count estimator.
    loss_fn:
        Required by ``loss_based``: maps a candidate model vector to its
        loss on a small trusted root batch.
    num_models:
        Optional expected stack size; enables the eager compatibility
        checks of :func:`validate_rule_params`.
    """
    validate_rule_params(name, trim_ratio=trim_ratio,
                         num_byzantine=num_byzantine,
                         mad_threshold=mad_threshold, loss_fn=loss_fn,
                         num_models=num_models)
    builders: Dict[str, AggregationRule] = {
        "mean": rules.mean,
        "trimmed_mean": lambda stack: rules.trimmed_mean(stack, trim_ratio),
        "adaptive_trimmed_mean": lambda stack: rules.adaptive_trimmed_mean(
            stack, threshold=mad_threshold),
        "median": rules.coordinate_median,
        "geometric_median": rules.geometric_median,
        "krum": lambda stack: rules.krum(stack, num_byzantine),
        "multi_krum": lambda stack: rules.multi_krum(stack, num_byzantine),
        "bulyan": lambda stack: rules.bulyan(stack, num_byzantine),
        "loss_based": lambda stack: rules.loss_based_selection(
            stack, loss_fn),
    }
    return builders[name]
