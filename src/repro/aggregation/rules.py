"""Aggregation rules over stacks of model vectors.

The central function is :func:`trimmed_mean` — the paper's
``trmean_beta{...}`` filter (Section IV-B): in each coordinate, drop the
``floor(beta * P)`` largest and smallest values and average the rest. The
other rules are the robust-aggregation baselines from the related work
(coordinate median, geometric median via Weiszfeld, Krum) plus the plain
mean, used by the filter-ablation benchmark.

All rules take a 2-D array ``stack`` of shape ``(num_models, dim)`` — one
row per received model — and return a single vector of shape ``(dim,)``.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

import numpy as np

from ..common.errors import ConfigurationError, ConvergenceError, ShapeError

__all__ = [
    "mean",
    "trimmed_mean",
    "trimmed_mean_by_count",
    "trim_count",
    "degraded_trim_count",
    "coordinate_median",
    "geometric_median",
    "krum",
    "multi_krum",
    "krum_index",
    "bulyan",
    "mad_outlier_scores",
    "estimate_byzantine_count",
    "adaptive_trimmed_mean",
    "adaptive_trimmed_mean_info",
    "loss_based_selection",
    "loss_based_selection_info",
    "DEFAULT_MAD_THRESHOLD",
]

#: Default modified-z-score cutoff for the adaptive Byzantine-count
#: estimator. 3.5 is the classic Iglewicz-Hoaglin recommendation: benign
#: models produced by honest local SGD essentially never score above it,
#: while models perturbed beyond the honest inter-model spread do.
DEFAULT_MAD_THRESHOLD = 3.5


def _check_stack(stack: np.ndarray) -> np.ndarray:
    stack = np.asarray(stack, dtype=np.float64)
    if stack.ndim != 2:
        raise ShapeError(f"expected (num_models, dim) stack, got shape {stack.shape}")
    if stack.shape[0] == 0:
        raise ShapeError("cannot aggregate an empty stack of models")
    return stack


def mean(stack: np.ndarray) -> np.ndarray:
    """Plain coordinate-wise average (what a benign PS computes)."""
    return _check_stack(stack).mean(axis=0)


def trim_count(num_models: int, trim_ratio: float) -> int:
    """Number of entries removed from *each* tail by ``trimmed_mean``.

    ``floor(trim_ratio * num_models)``, validated so at least one entry
    survives: ``2 * trim_count < num_models``.
    """
    if not 0.0 <= trim_ratio < 0.5:
        raise ConfigurationError(
            f"trim_ratio must be in [0, 0.5), got {trim_ratio}"
        )
    count = int(np.floor(trim_ratio * num_models))
    if 2 * count >= num_models:
        raise ConfigurationError(
            f"trimming {count} from each tail of {num_models} models leaves nothing"
        )
    return count


def degraded_trim_count(num_received: int, expected_models: int,
                        trim_ratio: float) -> Optional[int]:
    """Per-tail trim count for a degraded quorum of ``q <= P`` models.

    Under faults a client can receive only ``q < P`` global models, yet up
    to ``B = floor(trim_ratio * P)`` of them may still be Byzantine — the
    adversary does not crash with the benign PSs. The sound filter
    therefore keeps the *absolute* tolerance of the full quorum: trim
    ``B`` per tail whenever that leaves a benign majority (``2B < q``),
    and report infeasibility (``None``) when ``q <= 2B`` — the caller then
    falls back to its previous feasible model rather than aggregate a
    stack the adversary could control.

    >>> degraded_trim_count(10, 10, 0.2)  # full quorum: the usual B = 2
    2
    >>> degraded_trim_count(5, 10, 0.2)   # q = 2B + 1: still feasible
    2
    >>> degraded_trim_count(4, 10, 0.2) is None  # q = 2B: infeasible
    True
    """
    if num_received <= 0:
        raise ConfigurationError(
            f"num_received must be positive, got {num_received}"
        )
    if num_received > expected_models:
        raise ConfigurationError(
            f"received {num_received} models but only {expected_models} "
            f"were expected"
        )
    full = trim_count(expected_models, trim_ratio)
    if 2 * full >= num_received:
        return None
    return full


def trimmed_mean_by_count(stack: np.ndarray, count: int) -> np.ndarray:
    """Trimmed mean with an explicit per-tail count instead of a ratio.

    The degraded-quorum filter path trims ``floor(beta * P)`` entries from
    a stack of only ``q < P`` rows (see :func:`degraded_trim_count`), a
    combination no ratio expresses exactly.
    """
    stack = _check_stack(stack)
    if count < 0:
        raise ConfigurationError(f"count must be >= 0, got {count}")
    if 2 * count >= stack.shape[0]:
        raise ConfigurationError(
            f"trimming {count} from each tail of {stack.shape[0]} models "
            f"leaves nothing"
        )
    if count == 0:
        return stack.mean(axis=0)
    ordered = np.sort(stack, axis=0)
    return ordered[count:stack.shape[0] - count].mean(axis=0)


def trimmed_mean(stack: np.ndarray, trim_ratio: float) -> np.ndarray:
    """The paper's ``trmean_beta`` model filter.

    In each dimension independently, discard the largest and smallest
    ``floor(trim_ratio * num_models)`` values and average the remainder.
    With ``trim_ratio = B / P`` this tolerates up to ``B`` arbitrarily
    tampered models out of ``P`` (Lemma 2 bounds the estimation error by
    ``P * sigma^2 / (P - 2B)^2``).

    Example (paper, Section IV-B): ``trmean_0.2{1, 2, 3, 4, 5} = 3``.
    """
    stack = _check_stack(stack)
    count = trim_count(stack.shape[0], trim_ratio)
    if count == 0:
        return stack.mean(axis=0)
    ordered = np.sort(stack, axis=0)
    return ordered[count:stack.shape[0] - count].mean(axis=0)


def coordinate_median(stack: np.ndarray) -> np.ndarray:
    """Coordinate-wise median (Yin et al., 2018 baseline)."""
    return np.median(_check_stack(stack), axis=0)


def geometric_median(stack: np.ndarray, *, tolerance: float = 1e-9,
                     max_iterations: int = 20000,
                     smoothing: float = 1e-6) -> np.ndarray:
    """Smoothed geometric median via Weiszfeld iteration.

    Minimizes the smoothed objective ``sum_i sqrt(||x - row_i||^2 + eps^2)``
    with ``eps = smoothing * max|stack|`` — the robust aggregation of
    Pillutla et al. (2022) and the over-the-air scheme of Huang et al.
    (2021) cited by the paper. Smoothing makes the objective differentiable
    everywhere, which removes plain Weiszfeld's sublinear zigzag when the
    optimum sits exactly on a (possibly repeated) data point; the result is
    within ``O(eps)`` of the exact geometric median.

    Raises :class:`ConvergenceError` if the iteration exceeds
    ``max_iterations`` without meeting the (scale-relative) step or
    objective-stall tolerance. The default cap leaves headroom for
    Weiszfeld's sublinear crawl toward a *repeated* data point that is
    itself the optimum, which needs several thousand iterations to enter
    the smoothing neighbourhood.
    """
    stack = _check_stack(stack)
    if stack.shape[0] == 1:
        return stack[0].copy()
    current = stack.mean(axis=0)
    # All criteria are relative to the data scale, so convergence behaves
    # identically for weights of magnitude 1e-3 or 1e+6.
    scale = float(np.max(np.abs(stack))) or 1.0
    # Guard after squaring: (smoothing * scale)^2 itself can underflow
    # for subnormal-magnitude inputs.
    eps_sq = max((smoothing * scale) ** 2, float(np.finfo(np.float64).tiny))
    previous_objective = float("inf")
    for _ in range(max_iterations):
        smoothed = np.sqrt(
            np.einsum("ij,ij->i", stack - current, stack - current) + eps_sq
        )
        objective = float(smoothed.sum())
        if previous_objective - objective < tolerance * (objective + scale):
            return current
        previous_objective = objective
        weights = 1.0 / smoothed
        # Normalize by the max first: raw weights can be enormous and
        # their direct sum can overflow; ratios are always <= 1.
        weights /= weights.max()
        weights /= weights.sum()
        updated = weights @ stack
        step = float(np.linalg.norm(updated - current))
        current = updated
        if step < tolerance * scale:
            return current
    raise ConvergenceError(
        f"Weiszfeld iteration did not converge in {max_iterations} steps"
    )


def _pairwise_squared_distances(stack: np.ndarray) -> np.ndarray:
    norms = np.einsum("ij,ij->i", stack, stack)
    squared = norms[:, None] + norms[None, :] - 2.0 * stack @ stack.T
    return np.maximum(squared, 0.0)


def krum_index(stack: np.ndarray, num_byzantine: int) -> int:
    """Index of the Krum-selected row (Blanchard et al., 2017).

    Scores each candidate by the sum of squared distances to its
    ``n - f - 2`` nearest neighbours and returns the argmin. Requires
    ``n > 2 f + 2``.
    """
    stack = _check_stack(stack)
    n = stack.shape[0]
    if num_byzantine < 0:
        raise ConfigurationError(f"num_byzantine must be >= 0, got {num_byzantine}")
    neighbours = n - num_byzantine - 2
    if neighbours < 1:
        raise ConfigurationError(
            f"Krum needs n > f + 2 + 1 (got n={n}, f={num_byzantine})"
        )
    squared = _pairwise_squared_distances(stack)
    np.fill_diagonal(squared, np.inf)
    sorted_rows = np.sort(squared, axis=1)
    scores = sorted_rows[:, :neighbours].sum(axis=1)
    return int(np.argmin(scores))


def krum(stack: np.ndarray, num_byzantine: int) -> np.ndarray:
    """The single model vector selected by Krum."""
    return stack[krum_index(stack, num_byzantine)].copy()


def multi_krum(stack: np.ndarray, num_byzantine: int, *,
               num_selected: Optional[int] = None) -> np.ndarray:
    """Multi-Krum: average the ``m`` best-scored candidates.

    Defaults to ``m = n - f`` selections as in the original paper.
    """
    stack = _check_stack(stack)
    n = stack.shape[0]
    neighbours = n - num_byzantine - 2
    if neighbours < 1:
        raise ConfigurationError(
            f"Multi-Krum needs n > f + 2 + 1 (got n={n}, f={num_byzantine})"
        )
    if num_selected is None:
        num_selected = n - num_byzantine
    if not 1 <= num_selected <= n:
        raise ConfigurationError(
            f"num_selected must be in [1, {n}], got {num_selected}"
        )
    squared = _pairwise_squared_distances(stack)
    np.fill_diagonal(squared, np.inf)
    sorted_rows = np.sort(squared, axis=1)
    scores = sorted_rows[:, :neighbours].sum(axis=1)
    chosen = np.argsort(scores)[:num_selected]
    return stack[chosen].mean(axis=0)


def bulyan(stack: np.ndarray, num_byzantine: int) -> np.ndarray:
    """Bulyan (Guerraoui & Rouault, 2018): Krum selection + trimmed average.

    Iteratively runs Krum to select ``theta = n - 2f`` candidates, then
    aggregates them with a coordinate-wise trimmed average keeping the
    ``theta - 2f`` values closest to the median. Requires ``n >= 4f + 3``.
    """
    stack = _check_stack(stack)
    n = stack.shape[0]
    if num_byzantine < 0:
        raise ConfigurationError(f"num_byzantine must be >= 0, got {num_byzantine}")
    if n < 4 * num_byzantine + 3:
        raise ConfigurationError(
            f"Bulyan needs n >= 4f + 3 (got n={n}, f={num_byzantine})"
        )
    theta = n - 2 * num_byzantine
    remaining = list(range(n))
    selected: list = []
    while len(selected) < theta:
        sub = stack[remaining]
        winner_local = krum_index(sub, num_byzantine) if len(remaining) > \
            num_byzantine + 2 else 0
        winner = remaining.pop(winner_local)
        selected.append(winner)
    chosen = stack[selected]
    keep = theta - 2 * num_byzantine
    median = np.median(chosen, axis=0)
    distance_order = np.argsort(np.abs(chosen - median), axis=0)
    closest = np.take_along_axis(chosen, distance_order[:keep], axis=0)
    return closest.mean(axis=0)


# -- adaptive Byzantine-count estimation -------------------------------------


def mad_outlier_scores(stack: np.ndarray) -> np.ndarray:
    """Modified z-score of each row's distance to the coordinate median.

    Scores row ``i`` by ``d_i = ||row_i - median(stack)||_2``, then
    normalizes the distances with the median absolute deviation (MAD):
    ``0.6745 * (d_i - median(d)) / MAD(d)`` — the Iglewicz-Hoaglin
    modified z-score, robust to up to half the rows being arbitrary.

    A zero MAD means at least half the rows sit at *exactly* the median
    distance — e.g. every honest PS broadcast a bit-identical aggregate.
    Any row at a measurably different distance is then an outlier by
    construction, so the MAD is floored at a relative epsilon instead of
    letting the scores collapse: a colluding cohort that coincides with
    itself but not with the honest majority still scores far above any
    threshold. If every distance is identical nothing is an outlier and
    all rows score 0.
    """
    stack = _check_stack(stack)
    center = np.median(stack, axis=0)
    deltas = stack - center
    distances = np.sqrt(np.einsum("ij,ij->i", deltas, deltas))
    median_distance = float(np.median(distances))
    deviations = np.abs(distances - median_distance)
    mad = float(np.median(deviations))
    if mad <= 0.0:
        if float(deviations.max()) <= 0.0:
            return np.zeros(stack.shape[0])
        mad = 1e-12 * max(float(distances.max()), 1.0)
    return 0.6745 * (distances - median_distance) / mad


def estimate_byzantine_count(stack: np.ndarray, *,
                             threshold: float = DEFAULT_MAD_THRESHOLD) -> int:
    """Estimate ``B-hat``, the number of Byzantine rows, from dispersion.

    Counts the rows whose :func:`mad_outlier_scores` exceeds ``threshold``,
    clamped so the subsequent trim stays feasible (``2 * B-hat < n``). Chen
    et al. (arXiv:2510.04432) show the over/under-estimation trade-off is
    first-order for convergence: over-estimating discards honest signal,
    under-estimating admits tampered models — the per-round estimate tracks
    a time-varying true ``B`` instead of trusting a static config value.
    """
    _, count, _ = adaptive_trimmed_mean_info(stack, threshold=threshold)
    return count


def adaptive_trimmed_mean_info(
        stack: np.ndarray, *, threshold: float = DEFAULT_MAD_THRESHOLD
) -> Tuple[np.ndarray, int, Tuple[int, ...]]:
    """Adaptive-beta trimmed mean, with the evidence behind it.

    Returns ``(vector, b_hat, flagged_rows)`` where ``vector`` is the
    coordinate-wise trimmed mean with ``b_hat`` entries removed from each
    tail, ``b_hat`` is the per-round Byzantine-count estimate, and
    ``flagged_rows`` are the indices of the rows the estimator scored as
    outliers (sorted). When more than ``floor((n-1)/2)`` rows are flagged
    only the worst-scoring ones are kept so the trim remains well-defined.

    A deterministic pure function of the stack: no randomness, stable
    tie-breaking — the property the execution backends' bit-identity
    contract requires.
    """
    stack = _check_stack(stack)
    if threshold <= 0:
        raise ConfigurationError(
            f"threshold must be positive, got {threshold}"
        )
    scores = mad_outlier_scores(stack)
    flagged = np.flatnonzero(scores > threshold)
    max_count = (stack.shape[0] - 1) // 2
    if flagged.size > max_count:
        worst_first = flagged[np.argsort(-scores[flagged], kind="stable")]
        flagged = worst_first[:max_count]
    b_hat = int(flagged.size)
    vector = trimmed_mean_by_count(stack, b_hat)
    return vector, b_hat, tuple(sorted(int(i) for i in flagged))


def adaptive_trimmed_mean(stack: np.ndarray, *,
                          threshold: float = DEFAULT_MAD_THRESHOLD
                          ) -> np.ndarray:
    """Trimmed mean whose per-tail count is estimated from the stack itself.

    The static filter trusts ``beta = B / P`` from config; this variant
    estimates ``B-hat`` per invocation from inter-model dispersion
    (:func:`estimate_byzantine_count`) and trims that many entries from
    each tail. It needs no knowledge of the expected stack size, so it
    degrades naturally under faults: a reduced quorum is re-estimated on
    its own terms rather than falling back to a precomputed trim count.
    """
    vector, _, _ = adaptive_trimmed_mean_info(stack, threshold=threshold)
    return vector


# -- loss-based greedy selection ---------------------------------------------


def loss_based_selection_info(
        stack: np.ndarray, loss_fn: Callable[[np.ndarray], float]
) -> Tuple[np.ndarray, Tuple[int, ...]]:
    """FedGreed-style selection: ``(vector, selected_rows)``.

    Ranks the candidate models by ``loss_fn`` (their loss on a small
    trusted root batch — FedGreed, arXiv:2508.18060), then greedily grows
    an average starting from the lowest-loss candidate: the next-ranked
    model is admitted only while the running average's loss does not
    increase. Sidesteps Byzantine-count estimation entirely — a colluding
    cohort that all disseminate the same poisoned model simply ranks last
    and is never admitted, regardless of how many colluders there are
    (as long as one honest model ranks first).

    Candidates with non-finite loss (diverged or hostile models) sort last
    and are never reached by the greedy scan. Ties are broken by row index
    (stable sort), keeping the selection deterministic.
    """
    stack = _check_stack(stack)
    losses = np.array([float(loss_fn(row)) for row in stack])
    order = np.argsort(losses, kind="stable")
    best = int(order[0])
    selected: List[int] = [best]
    current = stack[best].astype(np.float64, copy=True)
    current_loss = losses[best]
    for index in order[1:]:
        if not np.isfinite(losses[index]):
            break
        candidate = (current * len(selected) + stack[index]) \
            / (len(selected) + 1)
        candidate_loss = float(loss_fn(candidate))
        if np.isfinite(candidate_loss) and candidate_loss <= current_loss:
            selected.append(int(index))
            current = candidate
            current_loss = candidate_loss
        else:
            break
    return current, tuple(sorted(selected))


def loss_based_selection(stack: np.ndarray,
                         loss_fn: Callable[[np.ndarray], float]
                         ) -> np.ndarray:
    """The model vector produced by FedGreed-style greedy selection."""
    vector, _ = loss_based_selection_info(stack, loss_fn)
    return vector
