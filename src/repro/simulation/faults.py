"""Deterministic fault injection for robustness experiments.

The paper's threat model makes some PSs *malicious* but keeps every
participant perfectly available: each PS answers every round and every
client receives exactly ``P`` global models. Real edge deployments violate
that constantly — servers crash and reboot, devices go offline, links
partition, stragglers miss the synchronous round deadline. This module
supplies the missing failure model as data: a :class:`FaultPlan` is a
declarative, fully deterministic schedule of fault events, and a
:class:`FaultInjector` replays it round by round, exposing

* liveness queries (``server_alive`` / ``client_active`` / ``link_up``)
  the trainer consults when routing uploads and disseminations, and
* a drop rule (:meth:`FaultInjector.should_drop`) that composes with the
  existing :class:`~repro.simulation.network.Network` drop machinery, so
  messages crossing a dead server or a partitioned link are lost with
  full :class:`~repro.simulation.network.TrafficStats` attribution.

Determinism is a design requirement: two runs with the same seed and the
same plan must produce identical round-by-round delivery, drop and retry
traces (asserted by ``tests/simulation/test_faults.py``), which is what
makes fault experiments debuggable and comparable across defenses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..common.errors import ConfigurationError
from .network import Message, NodeId

__all__ = [
    "ServerCrash",
    "ServerStraggler",
    "ClientDropout",
    "LinkPartition",
    "FaultPlan",
    "FaultInjector",
]


def _check_window(start_round: int, end_round: Optional[int], what: str) -> None:
    if start_round < 0:
        raise ConfigurationError(
            f"{what}: start_round must be >= 0, got {start_round}"
        )
    if end_round is not None and end_round <= start_round:
        raise ConfigurationError(
            f"{what}: end_round ({end_round}) must be > start_round "
            f"({start_round}); use end_round=None for a permanent fault"
        )


@dataclass(frozen=True)
class ServerCrash:
    """PS ``server_id`` is down for rounds ``[start_round, end_round)``.

    ``end_round=None`` models a permanent crash; a finite window is a
    crash-recover cycle (the PS resumes from its last pre-crash aggregate,
    like a rebooted edge cache). While down the PS neither aggregates nor
    disseminates, and uploads addressed to it are lost.
    """

    server_id: int
    start_round: int
    end_round: Optional[int] = None

    def __post_init__(self) -> None:
        if self.server_id < 0:
            raise ConfigurationError(
                f"server_id must be >= 0, got {self.server_id}"
            )
        _check_window(self.start_round, self.end_round, "ServerCrash")

    def active(self, round_index: int) -> bool:
        return self.start_round <= round_index and (
            self.end_round is None or round_index < self.end_round
        )


@dataclass(frozen=True)
class ServerStraggler:
    """PS ``server_id`` disseminates with ``delay_s`` extra latency.

    A straggling PS is alive — it aggregates normally — but its outbound
    models arrive ``delay_s`` simulated seconds late. Whether that matters
    is decided by the round deadline: when ``delay_s`` exceeds the
    injector's ``round_deadline_s`` the messages miss the synchronous
    round barrier and are dropped (a deadline miss, not a transport loss).
    """

    server_id: int
    start_round: int
    end_round: Optional[int] = None
    delay_s: float = 1.0

    def __post_init__(self) -> None:
        if self.server_id < 0:
            raise ConfigurationError(
                f"server_id must be >= 0, got {self.server_id}"
            )
        if self.delay_s <= 0:
            raise ConfigurationError(
                f"delay_s must be positive, got {self.delay_s}"
            )
        _check_window(self.start_round, self.end_round, "ServerStraggler")

    def active(self, round_index: int) -> bool:
        return self.start_round <= round_index and (
            self.end_round is None or round_index < self.end_round
        )


@dataclass(frozen=True)
class ClientDropout:
    """Client ``client_id`` is offline for rounds ``[start_round, end_round)``.

    An offline client neither trains, uploads, nor drains its mailbox;
    global models disseminated to it sit queued until the round deadline
    expires and are cleared (counted under ``cleared_total``).
    """

    client_id: int
    start_round: int
    end_round: Optional[int] = None

    def __post_init__(self) -> None:
        if self.client_id < 0:
            raise ConfigurationError(
                f"client_id must be >= 0, got {self.client_id}"
            )
        _check_window(self.start_round, self.end_round, "ClientDropout")

    def active(self, round_index: int) -> bool:
        return self.start_round <= round_index and (
            self.end_round is None or round_index < self.end_round
        )


@dataclass(frozen=True)
class LinkPartition:
    """The ``(client_id, server_id)`` link is severed in both directions."""

    client_id: int
    server_id: int
    start_round: int
    end_round: Optional[int] = None

    def __post_init__(self) -> None:
        if self.client_id < 0 or self.server_id < 0:
            raise ConfigurationError(
                f"link endpoints must be >= 0, got "
                f"({self.client_id}, {self.server_id})"
            )
        _check_window(self.start_round, self.end_round, "LinkPartition")

    def active(self, round_index: int) -> bool:
        return self.start_round <= round_index and (
            self.end_round is None or round_index < self.end_round
        )


@dataclass(frozen=True)
class FaultPlan:
    """A declarative schedule of fault events for one training run.

    Plans are plain data: building one draws no randomness, so the same
    plan replays identically under any seed. For randomized studies,
    :meth:`sample` derives a plan from an explicit generator — the draw
    happens once, up front, and the resulting plan is again deterministic.
    """

    crashes: Tuple[ServerCrash, ...] = ()
    stragglers: Tuple[ServerStraggler, ...] = ()
    dropouts: Tuple[ClientDropout, ...] = ()
    partitions: Tuple[LinkPartition, ...] = ()

    def __post_init__(self) -> None:
        # Accept any sequence; store tuples so plans are hashable/frozen.
        object.__setattr__(self, "crashes", tuple(self.crashes))
        object.__setattr__(self, "stragglers", tuple(self.stragglers))
        object.__setattr__(self, "dropouts", tuple(self.dropouts))
        object.__setattr__(self, "partitions", tuple(self.partitions))

    @property
    def is_empty(self) -> bool:
        return not (self.crashes or self.stragglers or self.dropouts
                    or self.partitions)

    def crashed_servers(self, round_index: int) -> FrozenSet[int]:
        return frozenset(c.server_id for c in self.crashes
                         if c.active(round_index))

    def straggling_servers(self, round_index: int) -> Dict[int, float]:
        """``server_id -> delay_s`` of stragglers active this round."""
        delays: Dict[int, float] = {}
        for s in self.stragglers:
            if s.active(round_index):
                delays[s.server_id] = max(delays.get(s.server_id, 0.0),
                                          s.delay_s)
        return delays

    def offline_clients(self, round_index: int) -> FrozenSet[int]:
        return frozenset(d.client_id for d in self.dropouts
                         if d.active(round_index))

    def severed_links(self, round_index: int) -> FrozenSet[Tuple[int, int]]:
        return frozenset((p.client_id, p.server_id) for p in self.partitions
                         if p.active(round_index))

    def validate_topology(self, *, num_clients: int, num_servers: int) -> None:
        """Reject events referencing nodes outside the given topology."""
        for c in self.crashes + self.stragglers:
            if c.server_id >= num_servers:
                raise ConfigurationError(
                    f"fault plan references PS {c.server_id} but the "
                    f"topology has only {num_servers} servers"
                )
        for d in self.dropouts:
            if d.client_id >= num_clients:
                raise ConfigurationError(
                    f"fault plan references client {d.client_id} but the "
                    f"topology has only {num_clients} clients"
                )
        for p in self.partitions:
            if p.server_id >= num_servers or p.client_id >= num_clients:
                raise ConfigurationError(
                    f"fault plan references link ({p.client_id}, "
                    f"{p.server_id}) outside the {num_clients}x"
                    f"{num_servers} topology"
                )

    @classmethod
    def sample(cls, *, num_clients: int, num_servers: int, num_rounds: int,
               rng: np.random.Generator,
               server_crash_rate: float = 0.1,
               recover_fraction: float = 0.5,
               client_dropout_rate: float = 0.1,
               dropout_rounds: int = 3,
               link_partition_rate: float = 0.0,
               partition_rounds: int = 3,
               server_straggler_rate: float = 0.0,
               straggler_rounds: int = 3,
               straggler_delay_s: float = 5.0) -> "FaultPlan":
        """Draw a random plan from an explicit generator, once.

        Each PS crashes with probability ``server_crash_rate`` at a
        uniform round; a ``recover_fraction`` of crashes recover after a
        uniform window. Each client drops out with probability
        ``client_dropout_rate`` for ``dropout_rounds`` rounds, and each
        ``(client, server)`` link partitions with probability
        ``link_partition_rate`` for ``partition_rounds`` rounds. Each PS
        independently straggles (delay ``straggler_delay_s`` for
        ``straggler_rounds`` rounds) with probability
        ``server_straggler_rate`` — the default of 0 consumes no draws,
        so plans sampled before this knob existed replay bit-identically.
        """
        for name, rate in (("server_crash_rate", server_crash_rate),
                           ("client_dropout_rate", client_dropout_rate),
                           ("link_partition_rate", link_partition_rate),
                           ("server_straggler_rate", server_straggler_rate),
                           ("recover_fraction", recover_fraction)):
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(
                    f"{name} must be in [0, 1], got {rate}"
                )
        if num_rounds <= 1:
            raise ConfigurationError(
                f"num_rounds must be > 1 to place faults, got {num_rounds}"
            )
        crashes: List[ServerCrash] = []
        for server_id in range(num_servers):
            if rng.random() >= server_crash_rate:
                continue
            start = int(rng.integers(1, num_rounds))
            if rng.random() < recover_fraction and start + 1 < num_rounds:
                end = int(rng.integers(start + 1, num_rounds))
                crashes.append(ServerCrash(server_id, start, end))
            else:
                crashes.append(ServerCrash(server_id, start))
        dropouts: List[ClientDropout] = []
        for client_id in range(num_clients):
            if rng.random() >= client_dropout_rate:
                continue
            start = int(rng.integers(1, num_rounds))
            dropouts.append(ClientDropout(client_id, start,
                                          start + dropout_rounds))
        partitions: List[LinkPartition] = []
        if link_partition_rate > 0.0:
            for client_id in range(num_clients):
                for server_id in range(num_servers):
                    if rng.random() >= link_partition_rate:
                        continue
                    start = int(rng.integers(1, num_rounds))
                    partitions.append(LinkPartition(
                        client_id, server_id, start, start + partition_rounds
                    ))
        stragglers: List[ServerStraggler] = []
        if server_straggler_rate > 0.0:
            for server_id in range(num_servers):
                if rng.random() >= server_straggler_rate:
                    continue
                start = int(rng.integers(1, num_rounds))
                stragglers.append(ServerStraggler(
                    server_id, start, start + straggler_rounds,
                    delay_s=straggler_delay_s,
                ))
        return cls(crashes=tuple(crashes), stragglers=tuple(stragglers),
                   dropouts=tuple(dropouts), partitions=tuple(partitions))


class FaultInjector:
    """Replays a :class:`FaultPlan` round by round.

    The trainer (or a :class:`~repro.simulation.scheduler.RoundScheduler`
    round hook) calls :meth:`begin_round` at the top of every round; the
    injector then answers liveness queries for that round and acts as a
    message drop rule via :meth:`should_drop`. Every state transition is
    appended to :attr:`event_log` as ``(round_index, event)`` pairs, so a
    run's fault trace can be asserted and diffed.
    """

    def __init__(self, plan: FaultPlan, *,
                 round_deadline_s: Optional[float] = None) -> None:
        if round_deadline_s is not None and round_deadline_s <= 0:
            raise ConfigurationError(
                f"round_deadline_s must be positive, got {round_deadline_s}"
            )
        self.plan = plan
        self.round_deadline_s = round_deadline_s
        self.round_index = -1
        self._crashed: FrozenSet[int] = frozenset()
        self._offline: FrozenSet[int] = frozenset()
        self._severed: FrozenSet[Tuple[int, int]] = frozenset()
        self._straggler_delays: Dict[int, float] = {}
        self.event_log: List[Tuple[int, str]] = []

    # -- per-round driving ---------------------------------------------------

    def begin_round(self, round_index: int) -> List[str]:
        """Activate the plan's state for ``round_index``; returns new events.

        Only *transitions* (a crash starting, a recovery, a dropout
        ending, ...) are reported and logged, so a 100-round permanent
        crash produces one event, not 100.
        """
        previous_crashed = self._crashed
        previous_offline = self._offline
        previous_severed = self._severed
        self.round_index = round_index
        self._crashed = self.plan.crashed_servers(round_index)
        self._offline = self.plan.offline_clients(round_index)
        self._severed = self.plan.severed_links(round_index)
        self._straggler_delays = self.plan.straggling_servers(round_index)

        events: List[str] = []
        for sid in sorted(self._crashed - previous_crashed):
            events.append(f"server {sid} crashed")
        for sid in sorted(previous_crashed - self._crashed):
            events.append(f"server {sid} recovered")
        for cid in sorted(self._offline - previous_offline):
            events.append(f"client {cid} offline")
        for cid in sorted(previous_offline - self._offline):
            events.append(f"client {cid} back online")
        for link in sorted(self._severed - previous_severed):
            events.append(f"link {link} partitioned")
        for link in sorted(previous_severed - self._severed):
            events.append(f"link {link} healed")
        for sid, delay in sorted(self._straggler_delays.items()):
            if self._misses_deadline(delay):
                events.append(
                    f"server {sid} straggling ({delay:g}s > deadline)"
                )
        self.event_log.extend((round_index, e) for e in events)
        return events

    # -- liveness queries ----------------------------------------------------

    def server_alive(self, server_id: int) -> bool:
        return server_id not in self._crashed

    def client_active(self, client_id: int) -> bool:
        return client_id not in self._offline

    def link_up(self, client_id: int, server_id: int) -> bool:
        return (client_id, server_id) not in self._severed

    def alive_servers(self, num_servers: int) -> List[int]:
        return [i for i in range(num_servers) if self.server_alive(i)]

    def active_clients(self, num_clients: int) -> List[int]:
        return [i for i in range(num_clients) if self.client_active(i)]

    def _misses_deadline(self, delay_s: float) -> bool:
        return (self.round_deadline_s is not None
                and delay_s > self.round_deadline_s)

    # -- Network integration -------------------------------------------------

    def should_drop(self, message: Message) -> bool:
        """Drop rule consulting the current round's fault state.

        Lost: anything to or from a crashed PS, anything crossing a
        severed ``(client, server)`` link, and disseminations from a
        straggling PS whose delay exceeds the round deadline.
        """
        endpoints = (message.sender, message.recipient)
        for node in endpoints:
            if node.role == NodeId.SERVER_ROLE and node.index in self._crashed:
                return True
        client_index: Optional[int] = None
        server_index: Optional[int] = None
        for node in endpoints:
            if node.role == NodeId.CLIENT_ROLE:
                client_index = node.index
            else:
                server_index = node.index
        if (client_index is not None and server_index is not None
                and (client_index, server_index) in self._severed):
            return True
        sender = message.sender
        if sender.role == NodeId.SERVER_ROLE:
            delay = self._straggler_delays.get(sender.index)
            if delay is not None and self._misses_deadline(delay):
                return True
        return False
