"""Synchronous round scheduling.

The paper assumes clients and PSs are synchronized across the three stages
of every round (local training, model aggregation, model dissemination).
:class:`RoundScheduler` encodes that structure: phases registered in order
run once per round, each receiving the round index; per-phase wall-clock
durations are recorded for profiling.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Tuple

from ..common.errors import ConfigurationError

__all__ = ["RoundScheduler"]

PhaseFn = Callable[[int], None]


class RoundScheduler:
    """Runs named phases in a fixed order, once per round.

    >>> scheduler = RoundScheduler()
    >>> order = []
    >>> scheduler.add_phase("train", lambda t: order.append(("train", t)))
    >>> scheduler.add_phase("aggregate", lambda t: order.append(("agg", t)))
    >>> scheduler.run_round()
    0
    >>> order
    [('train', 0), ('agg', 0)]
    """

    def __init__(self) -> None:
        self._phases: List[Tuple[str, PhaseFn]] = []
        self._round_hooks: List[PhaseFn] = []
        self._round_index = 0
        self.phase_seconds: Dict[str, float] = {}
        self.simulated_seconds: Dict[str, float] = {}

    @property
    def round_index(self) -> int:
        """Index of the next round to run."""
        return self._round_index

    @property
    def phase_names(self) -> List[str]:
        return [name for name, _ in self._phases]

    def add_phase(self, name: str, fn: PhaseFn) -> None:
        """Register a phase; phases run in registration order."""
        if name in self.phase_names:
            raise ConfigurationError(f"duplicate phase name {name!r}")
        self._phases.append((name, fn))
        self.phase_seconds[name] = 0.0

    def add_round_hook(self, fn: PhaseFn) -> None:
        """Register a hook that runs before the phases of every round.

        Hooks drive per-round environment state rather than algorithm
        stages — e.g. a :class:`~repro.simulation.faults.FaultInjector`'s
        ``begin_round`` activating this round's crashes and partitions.
        """
        self._round_hooks.append(fn)

    def record_simulated(self, name: str, seconds: float) -> None:
        """Accumulate *virtual-clock* time against a named stage.

        ``phase_seconds`` measures host wall-clock; this tracks the
        simulated duration a :class:`~repro.simulation.clock.VirtualClock`
        assigned to a stage (barrier max or deadline cap), so barrier and
        deadline runs can be compared in simulated time units.
        """
        if seconds < 0:
            raise ConfigurationError(
                f"simulated seconds must be >= 0, got {seconds}")
        self.simulated_seconds[name] = \
            self.simulated_seconds.get(name, 0.0) + float(seconds)

    def set_round_index(self, round_index: int) -> None:
        """Reposition the scheduler, e.g. after restoring a checkpoint."""
        if round_index < 0:
            raise ConfigurationError(
                f"round_index must be >= 0, got {round_index}"
            )
        self._round_index = round_index

    def run_round(self) -> int:
        """Execute all hooks then phases for the current round."""
        if not self._phases:
            raise ConfigurationError("no phases registered")
        index = self._round_index
        for hook in self._round_hooks:
            hook(index)
        for name, fn in self._phases:
            started = time.perf_counter()
            fn(index)
            self.phase_seconds[name] += time.perf_counter() - started
        self._round_index += 1
        return index

    def run(self, num_rounds: int) -> None:
        """Execute ``num_rounds`` consecutive rounds."""
        if num_rounds <= 0:
            raise ConfigurationError(f"num_rounds must be positive, got {num_rounds}")
        for _ in range(num_rounds):
            self.run_round()
