"""In-memory edge-network simulation with traffic accounting.

The paper's sparse-uploading claim (Section IV-A) is quantitative: uploading
to one uniformly chosen PS costs ``K`` model transfers per round — the same
as single-PS FedAvg — versus ``K x P`` for the trivial upload-to-all scheme.
This module provides the measurement substrate: every model exchanged
between a client and a PS travels as a :class:`Message` through a
:class:`Network` that counts messages and bytes per direction and per tag,
and can inject failures (drops) for robustness experiments.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from ..common.errors import ConfigurationError

__all__ = ["NodeId", "Message", "TrafficStats", "Network"]


class NodeId:
    """Address of a simulation participant: a role plus an index.

    >>> NodeId.client(3)
    NodeId('client', 3)
    >>> NodeId.server(0).role
    'server'
    """

    __slots__ = ("role", "index")

    CLIENT_ROLE = "client"
    SERVER_ROLE = "server"

    def __init__(self, role: str, index: int) -> None:
        if role not in (self.CLIENT_ROLE, self.SERVER_ROLE):
            raise ConfigurationError(f"unknown role {role!r}")
        if index < 0:
            raise ConfigurationError(f"index must be >= 0, got {index}")
        self.role = role
        self.index = index

    @classmethod
    def client(cls, index: int) -> "NodeId":
        return cls(cls.CLIENT_ROLE, index)

    @classmethod
    def server(cls, index: int) -> "NodeId":
        return cls(cls.SERVER_ROLE, index)

    def __eq__(self, other) -> bool:
        return (isinstance(other, NodeId)
                and self.role == other.role and self.index == other.index)

    def __hash__(self) -> int:
        return hash((self.role, self.index))

    def __repr__(self) -> str:
        return f"NodeId({self.role!r}, {self.index})"


class Message:
    """A single payload in flight.

    ``payload`` is typically a flat model vector; its size in bytes is
    computed from the array buffer, which is what a real transport would
    serialize. Encoded payloads (anything declaring ``encoded_nbytes``,
    like :class:`~repro.core.codecs.EncodedUpdate`) are charged their
    declared size instead — the array-buffer fallback would over-count a
    sparse/quantized representation at its decoded density.
    """

    __slots__ = ("sender", "recipient", "payload", "tag", "round_index")

    def __init__(self, sender: NodeId, recipient: NodeId, payload: np.ndarray,
                 *, tag: str, round_index: int) -> None:
        self.sender = sender
        self.recipient = recipient
        self.payload = payload
        self.tag = tag
        self.round_index = round_index

    @property
    def size_bytes(self) -> int:
        declared = getattr(self.payload, "encoded_nbytes", None)
        if declared is not None:
            return int(declared)
        return int(np.asarray(self.payload).nbytes)

    def __repr__(self) -> str:
        return (f"Message({self.sender!r} -> {self.recipient!r}, "
                f"tag={self.tag!r}, round={self.round_index}, "
                f"{self.size_bytes} bytes)")


class TrafficStats:
    """Message and byte counters, overall and per tag.

    Besides delivered traffic, failures are attributed: drops are counted
    per tag — in messages *and* bytes, so lost payload volume is as
    auditable as lost message count — deadline-expired messages cleared
    from queues are counted under ``cleared_total``, and upload retry
    attempts under ``retries_by_tag`` — which is what keeps the paper's
    ``O(K)`` sparse-upload accounting honest when retries are in play.
    ``offered_bytes_total`` is delivered plus dropped bytes: what the
    senders actually put on the wire.
    """

    def __init__(self) -> None:
        self.messages_total = 0
        self.bytes_total = 0
        self.messages_by_tag: Dict[str, int] = defaultdict(int)
        self.bytes_by_tag: Dict[str, int] = defaultdict(int)
        self.dropped_total = 0
        self.dropped_by_tag: Dict[str, int] = defaultdict(int)
        self.dropped_bytes_total = 0
        self.dropped_bytes_by_tag: Dict[str, int] = defaultdict(int)
        self.cleared_total = 0
        self.retries_total = 0
        self.retries_by_tag: Dict[str, int] = defaultdict(int)
        self.peak_materialized_clients = 0

    def record(self, message: Message) -> None:
        self.messages_total += 1
        self.bytes_total += message.size_bytes
        self.messages_by_tag[message.tag] += 1
        self.bytes_by_tag[message.tag] += message.size_bytes

    def record_drop(self, message: Optional[Message] = None) -> None:
        self.dropped_total += 1
        if message is not None:
            self.dropped_by_tag[message.tag] += 1
            self.dropped_bytes_total += message.size_bytes
            self.dropped_bytes_by_tag[message.tag] += message.size_bytes

    @property
    def offered_bytes_total(self) -> int:
        """Bytes senders put on the wire: delivered plus dropped."""
        return self.bytes_total + self.dropped_bytes_total

    def record_cleared(self, count: int) -> None:
        self.cleared_total += count

    def record_retry(self, tag: str) -> None:
        self.retries_total += 1
        self.retries_by_tag[tag] += 1

    def record_materialized(self, count: int) -> None:
        """Track the high-water mark of simultaneously materialized clients.

        A population-scale run (see :mod:`repro.population`) holds ``K``
        lightweight descriptors but only materializes the sampled clients'
        datasets and model replicas each round; this gauge is the evidence
        that memory stays ``O(sampled)``, not ``O(K)``.
        """
        self.peak_materialized_clients = max(
            self.peak_materialized_clients, int(count)
        )

    def snapshot(self) -> Dict[str, object]:
        """A plain-dict copy suitable for logging or assertions."""
        return {
            "messages_total": self.messages_total,
            "bytes_total": self.bytes_total,
            "messages_by_tag": dict(self.messages_by_tag),
            "bytes_by_tag": dict(self.bytes_by_tag),
            "dropped_total": self.dropped_total,
            "dropped_by_tag": dict(self.dropped_by_tag),
            "dropped_bytes_total": self.dropped_bytes_total,
            "dropped_bytes_by_tag": dict(self.dropped_bytes_by_tag),
            "offered_bytes_total": self.offered_bytes_total,
            "cleared_total": self.cleared_total,
            "retries_total": self.retries_total,
            "retries_by_tag": dict(self.retries_by_tag),
            "peak_materialized_clients": self.peak_materialized_clients,
        }

    def reset(self) -> None:
        self.messages_total = 0
        self.bytes_total = 0
        self.messages_by_tag.clear()
        self.bytes_by_tag.clear()
        self.dropped_total = 0
        self.dropped_by_tag.clear()
        self.dropped_bytes_total = 0
        self.dropped_bytes_by_tag.clear()
        self.cleared_total = 0
        self.retries_total = 0
        self.retries_by_tag.clear()
        self.peak_materialized_clients = 0


#: Decides whether a message is lost: ``(message) -> True`` means drop.
DropRule = Callable[[Message], bool]


class Network:
    """Synchronous in-memory transport between clients and servers.

    Messages sent with :meth:`send` are queued per recipient and retrieved
    with :meth:`receive`. All traffic is counted in :attr:`stats`. Failure
    injection: a ``drop_probability`` applied i.i.d. per message, plus an
    optional deterministic ``drop_rule`` for targeted experiments (e.g.
    "drop every upload to PS 3 in round 7").
    """

    def __init__(self, *, drop_probability: float = 0.0,
                 drop_rule: Optional[DropRule] = None,
                 rng: Optional[np.random.Generator] = None) -> None:
        if not 0.0 <= drop_probability < 1.0:
            raise ConfigurationError(
                f"drop_probability must be in [0, 1), got {drop_probability}"
            )
        if drop_probability > 0.0 and rng is None:
            raise ConfigurationError(
                "drop_probability > 0 requires an rng for reproducibility"
            )
        self.drop_probability = float(drop_probability)
        self.drop_rule = drop_rule
        self._extra_drop_rules: List[DropRule] = []
        self._rng = rng
        self._queues: Dict[NodeId, List[Message]] = defaultdict(list)
        self.stats = TrafficStats()

    @property
    def is_lossless(self) -> bool:
        """True when no failure injection of any kind is configured."""
        return (self.drop_probability == 0.0 and self.drop_rule is None
                and not self._extra_drop_rules)

    def add_drop_rule(self, rule: DropRule) -> None:
        """Install an additional drop rule alongside the constructor's.

        Rules compose as a disjunction: a message is lost if *any* rule
        claims it. This is how a :class:`~repro.simulation.faults
        .FaultInjector` stacks on top of an experiment's own targeted
        drop rule.
        """
        self._extra_drop_rules.append(rule)

    def _lost(self, message: Message) -> bool:
        if self.drop_rule is not None and self.drop_rule(message):
            return True
        if any(rule(message) for rule in self._extra_drop_rules):
            return True
        if self.drop_probability > 0.0:
            assert self._rng is not None
            if self._rng.random() < self.drop_probability:
                return True
        return False

    def send(self, message: Message) -> bool:
        """Queue a message for its recipient.

        Returns ``False`` (and counts a drop, attributed to the message's
        tag) if failure injection lost the message. Delivered messages are
        counted in :attr:`stats`.
        """
        if self._lost(message):
            self.stats.record_drop(message)
            return False
        self.stats.record(message)
        self._queues[message.recipient].append(message)
        return True

    def receive(self, recipient: NodeId) -> List[Message]:
        """Drain and return all messages queued for ``recipient``."""
        messages = self._queues.pop(recipient, [])
        return messages

    def pending_count(self, recipient: NodeId) -> int:
        """Number of queued messages for ``recipient`` without draining."""
        return len(self._queues.get(recipient, []))

    def clear(self) -> int:
        """Expire all queued messages, e.g. at a round deadline.

        Returns the number of messages cleared and counts them under
        ``stats.cleared_total``, so rounds that end with undelivered
        traffic (offline recipients, deadline expiry) stay auditable.
        """
        cleared = sum(len(queue) for queue in self._queues.values())
        self._queues.clear()
        if cleared:
            self.stats.record_cleared(cleared)
        return cleared
