"""Edge-network simulation: message transport, accounting, scheduling."""

from .latency import (
    ConstantLatency,
    LatencyModel,
    LogNormalLatency,
    UniformLatency,
    round_time,
)
from .network import Message, Network, NodeId, TrafficStats
from .scheduler import RoundScheduler

__all__ = [
    "NodeId",
    "Message",
    "TrafficStats",
    "Network",
    "RoundScheduler",
    "LatencyModel",
    "ConstantLatency",
    "UniformLatency",
    "LogNormalLatency",
    "round_time",
]
