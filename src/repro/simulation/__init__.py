"""Edge-network simulation: transport, accounting, scheduling, faults."""

from .clock import VirtualClock, split_by_deadline
from .faults import (
    ClientDropout,
    FaultInjector,
    FaultPlan,
    LinkPartition,
    ServerCrash,
    ServerStraggler,
)
from .latency import (
    ConstantLatency,
    LatencyModel,
    LogNormalLatency,
    UniformLatency,
    round_time,
)
from .network import Message, Network, NodeId, TrafficStats
from .scheduler import RoundScheduler

__all__ = [
    "NodeId",
    "Message",
    "TrafficStats",
    "Network",
    "RoundScheduler",
    "ServerCrash",
    "ServerStraggler",
    "ClientDropout",
    "LinkPartition",
    "FaultPlan",
    "FaultInjector",
    "LatencyModel",
    "ConstantLatency",
    "UniformLatency",
    "LogNormalLatency",
    "round_time",
    "VirtualClock",
    "split_by_deadline",
]
