"""Link-latency models and round-time accounting.

The paper's synchronous rounds hide a real cost: every stage waits for its
slowest participant. These models assign per-message transfer times so the
simulation can report *simulated wall-clock* per round for each upload
strategy — e.g. full upload not only sends P times the bytes but also
suffers the max over P times as many link draws.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..common.errors import ConfigurationError

__all__ = [
    "LatencyModel",
    "ConstantLatency",
    "UniformLatency",
    "LogNormalLatency",
    "round_time",
]


class LatencyModel:
    """Assigns a transfer time (seconds) to one message on one link."""

    def sample(self, *, size_bytes: int, rng: np.random.Generator) -> float:
        raise NotImplementedError


class ConstantLatency(LatencyModel):
    """Fixed per-message latency plus deterministic bandwidth cost.

    ``time = base + size_bytes / bandwidth``.
    """

    def __init__(self, base: float = 0.01, *,
                 bandwidth_bytes_per_s: float = 1e7) -> None:
        if base < 0:
            raise ConfigurationError(f"base must be >= 0, got {base}")
        if bandwidth_bytes_per_s <= 0:
            raise ConfigurationError("bandwidth must be positive")
        self.base = float(base)
        self.bandwidth = float(bandwidth_bytes_per_s)

    def sample(self, *, size_bytes: int, rng: np.random.Generator) -> float:
        return self.base + size_bytes / self.bandwidth


class UniformLatency(LatencyModel):
    """Latency uniform on ``[low, high]`` plus bandwidth cost."""

    def __init__(self, low: float, high: float, *,
                 bandwidth_bytes_per_s: float = 1e7) -> None:
        if not 0 <= low < high:
            raise ConfigurationError(f"need 0 <= low < high, got [{low}, {high}]")
        if bandwidth_bytes_per_s <= 0:
            raise ConfigurationError("bandwidth must be positive")
        self.low = float(low)
        self.high = float(high)
        self.bandwidth = float(bandwidth_bytes_per_s)

    def sample(self, *, size_bytes: int, rng: np.random.Generator) -> float:
        return float(rng.uniform(self.low, self.high)) \
            + size_bytes / self.bandwidth


class LogNormalLatency(LatencyModel):
    """Heavy-tailed latency — the straggler-realistic model.

    ``time = exp(N(mu, sigma^2)) + size_bytes / bandwidth``; the lognormal
    tail makes occasional messages much slower than the median, which is
    what makes synchronous rounds expensive in practice.
    """

    def __init__(self, median: float = 0.05, sigma: float = 0.5, *,
                 bandwidth_bytes_per_s: float = 1e7) -> None:
        if median <= 0:
            raise ConfigurationError(f"median must be positive, got {median}")
        if sigma <= 0:
            raise ConfigurationError(f"sigma must be positive, got {sigma}")
        if bandwidth_bytes_per_s <= 0:
            raise ConfigurationError("bandwidth must be positive")
        self.mu = float(np.log(median))
        self.sigma = float(sigma)
        self.bandwidth = float(bandwidth_bytes_per_s)

    def sample(self, *, size_bytes: int, rng: np.random.Generator) -> float:
        return float(np.exp(rng.normal(self.mu, self.sigma))) \
            + size_bytes / self.bandwidth


def round_time(upload_assignment: Sequence[Sequence[int]], *,
               model_bytes: int, latency: LatencyModel,
               num_servers: int, rng: np.random.Generator,
               compute_seconds: float = 0.0
               ) -> Tuple[float, Dict[str, float]]:
    """Simulated wall-clock of one synchronous Fed-MS round.

    Stages (all barriers):

    1. every client finishes local compute (``compute_seconds``, shared);
    2. every upload arrives — per client, uploads to its chosen PSs are
       sequential over the shared uplink; the stage ends at the slowest
       client;
    3. dissemination — each PS broadcasts to all clients; per (PS, client)
       link one draw; the stage ends at the slowest link.

    Returns ``(total_seconds, per-stage breakdown)``.
    """
    if model_bytes <= 0:
        raise ConfigurationError(f"model_bytes must be positive, got {model_bytes}")
    if compute_seconds < 0:
        raise ConfigurationError("compute_seconds must be >= 0")
    num_clients = len(upload_assignment)
    if num_clients == 0:
        raise ConfigurationError("need at least one client")

    upload_stage = 0.0
    for targets in upload_assignment:
        client_time = sum(
            latency.sample(size_bytes=model_bytes, rng=rng)
            for _ in targets
        )
        upload_stage = max(upload_stage, client_time)

    dissemination_stage = 0.0
    for _ in range(num_servers):
        for _ in range(num_clients):
            dissemination_stage = max(
                dissemination_stage,
                latency.sample(size_bytes=model_bytes, rng=rng),
            )

    breakdown = {
        "compute": compute_seconds,
        "upload": upload_stage,
        "dissemination": dissemination_stage,
    }
    return sum(breakdown.values()), breakdown
