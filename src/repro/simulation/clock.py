"""Deterministic virtual time for deadline-driven rounds.

The barrier semantics of the paper make every round as slow as its
slowest parameter server. Deadline mode instead aggregates whatever has
arrived when the round deadline fires, so the simulation needs per-message
*arrival times*. :class:`VirtualClock` provides them deterministically:
every draw comes from its own generator seeded from
``(seed, round, leg, key)``, so the value a message gets does not depend
on the order in which arrivals are sampled — which is what keeps the
serial, thread and process execution backends bit-identical.

Stragglers are modelled on top of the latency draw: with probability
``straggler_rate`` (decided on the same per-message stream) the transfer
time is inflated by ``straggler_factor``, pushing it past any deadline
calibrated on the straggler-free distribution.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..common.errors import ConfigurationError
from ..common.rng import stream_seed
from .latency import LatencyModel, LogNormalLatency

__all__ = ["VirtualClock", "split_by_deadline"]


def split_by_deadline(arrivals: Dict[int, float], deadline_s: float,
                      ) -> Tuple[List[int], List[int]]:
    """Partition sender ids into (on-time, late) against ``deadline_s``.

    Both lists come back sorted by sender id so downstream iteration order
    is deterministic regardless of dict insertion order.
    """
    on_time = sorted(k for k, t in arrivals.items() if t <= deadline_s)
    late = sorted(k for k, t in arrivals.items() if t > deadline_s)
    return on_time, late


class VirtualClock:
    """Order-independent simulated message arrival times.

    Parameters
    ----------
    seed:
        Experiment root seed; combined with ``(round, leg, key)`` per draw.
    latency:
        The :class:`~repro.simulation.latency.LatencyModel` supplying base
        transfer times. Defaults to the heavy-tailed
        :class:`~repro.simulation.latency.LogNormalLatency`.
    straggler_rate:
        Probability that any single message is a straggler.
    straggler_factor:
        Multiplier applied to a straggling message's transfer time.
    """

    def __init__(self, seed: int, *, latency: Optional[LatencyModel] = None,
                 straggler_rate: float = 0.0,
                 straggler_factor: float = 10.0) -> None:
        if not 0.0 <= straggler_rate < 1.0:
            raise ConfigurationError(
                f"straggler_rate must be in [0, 1), got {straggler_rate}")
        if straggler_factor < 1.0:
            raise ConfigurationError(
                f"straggler_factor must be >= 1, got {straggler_factor}")
        self.seed = int(seed)
        self.latency = latency if latency is not None else LogNormalLatency()
        self.straggler_rate = float(straggler_rate)
        self.straggler_factor = float(straggler_factor)

    def _rng(self, name: str) -> np.random.Generator:
        return np.random.default_rng(stream_seed(self.seed, f"clock/{name}"))

    def arrival_s(self, round_index: int, leg: str, key: int, *,
                  size_bytes: int = 0) -> float:
        """Arrival time (seconds after round start) of one message.

        ``leg`` names the wire leg ("broadcast", "exchange", ...) and
        ``key`` the sender within it. The draw is a pure function of
        ``(seed, round_index, leg, key)`` — sampling order is irrelevant.
        """
        rng = self._rng(f"{round_index}/{leg}/{key}")
        base = self.latency.sample(size_bytes=size_bytes, rng=rng)
        if self.straggler_rate > 0.0 and rng.random() < self.straggler_rate:
            return base * self.straggler_factor
        return base

    def arrivals(self, round_index: int, leg: str, keys: Iterable[int], *,
                 size_bytes: int = 0) -> Dict[int, float]:
        """Arrival times for every sender in ``keys`` on one leg."""
        return {
            key: self.arrival_s(round_index, leg, key, size_bytes=size_bytes)
            for key in keys
        }

    def deadline_for_quantile(self, quantile: float, *,
                              size_bytes: int = 0, draws: int = 256) -> float:
        """Calibrate a deadline as a quantile of the *straggler-free* latency.

        The calibration stream is independent of every arrival stream, and
        stragglers are excluded on purpose: a straggler inflated by
        ``straggler_factor`` should miss a deadline chosen this way, which
        is what gives deadline mode its speedup.
        """
        if not 0.0 < quantile <= 1.0:
            raise ConfigurationError(
                f"quantile must be in (0, 1], got {quantile}")
        if draws < 2:
            raise ConfigurationError(f"draws must be >= 2, got {draws}")
        rng = self._rng("calibration")
        samples = np.array([
            self.latency.sample(size_bytes=size_bytes, rng=rng)
            for _ in range(draws)
        ])
        return float(np.quantile(samples, quantile))

    def stage_seconds(self, arrivals: Dict[int, float], *,
                      deadline_s: Optional[float] = None) -> float:
        """Simulated duration of one barrier/deadline stage.

        Barrier (``deadline_s=None``): the max arrival. Deadline: capped at
        the deadline — the round moves on when the deadline fires even if
        messages are still in flight.
        """
        if not arrivals:
            return 0.0
        slowest = max(arrivals.values())
        if deadline_s is None:
            return slowest
        return min(slowest, deadline_s)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"VirtualClock(seed={self.seed}, "
                f"latency={type(self.latency).__name__}, "
                f"straggler_rate={self.straggler_rate}, "
                f"straggler_factor={self.straggler_factor})")
