"""Execution paths for the population round's training fan-out.

The flat trainer's :mod:`repro.execution` backends fix every client's
dataset in the worker spec at construction time — exactly what a lazy
population cannot do, since which clients exist is only known per round.
This module provides the population counterparts with the same contract:
**bit-identical results across serial, thread and process execution for
the same seed**. The contract holds by construction because
``Client.local_train`` under ``batch_seed`` is a pure function of
``(seed, client_id, round_index, start_vector, shard)`` — so it does not
matter which thread or process runs a job, and results are keyed by
client id rather than completion order.

The process path ships each job's *shard spec* (picklable, tiny) to a
persistent fork-based pool; workers rebuild the dataset on demand and
reuse one scratch client slot, so worker-side state stays ``O(1)`` per
worker. Platforms without the ``fork`` start method degrade to serial
with a warning, mirroring ``repro.execution.make_backend``.
"""

from __future__ import annotations

import multiprocessing
import warnings
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..common.errors import ConfigurationError
from ..core.client import Client
from ..data.datasets import DataLoader
from ..execution import EXECUTION_BACKENDS, resolve_num_workers
from ..nn.module import Module
from ..nn.schedules import LRSchedule

__all__ = ["PopulationJob", "PopulationWorkerParams", "PopulationExecutor",
           "make_population_executor"]

ModelFactory = Callable[[np.random.Generator], Module]


@dataclass
class PopulationJob:
    """One sampled client's training work for this round."""

    client_id: int
    start_vector: np.ndarray
    shard: object
    client: Optional[Client] = None  # materialized slot (serial/thread path)


@dataclass
class PopulationWorkerParams:
    """Everything a process worker needs to rebuild a client, fork-inherited."""

    model_factory: ModelFactory
    batch_size: int
    local_steps: int
    learning_rate: float
    seed: int
    lr_schedule: Optional[LRSchedule] = None
    weight_decay: float = 0.0
    include_buffers: bool = True
    flatten_inputs: bool = False


class PopulationExecutor:
    """Interface: train the round's jobs, results keyed by client id."""

    name = "base"
    degraded = False

    def train(self, round_index: int, local_steps: int,
              jobs: Sequence[PopulationJob]
              ) -> Dict[int, Tuple[np.ndarray, float]]:
        raise NotImplementedError

    def close(self) -> None:  # pragma: no cover - trivial
        pass

    def __enter__(self) -> "PopulationExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _train_materialized(client: Client, round_index: int, local_steps: int,
                        start_vector: np.ndarray
                        ) -> Tuple[np.ndarray, float]:
    client.set_model_vector(start_vector)
    client.optimizer.reset_state()
    vector = client.local_train(round_index, local_steps)
    assert client.last_train_loss is not None
    return vector, client.last_train_loss


class SerialPopulationExecutor(PopulationExecutor):
    name = "serial"

    def train(self, round_index, local_steps, jobs):
        results: Dict[int, Tuple[np.ndarray, float]] = {}
        for job in jobs:
            assert job.client is not None, "serial path needs materialized clients"
            results[job.client_id] = _train_materialized(
                job.client, round_index, local_steps, job.start_vector
            )
        return results


class ThreadPopulationExecutor(PopulationExecutor):
    """Thread-pool fan-out over the materialized client slots.

    Each job touches a distinct :class:`Client` (distinct model arrays),
    so jobs share no mutable state; numpy releases the GIL in the BLAS
    kernels, which is where a thread pool can help.
    """

    name = "thread"

    def __init__(self, num_workers: int) -> None:
        self._num_workers = num_workers
        self._pool: Optional[ThreadPoolExecutor] = None

    def train(self, round_index, local_steps, jobs):
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=self._num_workers)
        futures = {}
        for job in jobs:
            assert job.client is not None, "thread path needs materialized clients"
            futures[job.client_id] = self._pool.submit(
                _train_materialized, job.client, round_index, local_steps,
                job.start_vector,
            )
        return {cid: future.result() for cid, future in futures.items()}

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


# -- process path -----------------------------------------------------------

# Installed in each worker by the pool initializer; inherited via fork, so
# non-picklable model factories (lambdas, closures) work unchanged.
_WORKER_STATE: Optional[dict] = None


def _init_population_worker(params: PopulationWorkerParams) -> None:
    global _WORKER_STATE
    _WORKER_STATE = {"params": params, "client": None}


def _train_population_task(task) -> Tuple[int, np.ndarray, float]:
    client_id, round_index, local_steps, start_vector, shard = task
    assert _WORKER_STATE is not None, "worker not initialized"
    params: PopulationWorkerParams = _WORKER_STATE["params"]
    dataset = shard.materialize()
    client: Optional[Client] = _WORKER_STATE["client"]
    if client is None:
        client = Client(
            client_id,
            params.model_factory(np.random.default_rng(0)),
            dataset,
            batch_size=params.batch_size,
            rng=np.random.default_rng(0),
            lr_schedule=params.lr_schedule,
            learning_rate=params.learning_rate,
            weight_decay=params.weight_decay,
            include_buffers=params.include_buffers,
            flatten_inputs=params.flatten_inputs,
            batch_seed=params.seed,
        )
        _WORKER_STATE["client"] = client
    else:
        client.client_id = client_id
        client.dataset = dataset
        client.loader = DataLoader(dataset, params.batch_size,
                                   rng=np.random.default_rng(0))
    client.set_model_vector(start_vector)
    client.optimizer.reset_state()
    vector = client.local_train(round_index, local_steps)
    assert client.last_train_loss is not None
    return client_id, vector, client.last_train_loss


class ProcessPopulationExecutor(PopulationExecutor):
    """Persistent fork-based process pool rebuilding shards in workers."""

    name = "process"

    def __init__(self, params: PopulationWorkerParams,
                 num_workers: int) -> None:
        self._params = params
        self._num_workers = num_workers
        self._pool: Optional[ProcessPoolExecutor] = None
        self.degraded = False

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            context = multiprocessing.get_context("fork")
            self._pool = ProcessPoolExecutor(
                max_workers=self._num_workers,
                mp_context=context,
                initializer=_init_population_worker,
                initargs=(self._params,),
            )
        return self._pool

    def train(self, round_index, local_steps, jobs):
        if self.degraded:
            return self._serial(round_index, local_steps, jobs)
        tasks = [(job.client_id, round_index, local_steps, job.start_vector,
                  job.shard) for job in jobs]
        try:
            pool = self._ensure_pool()
            futures = [pool.submit(_train_population_task, task)
                       for task in tasks]
            results = {}
            for future in futures:
                client_id, vector, loss = future.result()
                results[client_id] = (vector, loss)
            return results
        except BrokenProcessPool:
            warnings.warn(
                "population process pool broke (worker died); degrading "
                "to serial execution for the rest of the run",
                RuntimeWarning, stacklevel=2,
            )
            self.degraded = True
            self.close()
            return self._serial(round_index, local_steps, jobs)

    def _serial(self, round_index, local_steps, jobs):
        results = {}
        for job in jobs:
            assert job.client is not None
            results[job.client_id] = _train_materialized(
                job.client, round_index, local_steps, job.start_vector
            )
        return results

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


def make_population_executor(name: str, *, params: PopulationWorkerParams,
                             num_workers: int = 0,
                             max_useful: int = 1) -> PopulationExecutor:
    """Build the executor for ``name`` (``serial``/``thread``/``process``).

    ``num_workers=0`` auto-sizes the pool (one worker per core, capped at
    ``max_useful`` — the largest per-round sample size). The process path
    requires the ``fork`` start method; elsewhere it degrades to serial
    with a warning, like ``repro.execution.make_backend``.
    """
    if name not in EXECUTION_BACKENDS:
        raise ConfigurationError(
            f"unknown execution backend {name!r}; "
            f"available: {EXECUTION_BACKENDS}"
        )
    workers = resolve_num_workers(num_workers,
                                  max_useful=max(1, max_useful))
    if name == "serial" or workers <= 1:
        return SerialPopulationExecutor()
    if name == "thread":
        return ThreadPopulationExecutor(workers)
    if "fork" not in multiprocessing.get_all_start_methods():
        warnings.warn(
            "population process executor needs the 'fork' start method; "
            "degrading to serial execution",
            RuntimeWarning, stacklevel=2,
        )
        executor = SerialPopulationExecutor()
        executor.degraded = True
        return executor
    return ProcessPopulationExecutor(params, workers)
