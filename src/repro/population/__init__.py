"""Population-scale Fed-MS: sampling, churn, sharded tier aggregation.

This package scales the repo's flat Fed-MS loop (tens of clients, every
client trains every round, one tier of PSs) to populations of 500-5000
clients:

* :mod:`~repro.population.clients` — ``K`` lightweight descriptors with
  lazy materialization; only sampled clients hold datasets and model
  replicas, so live state is ``O(sampled)``, not ``O(K)``.
* :mod:`~repro.population.sampling` — per-round client sampling from a
  ``(seed, round)``-derived stream, bit-identical across execution
  backends.
* :mod:`~repro.population.churn` — declarative join/leave/rejoin
  membership plans, replayed deterministically.
* :mod:`~repro.population.shards` — synthetic per-client data shard
  specs that materialize on demand.
* :mod:`~repro.population.tiers` — sharded edge -> region -> global
  aggregation with the per-tier tolerance ``q_t >= 2*B_t + 1``.
* :mod:`~repro.population.executor` — serial/thread/process execution of
  the sampled cohort.
* :mod:`~repro.population.trainer` — the :class:`PopulationTrainer`
  orchestrating all of the above.

See ``docs/population.md`` for the topology and tolerance math.
"""

from .churn import ChurnPlan, ChurnScheduler, MembershipWindow
from .clients import ClientDescriptor, ClientPopulation
from .executor import (
    PopulationExecutor,
    PopulationJob,
    PopulationWorkerParams,
    make_population_executor,
)
from .sampling import sample_clients, sample_size
from .shards import (
    ArrayShardSpec,
    BlobShardSpec,
    make_blob_population,
    make_blob_test_dataset,
)
from .tiers import TierAggregator, TierOutcome, TierTopology
from .trainer import PopulationTrainer

__all__ = [
    "ArrayShardSpec",
    "BlobShardSpec",
    "ChurnPlan",
    "ChurnScheduler",
    "ClientDescriptor",
    "ClientPopulation",
    "MembershipWindow",
    "PopulationExecutor",
    "PopulationJob",
    "PopulationTrainer",
    "PopulationWorkerParams",
    "TierAggregator",
    "TierOutcome",
    "TierTopology",
    "make_blob_population",
    "make_blob_test_dataset",
    "make_population_executor",
    "sample_clients",
    "sample_size",
]
