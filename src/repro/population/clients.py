"""The client population: K lightweight descriptors, lazy materialization.

A :class:`ClientPopulation` knows about every client but holds, per
client, only a :class:`ClientDescriptor` — the shard spec plus
participation statistics, a few dozen bytes. When a round samples a
client, :meth:`ClientPopulation.materialize` binds it to a pooled
:class:`~repro.core.client.Client` slot: the shard's dataset is rebuilt
from its spec, a fresh loader is attached, and the slot's model replica is
reused. :meth:`release_all` returns the slots at the end of the round and
drops the dataset references, so live heavy state is ``O(sampled)``, never
``O(K)`` — :attr:`peak_materialized` is the auditable high-water mark.

Correctness under slot reuse relies on the ``batch_seed`` contract of
:class:`~repro.core.client.Client`: the mini-batch stream is re-derived
from ``(seed, client_id, round)`` at every ``local_train`` call, and the
model is overwritten with the fetched global vector at materialization, so
nothing about a slot's previous occupant can leak into a round's result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..common.errors import ConfigurationError, ProtocolError
from ..common.rng import RngFactory
from ..core.client import Client
from ..data.datasets import DataLoader
from ..nn.module import Module
from ..nn.schedules import LRSchedule

__all__ = ["ClientDescriptor", "ClientPopulation"]

ModelFactory = Callable[[np.random.Generator], Module]


@dataclass
class ClientDescriptor:
    """Everything the population remembers about an unmaterialized client."""

    client_id: int
    shard: object  # anything with .materialize() -> ArrayDataset
    rounds_participated: int = 0
    last_round: Optional[int] = None
    last_train_loss: Optional[float] = field(default=None, repr=False)


class ClientPopulation:
    """K descriptors plus a reusable pool of materialized client slots."""

    def __init__(self, shard_specs: Sequence[object], *,
                 model_factory: ModelFactory, batch_size: int,
                 rngs: RngFactory, batch_seed: int,
                 learning_rate: float = 0.05,
                 lr_schedule: Optional[LRSchedule] = None,
                 weight_decay: float = 0.0,
                 include_buffers: bool = True,
                 flatten_inputs: bool = False) -> None:
        if not shard_specs:
            raise ConfigurationError("population needs at least one shard")
        for spec in shard_specs:
            if not hasattr(spec, "materialize"):
                raise ConfigurationError(
                    f"shard spec {type(spec).__name__} has no materialize()"
                )
        self.descriptors = [ClientDescriptor(cid, spec)
                            for cid, spec in enumerate(shard_specs)]
        self._model_factory = model_factory
        self._batch_size = batch_size
        self._rngs = rngs
        self._batch_seed = batch_seed
        self._learning_rate = learning_rate
        self._lr_schedule = lr_schedule
        self._weight_decay = weight_decay
        self._include_buffers = include_buffers
        self._flatten_inputs = flatten_inputs
        self._pool: List[Client] = []
        self._active: Dict[int, Client] = {}
        self._num_slots = 0
        self.peak_materialized = 0

    def __len__(self) -> int:
        return len(self.descriptors)

    # -- materialization ----------------------------------------------------

    def materialize(self, client_id: int, round_index: int) -> Client:
        """Bind ``client_id`` to a client slot (reusing a pooled one)."""
        if not 0 <= client_id < len(self.descriptors):
            raise ProtocolError(
                f"client {client_id} outside population of "
                f"{len(self.descriptors)}"
            )
        if client_id in self._active:
            return self._active[client_id]
        descriptor = self.descriptors[client_id]
        dataset = descriptor.shard.materialize()
        if self._pool:
            client = self._pool.pop()
            client.client_id = client_id
            client.dataset = dataset
            client.loader = DataLoader(dataset, self._batch_size,
                                       rng=np.random.default_rng(0))
        else:
            self._num_slots += 1
            client = Client(
                client_id,
                self._model_factory(
                    self._rngs.make(f"population/slot/{self._num_slots}")
                ),
                dataset,
                batch_size=self._batch_size,
                # The constructor rng is never consulted: batch_seed
                # re-derives the stream per (client, round).
                rng=np.random.default_rng(0),
                lr_schedule=self._lr_schedule,
                learning_rate=self._learning_rate,
                weight_decay=self._weight_decay,
                include_buffers=self._include_buffers,
                flatten_inputs=self._flatten_inputs,
                batch_seed=self._batch_seed,
            )
        self._active[client_id] = client
        descriptor.rounds_participated += 1
        descriptor.last_round = round_index
        self.peak_materialized = max(self.peak_materialized,
                                     len(self._active))
        return client

    def release_all(self) -> None:
        """Return every materialized slot to the pool, dropping datasets."""
        for client_id, client in self._active.items():
            descriptor = self.descriptors[client_id]
            descriptor.last_train_loss = client.last_train_loss
            client.dataset = None  # type: ignore[assignment]
            client.loader = None  # type: ignore[assignment]
            self._pool.append(client)
        self._active.clear()

    # -- introspection ------------------------------------------------------

    @property
    def materialized_count(self) -> int:
        return len(self._active)

    @property
    def materialized_ids(self) -> List[int]:
        return sorted(self._active)

    @property
    def num_slots(self) -> int:
        """How many heavyweight client slots were ever created."""
        return self._num_slots

    def holds_model(self, client_id: int) -> bool:
        """True while ``client_id`` is bound to a materialized slot."""
        return client_id in self._active
