"""Lazy, picklable dataset recipes for population-scale clients.

A population of thousands of clients cannot afford one materialized
dataset (and model replica) per client — the point of per-round sampling
is that only the sampled clients pay for state. A *shard spec* is the
lightweight stand-in: a frozen, picklable recipe from which the client's
dataset is rebuilt deterministically on demand, in whichever process ends
up training that client. Determinism is load-bearing: the process
execution path rebuilds shards inside worker processes, and bit-identity
across backends requires the rebuilt arrays to match the main process's
exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..common.errors import ConfigurationError
from ..common.rng import stream_seed
from ..data.datasets import ArrayDataset

__all__ = ["BlobShardSpec", "ArrayShardSpec", "make_blob_population",
           "make_blob_test_dataset"]


@dataclass(frozen=True)
class BlobShardSpec:
    """A Gaussian-blob classification shard, derived entirely from seeds.

    All shards of one population share ``centers_seed`` (they solve the
    same classification problem); ``shard_seed`` individualizes the noise
    draw. ``primary_class`` (optional) skews ``primary_fraction`` of the
    shard's labels to one class — a cheap deterministic non-IID knob.
    """

    num_samples: int
    feature_dim: int
    num_classes: int
    centers_seed: int
    shard_seed: int
    center_scale: float = 4.0
    noise_scale: float = 1.0
    primary_class: Optional[int] = None
    primary_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.num_samples < 1:
            raise ConfigurationError(
                f"num_samples must be >= 1, got {self.num_samples}"
            )
        if self.feature_dim < 1 or self.num_classes < 2:
            raise ConfigurationError(
                f"need feature_dim >= 1 and num_classes >= 2, got "
                f"({self.feature_dim}, {self.num_classes})"
            )
        if self.primary_class is not None and not (
                0 <= self.primary_class < self.num_classes):
            raise ConfigurationError(
                f"primary_class {self.primary_class} outside "
                f"[0, {self.num_classes})"
            )
        if not 0.0 <= self.primary_fraction <= 1.0:
            raise ConfigurationError(
                f"primary_fraction must be in [0, 1], got "
                f"{self.primary_fraction}"
            )

    def materialize(self) -> ArrayDataset:
        """Rebuild the shard's dataset; a pure function of the spec."""
        centers = np.random.default_rng(self.centers_seed).normal(
            scale=self.center_scale,
            size=(self.num_classes, self.feature_dim),
        )
        rng = np.random.default_rng(self.shard_seed)
        labels = np.arange(self.num_samples) % self.num_classes
        if self.primary_class is not None:
            skewed = int(self.num_samples * self.primary_fraction)
            labels[:skewed] = self.primary_class
        features = centers[labels] + rng.normal(
            scale=self.noise_scale,
            size=(self.num_samples, self.feature_dim),
        )
        return ArrayDataset(features, labels)


@dataclass(frozen=True)
class ArrayShardSpec:
    """A shard wrapping in-memory arrays (already materialized).

    Escape hatch for real datasets: laziness is lost (the arrays live in
    the descriptor), but the sampling/churn/tier machinery works
    unchanged.
    """

    features: np.ndarray
    labels: np.ndarray

    def __post_init__(self) -> None:
        if len(self.features) != len(self.labels) or len(self.features) == 0:
            raise ConfigurationError(
                f"features/labels length mismatch or empty: "
                f"{len(self.features)} vs {len(self.labels)}"
            )

    @property
    def num_samples(self) -> int:
        return len(self.labels)

    def materialize(self) -> ArrayDataset:
        return ArrayDataset(self.features, self.labels)


def make_blob_population(population_size: int, *, samples_per_client: int,
                         feature_dim: int, num_classes: int, seed: int,
                         heterogeneity: float = 0.0,
                         center_scale: float = 4.0,
                         noise_scale: float = 1.0) -> List[BlobShardSpec]:
    """One :class:`BlobShardSpec` per client, sharing one set of centers.

    ``heterogeneity`` is the fraction of clients (the lowest-id ones, so
    the assignment is deterministic) given a skewed primary class.
    """
    if population_size < 1:
        raise ConfigurationError(
            f"population_size must be >= 1, got {population_size}"
        )
    if not 0.0 <= heterogeneity <= 1.0:
        raise ConfigurationError(
            f"heterogeneity must be in [0, 1], got {heterogeneity}"
        )
    centers_seed = stream_seed(seed, "population/blobs/centers")
    skewed_clients = int(heterogeneity * population_size)
    return [
        BlobShardSpec(
            num_samples=samples_per_client,
            feature_dim=feature_dim,
            num_classes=num_classes,
            centers_seed=centers_seed,
            shard_seed=stream_seed(seed, f"population/blobs/shard/{cid}"),
            center_scale=center_scale,
            noise_scale=noise_scale,
            primary_class=(cid % num_classes if cid < skewed_clients
                           else None),
        )
        for cid in range(population_size)
    ]


def make_blob_test_dataset(*, num_samples: int, feature_dim: int,
                           num_classes: int, seed: int,
                           center_scale: float = 4.0,
                           noise_scale: float = 1.0) -> ArrayDataset:
    """A held-out blob set from the same centers as the population."""
    return BlobShardSpec(
        num_samples=num_samples,
        feature_dim=feature_dim,
        num_classes=num_classes,
        centers_seed=stream_seed(seed, "population/blobs/centers"),
        shard_seed=stream_seed(seed, "population/blobs/test"),
        center_scale=center_scale,
        noise_scale=noise_scale,
    ).materialize()
