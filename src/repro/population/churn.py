"""Event-driven population churn: join / leave / rejoin scheduling.

A production-scale population is never static — devices appear, go dark
and come back. Following the :class:`~repro.simulation.faults.FaultPlan`
idiom, a :class:`ChurnPlan` is declarative data (membership windows per
client) so the same plan replays identically; :meth:`ChurnPlan.sample`
draws a randomized plan once, up front, from an explicit generator. A
:class:`ChurnScheduler` replays the plan round by round as a
:class:`~repro.simulation.scheduler.RoundScheduler` round hook, reporting
only *transitions* (joined / left / rejoined), exactly like
``FaultInjector.begin_round``.

Churn differs from a :class:`~repro.simulation.faults.ClientDropout`
fault: a dropped-out client still *exists* (it is counted, its mailbox
accumulates), whereas a churned-out client is simply not part of the
active population — it cannot be sampled at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

import numpy as np

from ..common.errors import ConfigurationError

__all__ = ["MembershipWindow", "ChurnPlan", "ChurnScheduler"]


@dataclass(frozen=True)
class MembershipWindow:
    """Client ``client_id`` is active for rounds ``[start_round, end_round)``.

    ``end_round=None`` means the client stays until the run ends. A client
    with several windows leaves and rejoins; a client with *no* windows in
    the plan is active for the whole run (the common case, so a plan stays
    small).
    """

    client_id: int
    start_round: int
    end_round: Optional[int] = None

    def __post_init__(self) -> None:
        if self.client_id < 0:
            raise ConfigurationError(
                f"client_id must be >= 0, got {self.client_id}"
            )
        if self.start_round < 0:
            raise ConfigurationError(
                f"start_round must be >= 0, got {self.start_round}"
            )
        if self.end_round is not None and self.end_round <= self.start_round:
            raise ConfigurationError(
                f"end_round ({self.end_round}) must be > start_round "
                f"({self.start_round}); use end_round=None for 'until done'"
            )

    def active(self, round_index: int) -> bool:
        return self.start_round <= round_index and (
            self.end_round is None or round_index < self.end_round
        )


@dataclass(frozen=True)
class ChurnPlan:
    """A declarative membership schedule for one population.

    Clients without windows are always active; clients with windows are
    active exactly when one of their windows covers the round.
    """

    population_size: int
    windows: Tuple[MembershipWindow, ...] = ()

    def __post_init__(self) -> None:
        if self.population_size < 1:
            raise ConfigurationError(
                f"population_size must be >= 1, got {self.population_size}"
            )
        object.__setattr__(self, "windows", tuple(self.windows))
        by_client: Dict[int, List[MembershipWindow]] = {}
        for window in self.windows:
            if window.client_id >= self.population_size:
                raise ConfigurationError(
                    f"churn plan references client {window.client_id} but "
                    f"the population has {self.population_size} clients"
                )
            by_client.setdefault(window.client_id, []).append(window)
        object.__setattr__(self, "_by_client", by_client)

    @property
    def is_empty(self) -> bool:
        return not self.windows

    def active_clients(self, round_index: int) -> FrozenSet[int]:
        """The ids active at ``round_index``."""
        windowed = self._by_client  # type: ignore[attr-defined]
        active = set(cid for cid in range(self.population_size)
                     if cid not in windowed)
        for cid, windows in windowed.items():
            if any(w.active(round_index) for w in windows):
                active.add(cid)
        return frozenset(active)

    @classmethod
    def sample(cls, *, population_size: int, num_rounds: int,
               rng: np.random.Generator,
               join_rate: float = 0.0,
               leave_rate: float = 0.0,
               rejoin_fraction: float = 0.5,
               dwell_rounds: int = 3) -> "ChurnPlan":
        """Draw a random plan from an explicit generator, once.

        Each client joins late with probability ``join_rate`` (active from
        a uniform round >= 1); otherwise it leaves with probability
        ``leave_rate`` at a uniform round, and a ``rejoin_fraction`` of
        leavers come back ``dwell_rounds`` rounds later.
        """
        for name, rate in (("join_rate", join_rate),
                           ("leave_rate", leave_rate),
                           ("rejoin_fraction", rejoin_fraction)):
            if not 0.0 <= rate <= 1.0:
                raise ConfigurationError(
                    f"{name} must be in [0, 1], got {rate}"
                )
        if dwell_rounds < 1:
            raise ConfigurationError(
                f"dwell_rounds must be >= 1, got {dwell_rounds}"
            )
        if num_rounds <= 1:
            raise ConfigurationError(
                f"num_rounds must be > 1 to place churn, got {num_rounds}"
            )
        windows: List[MembershipWindow] = []
        for cid in range(population_size):
            if rng.random() < join_rate:
                start = int(rng.integers(1, num_rounds))
                windows.append(MembershipWindow(cid, start))
            elif rng.random() < leave_rate:
                leave = int(rng.integers(1, num_rounds))
                windows.append(MembershipWindow(cid, 0, leave))
                rejoin = leave + dwell_rounds
                if rng.random() < rejoin_fraction and rejoin < num_rounds:
                    windows.append(MembershipWindow(cid, rejoin))
        return cls(population_size=population_size, windows=tuple(windows))

    @classmethod
    def from_config(cls, config, *, num_rounds: int,
                    rng: np.random.Generator) -> "ChurnPlan":
        """A plan from ``FedMSConfig``'s ``churn_*`` knobs.

        Returns an empty plan (everyone always active) when the config
        asks for no churn, so callers can pass the result unconditionally.
        """
        if config.population_size is None:
            raise ConfigurationError(
                "ChurnPlan.from_config needs config.population_size"
            )
        if not config.has_churn:
            return cls(population_size=config.population_size)
        return cls.sample(
            population_size=config.population_size,
            num_rounds=num_rounds,
            rng=rng,
            join_rate=config.churn_join_rate,
            leave_rate=config.churn_leave_rate,
            rejoin_fraction=config.churn_rejoin_fraction,
            dwell_rounds=config.churn_dwell_rounds,
        )


class ChurnScheduler:
    """Replays a :class:`ChurnPlan` round by round.

    Register :meth:`begin_round` as a round hook; it updates the active
    set and reports membership *transitions* (a join, a leave, a rejoin)
    as event strings, appended to :attr:`event_log` as
    ``(round_index, event)`` pairs. The first round establishes the
    baseline membership silently — a 5000-client population does not emit
    5000 "joined" events at round 0.
    """

    def __init__(self, plan: ChurnPlan) -> None:
        self.plan = plan
        self.round_index = -1
        self._active: FrozenSet[int] = frozenset()
        self._ever_active: set = set()
        self._baselined = False
        self.event_log: List[Tuple[int, str]] = []

    def begin_round(self, round_index: int) -> List[str]:
        """Activate membership for ``round_index``; returns new events."""
        active = self.plan.active_clients(round_index)
        events: List[str] = []
        if self._baselined:
            for cid in sorted(active - self._active):
                verb = "rejoined" if cid in self._ever_active else "joined"
                events.append(f"client {cid} {verb}")
            for cid in sorted(self._active - active):
                events.append(f"client {cid} left")
        self._baselined = True
        self._active = active
        self._ever_active.update(active)
        self.round_index = round_index
        self.event_log.extend((round_index, e) for e in events)
        return events

    def active_ids(self) -> List[int]:
        """Sorted ids active in the current round."""
        return sorted(self._active)

    def is_active(self, client_id: int) -> bool:
        return client_id in self._active
