"""Population-scale orchestration: sample, train, aggregate tier by tier.

One :class:`PopulationTrainer` round:

1. **churn/faults** (round hooks) — the :class:`ChurnScheduler` updates the
   active population; an optional
   :class:`~repro.simulation.faults.FaultInjector` (its ``ServerCrash``
   events addressing *aggregator global indices*) activates this round's
   crashes.
2. **sample** — a ``(seed, round)``-derived stream draws the round's
   clients from the active set; only those materialize (model fetches are
   counted as ``model_fetch`` downlink traffic).
3. **train** — the sampled clients run local SGD through the configured
   execution path (serial / thread / process), bit-identical across all
   three, and upload to their static edge aggregator (``tier0_upload``).
4. **edge aggregate** — each edge averages its shard's uploads (previous
   output when it received none); Byzantine edges tamper what they
   *forward*, not what they computed.
5. **tier filter** — each higher tier applies the configured filter rule
   to the models forwarded by its children (``tier<t>_exchange`` traffic),
   with per-tier tolerance ``q_t >= 2*B_{t-1}+1``, degraded-quorum
   fallback, and per-tier ``B-hat``/rejection traces recorded in
   :class:`~repro.core.history.TrainingHistory`. The top of the hierarchy
   is the next global model.

Peak materialized-client state stays ``O(sampled + tiers)`` — asserted by
``benchmarks/test_ext_population.py`` at K up to 5000.

Wire-level extensions (see docs/upload.md and docs/faults.md):
``config.upload_codecs`` compresses the ``tier0_upload`` and
``tier<t>_exchange`` legs (deltas against the round's fetched global
model, with per-sender error feedback); every upload/exchange send
retries per ``config.resolved_retry_policy`` with full
:class:`~repro.simulation.network.TrafficStats` drop/retry attribution;
and with ``config.aggregation_mode="deadline"`` a
:class:`~repro.simulation.clock.VirtualClock` times each exchange leg so
parents combine whatever arrived by the deadline — late forwards are
buffered on the parent and admitted next round within
``config.max_staleness`` (no child contributes twice to one round).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from ..attacks.base import Attack
from ..common.errors import ConfigurationError
from ..common.rng import RngFactory
from ..core.client import Client
from ..core.codecs import (
    CodecPipeline,
    EncodedUpdate,
    broadcast_variant,
    make_codec_pipeline,
)
from ..core.config import FedMSConfig
from ..core.filtering import resolve_filter
from ..core.history import RoundRecord, TrainingHistory
from ..data.datasets import ArrayDataset
from ..nn.module import Module
from ..nn.schedules import LRSchedule
from ..nn.serialization import to_vector
from ..simulation.clock import VirtualClock, split_by_deadline
from ..simulation.faults import FaultInjector, FaultPlan
from ..simulation.network import Message, Network, NodeId
from ..simulation.scheduler import RoundScheduler
from .churn import ChurnPlan, ChurnScheduler
from .clients import ClientPopulation
from .executor import (
    PopulationJob,
    PopulationWorkerParams,
    make_population_executor,
)
from .sampling import sample_clients
from .tiers import TierAggregator, TierOutcome, TierTopology

__all__ = ["PopulationTrainer"]

ModelFactory = Callable[[np.random.Generator], Module]

#: Traffic tags of the sharded topology (see docs/population.md).
FETCH_TAG = "model_fetch"
UPLOAD_TAG = "tier0_upload"


def exchange_tag(tier: int) -> str:
    """Tag of the tier ``t-1 -> t`` forwarding leg."""
    return f"tier{tier}_exchange"


class _RoundState:
    """Mutable scratch shared by the phases of one round."""

    __slots__ = ("round_index", "active_ids", "sampled_ids", "churn_events",
                 "fault_events", "results", "tier_outcomes",
                 "materialized", "retries", "send_failures", "backoff_s",
                 "deadline_missed", "late_admitted", "simulated_time_s")

    def __init__(self, round_index: int) -> None:
        self.round_index = round_index
        self.active_ids: List[int] = []
        self.sampled_ids: List[int] = []
        self.churn_events: List[str] = []
        self.fault_events: List[str] = []
        self.results: Dict[int, "tuple"] = {}
        self.tier_outcomes: Dict[int, Dict[int, TierOutcome]] = {}
        self.materialized = 0
        self.retries = 0
        self.send_failures = 0
        self.backoff_s = 0.0
        self.deadline_missed = 0
        self.late_admitted = 0
        self.simulated_time_s = 0.0


class PopulationTrainer:
    """Sampled, churning, tier-aggregated Fed-MS at population scale.

    Requires ``config.population_size`` (matching ``len(shard_specs)``)
    and ``config.tier_spec``. ``config.tier_byzantine`` places Byzantine
    aggregators per tier (an ``attack`` is then required); explicit
    placement can be supplied via ``byzantine_tier_ids`` (tier -> tier-local
    ids). ``churn_plan`` defaults to an empty plan — build one with
    :meth:`ChurnPlan.from_config` or :meth:`ChurnPlan.sample` for a
    changing population. ``fault_plan`` crashes *aggregators* (by global
    index) and drops clients, composing with churn.
    """

    def __init__(self, config: FedMSConfig, *,
                 model_factory: ModelFactory,
                 shard_specs: Sequence[object],
                 test_dataset: ArrayDataset,
                 attack: Optional[Attack] = None,
                 byzantine_tier_ids: Optional[Dict[int, Sequence[int]]] = None,
                 churn_plan: Optional[ChurnPlan] = None,
                 fault_plan: Optional[FaultPlan] = None,
                 root_dataset: Optional[ArrayDataset] = None,
                 lr_schedule: Optional[LRSchedule] = None,
                 flatten_inputs: bool = False,
                 network: Optional[Network] = None) -> None:
        if config.population_size is None:
            raise ConfigurationError(
                "PopulationTrainer needs config.population_size"
            )
        if config.tier_spec is None:
            raise ConfigurationError("PopulationTrainer needs config.tier_spec")
        if len(shard_specs) != config.population_size:
            raise ConfigurationError(
                f"{len(shard_specs)} shard specs for a population of "
                f"{config.population_size}"
            )
        self.config = config
        self.test_dataset = test_dataset
        self.network = network if network is not None else Network()
        self.rngs = RngFactory(config.seed)
        self.topology = TierTopology(config.tier_spec,
                                     config.resolved_tier_byzantine)
        if any(self.topology.byzantine) and attack is None:
            raise ConfigurationError(
                "tier_byzantine places Byzantine aggregators but no attack "
                "was supplied"
            )

        init_model = model_factory(self.rngs.make("population/init/global"))
        self._global_vector = to_vector(
            init_model, include_buffers=config.include_buffers
        )

        self.population = ClientPopulation(
            shard_specs,
            model_factory=model_factory,
            batch_size=config.batch_size,
            rngs=self.rngs,
            batch_seed=config.seed,
            learning_rate=config.learning_rate,
            lr_schedule=lr_schedule,
            include_buffers=config.include_buffers,
            flatten_inputs=flatten_inputs,
        )

        self.byzantine_tier_ids = self._place_byzantine(byzantine_tier_ids,
                                                        attack)
        self.tiers: List[List[TierAggregator]] = []
        for tier, count in enumerate(self.topology.counts):
            row: List[TierAggregator] = []
            chosen = self.byzantine_tier_ids.get(tier, frozenset())
            for index in range(count):
                expected = (len(self.topology.children_of(tier, index))
                            if tier >= 1 else None)
                byzantine = index in chosen
                row.append(TierAggregator(
                    tier, index,
                    global_index=self.topology.global_index(tier, index),
                    trim_budget=self.topology.trim_budget(tier),
                    expected_children=expected,
                    initial_model=self._global_vector,
                    attack=attack if byzantine else None,
                    attack_rng=(self.rngs.make(
                        f"population/attack/tier/{tier}/{index}")
                        if byzantine else None),
                ))
            self.tiers.append(row)

        # Estimating rules (adaptive-beta, loss-based) share one info_fn
        # across tiers; the static path uses each tier's own trim budget
        # instead of the flat config beta, so the resolved rule itself is
        # only consulted through info_fn.
        self._filter = resolve_filter(
            config,
            model_factory=model_factory,
            root_dataset=(root_dataset if root_dataset is not None
                          else test_dataset),
            flatten_inputs=flatten_inputs,
            root_rng=self.rngs.make("population/root"),
        )

        if churn_plan is not None:
            if churn_plan.population_size != config.population_size:
                raise ConfigurationError(
                    f"churn plan covers {churn_plan.population_size} "
                    f"clients, population has {config.population_size}"
                )
            self.churn_plan = churn_plan
        else:
            self.churn_plan = ChurnPlan(
                population_size=config.population_size
            )
        self.churn = ChurnScheduler(self.churn_plan)

        self.injector: Optional[FaultInjector] = None
        if fault_plan is not None and not fault_plan.is_empty:
            fault_plan.validate_topology(
                num_clients=config.population_size,
                num_servers=self.topology.total_aggregators,
            )
            self.injector = FaultInjector(
                fault_plan,
                round_deadline_s=config.resolved_faults.round_deadline_s,
            )
            self.network.add_drop_rule(self.injector.should_drop)

        self.retry_policy = config.resolved_retry_policy

        # Virtual timing of the tier-exchange legs. Barrier mode only
        # measures (per-round simulated time); deadline mode decides which
        # child forwards make each parent's round. Draws live on their own
        # named streams, so they never perturb training randomness.
        self.clock = VirtualClock(
            config.seed,
            straggler_rate=config.straggler_rate,
            straggler_factor=config.straggler_factor,
        )
        self._deadline_s: Optional[float] = None
        if config.deadline_mode:
            self._deadline_s = (
                config.deadline_s if config.deadline_s is not None
                else self.clock.deadline_for_quantile(config.deadline_quantile)
            )

        # Upload codecs on the client->edge and tier-exchange legs. Every
        # encoded payload is the delta against the round's fetched global
        # model (the reference all parties honestly share — clients pull it
        # over the reliable model_fetch plane). Exchange legs use the
        # trim-compatible broadcast variant so sibling forwards stay
        # coordinate-aligned under the parent's trimmed filter. Error
        # feedback: per-client residuals on uploads, per-child residuals
        # (keyed by global index) on exchange forwards, both adopted only
        # when the payload actually delivers.
        self.codec: CodecPipeline = make_codec_pipeline(
            config.resolved_upload_codecs
        )
        self.exchange_codec: CodecPipeline = broadcast_variant(self.codec)
        self._codec_active = not self.codec.is_identity
        self._reference: Optional[np.ndarray] = (
            np.array(self._global_vector) if self._codec_active else None
        )
        self._upload_residuals: Dict[int, np.ndarray] = {}
        self._forward_residuals: Dict[int, np.ndarray] = {}

        max_sample = max(1, round(config.sample_fraction
                                  * config.population_size))
        self.execution = make_population_executor(
            config.resolved_execution_backend,
            params=PopulationWorkerParams(
                model_factory=model_factory,
                batch_size=config.batch_size,
                local_steps=config.local_steps,
                learning_rate=config.learning_rate,
                seed=config.seed,
                lr_schedule=lr_schedule,
                include_buffers=config.include_buffers,
                flatten_inputs=flatten_inputs,
            ),
            num_workers=config.resolved_num_workers,
            max_useful=max_sample,
        )

        self._eval_client = Client(
            0,
            model_factory(self.rngs.make("population/eval")),
            test_dataset,
            batch_size=256,
            rng=np.random.default_rng(0),
            include_buffers=config.include_buffers,
            flatten_inputs=flatten_inputs,
        )

        self.history = TrainingHistory()
        self.scheduler = RoundScheduler()
        self.scheduler.add_round_hook(self._begin_round)
        self.scheduler.add_phase("sample", self._phase_sample)
        self.scheduler.add_phase("train", self._phase_train)
        self.scheduler.add_phase("edge_aggregate", self._phase_edge_aggregate)
        self.scheduler.add_phase("tier_filter", self._phase_tier_filter)
        self.scheduler.add_phase("finalize", self._phase_finalize)
        self._state: Optional[_RoundState] = None

    # -- setup helpers -------------------------------------------------------

    def _place_byzantine(self, explicit, attack) -> Dict[int, frozenset]:
        placed: Dict[int, frozenset] = {}
        for tier, budget in enumerate(self.topology.byzantine):
            if explicit is not None and tier in explicit:
                ids = frozenset(int(i) for i in explicit[tier])
                if len(ids) != budget:
                    raise ConfigurationError(
                        f"tier {tier}: {len(ids)} explicit Byzantine ids "
                        f"for a budget of {budget}"
                    )
                if any(not 0 <= i < self.topology.counts[tier] for i in ids):
                    raise ConfigurationError(
                        f"tier {tier}: Byzantine ids outside "
                        f"[0, {self.topology.counts[tier]})"
                    )
                placed[tier] = ids
            elif budget > 0:
                chosen = self.rngs.make(
                    f"population/byzantine/tier/{tier}"
                ).choice(self.topology.counts[tier], size=budget,
                         replace=False)
                placed[tier] = frozenset(int(i) for i in chosen)
        if explicit is not None:
            extra = set(explicit) - set(placed)
            if extra:
                raise ConfigurationError(
                    f"byzantine_tier_ids names tiers {sorted(extra)} whose "
                    f"budget is 0"
                )
        return placed

    @property
    def global_model_vector(self) -> np.ndarray:
        """The current global model (the top aggregator's output)."""
        return self._global_vector.copy()

    def _aggregator_alive(self, tier: int, index: int) -> bool:
        if self.injector is None:
            return True
        return self.injector.server_alive(
            self.topology.global_index(tier, index)
        )

    # -- wire helpers --------------------------------------------------------

    def _send_with_retry(self, message: Message, state: _RoundState) -> bool:
        """Send with the configured retry policy to the same static target.

        The sharded topology is static — a client's edge and a child's
        parent never change — so unlike the flat trainer's re-sampled
        upload target, a retry here re-offers the identical message to the
        same recipient after backoff. Every dropped attempt (first and
        retries alike) is charged to the leg's tag in ``TrafficStats``
        (``dropped_bytes_by_tag``, hence ``offered_bytes_total``);
        exhausting the policy counts one send failure.
        """
        if self.network.send(message):
            return True
        policy = self.retry_policy
        for attempt in range(1, policy.max_retries + 1):
            self.network.stats.record_retry(message.tag)
            state.retries += 1
            state.backoff_s += policy.backoff_s(attempt)
            if self.network.send(message):
                return True
        state.send_failures += 1
        return False

    def _encode_upload(self, vector: np.ndarray, client_id: int
                       ) -> "tuple[object, Optional[np.ndarray]]":
        """Encode one client upload; returns ``(payload, residual)``.

        The delta against the round's fetched global model is topped up
        with the client's accumulated error-feedback residual. The caller
        adopts the returned residual (what this encoding truncated) only
        once the payload actually delivers — a dropped upload communicates
        nothing, so the old residual stays.
        """
        if not self._codec_active:
            return vector, None
        assert self._reference is not None
        delta = vector - self._reference
        residual = self._upload_residuals.get(client_id)
        if residual is not None:
            delta = delta + residual
        encoded = self.codec.encode(delta)
        return encoded, delta - encoded.decode()

    def _encode_forward(self, vector: np.ndarray, child_gid: int,
                        round_index: int, *, with_residual: bool = True
                        ) -> "tuple[object, Optional[np.ndarray]]":
        """Encode a tier-exchange forward; returns ``(payload, residual)``.

        Uses the trim-compatible broadcast variant salted with the round
        index so sibling forwards share one coordinate support under the
        parent's trimmed filter. ``with_residual=False`` is the stale
        re-send path: a buffered late forward is transmitted verbatim and
        must not touch the child's live residual.
        """
        if not self._codec_active:
            return vector, None
        assert self._reference is not None
        delta = vector - self._reference
        if with_residual:
            residual = self._forward_residuals.get(child_gid)
            if residual is not None:
                delta = delta + residual
        encoded = self.exchange_codec.encode(delta, salt=round_index)
        if not with_residual:
            return encoded, None
        return encoded, delta - encoded.decode()

    def _decode_payload(self, payload: object) -> np.ndarray:
        """Dense vector a receiver reconstructs from a wire payload."""
        if isinstance(payload, EncodedUpdate):
            assert self._reference is not None
            return self._reference + payload.decode()
        return payload  # type: ignore[return-value]

    # -- round phases --------------------------------------------------------

    def _begin_round(self, t: int) -> None:
        state = _RoundState(t)
        state.churn_events = self.churn.begin_round(t)
        if self.injector is not None:
            state.fault_events = self.injector.begin_round(t)
        self._state = state

    def _phase_sample(self, t: int) -> None:
        state = self._state
        assert state is not None
        active = self.churn.active_ids()
        if self.injector is not None:
            active = [cid for cid in active
                      if self.injector.client_active(cid)]
        state.active_ids = active
        state.sampled_ids = sample_clients(
            active, self.config.sample_fraction,
            seed=self.config.seed, round_index=t,
        )
        top_global = self.topology.global_index(self.topology.num_tiers - 1, 0)
        for cid in state.sampled_ids:
            self.population.materialize(cid, t)
            # Model fetch is the reliable control plane: the sampled
            # client pulls the current global model when it checks in.
            self.network.send(Message(
                NodeId.server(top_global), NodeId.client(cid),
                self._global_vector, tag=FETCH_TAG, round_index=t,
            ))
            self.network.receive(NodeId.client(cid))
        state.materialized = self.population.materialized_count
        self.network.stats.record_materialized(state.materialized)

    def _phase_train(self, t: int) -> None:
        state = self._state
        assert state is not None
        jobs = [
            PopulationJob(
                client_id=cid,
                start_vector=self._global_vector,
                shard=self.population.descriptors[cid].shard,
                client=self.population.materialize(cid, t),
            )
            for cid in state.sampled_ids
        ]
        state.results = self.execution.train(
            t, self.config.local_steps, jobs
        )
        for cid in state.sampled_ids:
            vector, _ = state.results[cid]
            edge = self.topology.edge_of_client(cid)
            payload, residual = self._encode_upload(vector, cid)
            delivered = self._send_with_retry(Message(
                NodeId.client(cid),
                NodeId.server(self.topology.global_index(0, edge)),
                payload, tag=UPLOAD_TAG, round_index=t,
            ), state)
            if delivered and residual is not None:
                self._upload_residuals[cid] = residual

    def _phase_edge_aggregate(self, t: int) -> None:
        state = self._state
        assert state is not None
        outcomes: Dict[int, TierOutcome] = {}
        for edge in self.tiers[0]:
            inbox = self.network.receive(
                NodeId.server(edge.global_index)
            )
            if not self._aggregator_alive(0, edge.index):
                continue
            uploads = [self._decode_payload(m.payload) for m in inbox]
            senders = [m.sender.index for m in inbox]
            outcomes[edge.index] = edge.combine(uploads, senders)
        state.tier_outcomes[0] = outcomes

    def _phase_tier_filter(self, t: int) -> None:
        state = self._state
        assert state is not None
        for tier in range(1, self.topology.num_tiers):
            below = self.tiers[tier - 1]
            produced = state.tier_outcomes[tier - 1]
            # What each live child forwards upward this round; Byzantine
            # children tamper here, with adaptive knowledge of their
            # tier's honest outputs.
            peer_outputs = np.stack([child.current_output
                                     for child in below])
            forwarded: Dict[int, np.ndarray] = {
                child.index: child.outgoing(t, peer_outputs=peer_outputs)
                for child in below if child.index in produced
            }
            # Virtual timing of the exchange leg. The per-(round, leg,
            # child) arrival draws are order-independent, so this neither
            # perturbs training randomness nor varies across execution
            # backends. Barrier mode waits out the slowest forward;
            # deadline mode moves on when the deadline fires — a late
            # child's forward is withheld (it would not have arrived) and
            # buffered on its parent for bounded-staleness admission.
            leg = exchange_tag(tier)
            arrivals = self.clock.arrivals(t, leg, sorted(forwarded))
            late_ids: "frozenset[int]" = frozenset()
            if self._deadline_s is not None:
                _, late = split_by_deadline(arrivals, self._deadline_s)
                late_ids = frozenset(late)
                state.deadline_missed += len(late)
            stage_s = self.clock.stage_seconds(
                arrivals, deadline_s=self._deadline_s
            )
            state.simulated_time_s += stage_s
            self.scheduler.record_simulated(leg, stage_s)
            outcomes: Dict[int, TierOutcome] = {}
            base_gid = self.topology.global_index(tier - 1, 0)
            for parent in self.tiers[tier]:
                children = self.topology.children_of(tier, parent.index)
                stale = parent.take_admissible(
                    t, self.config.max_staleness,
                    late_children=late_ids,
                    absent_children=frozenset(
                        c for c in children if c not in forwarded
                    ),
                )
                # Admitted stale forwards go on the wire now — the late
                # message finally arrives this round — encoded with this
                # round's salt but without advancing the child's live
                # residual (the buffered vector is a re-send, not fresh).
                for child_index in sorted(stale):
                    payload, _ = self._encode_forward(
                        stale[child_index], base_gid + child_index, t,
                        with_residual=False,
                    )
                    self._send_with_retry(Message(
                        NodeId.server(base_gid + child_index),
                        NodeId.server(parent.global_index),
                        payload, tag=leg, round_index=t,
                    ), state)
                    state.late_admitted += 1
                for child_index in children:
                    if child_index not in forwarded:
                        continue
                    if child_index in late_ids:
                        parent.buffer_late(child_index, t,
                                           forwarded[child_index])
                        continue
                    child_gid = base_gid + child_index
                    payload, residual = self._encode_forward(
                        forwarded[child_index], child_gid, t
                    )
                    delivered = self._send_with_retry(Message(
                        NodeId.server(child_gid),
                        NodeId.server(parent.global_index),
                        payload, tag=leg, round_index=t,
                    ), state)
                    if delivered and residual is not None:
                        self._forward_residuals[child_gid] = residual
                inbox = self.network.receive(
                    NodeId.server(parent.global_index)
                )
                if not self._aggregator_alive(tier, parent.index):
                    continue
                vectors = [self._decode_payload(m.payload) for m in inbox]
                children_ids = [m.sender.index - base_gid for m in inbox]
                outcomes[parent.index] = parent.combine(
                    vectors, children_ids, info_fn=self._filter.info_fn,
                )
            state.tier_outcomes[tier] = outcomes
        top = self.tiers[-1][0]
        self._global_vector = top.current_output.copy()
        if self._codec_active:
            # Next round's shared reference is the new global model —
            # clients fetch it at check-in, edges and parents track it
            # here, so every leg's deltas stay mutually decodable.
            self._reference = np.array(self._global_vector)

    def _phase_finalize(self, t: int) -> None:
        state = self._state
        assert state is not None
        self.population.release_all()

    # -- round records -------------------------------------------------------

    def _build_record(self, state: _RoundState) -> RoundRecord:
        stats = self.network.stats
        losses = [state.results[cid][1] for cid in state.sampled_ids]
        train_loss = float(np.mean(losses)) if losses else float("nan")
        tier_est: Dict[int, int] = {}
        tier_rejected: Dict[int, List[int]] = {}
        tier_degraded: Dict[int, List[int]] = {}
        tier_fallback: Dict[int, List[int]] = {}
        for tier, outcomes in state.tier_outcomes.items():
            for index, outcome in sorted(outcomes.items()):
                gid = self.topology.global_index(tier, index)
                if outcome.estimated_byzantine is not None:
                    tier_est[tier] = max(tier_est.get(tier, 0),
                                         outcome.estimated_byzantine)
                if outcome.rejected_children:
                    tier_rejected.setdefault(tier, []).extend(
                        self.topology.global_index(tier - 1, child)
                        for child in outcome.rejected_children
                    )
                if outcome.used_fallback:
                    tier_fallback.setdefault(tier, []).append(gid)
                elif outcome.degraded:
                    tier_degraded.setdefault(tier, []).append(gid)
            if self.injector is not None:
                # Crashed aggregators produced nothing: their output is
                # implicitly stale, which is a fallback in all but name.
                for agg in self.tiers[tier]:
                    if (agg.index not in outcomes
                            and not self._aggregator_alive(tier, agg.index)):
                        tier_fallback.setdefault(tier, []).append(
                            agg.global_index
                        )
        for rejected in tier_rejected.values():
            rejected.sort()
        for fell_back in tier_fallback.values():
            fell_back.sort()
        alive = None
        if self.injector is not None:
            alive = len(self.injector.alive_servers(
                self.topology.total_aggregators
            ))
        return RoundRecord(
            round_index=state.round_index,
            train_loss=train_loss,
            upload_messages=stats.messages_by_tag.get(UPLOAD_TAG, 0)
            - self._uploads_before[0],
            upload_bytes=stats.bytes_by_tag.get(UPLOAD_TAG, 0)
            - self._uploads_before[1],
            dissemination_messages=stats.messages_by_tag.get(FETCH_TAG, 0)
            - self._uploads_before[2],
            upload_retries=state.retries,
            upload_failures=state.send_failures,
            alive_servers=alive,
            simulated_time_s=state.simulated_time_s,
            deadline_missed=state.deadline_missed,
            late_admitted=state.late_admitted,
            fault_events=state.fault_events,
            estimated_byzantine=max(tier_est.values()) if tier_est else None,
            num_active_clients=len(state.active_ids),
            num_sampled_clients=len(state.sampled_ids),
            materialized_clients=state.materialized,
            churn_events=state.churn_events,
            tier_estimated_byzantine=tier_est,
            tier_filtered_model_ids=tier_rejected,
            tier_degraded_aggregators=tier_degraded,
            tier_fallback_aggregators=tier_fallback,
        )

    # -- public API ----------------------------------------------------------

    def run_round(self, *, evaluate: bool = True) -> RoundRecord:
        """Execute one full population round; returns its record."""
        stats = self.network.stats
        self._uploads_before = (
            stats.messages_by_tag.get(UPLOAD_TAG, 0),
            stats.bytes_by_tag.get(UPLOAD_TAG, 0),
            stats.messages_by_tag.get(FETCH_TAG, 0),
        )
        self.scheduler.run_round()
        state = self._state
        assert state is not None
        record = self._build_record(state)
        if evaluate:
            record.test_loss, record.test_accuracy = self._evaluate()
        self.history.append(record)
        self._state = None
        return record

    def run(self, num_rounds: int, *, eval_every: int = 1) -> TrainingHistory:
        """Run ``num_rounds`` rounds, evaluating every ``eval_every``."""
        if num_rounds <= 0:
            raise ConfigurationError(
                f"num_rounds must be positive, got {num_rounds}"
            )
        if eval_every <= 0:
            raise ConfigurationError(
                f"eval_every must be positive, got {eval_every}"
            )
        for offset in range(num_rounds):
            is_last = offset == num_rounds - 1
            next_round = self.scheduler.round_index + 1
            self.run_round(evaluate=is_last or next_round % eval_every == 0)
        return self.history

    def _evaluate(self) -> "tuple[float, float]":
        self._eval_client.set_model_vector(self._global_vector)
        return self._eval_client.evaluate(self.test_dataset)

    def close(self) -> None:
        """Release the execution pool (if any)."""
        self.execution.close()

    def __enter__(self) -> "PopulationTrainer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
