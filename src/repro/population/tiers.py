"""Sharded multi-tier aggregation with per-tier Byzantine filtering.

Fed-MS's guarantee is stated for a flat topology: a client filters ``P``
received models and tolerates ``B`` Byzantine senders when the quorum
satisfies ``q >= 2B+1``. When aggregation is sharded (edge -> region ->
global), that condition must be re-established *per tier*: a tier-``t``
parent receives one model from each of its children and must tolerate up
to ``B_{t-1}`` Byzantine tier-``(t-1)`` aggregators — in the worst case
all concentrated under this one parent — so its quorum ``q_t`` (children
that actually delivered this round) must satisfy ``q_t >= 2*B_{t-1}+1``.
Below that, the parent *falls back* to its previous output rather than
filter an unwinnable stack, and the event is traced per tier in
:class:`~repro.core.history.TrainingHistory`.

Tier 0 (the edge aggregators) plays the paper's PS role: it averages the
client uploads of its shard (trim budget 0 — clients are trusted in this
threat model) and a Byzantine edge tampers what it *forwards upward*, via
the same :class:`~repro.attacks.base.Attack` catalog the flat trainer
uses. Tiers above apply the configured filter rule — the static per-tier
trimmed mean, or an estimating rule (adaptive-beta, loss-based) whose
``B-hat``/rejection evidence is recorded per tier.
"""

from __future__ import annotations

from typing import (
    AbstractSet,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from ..aggregation import trimmed_mean_by_count
from ..attacks.base import Attack, AttackContext
from ..common.errors import ConfigurationError, ProtocolError
from ..core.filtering import FilterOutcome

__all__ = ["TierTopology", "TierOutcome", "TierAggregator"]

InfoFn = Callable[[np.ndarray], FilterOutcome]


class TierTopology:
    """Validated aggregator counts (and Byzantine budgets) per tier.

    ``counts`` is bottom-up and ends in 1 (the global aggregator). A
    tier-``t`` aggregator ``j`` (``t >= 1``) parents the tier-``(t-1)``
    aggregators ``i`` with ``i % counts[t] == j`` — the same static
    modular assignment :class:`~repro.core.hierarchical
    .HierarchicalTrainer` uses for client groups. Aggregators also carry a
    flat *global index* (tier 0 first), which is what
    :class:`~repro.simulation.network.NodeId` addresses and what the
    per-tier ``filtered_model_ids`` traces record.
    """

    def __init__(self, counts: Sequence[int],
                 byzantine: Optional[Sequence[int]] = None) -> None:
        counts = tuple(int(n) for n in counts)
        if not counts or counts[-1] != 1:
            raise ConfigurationError(
                f"tier counts must be non-empty and end in 1, got {counts}"
            )
        if any(n < 1 for n in counts):
            raise ConfigurationError(f"tier counts must be >= 1: {counts}")
        if any(a < b for a, b in zip(counts, counts[1:])):
            raise ConfigurationError(
                f"tier counts must be non-increasing bottom-up: {counts}"
            )
        self.counts = counts
        if byzantine is None:
            byzantine = (0,) * len(counts)
        byzantine = tuple(int(b) for b in byzantine)
        if len(byzantine) != len(counts):
            raise ConfigurationError(
                f"{len(byzantine)} Byzantine budgets for "
                f"{len(counts)} tiers"
            )
        if any(b < 0 for b in byzantine) or byzantine[-1] != 0:
            raise ConfigurationError(
                f"Byzantine budgets must be >= 0 with an honest global "
                f"tier, got {byzantine}"
            )
        for t in range(1, len(counts)):
            quorum = self.min_children(t)
            needed = 2 * byzantine[t - 1] + 1
            if quorum < needed:
                raise ConfigurationError(
                    f"tier {t} infeasible: parents see {quorum} children "
                    f"but B={byzantine[t - 1]} needs q >= {needed}"
                )
        self.byzantine = byzantine
        self._offsets = [0]
        for n in counts[:-1]:
            self._offsets.append(self._offsets[-1] + n)

    @property
    def num_tiers(self) -> int:
        return len(self.counts)

    @property
    def total_aggregators(self) -> int:
        return sum(self.counts)

    def global_index(self, tier: int, index: int) -> int:
        """Flat index of aggregator ``index`` at ``tier``."""
        if not 0 <= tier < self.num_tiers:
            raise ConfigurationError(f"tier {tier} outside topology")
        if not 0 <= index < self.counts[tier]:
            raise ConfigurationError(
                f"aggregator {index} outside tier {tier} "
                f"({self.counts[tier]} aggregators)"
            )
        return self._offsets[tier] + index

    def parent_of(self, tier: int, index: int) -> int:
        """Tier-local index of the tier-``(tier+1)`` parent."""
        return index % self.counts[tier + 1]

    def children_of(self, tier: int, index: int) -> List[int]:
        """Tier-local indices of the tier-``(tier-1)`` children."""
        if tier < 1:
            raise ConfigurationError("tier 0 has client children, not "
                                     "aggregator children")
        return [i for i in range(self.counts[tier - 1])
                if i % self.counts[tier] == index]

    def min_children(self, tier: int) -> int:
        """Smallest child count any tier-``tier`` parent can have."""
        return self.counts[tier - 1] // self.counts[tier]

    def edge_of_client(self, client_id: int) -> int:
        """Static shard attachment: client -> edge aggregator."""
        return client_id % self.counts[0]

    def trim_budget(self, tier: int) -> int:
        """How many children a tier-``tier`` parent trims per side."""
        if tier < 1:
            return 0
        return self.byzantine[tier - 1]


class TierOutcome:
    """What one aggregator concluded from its children this round."""

    __slots__ = ("vector", "used_fallback", "degraded",
                 "estimated_byzantine", "rejected_children")

    def __init__(self, vector: np.ndarray, *, used_fallback: bool,
                 degraded: bool, estimated_byzantine: Optional[int],
                 rejected_children: Tuple[int, ...]) -> None:
        self.vector = vector
        self.used_fallback = used_fallback
        self.degraded = degraded
        self.estimated_byzantine = estimated_byzantine
        self.rejected_children = rejected_children


class TierAggregator:
    """One aggregator node in the sharded topology.

    Uniform across tiers: :meth:`combine` folds the delivered child
    vectors (client uploads at tier 0, child aggregates above) into this
    node's current output, applying the tier's trim budget with the
    degraded-quorum semantics described in the module docstring;
    :meth:`outgoing` is what the node forwards to its parent — the truth
    for an honest node, the attack's output for a Byzantine one.
    """

    def __init__(self, tier: int, index: int, *, global_index: int,
                 trim_budget: int, expected_children: Optional[int],
                 initial_model: np.ndarray,
                 attack: Optional[Attack] = None,
                 attack_rng: Optional[np.random.Generator] = None,
                 max_history: int = 32) -> None:
        if trim_budget < 0:
            raise ConfigurationError(
                f"trim_budget must be >= 0, got {trim_budget}"
            )
        if attack is not None and attack_rng is None:
            raise ConfigurationError("a Byzantine aggregator needs a rng")
        self.tier = tier
        self.index = index
        self.global_index = global_index
        self.trim_budget = trim_budget
        self.expected_children = expected_children
        self.attack = attack
        self._attack_rng = attack_rng
        self.max_history = max_history
        self.output_history: List[np.ndarray] = [
            np.asarray(initial_model, dtype=np.float64).copy()
        ]
        self.rounds_without_quorum = 0
        # Child forwards that missed a deadline, buffered for
        # bounded-staleness admission: child index -> (origin round, vector).
        self._late_children: Dict[int, Tuple[int, np.ndarray]] = {}

    @property
    def is_byzantine(self) -> bool:
        return self.attack is not None

    @property
    def current_output(self) -> np.ndarray:
        return self.output_history[-1]

    def _push(self, vector: np.ndarray) -> None:
        self.output_history.append(vector)
        if len(self.output_history) > self.max_history:
            self.output_history.pop(0)

    def combine(self, child_vectors: Sequence[np.ndarray],
                child_indices: Sequence[int], *,
                info_fn: Optional[InfoFn] = None) -> TierOutcome:
        """Fold the delivered children into this node's next output.

        ``child_indices`` are the tier-local ids of the senders, in the
        same order as ``child_vectors``; an estimating ``info_fn``'s
        rejected rows are mapped back through them. Quorum semantics:
        ``q >= 2B+1`` filters with the full trim budget (``degraded`` when
        ``q`` is below the expected child count); anything smaller falls
        back to the previous output.
        """
        if len(child_vectors) != len(child_indices):
            raise ProtocolError(
                f"{len(child_vectors)} vectors for "
                f"{len(child_indices)} child ids"
            )
        q = len(child_vectors)
        expected = self.expected_children
        degraded = expected is not None and q < expected
        if q == 0 or q < 2 * self.trim_budget + 1:
            self.rounds_without_quorum += 1
            outcome = TierOutcome(
                self.current_output.copy(), used_fallback=True,
                degraded=degraded, estimated_byzantine=None,
                rejected_children=(),
            )
            self._push(outcome.vector)
            return outcome
        stack = np.stack(child_vectors)
        if info_fn is not None and self.tier >= 1:
            info = info_fn(stack)
            outcome = TierOutcome(
                info.vector, used_fallback=False, degraded=degraded,
                estimated_byzantine=info.estimated_byzantine,
                rejected_children=tuple(
                    int(child_indices[row]) for row in info.rejected_rows
                ),
            )
        else:
            outcome = TierOutcome(
                trimmed_mean_by_count(stack, self.trim_budget),
                used_fallback=False, degraded=degraded,
                estimated_byzantine=None, rejected_children=(),
            )
        self._push(outcome.vector)
        return outcome

    def buffer_late(self, child_index: int, round_index: int,
                    vector: np.ndarray) -> None:
        """Buffer a child's deadline-missing forward for stale admission.

        The forward happened — it just arrived after this round's
        deadline. A newer buffer for the same child replaces the old one
        (only the most recent late forward is ever admissible).
        """
        self._late_children[child_index] = (round_index, np.array(vector))

    def take_admissible(self, round_index: int, max_staleness: int, *,
                        late_children: AbstractSet[int],
                        absent_children: AbstractSet[int] = frozenset(),
                        ) -> Dict[int, np.ndarray]:
        """Pop the buffered forwards admissible in ``round_index``.

        A buffer from round ``t0`` is admitted when
        ``round_index - t0 <= max_staleness`` and its child is late
        *again* this round (``late_children``) — a child whose fresh
        forward made the deadline supersedes its stale buffer, which is
        discarded, so no child ever contributes two models to one round.
        Children in ``absent_children`` (crashed, no output this round)
        keep their buffer until it expires.
        """
        admitted: Dict[int, np.ndarray] = {}
        for child in sorted(self._late_children):
            origin, vector = self._late_children[child]
            if round_index - origin > max_staleness:
                del self._late_children[child]
                continue
            if child in absent_children:
                continue
            if child not in late_children:
                del self._late_children[child]
                continue
            admitted[child] = vector
            del self._late_children[child]
        return admitted

    def outgoing(self, round_index: int, *,
                 peer_outputs: Optional[np.ndarray] = None) -> np.ndarray:
        """The model this node forwards to its parent."""
        if self.attack is None:
            return self.current_output.copy()
        context = AttackContext(
            round_index=round_index,
            server_id=self.global_index,
            true_aggregate=self.current_output,
            previous_aggregates=self.output_history[:-1],
            rng=self._attack_rng,
            all_server_aggregates=peer_outputs,
            client_id=None,
        )
        return self.attack.tamper(context)

    def __repr__(self) -> str:
        flag = ", byzantine" if self.is_byzantine else ""
        return (f"TierAggregator(tier={self.tier}, index={self.index}"
                f"{flag})")
