"""Deterministic per-round client sampling.

The sampling stream is derived from ``(seed, round_index)`` alone — not
from any generator that advances across rounds or threads — so the set of
sampled clients is a pure function of the round. That is what makes a
population run bit-identical across the serial, thread and process
execution paths: no matter which worker trains which client, the *choice*
of clients was fixed before any work was scheduled.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..common.errors import ConfigurationError
from ..common.rng import stream_seed

__all__ = ["sample_size", "sample_clients"]


def sample_size(num_active: int, sample_fraction: float) -> int:
    """How many clients a round samples: at least 1, at most all active."""
    if num_active <= 0:
        return 0
    return min(num_active, max(1, round(sample_fraction * num_active)))


def sample_clients(active_ids: Sequence[int], sample_fraction: float, *,
                   seed: int, round_index: int) -> List[int]:
    """Uniform sample without replacement from the active population.

    Returns a sorted list. The draw is taken from a fresh generator
    seeded with ``stream_seed(seed, "population/sample/round/<t>")`` over
    the *sorted* active ids, so the result depends only on
    ``(seed, round_index, active set)``.
    """
    if not 0.0 < sample_fraction <= 1.0:
        raise ConfigurationError(
            f"sample_fraction must be in (0, 1], got {sample_fraction}"
        )
    ids = sorted(int(cid) for cid in active_ids)
    size = sample_size(len(ids), sample_fraction)
    if size == 0:
        return []
    rng = np.random.default_rng(stream_seed(
        seed, f"population/sample/round/{round_index}"
    ))
    chosen = rng.choice(len(ids), size=size, replace=False)
    return sorted(ids[i] for i in chosen)
