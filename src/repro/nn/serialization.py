"""Flat-vector views of model state.

Everything the federated layer exchanges — client uploads, PS aggregates,
Byzantine tampering, the trimmed-mean filter — operates on a single 1-D
``float64`` vector per model. These helpers define that vector layout:
all trainable parameters in registration order, optionally followed by all
buffers (batch-norm running statistics) in registration order.

Including the buffers matters for FedAvg-style training: if running
statistics were not averaged along with the weights, every client would
evaluate the shared weights under different normalization statistics.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..common.errors import ShapeError
from .module import Module

__all__ = [
    "vector_size",
    "to_vector",
    "from_vector",
    "gradient_vector",
    "clone_module_state",
]


def _chunks(module: Module, include_buffers: bool) -> List[np.ndarray]:
    arrays = [param.data for param in module.parameters()]
    if include_buffers:
        arrays.extend(buf for _, buf in module.named_buffers())
    return arrays


def vector_size(module: Module, *, include_buffers: bool = True) -> int:
    """Length of the flat vector for ``module``."""
    return sum(int(a.size) for a in _chunks(module, include_buffers))


def to_vector(module: Module, *, include_buffers: bool = True) -> np.ndarray:
    """Copy the model state into a flat ``float64`` vector."""
    arrays = _chunks(module, include_buffers)
    if not arrays:
        return np.zeros(0, dtype=np.float64)
    return np.concatenate([a.ravel() for a in arrays]).astype(np.float64, copy=False)


def from_vector(module: Module, vector: np.ndarray, *,
                include_buffers: bool = True) -> None:
    """Load a flat vector produced by :func:`to_vector` back into ``module``."""
    vector = np.asarray(vector, dtype=np.float64).ravel()
    expected = vector_size(module, include_buffers=include_buffers)
    if vector.size != expected:
        raise ShapeError(
            f"vector has {vector.size} entries, model expects {expected}"
        )
    offset = 0
    for param in module.parameters():
        size = param.size
        param.data[...] = vector[offset:offset + size].reshape(param.data.shape)
        offset += size
    if include_buffers:
        owners = module._buffer_owners()
        for name, buf in module.named_buffers():
            size = int(buf.size)
            owner, local_name = owners[name]
            owner.set_buffer(
                local_name, vector[offset:offset + size].reshape(buf.shape)
            )
            offset += size


def gradient_vector(module: Module) -> np.ndarray:
    """Concatenate all parameter gradients into one flat vector.

    Buffers have no gradients, so this vector has length
    ``vector_size(module, include_buffers=False)``.
    """
    grads = [param.grad.ravel() for param in module.parameters()]
    if not grads:
        return np.zeros(0, dtype=np.float64)
    return np.concatenate(grads).astype(np.float64, copy=False)


def clone_module_state(source: Module, target: Module) -> None:
    """Copy all parameters and buffers from ``source`` into ``target``.

    The two modules must have identical architectures (same state-dict keys
    and shapes).
    """
    target.load_state_dict(source.state_dict())
