"""Learning-rate schedules.

:class:`InverseTimeDecay` implements the schedule required by the paper's
Theorem 1: ``eta_t = phi / (gamma + t)`` with ``phi = 2 / mu`` and
``gamma = max(8 L / mu, E)``. It satisfies the two side conditions the
analysis needs — ``eta_t`` non-increasing and ``eta_t <= 2 * eta_{t+E}``
(checked by property tests).
"""

from __future__ import annotations

import math

from ..common.errors import ConfigurationError

__all__ = [
    "LRSchedule",
    "ConstantLR",
    "StepDecay",
    "InverseTimeDecay",
    "CosineAnnealing",
    "LinearWarmup",
    "theorem1_schedule",
]


class LRSchedule:
    """Maps a global step index ``t`` to a learning rate."""

    def lr_at(self, step: int) -> float:
        raise NotImplementedError

    def __call__(self, step: int) -> float:
        if step < 0:
            raise ConfigurationError(f"step must be >= 0, got {step}")
        return self.lr_at(step)


class ConstantLR(LRSchedule):
    """A fixed learning rate."""

    def __init__(self, lr: float) -> None:
        if lr <= 0:
            raise ConfigurationError(f"lr must be positive, got {lr}")
        self.lr = float(lr)

    def lr_at(self, step: int) -> float:
        return self.lr

    def __repr__(self) -> str:
        return f"ConstantLR({self.lr})"


class StepDecay(LRSchedule):
    """Multiply the rate by ``factor`` every ``step_size`` steps."""

    def __init__(self, lr: float, *, step_size: int, factor: float = 0.1) -> None:
        if lr <= 0:
            raise ConfigurationError(f"lr must be positive, got {lr}")
        if step_size <= 0:
            raise ConfigurationError(f"step_size must be positive, got {step_size}")
        if not 0 < factor <= 1:
            raise ConfigurationError(f"factor must be in (0, 1], got {factor}")
        self.lr = float(lr)
        self.step_size = int(step_size)
        self.factor = float(factor)

    def lr_at(self, step: int) -> float:
        return self.lr * self.factor ** (step // self.step_size)

    def __repr__(self) -> str:
        return f"StepDecay({self.lr}, step_size={self.step_size}, factor={self.factor})"


class InverseTimeDecay(LRSchedule):
    """``eta_t = phi / (gamma + t)`` — the Theorem 1 learning-rate policy."""

    def __init__(self, phi: float, gamma: float) -> None:
        if phi <= 0:
            raise ConfigurationError(f"phi must be positive, got {phi}")
        if gamma <= 0:
            raise ConfigurationError(f"gamma must be positive, got {gamma}")
        self.phi = float(phi)
        self.gamma = float(gamma)

    def lr_at(self, step: int) -> float:
        return self.phi / (self.gamma + step)

    def __repr__(self) -> str:
        return f"InverseTimeDecay(phi={self.phi}, gamma={self.gamma})"


class CosineAnnealing(LRSchedule):
    """Cosine decay from ``lr`` to ``min_lr`` over ``total_steps`` steps."""

    def __init__(self, lr: float, *, total_steps: int,
                 min_lr: float = 0.0) -> None:
        if lr <= 0:
            raise ConfigurationError(f"lr must be positive, got {lr}")
        if total_steps <= 0:
            raise ConfigurationError(
                f"total_steps must be positive, got {total_steps}"
            )
        if not 0.0 <= min_lr <= lr:
            raise ConfigurationError(
                f"min_lr must be in [0, lr], got {min_lr}"
            )
        self.lr = float(lr)
        self.total_steps = int(total_steps)
        self.min_lr = float(min_lr)

    def lr_at(self, step: int) -> float:
        progress = min(step / self.total_steps, 1.0)
        cosine = 0.5 * (1.0 + math.cos(math.pi * progress))
        return self.min_lr + (self.lr - self.min_lr) * cosine

    def __repr__(self) -> str:
        return (f"CosineAnnealing({self.lr}, total_steps={self.total_steps}, "
                f"min_lr={self.min_lr})")


class LinearWarmup(LRSchedule):
    """Linear ramp over ``warmup_steps``, then defer to ``base`` schedule."""

    def __init__(self, base: LRSchedule, *, warmup_steps: int) -> None:
        if warmup_steps <= 0:
            raise ConfigurationError(
                f"warmup_steps must be positive, got {warmup_steps}"
            )
        self.base = base
        self.warmup_steps = int(warmup_steps)

    def lr_at(self, step: int) -> float:
        if step < self.warmup_steps:
            return self.base(self.warmup_steps) * (step + 1) / self.warmup_steps
        return self.base(step)

    def __repr__(self) -> str:
        return f"LinearWarmup({self.base!r}, warmup_steps={self.warmup_steps})"


def theorem1_schedule(mu: float, smoothness: float, local_steps: int) -> InverseTimeDecay:
    """Build the exact schedule of Theorem 1.

    Parameters
    ----------
    mu:
        Strong-convexity constant of the local objectives.
    smoothness:
        Smoothness constant ``L``.
    local_steps:
        Number of local iterations ``E`` per round.

    Returns
    -------
    ``InverseTimeDecay(phi=2/mu, gamma=max(8L/mu, E))``.
    """
    if mu <= 0 or smoothness <= 0:
        raise ConfigurationError("mu and smoothness must be positive")
    if local_steps <= 0:
        raise ConfigurationError(f"local_steps must be positive, got {local_steps}")
    gamma = max(8.0 * smoothness / mu, float(local_steps))
    return InverseTimeDecay(phi=2.0 / mu, gamma=gamma)
