"""Model checkpointing: save/load full module state as ``.npz`` archives.

A checkpoint stores every parameter and buffer under its dotted name, so a
model rebuilt from the same factory loads bit-identically — the mechanism
long experiments use to resume and the examples use to hand models between
scripts.
"""

from __future__ import annotations

import os
from typing import Dict

import numpy as np

from ..common.errors import ConfigurationError, ShapeError
from .module import Module

__all__ = ["save_checkpoint", "load_checkpoint", "checkpoint_metadata"]

_METADATA_PREFIX = "__meta__:"


def save_checkpoint(module: Module, path: str, *,
                    metadata: Dict[str, str] = None) -> None:
    """Write the module's parameters and buffers to ``path`` (``.npz``).

    ``metadata`` (small string key/values, e.g. round number, seed) is
    stored alongside and returned by :func:`checkpoint_metadata`.
    """
    state = module.state_dict()
    payload: Dict[str, np.ndarray] = dict(state)
    for key, value in (metadata or {}).items():
        if key.startswith(_METADATA_PREFIX):
            raise ConfigurationError(f"reserved metadata key {key!r}")
        payload[f"{_METADATA_PREFIX}{key}"] = np.asarray(str(value))
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    np.savez(path, **payload)


def _split(archive) -> "tuple[Dict[str, np.ndarray], Dict[str, str]]":
    state: Dict[str, np.ndarray] = {}
    metadata: Dict[str, str] = {}
    for key in archive.files:
        if key.startswith(_METADATA_PREFIX):
            metadata[key[len(_METADATA_PREFIX):]] = str(archive[key])
        else:
            state[key] = archive[key]
    return state, metadata


def load_checkpoint(module: Module, path: str) -> Dict[str, str]:
    """Load a checkpoint written by :func:`save_checkpoint` into ``module``.

    Returns the stored metadata. Raises
    :class:`~repro.common.errors.ShapeError` on architecture mismatch and
    ``FileNotFoundError`` when the file does not exist.
    """
    if not os.path.exists(path) and os.path.exists(path + ".npz"):
        path = path + ".npz"
    with np.load(path, allow_pickle=False) as archive:
        state, metadata = _split(archive)
    try:
        module.load_state_dict(state)
    except KeyError as error:
        raise ShapeError(
            f"checkpoint at {path} does not match the model: {error}"
        ) from error
    return metadata


def checkpoint_metadata(path: str) -> Dict[str, str]:
    """Read only the metadata of a checkpoint (no model required)."""
    if not os.path.exists(path) and os.path.exists(path + ".npz"):
        path = path + ".npz"
    with np.load(path, allow_pickle=False) as archive:
        _, metadata = _split(archive)
    return metadata
