"""Neural-network layers with explicit forward/backward passes.

Every layer caches the minimum state its backward pass needs during
``forward``; calling ``backward`` before ``forward`` raises
:class:`~repro.common.errors.ProtocolError`. All layers are gradient-checked
in ``tests/nn/test_gradcheck.py``.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..common.errors import ConfigurationError, ProtocolError, ShapeError
from . import init
from .functional import col2im_windows, conv_output_size, im2col_windows
from .module import Module, Parameter

__all__ = [
    "Linear",
    "Conv2d",
    "DepthwiseConv2d",
    "BatchNorm1d",
    "BatchNorm2d",
    "GroupNorm",
    "ReLU",
    "ReLU6",
    "LeakyReLU",
    "Tanh",
    "Sigmoid",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "Flatten",
    "Dropout",
]


def _require_cache(cache, layer: Module):
    if cache is None:
        raise ProtocolError(
            f"{type(layer).__name__}.backward called before forward"
        )
    return cache


class Linear(Module):
    """Affine transform ``y = x @ W + b`` with ``W`` of shape ``(in, out)``."""

    def __init__(self, in_features: int, out_features: int, *, bias: bool = True,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ConfigurationError(
                f"Linear dimensions must be positive, got ({in_features}, {out_features})"
            )
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.he_normal(rng, (in_features, out_features)))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None
        self._input: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ShapeError(
                f"Linear expected (N, {self.in_features}), got {x.shape}"
            )
        self._input = x
        out = x @ self.weight.data
        if self.bias is not None:
            out = out + self.bias.data
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        x = _require_cache(self._input, self)
        self.weight.grad += x.T @ grad_output
        if self.bias is not None:
            self.bias.grad += grad_output.sum(axis=0)
        return grad_output @ self.weight.data.T

    def __repr__(self) -> str:
        return f"Linear({self.in_features}, {self.out_features})"


class Conv2d(Module):
    """2-D convolution with square stride/padding, via im2col + matmul.

    Weight shape is ``(out_channels, in_channels, KH, KW)``.
    """

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 *, stride: int = 1, padding: int = 0, bias: bool = True,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if min(in_channels, out_channels, kernel_size, stride) <= 0:
            raise ConfigurationError("Conv2d sizes must be positive")
        if padding < 0:
            raise ConfigurationError(f"padding must be >= 0, got {padding}")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.weight = Parameter(
            init.he_normal(rng, (out_channels, in_channels, kernel_size, kernel_size))
        )
        self.bias = Parameter(init.zeros((out_channels,))) if bias else None
        self._cache: Optional[Tuple[np.ndarray, Tuple[int, ...]]] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ShapeError(
                f"Conv2d expected (N, {self.in_channels}, H, W), got {x.shape}"
            )
        k = self.kernel_size
        windows = im2col_windows(x, (k, k), self.stride, self.padding)
        # windows: (N, C, KH, KW, OH, OW); weight: (O, C, KH, KW)
        out = np.einsum("ncabij,ocab->noij", windows, self.weight.data, optimize=True)
        if self.bias is not None:
            out += self.bias.data[None, :, None, None]
        self._cache = (windows, x.shape)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        windows, x_shape = _require_cache(self._cache, self)
        k = self.kernel_size
        self.weight.grad += np.einsum(
            "ncabij,noij->ocab", windows, grad_output, optimize=True
        )
        if self.bias is not None:
            self.bias.grad += grad_output.sum(axis=(0, 2, 3))
        grad_windows = np.einsum(
            "ocab,noij->ncabij", self.weight.data, grad_output, optimize=True
        )
        return col2im_windows(grad_windows, x_shape, (k, k), self.stride, self.padding)

    def __repr__(self) -> str:
        return (
            f"Conv2d({self.in_channels}, {self.out_channels}, "
            f"k={self.kernel_size}, s={self.stride}, p={self.padding})"
        )


class DepthwiseConv2d(Module):
    """Depthwise 2-D convolution (one filter per channel, no channel mixing).

    This is the ``groups == in_channels`` convolution that MobileNet V2's
    inverted residual blocks are built from. Weight shape is
    ``(channels, KH, KW)``.
    """

    def __init__(self, channels: int, kernel_size: int, *, stride: int = 1,
                 padding: int = 0, bias: bool = True,
                 rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if min(channels, kernel_size, stride) <= 0:
            raise ConfigurationError("DepthwiseConv2d sizes must be positive")
        if padding < 0:
            raise ConfigurationError(f"padding must be >= 0, got {padding}")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.channels = channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        # Treat each depthwise filter as a 1-in/1-out conv for fan-in purposes.
        scale = np.sqrt(2.0 / (kernel_size * kernel_size))
        self.weight = Parameter(
            rng.normal(0.0, scale, size=(channels, kernel_size, kernel_size))
        )
        self.bias = Parameter(init.zeros((channels,))) if bias else None
        self._cache: Optional[Tuple[np.ndarray, Tuple[int, ...]]] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.channels:
            raise ShapeError(
                f"DepthwiseConv2d expected (N, {self.channels}, H, W), got {x.shape}"
            )
        k = self.kernel_size
        windows = im2col_windows(x, (k, k), self.stride, self.padding)
        out = np.einsum("ncabij,cab->ncij", windows, self.weight.data, optimize=True)
        if self.bias is not None:
            out += self.bias.data[None, :, None, None]
        self._cache = (windows, x.shape)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        windows, x_shape = _require_cache(self._cache, self)
        k = self.kernel_size
        self.weight.grad += np.einsum(
            "ncabij,ncij->cab", windows, grad_output, optimize=True
        )
        if self.bias is not None:
            self.bias.grad += grad_output.sum(axis=(0, 2, 3))
        grad_windows = np.einsum(
            "cab,ncij->ncabij", self.weight.data, grad_output, optimize=True
        )
        return col2im_windows(grad_windows, x_shape, (k, k), self.stride, self.padding)

    def __repr__(self) -> str:
        return (
            f"DepthwiseConv2d({self.channels}, k={self.kernel_size}, "
            f"s={self.stride}, p={self.padding})"
        )


class _BatchNorm(Module):
    """Shared implementation of 1-D/2-D batch normalization."""

    def __init__(self, num_features: int, *, eps: float = 1e-5,
                 momentum: float = 0.1) -> None:
        super().__init__()
        if num_features <= 0:
            raise ConfigurationError(f"num_features must be positive, got {num_features}")
        if not 0.0 < momentum <= 1.0:
            raise ConfigurationError(f"momentum must be in (0, 1], got {momentum}")
        self.num_features = num_features
        self.eps = float(eps)
        self.momentum = float(momentum)
        self.weight = Parameter(init.ones((num_features,)))
        self.bias = Parameter(init.zeros((num_features,)))
        self.register_buffer("running_mean", np.zeros(num_features))
        self.register_buffer("running_var", np.ones(num_features))
        self._cache = None

    # Subclasses define which axes are reduced and how per-channel vectors
    # broadcast against the input.
    _reduce_axes: Tuple[int, ...] = ()

    def _expand(self, vec: np.ndarray, ndim: int) -> np.ndarray:
        shape = [1] * ndim
        shape[1] = self.num_features
        return vec.reshape(shape)

    def _check_input(self, x: np.ndarray) -> None:
        raise NotImplementedError

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._check_input(x)
        axes = self._reduce_axes
        if self.training:
            mean = x.mean(axis=axes)
            var = x.var(axis=axes)
            count = x.size // self.num_features
            # Track statistics with an exponential moving average, using the
            # unbiased variance for the running estimate (matching the
            # convention of mainstream frameworks).
            unbiased = var * count / max(count - 1, 1)
            new_mean = (1 - self.momentum) * self._buffers["running_mean"] \
                + self.momentum * mean
            new_var = (1 - self.momentum) * self._buffers["running_var"] \
                + self.momentum * unbiased
            self.set_buffer("running_mean", new_mean)
            self.set_buffer("running_var", new_var)
        else:
            mean = self._buffers["running_mean"]
            var = self._buffers["running_var"]
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - self._expand(mean, x.ndim)) * self._expand(inv_std, x.ndim)
        out = x_hat * self._expand(self.weight.data, x.ndim) \
            + self._expand(self.bias.data, x.ndim)
        self._cache = (x_hat, inv_std, x.ndim, x.size // self.num_features,
                       self.training)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        x_hat, inv_std, ndim, count, was_training = _require_cache(self._cache, self)
        axes = self._reduce_axes
        self.weight.grad += (grad_output * x_hat).sum(axis=axes)
        self.bias.grad += grad_output.sum(axis=axes)
        gamma = self._expand(self.weight.data, ndim)
        grad_xhat = grad_output * gamma
        if not was_training:
            # In eval mode the normalization statistics are constants.
            return grad_xhat * self._expand(inv_std, ndim)
        sum_g = grad_xhat.sum(axis=axes)
        sum_gx = (grad_xhat * x_hat).sum(axis=axes)
        return (
            grad_xhat
            - self._expand(sum_g, ndim) / count
            - x_hat * self._expand(sum_gx, ndim) / count
        ) * self._expand(inv_std, ndim)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.num_features})"


class BatchNorm1d(_BatchNorm):
    """Batch normalization over ``(N, F)`` inputs."""

    _reduce_axes = (0,)

    def _check_input(self, x: np.ndarray) -> None:
        if x.ndim != 2 or x.shape[1] != self.num_features:
            raise ShapeError(
                f"BatchNorm1d expected (N, {self.num_features}), got {x.shape}"
            )


class BatchNorm2d(_BatchNorm):
    """Batch normalization over ``(N, C, H, W)`` inputs, per channel."""

    _reduce_axes = (0, 2, 3)

    def _check_input(self, x: np.ndarray) -> None:
        if x.ndim != 4 or x.shape[1] != self.num_features:
            raise ShapeError(
                f"BatchNorm2d expected (N, {self.num_features}, H, W), got {x.shape}"
            )


class GroupNorm(Module):
    """Group normalization (Wu & He, 2018) over ``(N, C, H, W)`` inputs.

    Normalizes each sample's channels within ``num_groups`` groups, with no
    batch statistics — which makes it the preferred normalization for
    federated learning on non-IID data, where per-client batch statistics
    diverge and averaging BatchNorm buffers degrades the global model.
    """

    def __init__(self, num_groups: int, num_channels: int, *,
                 eps: float = 1e-5) -> None:
        super().__init__()
        if num_groups <= 0 or num_channels <= 0:
            raise ConfigurationError(
                f"groups/channels must be positive, got "
                f"({num_groups}, {num_channels})"
            )
        if num_channels % num_groups != 0:
            raise ConfigurationError(
                f"num_channels={num_channels} not divisible by "
                f"num_groups={num_groups}"
            )
        self.num_groups = num_groups
        self.num_channels = num_channels
        self.eps = float(eps)
        self.weight = Parameter(init.ones((num_channels,)))
        self.bias = Parameter(init.zeros((num_channels,)))
        self._cache = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.num_channels:
            raise ShapeError(
                f"GroupNorm expected (N, {self.num_channels}, H, W), "
                f"got {x.shape}"
            )
        n, c, h, w = x.shape
        grouped = x.reshape(n, self.num_groups, -1)
        mean = grouped.mean(axis=2, keepdims=True)
        var = grouped.var(axis=2, keepdims=True)
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = ((grouped - mean) * inv_std).reshape(n, c, h, w)
        out = x_hat * self.weight.data[None, :, None, None] \
            + self.bias.data[None, :, None, None]
        self._cache = (x_hat, inv_std, x.shape)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        x_hat, inv_std, shape = _require_cache(self._cache, self)
        n, c, h, w = shape
        self.weight.grad += (grad_output * x_hat).sum(axis=(0, 2, 3))
        self.bias.grad += grad_output.sum(axis=(0, 2, 3))
        grad_xhat = grad_output * self.weight.data[None, :, None, None]
        grouped_grad = grad_xhat.reshape(n, self.num_groups, -1)
        grouped_xhat = x_hat.reshape(n, self.num_groups, -1)
        count = grouped_grad.shape[2]
        sum_g = grouped_grad.sum(axis=2, keepdims=True)
        sum_gx = (grouped_grad * grouped_xhat).sum(axis=2, keepdims=True)
        grad_grouped = (
            grouped_grad - sum_g / count - grouped_xhat * sum_gx / count
        ) * inv_std
        return grad_grouped.reshape(shape)

    def __repr__(self) -> str:
        return f"GroupNorm({self.num_groups}, {self.num_channels})"


class ReLU(Module):
    """Rectified linear unit."""

    def __init__(self) -> None:
        super().__init__()
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        mask = _require_cache(self._mask, self)
        return grad_output * mask


class ReLU6(Module):
    """ReLU clipped at 6 — the activation used throughout MobileNet V2."""

    def __init__(self) -> None:
        super().__init__()
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = (x > 0) & (x < 6.0)
        return np.clip(x, 0.0, 6.0)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        mask = _require_cache(self._mask, self)
        return grad_output * mask


class LeakyReLU(Module):
    """Leaky ReLU with configurable negative slope."""

    def __init__(self, negative_slope: float = 0.01) -> None:
        super().__init__()
        self.negative_slope = float(negative_slope)
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, self.negative_slope * x)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        mask = _require_cache(self._mask, self)
        return np.where(mask, grad_output, self.negative_slope * grad_output)


class Tanh(Module):
    """Hyperbolic tangent."""

    def __init__(self) -> None:
        super().__init__()
        self._output: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._output = np.tanh(x)
        return self._output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        out = _require_cache(self._output, self)
        return grad_output * (1.0 - out * out)


class Sigmoid(Module):
    """Logistic sigmoid."""

    def __init__(self) -> None:
        super().__init__()
        self._output: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._output = 1.0 / (1.0 + np.exp(-x))
        return self._output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        out = _require_cache(self._output, self)
        return grad_output * out * (1.0 - out)


class MaxPool2d(Module):
    """Max pooling with square kernel and stride."""

    def __init__(self, kernel_size: int, *, stride: Optional[int] = None,
                 padding: int = 0) -> None:
        super().__init__()
        if kernel_size <= 0:
            raise ConfigurationError(f"kernel_size must be positive, got {kernel_size}")
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size
        self.padding = padding
        self._cache = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        k = self.kernel_size
        windows = im2col_windows(x, (k, k), self.stride, self.padding)
        n, c, _, _, oh, ow = windows.shape
        flat = windows.reshape(n, c, k * k, oh, ow)
        argmax = flat.argmax(axis=2)
        out = np.take_along_axis(flat, argmax[:, :, None], axis=2)[:, :, 0]
        self._cache = (argmax, x.shape, (n, c, oh, ow))
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        argmax, x_shape, out_shape = _require_cache(self._cache, self)
        n, c, oh, ow = out_shape
        k = self.kernel_size
        grad_flat = np.zeros((n, c, k * k, oh, ow), dtype=grad_output.dtype)
        np.put_along_axis(grad_flat, argmax[:, :, None], grad_output[:, :, None], axis=2)
        grad_windows = grad_flat.reshape(n, c, k, k, oh, ow)
        return col2im_windows(grad_windows, x_shape, (k, k), self.stride, self.padding)

    def __repr__(self) -> str:
        return f"MaxPool2d(k={self.kernel_size}, s={self.stride})"


class AvgPool2d(Module):
    """Average pooling with square kernel and stride."""

    def __init__(self, kernel_size: int, *, stride: Optional[int] = None,
                 padding: int = 0) -> None:
        super().__init__()
        if kernel_size <= 0:
            raise ConfigurationError(f"kernel_size must be positive, got {kernel_size}")
        self.kernel_size = kernel_size
        self.stride = stride if stride is not None else kernel_size
        self.padding = padding
        self._cache = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        k = self.kernel_size
        windows = im2col_windows(x, (k, k), self.stride, self.padding)
        self._cache = x.shape
        return windows.mean(axis=(2, 3))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        x_shape = _require_cache(self._cache, self)
        k = self.kernel_size
        per_cell = grad_output / (k * k)
        grad_windows = np.broadcast_to(
            per_cell[:, :, None, None], per_cell.shape[:2] + (k, k) + per_cell.shape[2:]
        )
        return col2im_windows(
            np.ascontiguousarray(grad_windows), x_shape, (k, k), self.stride, self.padding
        )

    def __repr__(self) -> str:
        return f"AvgPool2d(k={self.kernel_size}, s={self.stride})"


class GlobalAvgPool2d(Module):
    """Average over all spatial positions: ``(N, C, H, W) -> (N, C)``."""

    def __init__(self) -> None:
        super().__init__()
        self._input_shape = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4:
            raise ShapeError(f"expected (N, C, H, W), got {x.shape}")
        self._input_shape = x.shape
        return x.mean(axis=(2, 3))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        shape = _require_cache(self._input_shape, self)
        n, c, h, w = shape
        grad = grad_output[:, :, None, None] / (h * w)
        return np.broadcast_to(grad, shape).copy()


class Flatten(Module):
    """Reshape ``(N, ...)`` to ``(N, prod(...))``."""

    def __init__(self) -> None:
        super().__init__()
        self._input_shape = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._input_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        shape = _require_cache(self._input_shape, self)
        return grad_output.reshape(shape)


class Dropout(Module):
    """Inverted dropout: active in training mode, identity in eval mode."""

    def __init__(self, p: float = 0.5, *, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ConfigurationError(f"dropout probability must be in [0, 1), got {p}")
        self.p = float(p)
        self._rng = rng if rng is not None else np.random.default_rng(0)
        self._mask: Optional[np.ndarray] = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.training or self.p == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.p
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_output
        return grad_output * self._mask

    def __repr__(self) -> str:
        return f"Dropout(p={self.p})"
