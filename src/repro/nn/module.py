"""Module and parameter abstractions for the numpy NN substrate.

The substrate is deliberately layer-based rather than tape-based: every
:class:`Module` implements an explicit ``forward`` that caches whatever its
``backward`` needs, and ``backward`` receives the gradient of the loss with
respect to the module output and returns the gradient with respect to the
module input, accumulating parameter gradients along the way. This keeps the
computation deterministic and easy to verify with numerical gradient checks
(see :mod:`repro.nn.gradcheck`).

Modules register their parameters, buffers and submodules in insertion order,
which gives every model a stable, documented parameter ordering -- the
property the federated-learning layer relies on when it flattens a model into
a single vector for upload/aggregation (:mod:`repro.nn.serialization`).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from ..common.errors import ShapeError

__all__ = ["Parameter", "Module", "Sequential"]


class Parameter:
    """A trainable tensor with an accumulated gradient.

    Attributes
    ----------
    data:
        The parameter value, a ``float64`` ndarray.
    grad:
        The accumulated gradient, same shape as ``data``. Reset with
        :meth:`zero_grad`.
    """

    __slots__ = ("data", "grad")

    def __init__(self, data: np.ndarray) -> None:
        self.data = np.asarray(data, dtype=np.float64)
        self.grad = np.zeros_like(self.data)

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def size(self) -> int:
        return int(self.data.size)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient to zero in place."""
        self.grad.fill(0.0)

    def __repr__(self) -> str:
        return f"Parameter(shape={self.data.shape})"


class Module:
    """Base class for all layers and models.

    Subclasses assign :class:`Parameter`, buffer (via :meth:`register_buffer`)
    and :class:`Module` attributes in ``__init__``; assignment order defines
    traversal order. They then implement :meth:`forward` and
    :meth:`backward`.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_buffers", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "training", True)

    # -- registration ------------------------------------------------------

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        else:
            # Re-assigning a registered name with a non-registrable value
            # (e.g. ``self.weight = None``) removes the registration.
            self._parameters.pop(name, None)
            self._modules.pop(name, None)
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register a non-trainable tensor that is part of module state.

        Buffers (e.g. batch-norm running statistics) are saved/loaded with
        the model and, by default, travel with the flattened parameter
        vector used for federated aggregation.
        """
        array = np.asarray(value, dtype=np.float64)
        self._buffers[name] = array
        object.__setattr__(self, name, array)

    def set_buffer(self, name: str, value: np.ndarray) -> None:
        """Overwrite a previously registered buffer, keeping its shape."""
        if name not in self._buffers:
            raise KeyError(f"no buffer named {name!r} on {type(self).__name__}")
        current = self._buffers[name]
        array = np.asarray(value, dtype=np.float64)
        if array.shape != current.shape:
            raise ShapeError(
                f"buffer {name!r} has shape {current.shape}, got {array.shape}"
            )
        self._buffers[name] = array
        object.__setattr__(self, name, array)

    # -- traversal ---------------------------------------------------------

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(dotted_name, parameter)`` pairs in registration order."""
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for child_name, child in self._modules.items():
            yield from child.named_parameters(prefix=f"{prefix}{child_name}.")

    def parameters(self) -> List[Parameter]:
        """All parameters of this module and its submodules, in order."""
        return [param for _, param in self.named_parameters()]

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, np.ndarray]]:
        """Yield ``(dotted_name, buffer)`` pairs in registration order."""
        for name, buf in self._buffers.items():
            yield (f"{prefix}{name}", buf)
        for child_name, child in self._modules.items():
            yield from child.named_buffers(prefix=f"{prefix}{child_name}.")

    def modules(self) -> Iterator["Module"]:
        """Yield this module and all descendants, depth-first."""
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def num_parameters(self) -> int:
        """Total number of scalar trainable parameters."""
        return sum(param.size for param in self.parameters())

    # -- state dict --------------------------------------------------------

    def state_dict(self) -> Dict[str, np.ndarray]:
        """Copy all parameters and buffers into a flat ``name -> array`` dict."""
        state: Dict[str, np.ndarray] = {}
        for name, param in self.named_parameters():
            state[name] = param.data.copy()
        for name, buf in self.named_buffers():
            state[f"buffer:{name}"] = buf.copy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Load parameters and buffers from :meth:`state_dict` output."""
        for name, param in self.named_parameters():
            if name not in state:
                raise KeyError(f"state dict missing parameter {name!r}")
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != param.data.shape:
                raise ShapeError(
                    f"parameter {name!r} has shape {param.data.shape}, "
                    f"state has {value.shape}"
                )
            param.data[...] = value
        buffer_owners = self._buffer_owners()
        for name, _ in self.named_buffers():
            key = f"buffer:{name}"
            if key not in state:
                raise KeyError(f"state dict missing buffer {name!r}")
            owner, local_name = buffer_owners[name]
            owner.set_buffer(local_name, state[key])

    def _buffer_owners(self, prefix: str = "") -> Dict[str, Tuple["Module", str]]:
        """Map dotted buffer names to their (owning module, local name)."""
        owners: Dict[str, Tuple[Module, str]] = {}
        for name in self._buffers:
            owners[f"{prefix}{name}"] = (self, name)
        for child_name, child in self._modules.items():
            owners.update(child._buffer_owners(prefix=f"{prefix}{child_name}."))
        return owners

    # -- training mode -----------------------------------------------------

    def train(self) -> "Module":
        """Put this module and all submodules in training mode."""
        for module in self.modules():
            object.__setattr__(module, "training", True)
        return self

    def eval(self) -> "Module":
        """Put this module and all submodules in inference mode."""
        for module in self.modules():
            object.__setattr__(module, "training", False)
        return self

    def zero_grad(self) -> None:
        """Reset the gradient of every parameter to zero."""
        for param in self.parameters():
            param.zero_grad()

    # -- compute -----------------------------------------------------------

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Compute the module output; must be overridden."""
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Backpropagate ``grad_output``; must be overridden.

        Returns the gradient with respect to the input of the most recent
        :meth:`forward` call and accumulates parameter gradients.
        """
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    def __repr__(self) -> str:
        child_names = ", ".join(self._modules)
        return f"{type(self).__name__}({child_names})"


class Sequential(Module):
    """Compose modules in a fixed order.

    >>> import numpy as np
    >>> from repro.nn.layers import Linear, ReLU
    >>> from repro.common.rng import RngFactory
    >>> rng = RngFactory(0).make("init")
    >>> net = Sequential(Linear(4, 8, rng=rng), ReLU(), Linear(8, 2, rng=rng))
    >>> net(np.zeros((3, 4))).shape
    (3, 2)
    """

    def __init__(self, *layers: Module) -> None:
        super().__init__()
        self._layer_order: List[str] = []
        for index, layer in enumerate(layers):
            name = f"layer{index}"
            setattr(self, name, layer)
            self._layer_order.append(name)

    @property
    def layers(self) -> List[Module]:
        return [getattr(self, name) for name in self._layer_order]

    def append(self, layer: Module) -> "Sequential":
        """Add ``layer`` to the end of the pipeline."""
        name = f"layer{len(self._layer_order)}"
        setattr(self, name, layer)
        self._layer_order.append(name)
        return self

    def __len__(self) -> int:
        return len(self._layer_order)

    def __getitem__(self, index: int) -> Module:
        return self.layers[index]

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer(x)
        return x

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad_output = layer.backward(grad_output)
        return grad_output
