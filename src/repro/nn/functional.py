"""Low-level array routines shared by the convolution and pooling layers.

The central pair is :func:`im2col_windows` / :func:`col2im_windows`, which
convert between an image batch ``(N, C, H, W)`` and its sliding-window view
``(N, C, KH, KW, OH, OW)``. All convolutions and poolings are expressed on
top of this representation, so the (easy to get wrong) stride/padding
arithmetic lives in exactly one place.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
from numpy.lib.stride_tricks import as_strided

from ..common.errors import ShapeError

__all__ = [
    "conv_output_size",
    "im2col_windows",
    "col2im_windows",
    "softmax",
    "log_softmax",
]


def conv_output_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution along one dimension."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ShapeError(
            f"convolution output size is {out} for input={size}, "
            f"kernel={kernel}, stride={stride}, padding={padding}"
        )
    return out


def im2col_windows(x: np.ndarray, kernel: Tuple[int, int], stride: int,
                   padding: int) -> np.ndarray:
    """Extract sliding windows from a batch of images.

    Parameters
    ----------
    x:
        Input of shape ``(N, C, H, W)``.
    kernel:
        ``(KH, KW)`` window size.
    stride, padding:
        Common stride and zero-padding applied to both spatial dims.

    Returns
    -------
    A **contiguous copy** of shape ``(N, C, KH, KW, OH, OW)``. Copying (rather
    than returning the strided view) keeps downstream ``einsum`` calls fast
    and prevents accidental aliasing of the padded buffer.
    """
    if x.ndim != 4:
        raise ShapeError(f"expected (N, C, H, W) input, got shape {x.shape}")
    kh, kw = kernel
    n, c, h, w = x.shape
    out_h = conv_output_size(h, kh, stride, padding)
    out_w = conv_output_size(w, kw, stride, padding)
    if padding > 0:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    sn, sc, sh, sw = x.strides
    windows = as_strided(
        x,
        shape=(n, c, kh, kw, out_h, out_w),
        strides=(sn, sc, sh, sw, sh * stride, sw * stride),
        writeable=False,
    )
    return np.ascontiguousarray(windows)


def col2im_windows(grad_windows: np.ndarray, input_shape: Tuple[int, ...],
                   kernel: Tuple[int, int], stride: int,
                   padding: int) -> np.ndarray:
    """Scatter window gradients back onto the input image (adjoint of im2col).

    ``grad_windows`` has shape ``(N, C, KH, KW, OH, OW)``; the result has
    ``input_shape`` = ``(N, C, H, W)``. Overlapping windows accumulate.
    """
    kh, kw = kernel
    n, c, h, w = input_shape
    _, _, gkh, gkw, out_h, out_w = grad_windows.shape
    if (gkh, gkw) != (kh, kw):
        raise ShapeError(f"kernel mismatch: windows have {(gkh, gkw)}, expected {(kh, kw)}")
    padded = np.zeros((n, c, h + 2 * padding, w + 2 * padding), dtype=grad_windows.dtype)
    for i in range(kh):
        row_end = i + stride * out_h
        for j in range(kw):
            col_end = j + stride * out_w
            padded[:, :, i:row_end:stride, j:col_end:stride] += grad_windows[:, :, i, j]
    if padding > 0:
        return padded[:, :, padding:padding + h, padding:padding + w]
    return padded


def softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    shifted = logits - np.max(logits, axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / np.sum(exp, axis=axis, keepdims=True)


def log_softmax(logits: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable log-softmax."""
    shifted = logits - np.max(logits, axis=axis, keepdims=True)
    return shifted - np.log(np.sum(np.exp(shifted), axis=axis, keepdims=True))
