"""Optimizers.

The federated clients in :mod:`repro.core` run plain mini-batch SGD (the
algorithm the paper analyzes); momentum, Nesterov and weight decay are
provided for the standalone/centralized training paths and ablations.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..common.errors import ConfigurationError
from .module import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "clip_grad_norm"]


class Optimizer:
    """Base optimizer over a list of :class:`Parameter`."""

    def __init__(self, params: List[Parameter], lr: float) -> None:
        if not params:
            raise ConfigurationError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ConfigurationError(f"learning rate must be positive, got {lr}")
        self.params = list(params)
        self.lr = float(lr)

    def set_lr(self, lr: float) -> None:
        """Update the learning rate (used by schedules between steps)."""
        if lr <= 0:
            raise ConfigurationError(f"learning rate must be positive, got {lr}")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay.

    With default arguments this is exactly the update the paper's clients
    perform: ``w <- w - eta * grad``.
    """

    def __init__(self, params: List[Parameter], lr: float, *,
                 momentum: float = 0.0, weight_decay: float = 0.0,
                 nesterov: bool = False) -> None:
        super().__init__(params, lr)
        if momentum < 0:
            raise ConfigurationError(f"momentum must be >= 0, got {momentum}")
        if weight_decay < 0:
            raise ConfigurationError(f"weight_decay must be >= 0, got {weight_decay}")
        if nesterov and momentum == 0:
            raise ConfigurationError("nesterov requires momentum > 0")
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self.nesterov = nesterov
        self._velocity: Optional[List[np.ndarray]] = (
            [np.zeros_like(p.data) for p in self.params] if momentum > 0 else None
        )

    def step(self) -> None:
        """Apply one update using the gradients currently stored on params."""
        for index, param in enumerate(self.params):
            grad = param.grad
            if self.weight_decay > 0:
                grad = grad + self.weight_decay * param.data
            if self._velocity is not None:
                velocity = self._velocity[index]
                velocity *= self.momentum
                velocity += grad
                if self.nesterov:
                    grad = grad + self.momentum * velocity
                else:
                    grad = velocity
            param.data -= self.lr * grad

    def reset_state(self) -> None:
        """Clear momentum buffers (used when a client adopts a new global model)."""
        if self._velocity is not None:
            for velocity in self._velocity:
                velocity.fill(0.0)


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2015) with optional decoupled weight decay.

    Not used by the paper's clients (their analysis is plain SGD) but
    provided for centralized reference training and optimizer ablations.
    """

    def __init__(self, params: List[Parameter], lr: float, *,
                 betas: "tuple[float, float]" = (0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 0.0) -> None:
        super().__init__(params, lr)
        beta1, beta2 = betas
        if not 0.0 <= beta1 < 1.0 or not 0.0 <= beta2 < 1.0:
            raise ConfigurationError(f"betas must be in [0, 1), got {betas}")
        if eps <= 0:
            raise ConfigurationError(f"eps must be positive, got {eps}")
        if weight_decay < 0:
            raise ConfigurationError(
                f"weight_decay must be >= 0, got {weight_decay}"
            )
        self.beta1 = float(beta1)
        self.beta2 = float(beta2)
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self._step_count = 0
        self._first_moment = [np.zeros_like(p.data) for p in self.params]
        self._second_moment = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1 ** self._step_count
        bias2 = 1.0 - self.beta2 ** self._step_count
        for index, param in enumerate(self.params):
            grad = param.grad
            if self.weight_decay > 0:
                # Decoupled (AdamW-style) decay.
                param.data -= self.lr * self.weight_decay * param.data
            m = self._first_moment[index]
            v = self._second_moment[index]
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            param.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def reset_state(self) -> None:
        """Clear moment estimates and the step counter."""
        self._step_count = 0
        for m, v in zip(self._first_moment, self._second_moment):
            m.fill(0.0)
            v.fill(0.0)


def clip_grad_norm(params: List[Parameter], max_norm: float) -> float:
    """Scale gradients in place so their global L2 norm is <= ``max_norm``.

    Returns the pre-clipping norm. A defensive tool for attack experiments
    where tampered global models produce exploding local gradients.
    """
    if max_norm <= 0:
        raise ConfigurationError(f"max_norm must be positive, got {max_norm}")
    total = 0.0
    for param in params:
        total += float(np.sum(param.grad * param.grad))
    norm = float(np.sqrt(total))
    if norm > max_norm:
        scale = max_norm / (norm + 1e-12)
        for param in params:
            param.grad *= scale
    return norm
