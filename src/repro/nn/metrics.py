"""Classification metrics beyond plain accuracy.

Used by the evaluation paths of examples and extension experiments; the
paper reports only top-1 accuracy, but per-class behavior is how one
diagnoses *which* classes an attack destroys.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..common.errors import ShapeError

__all__ = [
    "confusion_matrix",
    "per_class_accuracy",
    "top_k_accuracy",
    "macro_f1",
    "classification_report",
]


def _check(logits: np.ndarray, labels: np.ndarray) -> "tuple[np.ndarray, np.ndarray]":
    logits = np.asarray(logits, dtype=np.float64)
    labels = np.asarray(labels)
    if logits.ndim != 2:
        raise ShapeError(f"logits must be (N, C), got {logits.shape}")
    if labels.shape != (logits.shape[0],):
        raise ShapeError(
            f"labels must be ({logits.shape[0]},), got {labels.shape}"
        )
    return logits, labels


def confusion_matrix(logits: np.ndarray, labels: np.ndarray,
                     num_classes: int) -> np.ndarray:
    """``matrix[true, predicted]`` counts, shape ``(C, C)``."""
    logits, labels = _check(logits, labels)
    predictions = logits.argmax(axis=1)
    matrix = np.zeros((num_classes, num_classes), dtype=np.int64)
    np.add.at(matrix, (labels, predictions), 1)
    return matrix


def per_class_accuracy(logits: np.ndarray, labels: np.ndarray,
                       num_classes: int) -> np.ndarray:
    """Recall per class; ``nan`` for classes absent from ``labels``."""
    matrix = confusion_matrix(logits, labels, num_classes)
    totals = matrix.sum(axis=1).astype(np.float64)
    with np.errstate(invalid="ignore", divide="ignore"):
        return np.where(totals > 0, np.diag(matrix) / totals, np.nan)


def top_k_accuracy(logits: np.ndarray, labels: np.ndarray, k: int) -> float:
    """Fraction of rows whose true label is among the top-``k`` scores."""
    logits, labels = _check(logits, labels)
    if not 1 <= k <= logits.shape[1]:
        raise ShapeError(f"k must be in [1, {logits.shape[1]}], got {k}")
    top_k = np.argsort(logits, axis=1)[:, -k:]
    hits = (top_k == labels[:, None]).any(axis=1)
    return float(hits.mean())


def macro_f1(logits: np.ndarray, labels: np.ndarray,
             num_classes: int) -> float:
    """Unweighted mean of per-class F1 scores (absent classes skipped)."""
    matrix = confusion_matrix(logits, labels, num_classes)
    scores = []
    for cls in range(num_classes):
        true_positive = matrix[cls, cls]
        support = matrix[cls].sum()
        predicted = matrix[:, cls].sum()
        if support == 0:
            continue
        precision = true_positive / predicted if predicted > 0 else 0.0
        recall = true_positive / support
        if precision + recall == 0:
            scores.append(0.0)
        else:
            scores.append(2 * precision * recall / (precision + recall))
    return float(np.mean(scores)) if scores else 0.0


def classification_report(logits: np.ndarray, labels: np.ndarray,
                          num_classes: int) -> Dict[str, object]:
    """Accuracy, macro F1, top-5 (when applicable) and per-class recall."""
    logits, labels = _check(logits, labels)
    report: Dict[str, object] = {
        "accuracy": float((logits.argmax(axis=1) == labels).mean()),
        "macro_f1": macro_f1(logits, labels, num_classes),
        "per_class_accuracy": per_class_accuracy(
            logits, labels, num_classes).tolist(),
    }
    if logits.shape[1] >= 5:
        report["top5_accuracy"] = top_k_accuracy(logits, labels, 5)
    return report
