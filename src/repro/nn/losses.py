"""Loss functions.

Each loss returns ``(value, grad_wrt_input)`` so the caller can start
backpropagation immediately: ``loss, dlogits = cross_entropy(logits, y)``
followed by ``model.backward(dlogits)``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..common.errors import ShapeError
from .functional import log_softmax, softmax

__all__ = ["cross_entropy", "mse_loss", "l2_penalty", "accuracy"]


def cross_entropy(logits: np.ndarray, labels: np.ndarray) -> Tuple[float, np.ndarray]:
    """Mean softmax cross-entropy over a batch.

    Parameters
    ----------
    logits:
        ``(N, C)`` unnormalized class scores.
    labels:
        ``(N,)`` integer class indices in ``[0, C)``.

    Returns
    -------
    ``(loss, grad)`` where ``grad`` has shape ``(N, C)`` and already includes
    the ``1/N`` batch averaging.
    """
    if logits.ndim != 2:
        raise ShapeError(f"logits must be (N, C), got {logits.shape}")
    labels = np.asarray(labels)
    if labels.shape != (logits.shape[0],):
        raise ShapeError(
            f"labels must be ({logits.shape[0]},), got {labels.shape}"
        )
    n = logits.shape[0]
    log_probs = log_softmax(logits, axis=1)
    loss = -float(log_probs[np.arange(n), labels].mean())
    grad = softmax(logits, axis=1)
    grad[np.arange(n), labels] -= 1.0
    return loss, grad / n


def mse_loss(predictions: np.ndarray, targets: np.ndarray) -> Tuple[float, np.ndarray]:
    """Mean squared error ``mean((pred - target)^2)`` and its gradient."""
    predictions = np.asarray(predictions, dtype=np.float64)
    targets = np.asarray(targets, dtype=np.float64)
    if predictions.shape != targets.shape:
        raise ShapeError(
            f"prediction shape {predictions.shape} != target shape {targets.shape}"
        )
    diff = predictions - targets
    loss = float(np.mean(diff * diff))
    grad = 2.0 * diff / diff.size
    return loss, grad


def l2_penalty(vector: np.ndarray, coefficient: float) -> Tuple[float, np.ndarray]:
    """Ridge penalty ``(coefficient / 2) * ||vector||^2`` and its gradient."""
    vector = np.asarray(vector, dtype=np.float64)
    loss = 0.5 * coefficient * float(np.dot(vector.ravel(), vector.ravel()))
    return loss, coefficient * vector


def accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of rows whose argmax matches the integer label."""
    predictions = np.argmax(logits, axis=1)
    return float(np.mean(predictions == np.asarray(labels)))
