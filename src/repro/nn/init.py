"""Weight initializers.

Each initializer takes an explicit :class:`numpy.random.Generator` so that
model construction is reproducible from a root seed (see
:class:`repro.common.rng.RngFactory`).
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

__all__ = ["he_normal", "he_uniform", "xavier_uniform", "zeros", "ones"]


def _fan_in_out(shape: Tuple[int, ...]) -> Tuple[int, int]:
    """Compute (fan_in, fan_out) for dense and convolutional weight shapes.

    Dense weights are ``(in, out)``; convolutional weights are
    ``(out_channels, in_channels, kh, kw)``.
    """
    if len(shape) == 2:
        return shape[0], shape[1]
    if len(shape) == 4:
        receptive = shape[2] * shape[3]
        return shape[1] * receptive, shape[0] * receptive
    raise ValueError(f"unsupported weight shape {shape}")


def he_normal(rng: np.random.Generator, shape: Tuple[int, ...]) -> np.ndarray:
    """Kaiming-normal initialization, suited to ReLU-family activations."""
    fan_in, _ = _fan_in_out(shape)
    std = math.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape)


def he_uniform(rng: np.random.Generator, shape: Tuple[int, ...]) -> np.ndarray:
    """Kaiming-uniform initialization."""
    fan_in, _ = _fan_in_out(shape)
    bound = math.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape)


def xavier_uniform(rng: np.random.Generator, shape: Tuple[int, ...]) -> np.ndarray:
    """Glorot-uniform initialization, suited to linear/tanh layers."""
    fan_in, fan_out = _fan_in_out(shape)
    bound = math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape)


def zeros(shape: Tuple[int, ...]) -> np.ndarray:
    """All-zeros tensor (biases, batch-norm shift)."""
    return np.zeros(shape, dtype=np.float64)


def ones(shape: Tuple[int, ...]) -> np.ndarray:
    """All-ones tensor (batch-norm scale)."""
    return np.ones(shape, dtype=np.float64)
