"""Numerical gradient checking for layers and models.

Used by the test suite to verify every analytic backward pass against a
central finite-difference approximation.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

from .module import Module

__all__ = ["numerical_gradient", "check_layer_gradients", "max_relative_error"]


def numerical_gradient(fn: Callable[[np.ndarray], float], x: np.ndarray,
                       *, epsilon: float = 1e-6) -> np.ndarray:
    """Central finite-difference gradient of scalar ``fn`` at ``x``."""
    x = np.asarray(x, dtype=np.float64)
    grad = np.zeros_like(x)
    flat = x.ravel()
    grad_flat = grad.ravel()
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + epsilon
        plus = fn(x)
        flat[index] = original - epsilon
        minus = fn(x)
        flat[index] = original
        grad_flat[index] = (plus - minus) / (2.0 * epsilon)
    return grad


def max_relative_error(analytic: np.ndarray, numeric: np.ndarray,
                       *, floor: float = 1e-8) -> float:
    """Worst-case elementwise relative error between two gradients."""
    analytic = np.asarray(analytic, dtype=np.float64)
    numeric = np.asarray(numeric, dtype=np.float64)
    denom = np.maximum(np.abs(analytic) + np.abs(numeric), floor)
    return float(np.max(np.abs(analytic - numeric) / denom))


def check_layer_gradients(layer: Module, x: np.ndarray, *,
                          epsilon: float = 1e-6,
                          loss_weights: Optional[np.ndarray] = None
                          ) -> Tuple[float, float]:
    """Compare analytic and numerical gradients of a layer.

    The scalar objective is ``sum(loss_weights * layer(x))`` with fixed random
    weights, which exercises every output element with distinct sensitivities.

    Returns
    -------
    ``(max_input_error, max_param_error)`` — worst relative error of the
    input gradient and of any parameter gradient (0.0 when the layer has no
    parameters).
    """
    x = np.asarray(x, dtype=np.float64)
    probe_rng = np.random.default_rng(1234)
    out = layer(x)
    weights = (
        np.asarray(loss_weights, dtype=np.float64)
        if loss_weights is not None
        else probe_rng.normal(size=out.shape)
    )

    def objective_from_input(x_val: np.ndarray) -> float:
        return float(np.sum(weights * layer(x_val)))

    layer.zero_grad()
    layer(x)
    analytic_input = layer.backward(weights)
    numeric_input = numerical_gradient(objective_from_input, x.copy(), epsilon=epsilon)
    input_error = max_relative_error(analytic_input, numeric_input)

    param_error = 0.0
    for _, param in layer.named_parameters():

        def objective_from_param(p_val: np.ndarray, param=param) -> float:
            saved = param.data.copy()
            param.data[...] = p_val
            value = float(np.sum(weights * layer(x)))
            param.data[...] = saved
            return value

        layer.zero_grad()
        layer(x)
        layer.backward(weights)
        numeric = numerical_gradient(
            objective_from_param, param.data.copy(), epsilon=epsilon
        )
        param_error = max(param_error, max_relative_error(param.grad, numeric))
    return input_error, param_error
