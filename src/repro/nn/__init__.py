"""A from-scratch numpy neural-network substrate.

This package replaces PyTorch for the Fed-MS reproduction: modules with
explicit forward/backward passes, the layers MobileNet V2 needs (standard and
depthwise convolutions, batch norm, ReLU6), losses, SGD, learning-rate
schedules (including the exact Theorem 1 policy) and flat-vector
serialization of model state — the representation every federated
aggregation rule and Byzantine attack in this library operates on.
"""

from . import functional, init
from .gradcheck import check_layer_gradients, max_relative_error, numerical_gradient
from .layers import (
    AvgPool2d,
    BatchNorm1d,
    BatchNorm2d,
    Conv2d,
    DepthwiseConv2d,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    GroupNorm,
    LeakyReLU,
    Linear,
    MaxPool2d,
    ReLU,
    ReLU6,
    Sigmoid,
    Tanh,
)
from .checkpoint import checkpoint_metadata, load_checkpoint, save_checkpoint
from .losses import accuracy, cross_entropy, l2_penalty, mse_loss
from .metrics import (
    classification_report,
    confusion_matrix,
    macro_f1,
    per_class_accuracy,
    top_k_accuracy,
)
from .module import Module, Parameter, Sequential
from .optim import SGD, Adam, Optimizer, clip_grad_norm
from .schedules import (
    ConstantLR,
    CosineAnnealing,
    InverseTimeDecay,
    LinearWarmup,
    LRSchedule,
    StepDecay,
    theorem1_schedule,
)
from .serialization import (
    clone_module_state,
    from_vector,
    gradient_vector,
    to_vector,
    vector_size,
)

__all__ = [
    "functional",
    "init",
    "Module",
    "Parameter",
    "Sequential",
    "Linear",
    "Conv2d",
    "DepthwiseConv2d",
    "BatchNorm1d",
    "BatchNorm2d",
    "GroupNorm",
    "ReLU",
    "ReLU6",
    "LeakyReLU",
    "Tanh",
    "Sigmoid",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "Flatten",
    "Dropout",
    "cross_entropy",
    "mse_loss",
    "l2_penalty",
    "accuracy",
    "Optimizer",
    "SGD",
    "Adam",
    "clip_grad_norm",
    "LRSchedule",
    "ConstantLR",
    "StepDecay",
    "InverseTimeDecay",
    "CosineAnnealing",
    "LinearWarmup",
    "theorem1_schedule",
    "confusion_matrix",
    "per_class_accuracy",
    "top_k_accuracy",
    "macro_f1",
    "classification_report",
    "save_checkpoint",
    "load_checkpoint",
    "checkpoint_metadata",
    "to_vector",
    "from_vector",
    "vector_size",
    "gradient_vector",
    "clone_module_state",
    "numerical_gradient",
    "check_layer_gradients",
    "max_relative_error",
]
