"""Fed-MS: fault-tolerant federated edge learning with multiple Byzantine servers.

A full reproduction of Qi, Ma, Zou, Yuan, Li, Yu — *Fed-MS: Fault Tolerant
Federated Edge Learning with Multiple Byzantine Servers* (ICDCS 2024), built
on a from-scratch numpy substrate:

* :mod:`repro.nn` — neural-network layers, losses, SGD, serialization;
* :mod:`repro.models` — MobileNet V2 and small reference models;
* :mod:`repro.data` — synthetic CIFAR-10, Dirichlet non-IID partitioning;
* :mod:`repro.attacks` — Byzantine parameter-server attacks;
* :mod:`repro.aggregation` — the trimmed-mean filter and robust baselines;
* :mod:`repro.core` — clients, parameter servers, the Fed-MS training loop;
* :mod:`repro.simulation` — edge-network transport with traffic accounting;
* :mod:`repro.theory` — Theorem 1 / Lemma bounds and verifiers;
* :mod:`repro.experiments` — runnable reproductions of every paper figure.

Quickstart::

    from repro import quick_fed_ms_run
    history = quick_fed_ms_run(attack="random", num_rounds=20)
    print(history.final_accuracy)
"""

from . import (
    aggregation,
    attacks,
    common,
    core,
    data,
    models,
    nn,
    simulation,
    theory,
)
from .aggregation import make_rule, trimmed_mean
from .attacks import make_attack
from .core import FedMSConfig, FedMSTrainer, TrainingHistory, make_fedavg_trainer
from .data import dirichlet_partition, make_synthetic_cifar10

__version__ = "1.0.0"

__all__ = [
    "nn",
    "models",
    "data",
    "attacks",
    "aggregation",
    "core",
    "simulation",
    "theory",
    "common",
    "FedMSConfig",
    "FedMSTrainer",
    "TrainingHistory",
    "make_fedavg_trainer",
    "make_attack",
    "make_rule",
    "trimmed_mean",
    "dirichlet_partition",
    "make_synthetic_cifar10",
    "quick_fed_ms_run",
]


def quick_fed_ms_run(*, attack: str = "random", num_rounds: int = 20,
                     num_clients: int = 20, num_servers: int = 5,
                     num_byzantine: int = 1, alpha: float = 10.0,
                     seed: int = 0) -> TrainingHistory:
    """Run a small Fed-MS simulation end to end (see ``examples/quickstart.py``).

    Trains an MLP on the synthetic CIFAR-10 stand-in with ``num_byzantine``
    attacking parameter servers and the beta-trimmed-mean defense.
    """
    from .common import RngFactory
    from .data import ArrayDataset
    from .models import MLP

    rngs = RngFactory(seed)
    train, test = make_synthetic_cifar10(2000, 400, rng=rngs.make("data"))
    flat_train = ArrayDataset(train.features.reshape(len(train), -1),
                              train.labels)
    flat_test = ArrayDataset(test.features.reshape(len(test), -1), test.labels)
    partitions = dirichlet_partition(flat_train, num_clients, alpha=alpha,
                                     rng=rngs.make("partition"))
    config = FedMSConfig(
        num_clients=num_clients,
        num_servers=num_servers,
        num_byzantine=num_byzantine,
        seed=seed,
    )
    with FedMSTrainer(
        config,
        model_factory=lambda rng: MLP(3072, (64,), 10, rng=rng),
        client_datasets=partitions,
        test_dataset=flat_test,
        attack=make_attack(attack) if num_byzantine > 0 else None,
    ) as trainer:
        return trainer.run(num_rounds, eval_every=max(num_rounds // 5, 1))
