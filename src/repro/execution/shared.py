"""Zero-copy shared-memory carriers for model vectors and client datasets.

The process-pool backend must move two kinds of payload between the main
process and its workers every round: the per-client start vectors (main ->
worker) and the trained update vectors (worker -> main). Pickling those
through the executor's queues would re-serialize ``K x D`` floats per round;
instead both live in :mod:`multiprocessing.shared_memory` blocks that are
mapped once and then read/written in place — the queues only carry client
ids and scalar losses.

Client datasets are likewise packed into one shared block at pool start
(:class:`SharedDatasetStore`) so workers index numpy views of the same
physical pages rather than holding pickled copies.
"""

from __future__ import annotations

from multiprocessing import shared_memory
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..common.errors import ConfigurationError
from ..data.datasets import ArrayDataset

__all__ = ["SharedNDArray", "SharedVectorBuffer", "SharedDatasetStore"]


class SharedNDArray:
    """A numpy array backed by a ``SharedMemory`` block owned by this object.

    Created in the main process; forked workers inherit the mapping (and
    thus the live ``array`` view) without re-attaching by name. Only the
    creating process should call :meth:`close`, which unlinks the block.
    """

    def __init__(self, shape: Tuple[int, ...], dtype=np.float64) -> None:
        size = int(np.prod(shape)) * np.dtype(dtype).itemsize
        self._shm = shared_memory.SharedMemory(create=True, size=max(size, 1))
        self.array = np.ndarray(shape, dtype=dtype, buffer=self._shm.buf)
        self.array.fill(0)
        self._closed = False

    @property
    def nbytes(self) -> int:
        return int(self.array.nbytes)

    def close(self) -> None:
        """Release and unlink the block (creator side only)."""
        if self._closed:
            return
        self._closed = True
        self.array = None
        try:
            self._shm.close()
        except BufferError:
            # Some consumer still holds a view (e.g. the executor's initargs
            # tuple); the pages are reclaimed when those references die.
            pass
        try:
            self._shm.unlink()
        except FileNotFoundError:  # already unlinked (e.g. double close)
            pass


class SharedVectorBuffer:
    """Paired ``(num_clients, dim)`` in/out blocks for model vectors.

    ``starts[k]`` carries client ``k``'s start vector into the workers;
    ``results[k]`` carries the trained vector back. Rows are overwritten
    every round, so readers must copy anything they want to keep.
    """

    def __init__(self, num_clients: int, dim: int) -> None:
        if num_clients <= 0 or dim <= 0:
            raise ConfigurationError(
                f"invalid vector buffer shape ({num_clients}, {dim})"
            )
        self._starts = SharedNDArray((num_clients, dim))
        self._results = SharedNDArray((num_clients, dim))

    @property
    def starts(self) -> np.ndarray:
        return self._starts.array

    @property
    def results(self) -> np.ndarray:
        return self._results.array

    @property
    def nbytes(self) -> int:
        return self._starts.nbytes + self._results.nbytes

    def close(self) -> None:
        self._starts.close()
        self._results.close()


class SharedDatasetStore:
    """All client shards packed into one pair of shared blocks.

    Features are concatenated along axis 0 (clients share the trailing
    shape) and labels alongside; :meth:`dataset` returns an
    :class:`~repro.data.datasets.ArrayDataset` whose arrays are zero-copy
    views into the shared pages.
    """

    def __init__(self, datasets: Sequence[ArrayDataset]) -> None:
        if not datasets:
            raise ConfigurationError("cannot share an empty dataset list")
        trailing = datasets[0].features.shape[1:]
        for index, dataset in enumerate(datasets):
            if dataset.features.shape[1:] != trailing:
                raise ConfigurationError(
                    f"client {index} features have trailing shape "
                    f"{dataset.features.shape[1:]}, expected {trailing}"
                )
        lengths = [len(dataset) for dataset in datasets]
        total = sum(lengths)
        self._features = SharedNDArray((total, *trailing), dtype=np.float64)
        self._labels = SharedNDArray((total,), dtype=np.int64)
        self._offsets: List[Tuple[int, int]] = []
        cursor = 0
        for dataset, length in zip(datasets, lengths):
            self._features.array[cursor:cursor + length] = dataset.features
            self._labels.array[cursor:cursor + length] = dataset.labels
            self._offsets.append((cursor, cursor + length))
            cursor += length
        self._views: Optional[List[ArrayDataset]] = None

    @property
    def num_clients(self) -> int:
        return len(self._offsets)

    @property
    def nbytes(self) -> int:
        return self._features.nbytes + self._labels.nbytes

    def dataset(self, client_id: int) -> ArrayDataset:
        return self.datasets()[client_id]

    def datasets(self) -> List[ArrayDataset]:
        """One zero-copy :class:`ArrayDataset` view per client."""
        if self._views is None:
            self._views = [
                ArrayDataset(self._features.array[start:stop],
                             self._labels.array[start:stop])
                for start, stop in self._offsets
            ]
        return self._views

    def close(self) -> None:
        self._views = None
        self._features.close()
        self._labels.close()
