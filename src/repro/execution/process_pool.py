"""Process-pool execution backend with shared-memory payload transport.

Workers are **persistent**: a ``ProcessPoolExecutor`` is created once per
trainer with an initializer that receives (by fork inheritance, never
pickled) the :class:`~repro.execution.spec.WorkerSpec`, the packed
client datasets and the two ``(K, D)`` shared-memory vector buffers. Each
round the main process writes the participating clients' start vectors
into the in-buffer, ships only ``(round_index, [client ids])`` through the
executor queue, and reads the trained vectors back out of the out-buffer —
the ``K x D`` float payloads never cross a pipe.

If a worker dies (OOM kill, segfault, ``os._exit``), the executor raises
``BrokenProcessPool`` instead of hanging; the backend then warns once and
degrades to the serial fallback for the rest of the run. Because every
backend computes bit-identical steps, degradation changes wall-clock only,
never results.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .backend import (
    ExecutionBackend,
    FilterJob,
    SerialBackend,
    TrainJob,
    materialize_stack,
)
from .context import WorkerRuntime
from .shared import SharedDatasetStore, SharedNDArray, SharedVectorBuffer
from .spec import WorkerSpec

__all__ = ["ProcessPoolBackend"]

# Per-process worker state, installed by _init_worker. With the fork start
# method the initargs below are inherited as live objects: the numpy views
# keep pointing at the parent's shared-memory pages.
_RUNTIME: Optional[WorkerRuntime] = None
_STARTS: Optional[np.ndarray] = None
_RESULTS: Optional[np.ndarray] = None
_REFS: Optional[np.ndarray] = None


def _init_worker(spec: WorkerSpec, starts: np.ndarray,
                 results: np.ndarray,
                 references: Optional[np.ndarray] = None) -> None:
    global _RUNTIME, _STARTS, _RESULTS, _REFS
    _RUNTIME = WorkerRuntime(spec)
    _STARTS = starts
    _RESULTS = results
    _REFS = references


def _train_chunk(round_index: int,
                 client_ids: Sequence[int]) -> List[Tuple[int, float]]:
    """Train a batch of clients, vectors travelling via shared memory."""
    assert _RUNTIME is not None and _STARTS is not None \
        and _RESULTS is not None
    losses: List[Tuple[int, float]] = []
    for client_id in client_ids:
        vector, loss = _RUNTIME.train(
            client_id, round_index, np.array(_STARTS[client_id])
        )
        _RESULTS[client_id] = vector
        losses.append((client_id, loss))
    return losses


def _filter_chunk(jobs: Sequence[FilterJob]) -> List[Tuple[int, np.ndarray]]:
    """Filter a batch of clients' received stacks.

    Encoded job payloads cross the executor queue at their compressed size
    (that's the point of upload codecs) and are decoded here against the
    shared reference vector in the ``_REFS`` shared-memory block.
    """
    return [(client_id, spec(materialize_stack(stack, _REFS)))
            for client_id, stack, spec in jobs]


def _chunked(items: Sequence, num_chunks: int) -> List[List]:
    """Split ``items`` into at most ``num_chunks`` contiguous chunks."""
    size = max(1, -(-len(items) // max(1, num_chunks)))
    return [list(items[i:i + size]) for i in range(0, len(items), size)]


class ProcessPoolBackend(ExecutionBackend):
    """Persistent ``multiprocessing`` workers over shared-memory buffers."""

    name = "process"

    def __init__(self, spec: WorkerSpec, *, num_workers: int,
                 fallback: SerialBackend) -> None:
        self.spec = spec
        self.num_workers = num_workers
        self._fallback = fallback
        self._degraded = False
        self._store = SharedDatasetStore(spec.datasets)
        self._buffers = SharedVectorBuffer(spec.num_clients, spec.model_dim)
        # Codec reference: one (D,) shared vector the main process
        # refreshes before each filter fan-out and workers read in place.
        # Allocated up front — workers inherit mappings at fork time, and
        # the executor may fork lazily on first submit.
        self._refs: Optional[SharedNDArray] = (
            SharedNDArray((spec.model_dim,))
            if spec.codec_references else None
        )
        worker_spec = dataclasses.replace(
            spec, datasets=self._store.datasets()
        )
        self._executor: Optional[ProcessPoolExecutor] = ProcessPoolExecutor(
            max_workers=num_workers,
            mp_context=multiprocessing.get_context("fork"),
            initializer=_init_worker,
            initargs=(worker_spec, self._buffers.starts,
                      self._buffers.results,
                      None if self._refs is None else self._refs.array),
        )

    @property
    def degraded(self) -> bool:
        """True once the pool broke and execution fell back to serial."""
        return self._degraded

    @property
    def shared_nbytes(self) -> int:
        """Bytes of shared memory backing datasets and vector buffers."""
        refs = 0 if self._refs is None else self._refs.nbytes
        return self._store.nbytes + self._buffers.nbytes + refs

    def _degrade(self, error: BaseException) -> None:
        self._degraded = True
        warnings.warn(
            f"process pool broken ({error!r}); degrading to serial "
            "execution for the rest of the run",
            RuntimeWarning,
        )
        if self._executor is not None:
            self._executor.shutdown(wait=False)
            self._executor = None

    def train_clients(self, round_index: int, jobs: Sequence[TrainJob]
                      ) -> Dict[int, Tuple[np.ndarray, float]]:
        if self._degraded or not jobs:
            return self._fallback.train_clients(round_index, jobs)
        starts = self._buffers.starts
        for client_id, start_vector in jobs:
            starts[client_id] = start_vector
        chunks = _chunked([client_id for client_id, _ in jobs],
                          self.num_workers)
        try:
            assert self._executor is not None
            futures = [
                self._executor.submit(_train_chunk, round_index, chunk)
                for chunk in chunks
            ]
            losses: Dict[int, float] = {}
            for future in futures:
                for client_id, loss in future.result():
                    losses[client_id] = loss
        except (BrokenProcessPool, OSError, RuntimeError) as error:
            self._degrade(error)
            return self._fallback.train_clients(round_index, jobs)
        results = self._buffers.results
        return {
            client_id: (np.array(results[client_id]), losses[client_id])
            for client_id, _ in jobs
        }

    def filter_clients(self, jobs: Sequence[FilterJob], *,
                       references: Optional[np.ndarray] = None
                       ) -> Dict[int, np.ndarray]:
        if self._degraded or not jobs:
            return self._fallback.filter_clients(jobs, references=references)
        if references is not None:
            if self._refs is None:
                # No shared block was allocated for references (the spec
                # declared no codecs): decode in the main process and ship
                # dense stacks instead.
                jobs = [(client_id, materialize_stack(stack, references),
                         spec) for client_id, stack, spec in jobs]
            else:
                self._refs.array[:] = references
        try:
            assert self._executor is not None
            futures = [
                self._executor.submit(_filter_chunk, chunk)
                for chunk in _chunked(list(jobs), self.num_workers)
            ]
            filtered: Dict[int, np.ndarray] = {}
            for future in futures:
                for client_id, vector in future.result():
                    filtered[client_id] = vector
            return filtered
        except (BrokenProcessPool, OSError, RuntimeError) as error:
            self._degrade(error)
            return self._fallback.filter_clients(jobs, references=references)

    def close(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        self._buffers.close()
        self._store.close()
        if self._refs is not None:
            self._refs.close()
