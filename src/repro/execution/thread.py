"""Thread-pool execution backend.

Cheap smoke scaling: worker threads share the process address space, so
datasets need no copies and jobs need no pickling. Each thread checks a
:class:`~repro.execution.context.WorkerRuntime` (its own model replica +
optimizer) out of a pool for the duration of one job, which keeps the
mutable forward/backward state of a model confined to one thread at a
time. Real speedups are bounded by the GIL, but numpy releases it inside
the dense kernels, so medium-sized models still overlap.
"""

from __future__ import annotations

import queue
import warnings
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from .backend import (
    ExecutionBackend,
    FilterJob,
    SerialBackend,
    TrainJob,
    materialize_stack,
)
from .context import WorkerRuntime
from .spec import WorkerSpec

__all__ = ["ThreadBackend"]


class ThreadBackend(ExecutionBackend):
    """A persistent thread pool over per-thread model replicas."""

    name = "thread"

    def __init__(self, spec: WorkerSpec, *, num_workers: int,
                 fallback: SerialBackend) -> None:
        self.spec = spec
        self.num_workers = num_workers
        self._fallback = fallback
        self._degraded = False
        self._runtimes: "queue.Queue[WorkerRuntime]" = queue.Queue()
        for _ in range(num_workers):
            self._runtimes.put(WorkerRuntime(spec))
        self._executor = ThreadPoolExecutor(
            max_workers=num_workers, thread_name_prefix="repro-exec"
        )

    @property
    def degraded(self) -> bool:
        """True once the pool failed and execution fell back to serial."""
        return self._degraded

    def _degrade(self, error: BaseException) -> None:
        self._degraded = True
        warnings.warn(
            f"thread backend failed ({error!r}); degrading to serial "
            "execution for the rest of the run",
            RuntimeWarning,
        )

    def _train_one(self, round_index: int, job: TrainJob
                   ) -> Tuple[int, np.ndarray, float]:
        client_id, start_vector = job
        runtime = self._runtimes.get()
        try:
            vector, loss = runtime.train(client_id, round_index, start_vector)
        finally:
            self._runtimes.put(runtime)
        return client_id, vector, loss

    def train_clients(self, round_index: int, jobs: Sequence[TrainJob]
                      ) -> Dict[int, Tuple[np.ndarray, float]]:
        if self._degraded:
            return self._fallback.train_clients(round_index, jobs)
        try:
            futures = [
                self._executor.submit(self._train_one, round_index, job)
                for job in jobs
            ]
            results = {}
            for future in futures:
                client_id, vector, loss = future.result()
                results[client_id] = (vector, loss)
            return results
        except RuntimeError as error:  # e.g. pool shut down mid-run
            self._degrade(error)
            return self._fallback.train_clients(round_index, jobs)

    @staticmethod
    def _filter_one(spec, stack, references) -> np.ndarray:
        return spec(materialize_stack(stack, references))

    def filter_clients(self, jobs: Sequence[FilterJob], *,
                       references: Optional[np.ndarray] = None
                       ) -> Dict[int, np.ndarray]:
        if self._degraded:
            return self._fallback.filter_clients(jobs, references=references)
        try:
            futures = {
                client_id: self._executor.submit(
                    self._filter_one, spec, stack, references
                )
                for client_id, stack, spec in jobs
            }
            return {client_id: future.result()
                    for client_id, future in futures.items()}
        except RuntimeError as error:
            self._degrade(error)
            return self._fallback.filter_clients(jobs, references=references)

    def close(self) -> None:
        self._executor.shutdown(wait=True)
