"""Declarative descriptions of the per-client work a backend executes.

:class:`WorkerSpec` is everything a worker needs to rebuild a client-side
training step away from the main process: the hyper-parameters, the model
factory, the learning-rate schedule and the per-client datasets. It is
handed to process workers by fork inheritance (never pickled), so factories
and schedules may be arbitrary callables, including lambdas.

:class:`FilterSpec` is the picklable description of the Def() filter for
the rules the trainer can name — the beta-trimmed mean (by ratio or by the
degraded-quorum trim count) and the plain mean. Custom filter closures have
no spec and are applied in the main process instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from ..aggregation import mean, trimmed_mean, trimmed_mean_by_count
from ..common.errors import ConfigurationError

__all__ = ["FilterSpec", "WorkerSpec"]


@dataclass(frozen=True)
class FilterSpec:
    """A named, picklable aggregation rule for backend-side filtering.

    ``kind`` is one of ``"mean"``, ``"trim_ratio"`` (value = beta) or
    ``"trim_count"`` (value = the per-tail trim count of a degraded
    quorum).
    """

    kind: str
    value: float = 0.0

    _KINDS = ("mean", "trim_ratio", "trim_count")

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise ConfigurationError(
                f"unknown filter spec kind {self.kind!r}; "
                f"expected one of {self._KINDS}"
            )

    def __call__(self, stack: np.ndarray) -> np.ndarray:
        if self.kind == "mean":
            return mean(stack)
        if self.kind == "trim_ratio":
            return trimmed_mean(stack, self.value)
        return trimmed_mean_by_count(stack, int(self.value))


@dataclass
class WorkerSpec:
    """Everything needed to run one client's local-training step anywhere.

    Parameters mirror the slice of :class:`~repro.core.config.FedMSConfig`
    and trainer arguments that affect local training. ``datasets`` holds
    one dataset per client id (index = client id); process backends swap
    these for shared-memory views before forking workers.
    """

    seed: int
    local_steps: int
    batch_size: int
    learning_rate: float
    weight_decay: float
    include_buffers: bool
    flatten_inputs: bool
    model_dim: int
    num_clients: int
    model_factory: Callable[[np.random.Generator], object]
    datasets: Sequence[object] = field(default_factory=list)
    lr_schedule: Optional[object] = None
    #: True when upload codecs are active: the process backend then
    #: allocates a shared-memory reference vector (``model_dim`` floats)
    #: that workers decode encoded filter payloads against.
    codec_references: bool = False

    def __post_init__(self) -> None:
        if self.num_clients <= 0:
            raise ConfigurationError(
                f"num_clients must be positive, got {self.num_clients}"
            )
        if self.model_dim <= 0:
            raise ConfigurationError(
                f"model_dim must be positive, got {self.model_dim}"
            )
        if len(self.datasets) != self.num_clients:
            raise ConfigurationError(
                f"{len(self.datasets)} datasets for {self.num_clients} clients"
            )
