"""The execution-backend interface, the serial reference, and the factory.

A backend executes the two embarrassingly-parallel stages of a Fed-MS
round on behalf of the trainer:

* :meth:`ExecutionBackend.train_clients` — each participating client's
  ``E`` local SGD steps from a given start vector;
* :meth:`ExecutionBackend.filter_clients` — each client's Def() filter
  over the stack of global models it received, for rules that have a
  picklable :class:`~repro.execution.spec.FilterSpec`.

The contract is strict determinism: for a fixed seed, every backend must
return bit-identical vectors and losses for the same jobs. Training starts
from the supplied start vector with fresh optimizer state, and the batch
stream of round ``t`` is derived from ``(seed, client_id, t)`` — never from
cursor state owned by a particular process.
"""

from __future__ import annotations

import multiprocessing
import os
import warnings
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..common.errors import ConfigurationError
from .spec import FilterSpec, WorkerSpec

__all__ = [
    "EXECUTION_BACKENDS",
    "TrainJob",
    "FilterJob",
    "ExecutionBackend",
    "SerialBackend",
    "make_backend",
    "materialize_stack",
    "resolve_num_workers",
]

#: Names accepted by :func:`make_backend` and ``FedMSConfig.execution_backend``.
EXECUTION_BACKENDS = ("serial", "thread", "process")

#: ``(client_id, start_vector)`` — one client's local-training input.
TrainJob = Tuple[int, np.ndarray]
#: ``(client_id, received_models, filter_spec)``. ``received_models`` is
#: either a dense ``(q, D)`` stack, or — when upload codecs are active — a
#: list mixing dense rows and encoded updates; see
#: :func:`materialize_stack`.
FilterJob = Tuple[int, object, FilterSpec]


def materialize_stack(payload: object,
                      references: Optional[np.ndarray] = None) -> np.ndarray:
    """Dense ``(q, D)`` stack from a filter-job payload.

    Encoded entries are self-describing (``encoded.decode()`` needs no
    codec state — duck-typed here, so this package never imports
    ``repro.core``) and carry the *delta* against the shared codec
    reference, which the caller supplies as ``references`` (the process
    backend reads it from shared memory instead).
    """
    if isinstance(payload, np.ndarray):
        return payload
    rows: List[np.ndarray] = []
    for entry in payload:
        if isinstance(entry, np.ndarray):
            rows.append(entry)
            continue
        row = entry.decode()
        if references is not None:
            row = references + row
        rows.append(row)
    return np.stack(rows)


class ExecutionBackend:
    """Executes per-client round steps; see the module docstring."""

    name: str = ""

    def train_clients(self, round_index: int, jobs: Sequence[TrainJob]
                      ) -> Dict[int, Tuple[np.ndarray, float]]:
        """Run local training for every job; returns ``{id: (vector, loss)}``."""
        raise NotImplementedError

    def filter_clients(self, jobs: Sequence[FilterJob], *,
                       references: Optional[np.ndarray] = None
                       ) -> Dict[int, np.ndarray]:
        """Apply each job's filter spec to its stack; ``{id: filtered}``.

        ``references`` is the shared ``(D,)`` codec reference vector for
        decoding encoded job payloads (``None`` when codecs are off).
        """
        raise NotImplementedError

    def close(self) -> None:
        """Release pools and shared-memory blocks (idempotent)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SerialBackend(ExecutionBackend):
    """The historical in-process loop, now behind the backend interface.

    Trains directly on the trainer's own :class:`~repro.core.client.Client`
    objects (no replicas, no copies) — the reference implementation the
    parallel backends must match bit for bit.
    """

    name = "serial"

    def __init__(self, clients: Sequence[object], spec: WorkerSpec) -> None:
        self._clients = {client.client_id: client for client in clients}
        self._spec = spec

    def train_clients(self, round_index: int, jobs: Sequence[TrainJob]
                      ) -> Dict[int, Tuple[np.ndarray, float]]:
        results: Dict[int, Tuple[np.ndarray, float]] = {}
        for client_id, start_vector in jobs:
            client = self._clients[client_id]
            client.set_model_vector(start_vector)
            client.optimizer.reset_state()
            vector = client.local_train(round_index, self._spec.local_steps)
            results[client_id] = (vector, float(client.last_train_loss))
        return results

    def filter_clients(self, jobs: Sequence[FilterJob], *,
                       references: Optional[np.ndarray] = None
                       ) -> Dict[int, np.ndarray]:
        return {client_id: spec(materialize_stack(stack, references))
                for client_id, stack, spec in jobs}


def resolve_num_workers(requested: int, *, max_useful: int) -> int:
    """Worker count for a pool backend.

    ``requested = 0`` means auto: every available core, capped at the number
    of parallel jobs a round can actually offer.
    """
    if requested < 0:
        raise ConfigurationError(
            f"num_workers must be >= 0, got {requested}"
        )
    available = os.cpu_count() or 1
    workers = requested if requested > 0 else available
    return max(1, min(workers, max_useful))


def make_backend(name: str, *, clients: Sequence[object], spec: WorkerSpec,
                 num_workers: int = 0) -> ExecutionBackend:
    """Build the execution backend ``name`` for one trainer.

    ``clients`` are the trainer's own client objects — the serial backend
    trains on them directly, and pool backends keep a serial fallback over
    them for graceful degradation when workers die.
    """
    if name not in EXECUTION_BACKENDS:
        raise ConfigurationError(
            f"unknown execution backend {name!r}; "
            f"expected one of {EXECUTION_BACKENDS}"
        )
    serial = SerialBackend(clients, spec)
    if name == "serial":
        return serial
    workers = resolve_num_workers(num_workers, max_useful=spec.num_clients)
    if name == "thread":
        from .thread import ThreadBackend

        return ThreadBackend(spec, num_workers=workers, fallback=serial)
    if multiprocessing.get_start_method() != "fork":
        # Worker state (model factories, schedules, shared-memory views) is
        # handed over by fork inheritance; without fork the spec would have
        # to survive pickling, which lambda factories do not.
        warnings.warn(
            "ProcessPoolBackend requires the 'fork' start method "
            f"(got {multiprocessing.get_start_method()!r}); "
            "falling back to serial execution",
            RuntimeWarning,
        )
        return serial
    from .process_pool import ProcessPoolBackend

    return ProcessPoolBackend(spec, num_workers=workers, fallback=serial)
