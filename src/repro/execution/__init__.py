"""Pluggable execution backends for the Fed-MS round loop.

The per-round client work — local SGD in ``_phase_train`` and the Def()
filter in ``_phase_filter`` — is embarrassingly parallel across clients.
This package turns that per-client step into an
:class:`~repro.execution.backend.ExecutionBackend` with three
implementations:

* :class:`SerialBackend` — the historical single-process loop (default);
* :class:`ThreadBackend` — a thread pool over per-thread model replicas,
  cheap smoke-scaling (numpy releases the GIL inside the matmuls);
* :class:`ProcessPoolBackend` — persistent ``multiprocessing`` workers fed
  through :mod:`multiprocessing.shared_memory` zero-copy buffers.

All backends are **bit-identical** for the same seed: the per-client batch
stream of round ``t`` is re-derived from ``(seed, client_id, t)`` rather
than carried as cursor state, so it does not matter which process runs the
step. See ``docs/execution.md`` for the determinism contract and the
shared-memory layout.
"""

from .backend import (
    EXECUTION_BACKENDS,
    ExecutionBackend,
    FilterJob,
    SerialBackend,
    TrainJob,
    make_backend,
    materialize_stack,
    resolve_num_workers,
)
from .process_pool import ProcessPoolBackend
from .shared import SharedDatasetStore, SharedNDArray, SharedVectorBuffer
from .spec import FilterSpec, WorkerSpec
from .thread import ThreadBackend

__all__ = [
    "EXECUTION_BACKENDS",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessPoolBackend",
    "make_backend",
    "materialize_stack",
    "resolve_num_workers",
    "TrainJob",
    "FilterJob",
    "FilterSpec",
    "WorkerSpec",
    "SharedNDArray",
    "SharedDatasetStore",
    "SharedVectorBuffer",
]
