"""The per-worker runtime that executes client steps.

A :class:`WorkerRuntime` owns one model replica plus lazily-built
:class:`~repro.core.client.Client` shells (all sharing that replica) for
the clients it is asked to run. Because the per-round batch stream is
re-derived from ``(seed, client_id, round_index)`` inside
``Client.local_train`` and plain SGD carries no optimizer state across
rounds, the step is a pure function of the start vector — any runtime in
any process produces bit-identical results.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..common.rng import stream_seed
from .spec import WorkerSpec

__all__ = ["WorkerRuntime"]


class WorkerRuntime:
    """Executes train/filter steps for any client named in its spec."""

    def __init__(self, spec: WorkerSpec) -> None:
        self.spec = spec
        # The replica's initial weights are irrelevant: every step starts
        # by loading the caller-provided start vector.
        self._model = spec.model_factory(
            np.random.default_rng(stream_seed(spec.seed, "execution/replica"))
        )
        self._clients: Dict[int, object] = {}

    def _client(self, client_id: int):
        client = self._clients.get(client_id)
        if client is None:
            # Imported lazily: repro.core imports repro.execution at module
            # load, so a top-level import here would be circular.
            from ..core.client import Client

            spec = self.spec
            client = Client(
                client_id,
                self._model,
                spec.datasets[client_id],
                batch_size=spec.batch_size,
                rng=np.random.default_rng(
                    stream_seed(spec.seed, f"execution/loader/{client_id}")
                ),
                lr_schedule=spec.lr_schedule,
                learning_rate=spec.learning_rate,
                weight_decay=spec.weight_decay,
                include_buffers=spec.include_buffers,
                flatten_inputs=spec.flatten_inputs,
                batch_seed=spec.seed,
            )
            self._clients[client_id] = client
        return client

    def train(self, client_id: int, round_index: int,
              start_vector: np.ndarray) -> Tuple[np.ndarray, float]:
        """One client's local training from ``start_vector``.

        Returns ``(trained_vector, mean_train_loss)``.
        """
        client = self._client(client_id)
        client.set_model_vector(start_vector)
        client.optimizer.reset_state()
        vector = client.local_train(round_index, self.spec.local_steps)
        return vector, float(client.last_train_loss)
