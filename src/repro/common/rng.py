"""Deterministic random-number management for simulations.

Every stochastic component in the library (mini-batch sampling, weight
initialization, sparse PS selection, Byzantine noise, ...) draws from its own
:class:`numpy.random.Generator`. The generators are derived from a single
root seed through named streams, so that

* an entire experiment is reproducible from one integer seed, and
* adding a new consumer of randomness does not perturb the streams of
  existing consumers (unlike sharing one global generator).
"""

from __future__ import annotations

import hashlib
from typing import Iterator

import numpy as np

__all__ = ["RngFactory", "stream_seed"]

_UINT32_MASK = 0xFFFFFFFF


def stream_seed(root_seed: int, name: str) -> int:
    """Derive a deterministic child seed from ``root_seed`` and a stream name.

    The derivation hashes ``(root_seed, name)`` with SHA-256 so that distinct
    names yield statistically independent seeds and the mapping is stable
    across Python/numpy versions (unlike :func:`hash`, which is salted).
    """
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


class RngFactory:
    """Factory producing named, independent random generators.

    Parameters
    ----------
    root_seed:
        The experiment-level seed. Two factories with the same root seed
        produce identical streams for identical names.

    Examples
    --------
    >>> rngs = RngFactory(7)
    >>> a = rngs.make("client/0/batches")
    >>> b = rngs.make("client/1/batches")
    >>> a is not b
    True
    >>> float(a.random()) != float(b.random())
    True
    """

    def __init__(self, root_seed: int = 0) -> None:
        if not isinstance(root_seed, (int, np.integer)):
            raise TypeError(f"root_seed must be an int, got {type(root_seed).__name__}")
        self._root_seed = int(root_seed)

    @property
    def root_seed(self) -> int:
        """The experiment-level seed this factory derives all streams from."""
        return self._root_seed

    def make(self, name: str) -> np.random.Generator:
        """Create a fresh generator for the stream called ``name``.

        Calling ``make`` twice with the same name returns two generators in
        the same initial state; callers should create each stream once and
        keep it.
        """
        return np.random.default_rng(stream_seed(self._root_seed, name))

    def spawn(self, name: str) -> "RngFactory":
        """Create a child factory whose streams are namespaced under ``name``.

        Useful for handing a component (e.g. a client) its own factory
        without it being able to collide with sibling components.
        """
        return RngFactory(stream_seed(self._root_seed, f"spawn/{name}"))

    def make_many(self, prefix: str, count: int) -> Iterator[np.random.Generator]:
        """Yield ``count`` independent generators named ``prefix/0..count-1``."""
        for index in range(count):
            yield self.make(f"{prefix}/{index}")

    def __repr__(self) -> str:
        return f"RngFactory(root_seed={self._root_seed})"
