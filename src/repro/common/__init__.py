"""Shared infrastructure: errors, deterministic RNG streams, validation."""

from .errors import (
    ConfigurationError,
    ConvergenceError,
    ProtocolError,
    ReproError,
    ShapeError,
)
from .rng import RngFactory, stream_seed
from .validation import (
    check_fraction,
    check_nonnegative_int,
    check_positive_int,
    require,
)

__all__ = [
    "ReproError",
    "ConfigurationError",
    "ShapeError",
    "ProtocolError",
    "ConvergenceError",
    "RngFactory",
    "stream_seed",
    "require",
    "check_positive_int",
    "check_nonnegative_int",
    "check_fraction",
]
