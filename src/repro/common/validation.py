"""Small validation helpers used across configuration dataclasses."""

from __future__ import annotations

from typing import Optional

from .errors import ConfigurationError

__all__ = ["require", "check_positive_int", "check_nonnegative_int", "check_fraction"]


def require(condition: bool, message: str) -> None:
    """Raise :class:`ConfigurationError` with ``message`` unless ``condition``."""
    if not condition:
        raise ConfigurationError(message)


def check_positive_int(value: int, name: str) -> int:
    """Validate that ``value`` is an ``int`` strictly greater than zero."""
    if not isinstance(value, int) or isinstance(value, bool):
        raise ConfigurationError(f"{name} must be an int, got {value!r}")
    if value <= 0:
        raise ConfigurationError(f"{name} must be positive, got {value}")
    return value


def check_nonnegative_int(value: int, name: str) -> int:
    """Validate that ``value`` is an ``int`` greater than or equal to zero."""
    if not isinstance(value, int) or isinstance(value, bool):
        raise ConfigurationError(f"{name} must be an int, got {value!r}")
    if value < 0:
        raise ConfigurationError(f"{name} must be non-negative, got {value}")
    return value


def check_fraction(value: float, name: str, *, upper: float = 1.0,
                   inclusive_upper: Optional[bool] = True) -> float:
    """Validate that ``value`` lies in ``[0, upper]`` (or ``[0, upper)``)."""
    value = float(value)
    if value < 0.0:
        raise ConfigurationError(f"{name} must be >= 0, got {value}")
    if inclusive_upper:
        if value > upper:
            raise ConfigurationError(f"{name} must be <= {upper}, got {value}")
    elif value >= upper:
        raise ConfigurationError(f"{name} must be < {upper}, got {value}")
    return value
