"""Exception hierarchy shared by every ``repro`` subpackage.

Having a small, explicit hierarchy lets callers distinguish configuration
mistakes (caught at construction time) from shape/protocol violations that
appear mid-simulation.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigurationError(ReproError, ValueError):
    """An invalid configuration value was supplied.

    Raised eagerly at object-construction time so that a simulation never
    starts with parameters the theory (or the implementation) cannot support,
    e.g. a Byzantine majority ``B > P / 2``.
    """


class ShapeError(ReproError, ValueError):
    """A tensor or parameter vector had an unexpected shape."""


class ProtocolError(ReproError, RuntimeError):
    """A federated-learning protocol invariant was violated at runtime.

    Examples: a parameter server receiving zero uploads when the round
    scheduler guaranteed at least one, or a client receiving a different
    number of global models than there are parameter servers.
    """


class ConvergenceError(ReproError, RuntimeError):
    """An iterative numerical routine failed to converge.

    Raised by e.g. the Weiszfeld geometric-median solver when it exceeds
    its iteration budget without meeting the requested tolerance.
    """
