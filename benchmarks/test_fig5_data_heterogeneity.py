"""Figure 5: the impact of data heterogeneity on Fed-MS.

Paper (Section VI-D, Noise attack, epsilon = 20%): convergence speed and
final accuracy improve as D_alpha grows — alpha = 1 ends ~8% below
alpha = 1000 (70% vs 78% after 60 rounds).

Shape asserted: every alpha trains a useful model; the most IID setting
(alpha = 1000) does at least as well as the most skewed (alpha = 1), within
noise.
"""

import pytest

from _harness import record_result, thresholds
from repro.experiments import run_fig5_alpha_panel

ALPHAS = (1.0, 5.0, 10.0, 1000.0)

_finals = {}


@pytest.mark.parametrize("alpha", ALPHAS)
def test_fig5_alpha_panel(benchmark, alpha):
    result = benchmark.pedantic(
        lambda: run_fig5_alpha_panel(alpha), rounds=1, iterations=1
    )
    record_result(result)
    curve = result.curves[0]
    _finals[alpha] = curve.final_accuracy

    # Fed-MS withstands the attack at every heterogeneity level.
    assert curve.final_accuracy > thresholds()["useful"], (
        f"Fed-MS failed at alpha={alpha}: {curve.final_accuracy:.3f}"
    )


def test_fig5_iid_at_least_as_good_as_skewed(benchmark):
    if len(_finals) < len(ALPHAS):  # pragma: no cover - ordering guard
        pytest.skip("panel benchmarks did not all run")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    # At smoke scale (8 rounds) the alpha ordering is still noise; the
    # "flat" tolerance widens accordingly.
    assert _finals[1000.0] >= _finals[1.0] - thresholds()["flat"], (
        f"IID run unexpectedly below skewed run: {_finals}"
    )
