"""Codec x attack x filter sweep: compression without losing resilience.

The claim under test is two-sided (Tao et al., arXiv:2303.10434):
upload codecs must cut offered bytes by an order of magnitude *and* leave
the adaptive-beta trimmed mean effective against the Noise and colluding
attacks. ``topk(0.05)+int8`` is the acceptance chain — at least 10x fewer
offered bytes per round than the identity run, with final accuracy within
two points of it (the smoke scale's 8-round horizon amplifies the
compression warm-up lag, so its accuracy margin is wider; the byte ratio
is scale-invariant).
"""

from _harness import record_result
from repro.experiments import current_scale, run_comm_codecs

MIN_COMPRESSION = 10.0


def accuracy_margin() -> float:
    return 0.12 if current_scale().name == "smoke" else 0.02


def test_comm_codecs_compress_without_losing_accuracy(benchmark):
    result = benchmark.pedantic(
        lambda: run_comm_codecs(), rounds=1, iterations=1
    )
    record_result(result)
    margin = accuracy_margin()

    by_key = {(row["attack"], row["codec"]): row for row in result.rows}
    attacks = {row["attack"] for row in result.rows}
    assert attacks == {"noise", "colluding"}

    for attack in sorted(attacks):
        identity = by_key[(attack, "identity")]
        assert identity["compression_ratio"] == 1.0

        target = by_key[(attack, "topk+int8")]
        assert target["compression_ratio"] >= MIN_COMPRESSION, (
            f"{attack}: topk+int8 reached only "
            f"{target['compression_ratio']:.1f}x compression "
            f"(acceptance: >= {MIN_COMPRESSION}x)"
        )
        assert target["accuracy_delta"] >= -margin, (
            f"{attack}: topk+int8 lost {-target['accuracy_delta']:.3f} "
            f"accuracy vs identity (margin: {margin})"
        )

        # Every compressed chain must clear the byte bar; the 1-bit sign
        # chain trades more accuracy, so it only gets the sanity checks.
        for codec in ("topk+int8", "topk+sign"):
            row = by_key[(attack, codec)]
            assert row["compression_ratio"] >= MIN_COMPRESSION
            assert row["offered_bytes_per_round"] < \
                identity["offered_bytes_per_round"]
            assert row["final_accuracy"] > 0.1  # above random guessing
