"""Theorem 1: O(1/T) convergence with measured constants.

Instantiates the theory on an L2-regularized softmax-regression FEEL problem
(measured mu, L, G, sigma_k, Gamma, ||w0 - w*||), runs Fed-MS with the
prescribed eta_t = 2/(mu (gamma + t)) schedule under a Noise attack, and
checks that the measured suboptimality stays below the closed-form bound and
decays at the 1/t rate.
"""

from _harness import record_result
from repro.experiments import run_convergence_rate


def test_theorem1_rate(benchmark):
    result = benchmark.pedantic(
        lambda: run_convergence_rate(num_rounds=120), rounds=1, iterations=1
    )
    record_result(result)

    rows = result.rows
    subopt = [row["suboptimality"] for row in rows]
    bounds = [row["theorem1_bound"] for row in rows]
    steps = [row["global_step"] for row in rows]

    # The guarantee holds at every measured point.
    for value, bound in zip(subopt, bounds):
        assert value <= bound

    # Decay is at least as fast as 1/t: t * suboptimality does not blow up.
    scaled = [value * (result.params["gamma"] + step)
              for value, step in zip(subopt, steps)]
    assert scaled[-1] <= 4.0 * max(scaled[0], 1e-12), (
        f"1/t decay violated: t*subopt grew {scaled[0]:.3g} -> {scaled[-1]:.3g}"
    )

    # And training actually makes progress (two orders of magnitude here).
    assert subopt[-1] < subopt[0] / 10
