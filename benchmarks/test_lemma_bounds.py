"""Lemmas 2 and 3: Monte-Carlo tightness of the estimation-error bounds.

Sweeps the Byzantine count B (Lemma 2) and the topology (Lemma 3), measuring
the bounded quantity against the closed-form bound. Reported as tables; the
assertion is that the bound holds (within 3-sigma Monte-Carlo error) at
every configuration.
"""

from _harness import record_result
from repro.common import RngFactory
from repro.experiments import FigureResult
from repro.theory import verify_lemma2_trimmed_mean, verify_lemma3_sparse_upload


def run_lemma2_sweep():
    rngs = RngFactory(0)
    rows = []
    for num_byzantine in range(0, 5):
        outcome = verify_lemma2_trimmed_mean(
            num_servers=10, num_byzantine=num_byzantine, sigma=1.0,
            trials=4000, rng=rngs.make(f"lemma2/{num_byzantine}"),
        )
        rows.append({
            "num_byzantine": num_byzantine,
            "measured_mse": outcome.measured,
            "bound": outcome.bound,
            "tightness": outcome.tightness,
            "holds": outcome.holds,
        })
    return FigureResult(
        figure_id="lemma2_bounds",
        params={"num_servers": 10, "sigma": 1.0, "trials": 4000},
        rows=rows,
        notes="bound = P sigma^2 / (P - 2B)^2 under adversarial tampering",
    )


def run_lemma3_sweep():
    rngs = RngFactory(1)
    rows = []
    for num_clients, num_servers in [(20, 5), (50, 10), (100, 10), (50, 25)]:
        outcome = verify_lemma3_sparse_upload(
            num_clients=num_clients, num_servers=num_servers, trials=3000,
            rng=rngs.make(f"lemma3/{num_clients}/{num_servers}"),
        )
        rows.append({
            "num_clients": num_clients,
            "num_servers": num_servers,
            "measured_var": outcome.measured,
            "bound": outcome.bound,
            "tightness": outcome.tightness,
            "holds": outcome.holds,
        })
    return FigureResult(
        figure_id="lemma3_bounds",
        params={"trials": 3000},
        rows=rows,
        notes="bound = (K-P)/(K-1) * 4/P * D^2 for drift radius 2D",
    )


def test_lemma2_bound_sweep(benchmark):
    result = benchmark.pedantic(run_lemma2_sweep, rounds=1, iterations=1)
    record_result(result)
    assert all(row["holds"] for row in result.rows)
    # The bound grows with B; so does the measured adversarial error.
    bounds = [row["bound"] for row in result.rows]
    assert bounds == sorted(bounds)


def test_lemma3_bound_sweep(benchmark):
    result = benchmark.pedantic(run_lemma3_sweep, rounds=1, iterations=1)
    record_result(result)
    assert all(row["holds"] for row in result.rows)
