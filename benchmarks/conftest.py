"""Benchmark session configuration."""

import sys
import os

sys.path.insert(0, os.path.dirname(__file__))

from repro.experiments import current_scale  # noqa: E402


def pytest_report_header(config):
    scale = current_scale()
    return (f"repro figure benchmarks — scale {scale.description} "
            f"(set REPRO_BENCH_SCALE=smoke|reduced|paper)")
