"""Extension: Fed-MS under lossy edge links, via the fault layer.

The paper assumes reliable delivery; real outdoor edge networks drop
packets. This study injects i.i.d. message loss into the simulated
transport and measures how Fed-MS's accuracy degrades with the loss rate
(under the usual 20% Noise-attacked PSs).

The runs go through the graceful-degradation stack in
:mod:`repro.core.trainer` rather than a hand-rolled proportional filter:

* a lost upload is retried with backoff (first to the same PS, then to a
  freshly sampled alive one) under the ``FaultConfig`` retry budget;
* a client that still receives fewer than P global models recomputes the
  trim count against the reduced quorum (``degraded_trim_count``) and
  falls back to its previous feasible model only when ``q <= 2B``.

Shape asserted: moderate loss (<= 20%) costs only a modest accuracy drop,
training never collapses to the random-guess floor, and the fault-layer
telemetry (per-tag drops, retries, degraded rounds) actually fired.
"""

from _harness import record_result, thresholds
from repro.attacks import make_attack
from repro.common import RngFactory
from repro.core import FedMSConfig, FedMSTrainer
from repro.experiments import FigureResult, FigureWorkload, current_scale
from repro.simulation import Network

LOSS_RATES = (0.0, 0.1, 0.2, 0.4)


def run_packet_loss_study(seed=0):
    scale = current_scale()
    workload = FigureWorkload(scale, seed=seed)
    partitions = workload.partitions(10.0, tag="packet_loss")
    num_byzantine = max(round(0.2 * scale.num_servers), 1)
    rows = []
    for loss_rate in LOSS_RATES:
        config = FedMSConfig(
            num_clients=scale.num_clients,
            num_servers=scale.num_servers,
            num_byzantine=num_byzantine,
            local_steps=3,
            batch_size=scale.batch_size,
            learning_rate=0.05,
            trim_ratio=0.2,
            eval_clients=2,
            seed=seed,
        )
        network = (
            Network(drop_probability=loss_rate,
                    rng=RngFactory(seed).make(f"loss/{loss_rate}"))
            if loss_rate > 0 else Network()
        )
        trainer = FedMSTrainer(
            config,
            model_factory=workload.model_factory(),
            client_datasets=partitions,
            test_dataset=workload.test,
            attack=make_attack("noise", scale=0.05),
            network=network,
        )
        history = trainer.run(scale.num_rounds, eval_every=scale.eval_every)
        rows.append({
            "loss_rate": loss_rate,
            "final_accuracy": history.final_accuracy,
            "dropped_messages": network.stats.dropped_total,
            "dropped_by_tag": dict(network.stats.dropped_by_tag),
            "upload_retries": history.total_upload_retries,
            "upload_failures": history.total_upload_failures,
            "degraded_rounds": len(history.degraded_rounds),
        })
    return FigureResult(
        figure_id="ext_packet_loss",
        params={"attack": "noise", "epsilon": 0.2, "scale": scale.name},
        rows=rows,
        notes="Fed-MS accuracy vs i.i.d. message-loss rate "
              "(degraded-quorum filtering + upload retry)",
    )


def test_packet_loss_tolerance(benchmark):
    result = benchmark.pedantic(run_packet_loss_study, rounds=1, iterations=1)
    record_result(result)

    accuracy = {row["loss_rate"]: row["final_accuracy"]
                for row in result.rows}
    limits = thresholds()

    # The loss-free run reaches the usual level.
    assert accuracy[0.0] > limits["useful"]
    # Moderate loss costs little.
    assert accuracy[0.2] > accuracy[0.0] - limits["flat"]
    # Even heavy loss does not collapse training to the floor.
    assert accuracy[0.4] > 0.15
    # Failure injection actually fired, and the per-tag breakdown covers
    # every drop.
    by_rate = {row["loss_rate"]: row for row in result.rows}
    assert by_rate[0.0]["dropped_messages"] == 0
    assert (by_rate[0.4]["dropped_messages"]
            > by_rate[0.1]["dropped_messages"] > 0)
    for row in result.rows:
        assert sum(row["dropped_by_tag"].values()) == row["dropped_messages"]
    # Lost uploads were retried, and losses degraded some quorums.
    assert by_rate[0.4]["upload_retries"] > 0
    assert by_rate[0.4]["degraded_rounds"] > 0
