"""Shared plumbing for the figure benchmarks.

Each benchmark regenerates one paper figure via :mod:`repro.experiments`,
asserts its *shape* (orderings, rough factors — not absolute numbers, since
the substrate is a simulator) and records the full series under
``benchmarks/results/`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import json
import os
from typing import Optional

from repro.experiments import FigureResult, current_scale, format_figure

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def thresholds() -> dict:
    """Scale-aware assertion thresholds.

    The *shape* claims are identical at every scale; only the magnitudes
    differ — an 8-round smoke run cannot reach the accuracy a 60-round paper
    run does, but the orderings must already be visible.
    """
    if current_scale().name in ("tiny", "smoke"):
        return {
            "useful": 0.18,       # well above the 10% random-guess floor
            "margin_big": 0.05,   # decisive-win margin
            "margin_small": 0.02,  # no-worse-than margin
            "parity": 0.25,       # "the curves coincide" tolerance
            "flat": 0.25,         # "stays flat across epsilon" tolerance
        }
    return {
        "useful": 0.45,
        "margin_big": 0.25,
        "margin_small": 0.05,
        "parity": 0.12,
        "flat": 0.15,
    }


def record_result(result: FigureResult, *, name: Optional[str] = None) -> str:
    """Write the figure's text table and JSON dump; returns the text path."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    stem = (name or result.figure_id).replace("/", "_").replace("=", "_")
    text_path = os.path.join(RESULTS_DIR, f"{stem}.txt")
    with open(text_path, "w") as handle:
        handle.write(format_figure(result) + "\n")
    with open(os.path.join(RESULTS_DIR, f"{stem}.json"), "w") as handle:
        json.dump(result.to_dict(), handle, indent=2)
    print()
    print(format_figure(result))
    return text_path
