"""Deadline-mode acceptance: faster rounds, fig2-shape accuracy held.

Shape asserted: with 20% stragglers the deadline engine finishes each
round measurably sooner in simulated time than the barrier (time_ratio
well below 1), while final accuracy stays within the fig2 benchmark
margin of the barrier run under both a weak (noise) and a coordinated
(colluding) attack. Without stragglers the deadline must not hurt.
"""

import pytest

from _harness import record_result, thresholds
from repro.experiments import run_async_deadline


@pytest.mark.parametrize("attack", ["noise", "colluding"])
def test_async_deadline_tradeoff(benchmark, attack):
    result = benchmark.pedantic(
        lambda: run_async_deadline(attack_name=attack),
        rounds=1, iterations=1,
    )
    record_result(result, name=f"async_deadline_{attack}")

    limits = thresholds()
    rows = result.rows

    def pick(*, mode, rate, quantile=None):
        for row in rows:
            if (row["mode"] == mode
                    and row["straggler_rate"] == rate
                    and (quantile is None
                         or row["deadline_quantile"] == quantile)):
                return row
        raise AssertionError(f"missing row {mode}/{rate}/{quantile}")

    for rate in (0.0, 0.2):
        barrier = pick(mode="barrier", rate=rate)
        for quantile in (0.5, 0.9):
            deadline = pick(mode="deadline", rate=rate, quantile=quantile)
            # Deadline rounds never take longer than the barrier...
            assert deadline["time_ratio"] <= 1.0 + 1e-9
            # ... and accuracy stays within the fig2 parity margin.
            assert deadline["final_accuracy"] >= \
                barrier["final_accuracy"] - limits["parity"], (
                    f"{attack} q={quantile} rate={rate}: deadline "
                    f"{deadline['final_accuracy']:.3f} vs barrier "
                    f"{barrier['final_accuracy']:.3f}"
                )

    # The headline claim: under 20% stragglers the q=0.9 deadline is
    # measurably faster than the barrier in simulated time.
    fast = pick(mode="deadline", rate=0.2, quantile=0.9)
    assert fast["time_ratio"] < 0.8, (
        f"deadline not measurably faster: ratio {fast['time_ratio']:.3f}"
    )
    assert fast["deadline_missed"] > 0  # the speedup came from not waiting

    # Deadline mode still trains a useful model under attack.
    assert fast["final_accuracy"] > limits["useful"]
