"""Extension: Fed-MS vs hierarchical (grouped) multi-server FL.

The related work (Section II) builds multi-server FL by statically grouping
clients under dedicated PSs with an inter-server exchange. This study runs
that architecture against Fed-MS on the same workload, topology and attack,
quantifying the claim that motivates Fed-MS: a grouped client hears from
exactly one PS, so the ~epsilon fraction of clients in Byzantine groups is
unprotectable regardless of the inter-server rule, while Fed-MS's
client-side trimmed mean over all P PSs protects everyone.
"""

from _harness import record_result, thresholds
from repro.aggregation import make_rule
from repro.attacks import make_attack
from repro.core import FedMSConfig, FedMSTrainer, HierarchicalTrainer
from repro.experiments import FigureResult, FigureWorkload, current_scale


def run_architecture_comparison(seed=0):
    scale = current_scale()
    workload = FigureWorkload(scale, seed=seed)
    partitions = workload.partitions(10.0, tag="ext_hierarchical")
    num_byzantine = max(round(0.2 * scale.num_servers), 1)
    attack_name = "random"

    def config(trim):
        return FedMSConfig(
            num_clients=scale.num_clients,
            num_servers=scale.num_servers,
            num_byzantine=num_byzantine,
            local_steps=3,
            batch_size=scale.batch_size,
            learning_rate=0.05,
            trim_ratio=trim,
            eval_clients=2,
            seed=seed,
        )

    rows = []

    fed_ms = FedMSTrainer(
        config(0.2),
        model_factory=workload.model_factory(),
        client_datasets=partitions,
        test_dataset=workload.test,
        attack=make_attack(attack_name),
    )
    history = fed_ms.run(scale.num_rounds, eval_every=scale.eval_every)
    rows.append({
        "architecture": "fed_ms",
        "inter_server_rule": "-",
        "final_accuracy": history.final_accuracy,
        "upload_messages_per_round": (
            history.total_upload_messages / scale.num_rounds
        ),
    })

    for rule_name in ("mean", "trimmed_mean"):
        rule = make_rule(rule_name, trim_ratio=0.2)
        hierarchical = HierarchicalTrainer(
            config(0.2),
            model_factory=workload.model_factory(),
            client_datasets=partitions,
            test_dataset=workload.test,
            attack=make_attack(attack_name),
            inter_server_rule=rule,
        )
        history = hierarchical.run(scale.num_rounds,
                                   eval_every=scale.eval_every)
        rows.append({
            "architecture": "hierarchical",
            "inter_server_rule": rule_name,
            "final_accuracy": history.final_accuracy,
            "upload_messages_per_round": (
                history.total_upload_messages / scale.num_rounds
            ),
        })
    return FigureResult(
        figure_id="ext_hierarchical",
        params={"attack": attack_name, "epsilon": 0.2, "scale": scale.name},
        rows=rows,
        notes="grouped clients of a Byzantine PS are unprotectable; "
              "Fed-MS protects all clients at the same upload cost",
    )


def test_fed_ms_beats_hierarchical_under_attack(benchmark):
    result = benchmark.pedantic(run_architecture_comparison, rounds=1,
                                iterations=1)
    record_result(result)

    accuracy = {
        (row["architecture"], row["inter_server_rule"]): row["final_accuracy"]
        for row in result.rows
    }
    limits = thresholds()

    fed_ms = accuracy[("fed_ms", "-")]
    hier_mean = accuracy[("hierarchical", "mean")]
    hier_robust = accuracy[("hierarchical", "trimmed_mean")]

    assert fed_ms > limits["useful"]
    # Fed-MS strictly dominates grouped FL under the Random attack,
    # whichever inter-server rule the groups use.
    assert fed_ms > hier_mean + limits["margin_small"]
    assert fed_ms > hier_robust + limits["margin_small"]

    # Same aggregation-phase cost (K uploads per round).
    uploads = {row["architecture"]: row["upload_messages_per_round"]
               for row in result.rows}
    assert uploads["fed_ms"] == uploads["hierarchical"]
