"""Extension (the paper's stated future work): Byzantine clients too.

The conclusion announces "the FEEL problem with both Byzantine PSs and
clients" as future work. This benchmark runs that configuration: Byzantine
clients uploading reversed updates *and* Byzantine PSs disseminating
tampered aggregates, with defenses on both sides (server-side robust
aggregation over uploads, client-side trimmed-mean filter over global
models).

It also documents a structural finding of this reproduction: under sparse
uploading each PS receives only ~K/P uploads, so server-side robust
aggregation has too few samples for a benign majority per server — client
robustness needs the full (K x P) upload pattern. The accuracy/cost
trade-off between the two threat models is therefore real, not an
implementation detail.
"""

import numpy as np
import pytest

from _harness import record_result, thresholds
from repro.aggregation import make_rule
from repro.attacks import ClientSignFlipAttack, make_attack
from repro.common import RngFactory
from repro.core import FedMSConfig, FedMSTrainer
from repro.experiments import FigureResult, current_scale, FigureWorkload


def run_dual_adversary_study(seed=0):
    scale = current_scale()
    workload = FigureWorkload(scale, seed=seed)
    partitions = workload.partitions(10.0, tag="ext_byz_clients")
    num_byzantine_servers = max(round(0.2 * scale.num_servers), 1)
    num_byzantine_clients = max(round(0.2 * scale.num_clients), 1)

    configurations = [
        # (label, upload, server_rule, client filter beta)
        ("undefended", "sparse", None, 0.0),
        ("server_defense_only", "full", "median", 0.0),
        ("client_defense_only", "sparse", None, 0.2),
        ("both_defenses", "full", "median", 0.2),
    ]
    rows = []
    for label, upload, server_rule_name, beta in configurations:
        config = FedMSConfig(
            num_clients=scale.num_clients,
            num_servers=scale.num_servers,
            num_byzantine=num_byzantine_servers,
            local_steps=3,
            batch_size=scale.batch_size,
            learning_rate=0.05,
            trim_ratio=beta,
            upload_strategy=upload,
            eval_clients=2,
            seed=seed,
        )
        filter_rule = (make_rule("trimmed_mean", trim_ratio=beta)
                       if beta > 0 else make_rule("mean"))
        server_rule = (make_rule(server_rule_name)
                       if server_rule_name else None)
        trainer = FedMSTrainer(
            config,
            model_factory=workload.model_factory(),
            client_datasets=partitions,
            test_dataset=workload.test,
            attack=make_attack("noise", scale=0.05),
            client_attack=ClientSignFlipAttack(scale=3.0),
            num_byzantine_clients=num_byzantine_clients,
            filter_rule=filter_rule,
            server_rule=server_rule,
        )
        # The dual adversary slows convergence; give even the smoke scale
        # enough rounds for the defended run to separate from the floor.
        num_rounds = max(scale.num_rounds, 40)
        history = trainer.run(num_rounds, eval_every=scale.eval_every)
        rows.append({
            "configuration": label,
            "upload": upload,
            "server_rule": server_rule_name or "mean",
            "client_filter_beta": beta,
            "final_accuracy": history.final_accuracy,
            "upload_messages_per_round": (
                history.total_upload_messages / num_rounds
            ),
        })
    return FigureResult(
        figure_id="ext_byzantine_clients",
        params={
            "byzantine_servers": num_byzantine_servers,
            "byzantine_clients": num_byzantine_clients,
            "server_attack": "noise",
            "client_attack": "client_sign_flip(scale=3)",
            "scale": scale.name,
        },
        rows=rows,
        notes="future-work extension: adversaries on both sides",
    )


def test_dual_adversary_defenses(benchmark):
    result = benchmark.pedantic(run_dual_adversary_study, rounds=1,
                                iterations=1)
    record_result(result)

    accuracy = {row["configuration"]: row["final_accuracy"]
                for row in result.rows}
    limits = thresholds()

    # Defending both sides lifts the model off the random-guess floor even
    # under a dual adversary (the combined attack is stronger than any
    # Fig. 2 scenario, so the bar is lower than the single-adversary one).
    assert accuracy["both_defenses"] > 0.15
    # ... and clearly beats having no defenses at all.
    assert accuracy["both_defenses"] > \
        accuracy["undefended"] + limits["margin_big"]
    # Each one-sided defense leaves the other attack unmitigated.
    assert accuracy["both_defenses"] >= \
        accuracy["server_defense_only"] - limits["margin_small"]
    assert accuracy["both_defenses"] >= \
        accuracy["client_defense_only"] - limits["margin_small"]
