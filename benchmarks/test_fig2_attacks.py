"""Figure 2: test accuracy under the four Byzantine PS attacks.

Paper (Section VI-B, epsilon = 20%, D_alpha = 10): Fed-MS (beta = 0.2)
reaches 73-76% after 60 rounds under every attack; Fed-MS- (beta = 0.1,
under-trimmed) and Vanilla FL collapse to 8-20% under Random and Safeguard;
under Noise and Backward, Fed-MS- sits 10-30% above Vanilla.

Shape asserted here: Fed-MS beats Vanilla FL under every attack, decisively
under Random (the strongest), and Fed-MS trains to a useful model while an
undefended run under Random stays near the random-guess floor.
"""

import pytest

from _harness import record_result, thresholds
from repro.experiments import run_fig2_attack_panel
from repro.attacks import PAPER_ATTACKS

RANDOM_GUESS = 0.1


@pytest.mark.parametrize("attack", PAPER_ATTACKS)
def test_fig2_attack_panel(benchmark, attack):
    result = benchmark.pedantic(
        lambda: run_fig2_attack_panel(attack), rounds=1, iterations=1
    )
    record_result(result)

    limits = thresholds()
    fed_ms = result.curve("Fed-MS")
    fed_ms_minus = result.curve("Fed-MS-")
    vanilla = result.curve("Vanilla FL")

    # Fed-MS learns a useful model under every attack.
    assert fed_ms.final_accuracy > limits["useful"], (
        f"Fed-MS collapsed under {attack}: {fed_ms.final_accuracy:.3f}"
    )
    # ... and never loses to the undefended baseline.
    assert fed_ms.final_accuracy >= \
        vanilla.final_accuracy - limits["margin_small"]

    if attack == "random":
        # The paper's starkest contrast: Vanilla FL is destroyed (~10%),
        # Fed-MS is fine; the under-trimmed Fed-MS- also fails.
        assert vanilla.final_accuracy < RANDOM_GUESS + 0.15
        assert fed_ms.final_accuracy > \
            vanilla.final_accuracy + limits["margin_big"]
        assert fed_ms.final_accuracy > \
            fed_ms_minus.final_accuracy + limits["margin_big"]

    if attack == "safeguard":
        # Safeguard slows/destroys undefended training.
        assert fed_ms.final_accuracy >= \
            vanilla.final_accuracy - limits["margin_small"]
