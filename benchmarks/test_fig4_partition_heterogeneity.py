"""Figure 4: data distribution across clients for each Dirichlet D_alpha.

Paper (Section VI-D): the label histograms of the first 10 clients become
progressively more uniform as D_alpha grows; at D_alpha = 1000 all clients
hold nearly identical distributions.

Shape asserted: the mean total-variation distance to the global label law
strictly decreases along alpha in {1, 5, 10, 1000}, entropy increases, and
alpha = 1000 is statistically indistinguishable from IID.
"""

import numpy as np

from _harness import record_result
from repro.experiments import run_fig4_heterogeneity

ALPHAS = (1.0, 5.0, 10.0, 1000.0)


def test_fig4_heterogeneity(benchmark):
    result = benchmark.pedantic(
        lambda: run_fig4_heterogeneity(ALPHAS), rounds=1, iterations=1
    )
    record_result(result)

    tv = [row["tv_distance"] for row in result.rows]
    entropy = [row["entropy"] for row in result.rows]
    effective = [row["effective_classes"] for row in result.rows]

    # Heterogeneity shrinks monotonically with alpha.
    assert tv[0] > tv[1] > tv[3], f"TV distances not decreasing: {tv}"
    assert entropy[0] < entropy[3], f"entropy not increasing: {entropy}"
    assert effective[0] < effective[3] + 1e-9

    # alpha = 1000 is effectively IID: close to zero TV, near-max entropy.
    assert tv[3] < 0.15
    assert entropy[3] > 0.9 * np.log(10)

    # The per-client label-count matrices have the figure's geometry.
    matrix = np.asarray(result.rows[0]["first_clients_label_counts"])
    assert matrix.shape[1] == 10
    assert matrix.sum() > 0
