"""Extension: population-scale sharded aggregation under attack.

The population subsystem answers a question the flat Fed-MS loop cannot
pose: what happens when K is in the thousands, only ~10% of clients are
sampled each round, clients churn in and out, and aggregation is sharded
across an edge -> region -> global tree whose edge tier is partly
Byzantine?  This study runs the K sweep (500 / 2000 / 5000, clipped by
scale), asserts the fig2-shaped claim — the per-tier trimmed mean holds
the attacked run within margin of a benign run and of the
full-participation flat baseline — and asserts the memory claim: peak
materialized clients is O(sampled + tiers), never O(K).
"""

from _harness import record_result, thresholds
from repro.core import FedMSConfig, FedMSTrainer
from repro.experiments import (
    POPULATION_PRESETS,
    build_population_trainer,
    current_scale,
    run_population_scale,
)
from repro.models import SoftmaxRegression
from repro.population import make_blob_population, make_blob_test_dataset

SEED = 0
ATTACK = "sign_flip"

# K sweep per scale; the acceptance run uses the largest entry.
POPULATIONS = {
    "tiny": [60],
    "smoke": [500],
    "reduced": [500, 2000],
    "paper": [500, 2000, 5000],
}


def sweep_populations():
    return POPULATIONS[current_scale().name]


def run_flat_baseline(population, preset, *, num_rounds, seed=SEED):
    """Benign full-participation flat Fed-MS run on the same blob workload.

    Every client trains every round and there is a single aggregation
    tier — the architecture the population subsystem is measured against.
    """
    config = FedMSConfig(
        num_clients=population,
        num_servers=3,
        num_byzantine=0,
        local_steps=preset.local_steps,
        batch_size=preset.batch_size,
        learning_rate=preset.learning_rate,
        eval_clients=2,
        seed=seed,
    )
    datasets = [spec.materialize() for spec in make_blob_population(
        population,
        samples_per_client=preset.samples_per_client,
        feature_dim=preset.feature_dim,
        num_classes=preset.num_classes,
        seed=seed,
        heterogeneity=preset.heterogeneity,
    )]
    test = make_blob_test_dataset(
        num_samples=max(200, 4 * preset.samples_per_client),
        feature_dim=preset.feature_dim,
        num_classes=preset.num_classes,
        seed=seed,
    )
    dim, classes = preset.feature_dim, preset.num_classes
    trainer = FedMSTrainer(
        config,
        model_factory=lambda rng: SoftmaxRegression(dim, classes, rng=rng),
        client_datasets=datasets,
        test_dataset=test,
    )
    return trainer.run(num_rounds, eval_every=num_rounds)


def test_population_sweep_attacked_vs_benign(benchmark):
    result = benchmark.pedantic(
        run_population_scale,
        kwargs=dict(attack_name=ATTACK, populations=sweep_populations(),
                    seed=SEED),
        rounds=1, iterations=1,
    )
    record_result(result)
    limits = thresholds()

    by_key = {(row["population"], row["variant"]): row
              for row in result.rows}
    for population in sweep_populations():
        attacked = by_key[(population, "attacked")]
        benign = by_key[(population, "benign")]
        # The fig2 shape at population scale: Byzantine edge aggregators
        # under sign_flip do not sink the run.
        assert attacked["final_accuracy"] > limits["useful"]
        assert attacked["final_accuracy"] >= (
            benign["final_accuracy"] - limits["parity"]
        ), f"K={population}: per-tier filter failed to hold accuracy"

        # Memory claim: only the sampled cohort ever materializes.
        peak = attacked["peak_materialized_clients"]
        assert peak == max(attacked["sampled_per_round"])
        assert peak <= population // 2, (
            f"K={population}: peak {peak} materialized is O(K), not "
            f"O(sampled)"
        )
        # Slot pool never exceeds the largest cohort.
        assert attacked["client_slots"] <= peak

        # Churn actually happened (the sweep runs with churn on).
        assert attacked["total_churn_events"] > 0


def test_attacked_tiers_match_flat_full_participation(benchmark):
    # The ISSUE acceptance run: the largest K at this scale, 10% sampling,
    # the paper tier shape (10, 2, 1) with 2 of 10 edge aggregators
    # Byzantine (20%), compared against the benign full-participation
    # flat baseline on the same data distribution.
    scale = current_scale()
    population = max(POPULATIONS[scale.name])
    shape = POPULATION_PRESETS["paper"]           # (10, 2, 1), B0 = 2
    rounds = POPULATION_PRESETS[scale.name].num_rounds

    def run_pair():
        trainer, _ = build_population_trainer(
            shape, seed=SEED, attack_name=ATTACK,
            population_size=population, sample_fraction=0.1,
            num_rounds=rounds,
        )
        with trainer:
            tiered = trainer.run(rounds, eval_every=rounds)
            peak = tiered.peak_materialized_clients
            aggregators = trainer.topology.total_aggregators
        flat = run_flat_baseline(population, shape, num_rounds=rounds)
        return tiered, flat, peak, aggregators

    tiered, flat, peak, aggregators = benchmark.pedantic(
        run_pair, rounds=1, iterations=1)
    limits = thresholds()

    assert tiered.final_accuracy > limits["useful"]
    # Sampling 10%, churning, sharding across tiers AND tolerating 20%
    # Byzantine edges costs at most the parity margin vs the benign
    # flat run that trains all K clients every round.
    assert tiered.final_accuracy >= flat.final_accuracy - limits["parity"], (
        f"tiered attacked {tiered.final_accuracy:.3f} vs flat benign "
        f"{flat.final_accuracy:.3f}: outside fig2-shape margin"
    )
    # O(sampled + tiers) materialization: the flat baseline holds all K
    # clients; the population run holds at most the cohort + aggregators.
    assert peak + aggregators < population


def test_degraded_quorum_is_traced_not_fatal(benchmark):
    # Push the sample fraction low enough that some edges see fewer
    # children than their quorum in some rounds; the run must complete,
    # trace the degradation, and still learn.
    preset = POPULATION_PRESETS[current_scale().name]

    def run_starved():
        trainer, rounds = build_population_trainer(
            preset, seed=SEED, attack_name=ATTACK,
            sample_fraction=0.02, with_churn=False,
        )
        with trainer:
            return trainer.run(rounds, eval_every=rounds)

    history = benchmark.pedantic(run_starved, rounds=1, iterations=1)
    assert history.final_accuracy is not None
    # Every record carries the per-tier trace fields.
    for record in history.records:
        assert record.tier_fallback_aggregators is not None
        assert record.tier_degraded_aggregators is not None
