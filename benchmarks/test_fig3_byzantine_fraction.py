"""Figure 3: the impact of the Byzantine PS fraction epsilon.

Paper (Section VI-C, Noise attack): with epsilon = 0, Fed-MS and Vanilla FL
coincide (~75%); as epsilon grows to 30%, Vanilla FL's final accuracy slides
from ~48% down to ~25% while Fed-MS stays at the no-attack level.

Shape asserted: (a) parity at epsilon = 0; (b) Fed-MS is flat across
epsilon; (c) Vanilla degrades relative to its epsilon = 0 self.
"""

import pytest

from _harness import record_result, thresholds
from repro.experiments import run_fig3_epsilon_panel

EPSILONS = (0.0, 0.1, 0.2, 0.3)

_results = {}


@pytest.mark.parametrize("epsilon", EPSILONS)
def test_fig3_epsilon_panel(benchmark, epsilon):
    result = benchmark.pedantic(
        lambda: run_fig3_epsilon_panel(epsilon), rounds=1, iterations=1
    )
    record_result(result)
    _results[epsilon] = result

    limits = thresholds()
    fed_ms = result.curve("Fed-MS")
    vanilla = result.curve("Vanilla FL")

    if epsilon == 0.0:
        # Fig. 3(a): no Byzantine PSs -> the defense costs almost nothing.
        assert abs(fed_ms.final_accuracy - vanilla.final_accuracy) < \
            limits["parity"]
    else:
        assert fed_ms.final_accuracy >= \
            vanilla.final_accuracy - limits["margin_small"]

    # Fed-MS stays useful at every epsilon.
    assert fed_ms.final_accuracy > limits["useful"]


def test_fig3_vanilla_degrades_with_epsilon(benchmark):
    """Cross-panel claim: Vanilla FL under Noise loses accuracy as the
    Byzantine fraction grows, Fed-MS does not."""
    if len(_results) < len(EPSILONS):  # pragma: no cover - ordering guard
        pytest.skip("panel benchmarks did not all run")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    limits = thresholds()
    vanilla_clean = _results[0.0].curve("Vanilla FL").final_accuracy
    vanilla_worst = _results[0.3].curve("Vanilla FL").final_accuracy
    fed_ms_clean = _results[0.0].curve("Fed-MS").final_accuracy
    fed_ms_worst = _results[0.3].curve("Fed-MS").final_accuracy
    assert vanilla_worst < vanilla_clean - limits["margin_small"], (
        f"vanilla did not degrade: {vanilla_clean:.3f} -> {vanilla_worst:.3f}"
    )
    assert fed_ms_worst > fed_ms_clean - limits["flat"], (
        f"Fed-MS degraded too much: {fed_ms_clean:.3f} -> {fed_ms_worst:.3f}"
    )
