"""Ablation (DESIGN.md): the trimmed-mean filter vs other robust rules.

Not a paper figure — the design-choice study the paper's filter motivates:
under the Fig. 2 workload (epsilon = 20%), how do coordinate median,
geometric median, Krum and the plain mean compare to the beta-trimmed mean,
including against an adaptive, defense-aware attack?
"""

from _harness import record_result, thresholds
from repro.experiments import run_filter_ablation


def test_filter_ablation(benchmark):
    result = benchmark.pedantic(
        lambda: run_filter_ablation(
            attack_names=("random", "adaptive_trimmed_mean"),
            filter_names=("trimmed_mean", "median", "geometric_median",
                          "krum", "mean"),
        ),
        rounds=1, iterations=1,
    )
    record_result(result)

    accuracy = {
        (row["attack"], row["filter"]): row["final_accuracy"]
        for row in result.rows
    }

    limits = thresholds()
    # Every robust filter survives the Random attack; the plain mean fails.
    for robust in ("trimmed_mean", "median", "geometric_median"):
        assert accuracy[("random", robust)] > \
            accuracy[("random", "mean")] + limits["margin_big"], (
                f"{robust} did not beat the undefended mean"
            )

    # The paper's filter holds up against the adaptive attack too.
    assert accuracy[("adaptive_trimmed_mean", "trimmed_mean")] > \
        limits["useful"]
