"""Adaptive-beta crossover: estimated trimming vs the static-beta oracle.

Extension experiment (no paper figure): Fed-MS's trimmed mean needs the
Byzantine count B up front, which no deployment knows. The crossover sweep
runs four Def() variants at every true B — the static oracle (beta = B/P),
a static under-estimate (beta = (B//2)/P), the adaptive MAD estimator, and
FedGreed-style loss-based selection — under the two coordinated attacks
built to exploit a wrong beta.

Shapes asserted:

* **mimicry** — adaptive-beta lands within ``margin_small`` of the static
  oracle at the true B, and strictly beats the under-estimated static beta;
  every adaptive row carries a recorded B-hat trace.
* **colluding** — loss-based selection stays useful where the under-trimmed
  static mean is dragged off by the surviving colluder.
"""

import pytest

from _harness import record_result, thresholds
from repro.experiments import run_adaptive_crossover

_results = {}


def _row(result, true_byzantine, variant, faults=False):
    for row in result.rows:
        if (row["true_byzantine"] == true_byzantine
                and row["variant"] == variant
                and row["faults"] == faults):
            return row
    raise KeyError((true_byzantine, variant, faults))


def _largest_b(result):
    return max(row["true_byzantine"] for row in result.rows)


def test_adaptive_crossover_mimicry(benchmark):
    result = benchmark.pedantic(
        lambda: run_adaptive_crossover(attack_name="dispersion_mimicry"),
        rounds=1, iterations=1,
    )
    record_result(result)
    _results["dispersion_mimicry"] = result

    limits = thresholds()
    b_max = _largest_b(result)

    oracle = _row(result, b_max, "static-oracle")["final_accuracy"]
    under = _row(result, b_max, "static-under")["final_accuracy"]
    adaptive = _row(result, b_max, "adaptive")["final_accuracy"]

    # The estimator must match the unknowable oracle trim...
    assert adaptive >= oracle - limits["margin_small"], (
        f"adaptive {adaptive:.3f} fell behind the static oracle {oracle:.3f}"
    )
    # ...and beat the realistic guess the attack was shaped to exploit.
    assert adaptive > under, (
        f"adaptive {adaptive:.3f} did not beat static-under {under:.3f}"
    )

    # Every adaptive run records its per-round B-hat audit trail.
    for row in result.rows:
        if row["variant"] == "adaptive":
            assert row["mean_estimated_byzantine"] is not None
            trace = row["estimated_byzantine_trace"]
            assert all(estimate is not None for estimate in trace)

    # The faulty companion runs really lost a PS.
    faulty_rows = [row for row in result.rows if row["faults"]]
    assert faulty_rows and all(row["degraded_rounds"] > 0
                               for row in faulty_rows)


def test_adaptive_crossover_colluding(benchmark):
    result = benchmark.pedantic(
        lambda: run_adaptive_crossover(attack_name="colluding",
                                       with_faults=False),
        rounds=1, iterations=1,
    )
    record_result(result, name="ext_adaptive_crossover_colluding")
    _results["colluding"] = result

    limits = thresholds()
    b_max = _largest_b(result)

    under = _row(result, b_max, "static-under")["final_accuracy"]
    loss_based = _row(result, b_max, "loss_based")["final_accuracy"]

    # The colluders' shared lie survives an under-trimmed mean but ranks
    # last on the trusted batch: loss-based converges where static fails.
    assert loss_based > limits["useful"], (
        f"loss_based unusable under collusion: {loss_based:.3f}"
    )
    assert loss_based > under + limits["margin_big"], (
        f"loss_based {loss_based:.3f} did not separate from the "
        f"under-trimmed mean {under:.3f}"
    )


def test_crossover_clean_baseline(benchmark):
    """Cross-attack claim: with B = 0 every variant trains fine — the
    estimating defenses cost (almost) nothing when there is no attack."""
    if len(_results) < 2:  # pragma: no cover - ordering guard
        pytest.skip("crossover benchmarks did not all run")
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    limits = thresholds()
    for result in _results.values():
        oracle = _row(result, 0, "static-oracle")["final_accuracy"]
        for variant in ("adaptive", "loss_based"):
            accuracy = _row(result, 0, variant)["final_accuracy"]
            assert accuracy > oracle - limits["parity"], (
                f"{variant} lost {oracle - accuracy:.3f} with no attack"
            )
