"""Round-loop throughput per execution backend.

Runs the wall-clock harness (``repro.experiments.perf``) and writes
``BENCH_round_loop.json`` at the repo root — the artifact CI uploads.
Plain pytest, no pytest-benchmark fixture: the harness does its own
timing so the serial/thread/process rows share one workload.

The throughput gate (process backend must reach at least
``REPRO_PERF_MIN_RATIO`` x serial at K=64, default 0.9) only applies on
multi-core machines; on a single core a process pool cannot beat serial
and the gate would measure scheduler noise, not a regression.
"""

import json
import os

import pytest

from repro.experiments import run_round_loop_perf, write_bench_file

PROFILE = os.environ.get("REPRO_PERF_PROFILE", "smoke")
MIN_RATIO = float(os.environ.get("REPRO_PERF_MIN_RATIO", "0.9"))


@pytest.fixture(scope="module")
def report():
    result = run_round_loop_perf(PROFILE)
    path = write_bench_file(result)
    with open(path) as handle:
        assert json.load(handle)["bench"] == "round_loop"
    return result


def _rows(report, backend):
    return {row["num_clients"]: row for row in report["rows"]
            if row["backend"] == backend}


def test_all_backends_measured(report):
    for backend in ("serial", "thread", "process"):
        rows = _rows(report, backend)
        assert set(rows) == set(report["client_counts"])
        for row in rows.values():
            assert row["rounds_per_sec"] > 0
            assert row["client_steps_per_sec"] > 0
            assert row["bytes_per_round"] > 0


def test_backends_stay_bit_identical(report):
    # The harness cross-checks each backend's final train loss against
    # serial's; a speedup from diverging arithmetic would be meaningless.
    for row in report["rows"]:
        if row["backend"] != "serial" and not row["degraded"]:
            assert row["matches_serial"], (
                f"{row['backend']} diverged from serial at "
                f"K={row['num_clients']}"
            )


def test_process_pool_throughput_at_k64(report):
    if (os.cpu_count() or 1) < 2:
        pytest.skip("single-core machine: process pool cannot win; "
                    "ratio gate needs >= 2 cores")
    row = _rows(report, "process")[64]
    assert not row["degraded"], "process pool degraded to serial"
    assert row["speedup_vs_serial"] >= MIN_RATIO, (
        f"process backend at K=64 reached only "
        f"{row['speedup_vs_serial']:.2f}x of serial "
        f"(gate: {MIN_RATIO}x)"
    )


def test_codec_bytes_per_round_gate(report):
    # CI byte gate: the default codec chain at the largest client count
    # must put at most 0.2x the identity bytes on the wire per round,
    # and the recorded compression ratio must agree with the two rows.
    codec = report["codec"]
    assert codec["codecs"] == ["topk(0.05)", "int8"]
    assert codec["bytes_per_round"] > 0
    assert codec["bytes_per_round"] <= 0.2 * codec["identity_bytes_per_round"], (
        f"codec chain sent {codec['bytes_per_round']:.0f} B/round vs "
        f"{codec['identity_bytes_per_round']:.0f} identity "
        f"(gate: 0.2x)"
    )
    assert codec["compression_ratio"] == pytest.approx(
        codec["identity_bytes_per_round"] / codec["bytes_per_round"]
    )


def test_population_row_present(report):
    # The population row (K=1000, 10% sampling, 8x2x1 tiers) rides along
    # in the same artifact so CI tracks sharded-aggregation throughput.
    population = report["population"]
    assert population["population_size"] == 1000
    assert population["sample_fraction"] == 0.1
    assert population["tier_spec"] == [8, 2, 1]
    assert population["rounds_per_sec"] > 0
    assert population["seconds_per_round"] > 0
    assert population["bytes_per_round"] > 0
    # Lazy materialization: peak live clients == the sampled cohort,
    # never the full population.
    assert population["sampled_per_round"] < 1000
    assert (population["peak_materialized_clients"]
            == population["sampled_per_round"])
