"""Section IV-A: the sparse uploading strategy's communication cost.

Paper claim: uploading to one uniformly random PS costs K model transfers
per aggregation round — identical to classical single-PS FL — versus K x P
for the trivial upload-to-all scheme, with no accuracy benefit from the
extra traffic.

Measured from the simulated network's per-message accounting.
"""

from _harness import record_result
from repro.experiments import current_scale, run_comm_cost


def test_comm_cost_sparse_equals_k(benchmark):
    result = benchmark.pedantic(
        lambda: run_comm_cost(num_rounds=3), rounds=1, iterations=1
    )
    record_result(result)
    scale = current_scale()

    by_strategy = {row["strategy"]: row for row in result.rows}
    sparse = by_strategy["sparse"]
    full = by_strategy["full"]

    assert sparse["upload_messages_per_round"] == scale.num_clients
    assert full["upload_messages_per_round"] == \
        scale.num_clients * scale.num_servers
    # The factor between the schemes is exactly P.
    assert full["upload_messages_per_round"] == \
        sparse["upload_messages_per_round"] * scale.num_servers
    assert full["upload_bytes_per_round"] == \
        sparse["upload_bytes_per_round"] * scale.num_servers
