"""Tests for the model zoo: shapes, structure, trainability."""

import numpy as np
import pytest

from repro.common import ConfigurationError, RngFactory
from repro.models import (
    IMAGENET_INVERTED_RESIDUAL_SETTING,
    MLP,
    ConvBNReLU,
    InvertedResidual,
    MobileNetV2,
    SmallCNN,
    SoftmaxRegression,
    make_divisible,
)
from repro.nn import SGD, accuracy, cross_entropy, to_vector


@pytest.fixture()
def rng():
    return RngFactory(11).make("models")


class TestMakeDivisible:
    def test_multiples_preserved(self):
        assert make_divisible(32) == 32

    def test_rounds_to_divisor(self):
        assert make_divisible(33) % 8 == 0

    def test_never_drops_below_90_percent(self):
        for value in [12, 20, 45, 100, 250]:
            assert make_divisible(value) >= 0.9 * value

    def test_min_value_floor(self):
        assert make_divisible(1) == 8


class TestConvBNReLU:
    def test_shape_and_nonnegativity(self, rng):
        block = ConvBNReLU(3, 8, stride=2, rng=rng)
        out = block(rng.normal(size=(2, 3, 8, 8)))
        assert out.shape == (2, 8, 4, 4)
        assert np.all(out >= 0.0)


class TestInvertedResidual:
    def test_residual_used_when_shape_preserved(self, rng):
        block = InvertedResidual(8, 8, stride=1, expand_ratio=2, rng=rng)
        assert block.use_residual

    def test_no_residual_on_stride2(self, rng):
        block = InvertedResidual(8, 8, stride=2, expand_ratio=2, rng=rng)
        assert not block.use_residual

    def test_no_residual_on_channel_change(self, rng):
        block = InvertedResidual(8, 16, stride=1, expand_ratio=2, rng=rng)
        assert not block.use_residual

    def test_output_shape_stride2(self, rng):
        block = InvertedResidual(4, 6, stride=2, expand_ratio=3, rng=rng)
        assert block(rng.normal(size=(2, 4, 8, 8))).shape == (2, 6, 4, 4)

    def test_expand_ratio_one_skips_expansion(self, rng):
        block = InvertedResidual(4, 4, stride=1, expand_ratio=1, rng=rng)
        # expansion conv absent: first stage is the depthwise block
        assert len(block.block) == 3

    def test_backward_through_residual(self, rng):
        block = InvertedResidual(4, 4, stride=1, expand_ratio=2, rng=rng)
        x = rng.normal(size=(2, 4, 5, 5))
        out = block(x)
        grad = block.backward(np.ones_like(out))
        assert grad.shape == x.shape
        assert any(np.any(p.grad != 0) for p in block.parameters())

    def test_gradient_matches_numerical(self, rng):
        from repro.nn import check_layer_gradients

        block = InvertedResidual(2, 2, stride=1, expand_ratio=2, rng=rng)
        block.eval()  # freeze batch-norm stats for a deterministic function
        # Zero-initialized biases leave many pre-activations exactly on the
        # ReLU6 kink at 0, where finite differences are meaningless; nudge
        # every parameter off the kink first.
        for param in block.parameters():
            param.data += rng.normal(scale=0.05, size=param.data.shape)
        x = rng.normal(size=(1, 2, 4, 4))
        input_error, param_error = check_layer_gradients(block, x)
        assert input_error < 1e-4
        assert param_error < 1e-4

    def test_rejects_bad_stride(self, rng):
        with pytest.raises(ConfigurationError):
            InvertedResidual(4, 4, stride=3, expand_ratio=2, rng=rng)

    def test_rejects_bad_expand_ratio(self, rng):
        with pytest.raises(ConfigurationError):
            InvertedResidual(4, 4, stride=1, expand_ratio=0, rng=rng)


class TestMobileNetV2:
    def test_cifar_output_shape(self, rng):
        net = MobileNetV2.cifar(rng=rng)
        assert net(rng.normal(size=(2, 3, 32, 32))).shape == (2, 10)

    def test_imagenet_table_structure(self, rng):
        """Full config: 1 stem + 17 inverted residuals + 1 head conv."""
        net = MobileNetV2(rng=rng)
        blocks = [m for m in net.features.modules() if isinstance(m, InvertedResidual)]
        expected = sum(n for _, _, n, _ in IMAGENET_INVERTED_RESIDUAL_SETTING)
        assert len(blocks) == expected == 17

    def test_width_mult_scales_parameters(self, rng):
        small = MobileNetV2.cifar(width_mult=0.25, rng=rng)
        large = MobileNetV2.cifar(width_mult=0.5, rng=rng)
        assert large.num_parameters() > small.num_parameters()

    def test_backward_produces_gradients(self, rng):
        net = MobileNetV2.cifar(rng=rng)
        x = rng.normal(size=(2, 3, 32, 32))
        loss, grad = cross_entropy(net(x), np.array([1, 2]))
        net.backward(grad)
        grads = [np.abs(p.grad).sum() for p in net.parameters()]
        assert sum(g > 0 for g in grads) > len(grads) * 0.9

    def test_eval_mode_deterministic(self, rng):
        net = MobileNetV2.cifar(dropout=0.5, rng=rng)
        net(rng.normal(size=(4, 3, 32, 32)))  # warm up BN stats
        net.eval()
        x = rng.normal(size=(2, 3, 32, 32))
        np.testing.assert_array_equal(net(x), net(x))

    def test_rejects_bad_config(self, rng):
        with pytest.raises(ConfigurationError):
            MobileNetV2(num_classes=0, rng=rng)
        with pytest.raises(ConfigurationError):
            MobileNetV2(width_mult=0.0, rng=rng)
        with pytest.raises(ConfigurationError):
            MobileNetV2(stem_stride=3, rng=rng)
        with pytest.raises(ConfigurationError):
            MobileNetV2(inverted_residual_setting=[(1, 2, 3)], rng=rng)

    def test_vector_roundtrip(self, rng):
        from repro.nn import from_vector

        net = MobileNetV2.cifar(rng=rng)
        vec = to_vector(net)
        from_vector(net, vec * 0.5)
        np.testing.assert_allclose(to_vector(net), vec * 0.5)


class TestSoftmaxRegression:
    def test_starts_at_zero(self, rng):
        model = SoftmaxRegression(5, 3, rng=rng)
        assert np.all(model.linear.weight.data == 0.0)

    def test_learns_linearly_separable_data(self, rng):
        model = SoftmaxRegression(2, 2, rng=rng)
        x = np.vstack([rng.normal(loc=-2.0, size=(50, 2)),
                       rng.normal(loc=2.0, size=(50, 2))])
        y = np.array([0] * 50 + [1] * 50)
        opt = SGD(model.parameters(), lr=0.5)
        for _ in range(100):
            opt.zero_grad()
            loss, grad = cross_entropy(model(x), y)
            model.backward(grad)
            opt.step()
        assert accuracy(model(x), y) > 0.95


class TestMLP:
    def test_shape(self, rng):
        net = MLP(10, (16, 8), 4, rng=rng)
        assert net(rng.normal(size=(3, 10))).shape == (3, 4)

    def test_requires_hidden_layers(self, rng):
        with pytest.raises(ConfigurationError):
            MLP(10, (), 4, rng=rng)

    def test_learns_xor(self, rng):
        net = MLP(2, (16,), 2, rng=rng)
        x = np.array([[0, 0], [0, 1], [1, 0], [1, 1]], dtype=float)
        x = np.tile(x, (25, 1))
        y = np.tile(np.array([0, 1, 1, 0]), 25)
        opt = SGD(net.parameters(), lr=0.5, momentum=0.9)
        for _ in range(300):
            opt.zero_grad()
            loss, grad = cross_entropy(net(x), y)
            net.backward(grad)
            opt.step()
        assert accuracy(net(x), y) == 1.0


class TestSmallCNN:
    def test_shape(self, rng):
        net = SmallCNN(rng=rng)
        assert net(rng.normal(size=(2, 3, 32, 32))).shape == (2, 10)

    def test_trains_a_step_without_error(self, rng):
        net = SmallCNN(channels=4, rng=rng)
        x = rng.normal(size=(4, 3, 32, 32))
        loss, grad = cross_entropy(net(x), np.array([0, 1, 2, 3]))
        net.backward(grad)
        SGD(net.parameters(), lr=0.01).step()
        new_loss, _ = cross_entropy(net(x), np.array([0, 1, 2, 3]))
        assert np.isfinite(new_loss)

    def test_rejects_nonpositive_channels(self, rng):
        with pytest.raises(ConfigurationError):
            SmallCNN(channels=0, rng=rng)
