"""Tests for the Monte-Carlo lemma verifiers and constant estimators."""

import numpy as np
import pytest

from repro.common import ConfigurationError, RngFactory
from repro.data import ArrayDataset, dirichlet_partition, iid_partition
from repro.theory import (
    empirical_gradient_stats,
    gamma_heterogeneity,
    softmax_loss_and_grad,
    softmax_smoothness,
    solve_softmax_optimum,
    verify_lemma2_trimmed_mean,
    verify_lemma3_sparse_upload,
)


def make_blobs(n=200, num_classes=3, dim=5, seed=0):
    centers = np.random.default_rng(42).normal(scale=3.0,
                                               size=(num_classes, dim))
    rng = np.random.default_rng(seed)
    labels = np.arange(n) % num_classes
    features = centers[labels] + rng.normal(size=(n, dim))
    return ArrayDataset(features, labels)


class TestLemma2Verifier:
    def test_bound_holds_under_adversarial_tampering(self):
        result = verify_lemma2_trimmed_mean(
            num_servers=10, num_byzantine=2, sigma=1.0,
            trials=2000, rng=RngFactory(0).make("v"),
        )
        assert result.holds
        assert result.trials == 2000

    def test_bound_holds_without_byzantine(self):
        result = verify_lemma2_trimmed_mean(
            num_servers=10, num_byzantine=0, sigma=2.0,
            trials=1000, rng=RngFactory(1).make("v"),
        )
        assert result.holds

    def test_bound_nontrivial(self):
        """The adversary extracts a decent fraction of the allowed error."""
        result = verify_lemma2_trimmed_mean(
            num_servers=10, num_byzantine=4, sigma=1.0,
            trials=2000, rng=RngFactory(2).make("v"),
        )
        assert result.holds
        assert result.tightness > 0.01

    def test_custom_tamper(self):
        calls = []

        def tamper(values, rng):
            calls.append(len(values))
            return np.zeros_like(values)

        verify_lemma2_trimmed_mean(
            num_servers=5, num_byzantine=1, sigma=1.0,
            trials=10, rng=RngFactory(0).make("v"), tamper=tamper,
        )
        assert calls == [1] * 10

    def test_rejects_byzantine_majority(self):
        with pytest.raises(ConfigurationError):
            verify_lemma2_trimmed_mean(
                num_servers=4, num_byzantine=2, sigma=1.0,
                trials=10, rng=RngFactory(0).make("v"),
            )


class TestLemma3Verifier:
    def test_bound_holds_paper_topology(self):
        result = verify_lemma3_sparse_upload(
            num_clients=50, num_servers=10,
            trials=1500, rng=RngFactory(0).make("v"),
        )
        assert result.holds

    def test_bound_holds_small_topology(self):
        result = verify_lemma3_sparse_upload(
            num_clients=12, num_servers=4,
            trials=1500, rng=RngFactory(1).make("v"),
        )
        assert result.holds

    def test_rejects_k_below_p(self):
        with pytest.raises(ConfigurationError):
            verify_lemma3_sparse_upload(
                num_clients=5, num_servers=10,
                trials=10, rng=RngFactory(0).make("v"),
            )


class TestSoftmaxConstants:
    def test_gradient_matches_finite_difference(self):
        data = make_blobs(n=40)
        features = data.features
        weights = np.random.default_rng(1).normal(size=(5, 3)) * 0.1
        _, grad = softmax_loss_and_grad(weights, features, data.labels, 0.01)
        eps = 1e-6
        numeric = np.zeros_like(weights)
        for i in range(weights.shape[0]):
            for j in range(weights.shape[1]):
                w_plus = weights.copy()
                w_plus[i, j] += eps
                w_minus = weights.copy()
                w_minus[i, j] -= eps
                plus, _ = softmax_loss_and_grad(w_plus, features, data.labels, 0.01)
                minus, _ = softmax_loss_and_grad(w_minus, features, data.labels, 0.01)
                numeric[i, j] = (plus - minus) / (2 * eps)
        np.testing.assert_allclose(grad, numeric, atol=1e-6)

    def test_smoothness_positive_and_includes_l2(self):
        data = make_blobs()
        base = softmax_smoothness(data.features, 0.0)
        with_l2 = softmax_smoothness(data.features, 1.0)
        assert with_l2 == pytest.approx(base + 1.0)

    def test_optimum_has_small_gradient(self):
        data = make_blobs()
        weights, value = solve_softmax_optimum(data, 3, l2=0.1,
                                               tolerance=1e-8)
        _, grad = softmax_loss_and_grad(weights, data.features, data.labels, 0.1)
        assert np.linalg.norm(grad) < 1e-7
        assert value > 0

    def test_optimum_requires_positive_l2(self):
        with pytest.raises(ConfigurationError):
            solve_softmax_optimum(make_blobs(), 3, l2=0.0)

    def test_optimum_is_global(self):
        """Any perturbation of w* increases the objective."""
        data = make_blobs(n=100)
        weights, value = solve_softmax_optimum(data, 3, l2=0.1)
        rng = np.random.default_rng(5)
        for _ in range(5):
            perturbed = weights + rng.normal(scale=0.1, size=weights.shape)
            loss, _ = softmax_loss_and_grad(perturbed, data.features,
                                            data.labels, 0.1)
            assert loss >= value - 1e-10


class TestGammaHeterogeneity:
    def test_nonnegative(self):
        data = make_blobs(n=120)
        parts = iid_partition(data, 4, rng=RngFactory(0).make("p"))
        gamma = gamma_heterogeneity(parts, 3, l2=0.1)
        assert gamma >= 0.0

    def test_noniid_larger_than_iid(self):
        data = make_blobs(n=300)
        iid_parts = iid_partition(data, 5, rng=RngFactory(0).make("p"))
        skewed_parts = dirichlet_partition(data, 5, alpha=0.2,
                                           rng=RngFactory(0).make("q"))
        gamma_iid = gamma_heterogeneity(iid_parts, 3, l2=0.1)
        gamma_skewed = gamma_heterogeneity(skewed_parts, 3, l2=0.1)
        assert gamma_skewed > gamma_iid

    def test_precomputed_global_optimum(self):
        data = make_blobs(n=120)
        parts = iid_partition(data, 3, rng=RngFactory(0).make("p"))
        _, global_value = solve_softmax_optimum(data, 3, l2=0.1)
        gamma = gamma_heterogeneity(parts, 3, l2=0.1,
                                    global_optimum_value=global_value)
        assert gamma >= 0.0

    def test_rejects_empty_client_list(self):
        with pytest.raises(ConfigurationError):
            gamma_heterogeneity([], 3, l2=0.1)


class TestEmpiricalGradientStats:
    def test_g_bounds_sigma(self):
        data = make_blobs()
        g_sq, sigma_sq = empirical_gradient_stats(
            data, 3, l2=0.1, batch_size=16, num_probes=50,
            rng=RngFactory(0).make("g"),
        )
        assert g_sq > 0
        assert sigma_sq >= 0

    def test_larger_batches_reduce_variance(self):
        data = make_blobs(n=400)
        _, small_batch_var = empirical_gradient_stats(
            data, 3, l2=0.1, batch_size=8, num_probes=100,
            rng=RngFactory(0).make("g"),
        )
        _, large_batch_var = empirical_gradient_stats(
            data, 3, l2=0.1, batch_size=128, num_probes=100,
            rng=RngFactory(0).make("g"),
        )
        assert large_batch_var < small_batch_var

    def test_rejects_zero_probes(self):
        with pytest.raises(ConfigurationError):
            empirical_gradient_stats(
                make_blobs(), 3, l2=0.1, batch_size=8, num_probes=0,
                rng=RngFactory(0).make("g"),
            )
