"""Tests for the closed-form Theorem 1 / Lemma bounds."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import ConfigurationError
from repro.theory import (
    ProblemConstants,
    delta,
    delta_decomposition,
    lemma1_bound,
    lemma2_bound,
    lemma3_bound,
    theorem1_bound,
    theorem1_gamma,
    theorem1_learning_rate,
)


def make_constants(**overrides):
    defaults = dict(
        mu=0.5,
        smoothness=2.0,
        gradient_bound=1.5,
        sigma_sq=[0.1] * 50,
        gamma_heterogeneity=0.05,
        num_clients=50,
        num_servers=10,
        num_byzantine=2,
        local_steps=3,
        initial_gap_sq=4.0,
    )
    defaults.update(overrides)
    return ProblemConstants(**defaults)


class TestProblemConstants:
    def test_valid_construction(self):
        constants = make_constants()
        assert constants.mean_sigma_sq == pytest.approx(0.1)

    def test_rejects_l_below_mu(self):
        with pytest.raises(ConfigurationError):
            make_constants(mu=3.0, smoothness=2.0)

    def test_rejects_byzantine_majority(self):
        with pytest.raises(ConfigurationError):
            make_constants(num_byzantine=5)

    def test_rejects_k_below_p(self):
        with pytest.raises(ConfigurationError):
            make_constants(num_clients=5, sigma_sq=[0.1] * 5)

    def test_rejects_sigma_count_mismatch(self):
        with pytest.raises(ConfigurationError):
            make_constants(sigma_sq=[0.1] * 3)

    def test_rejects_negative_gamma(self):
        with pytest.raises(ConfigurationError):
            make_constants(gamma_heterogeneity=-1.0)


class TestLemmaBounds:
    def test_lemma1_formula(self):
        constants = make_constants()
        # 4 * eta^2 * E^2 * G^2 = 4 * 0.01 * 9 * 2.25
        assert lemma1_bound(constants, 0.1) == pytest.approx(4 * 0.01 * 9 * 2.25)

    def test_lemma2_formula(self):
        constants = make_constants()
        expected = 4 * 10 / (10 - 4) ** 2 * 0.01 * 9 * 2.25
        assert lemma2_bound(constants, 0.1) == pytest.approx(expected)

    def test_lemma2_grows_with_byzantine_count(self):
        values = [
            lemma2_bound(make_constants(num_byzantine=b), 0.1)
            for b in range(0, 5)
        ]
        assert values == sorted(values)
        assert values[-1] > values[0]

    def test_lemma3_formula(self):
        constants = make_constants()
        expected = (40 / 49) * (4 / 10) * 0.01 * 9 * 2.25
        assert lemma3_bound(constants, 0.1) == pytest.approx(expected)

    def test_lemma3_zero_when_k_equals_p(self):
        constants = make_constants(num_clients=10, sigma_sq=[0.1] * 10)
        assert lemma3_bound(constants, 0.1) == pytest.approx(0.0)

    def test_lemma3_decreases_with_more_servers(self):
        few = lemma3_bound(make_constants(num_servers=5), 0.1)
        many = lemma3_bound(make_constants(num_servers=25), 0.1)
        assert many < few


class TestDelta:
    def test_decomposition_sums_to_delta(self):
        constants = make_constants()
        decomposition = delta_decomposition(constants)
        assert set(decomposition) == {
            "heterogeneity", "drift", "sgd_variance", "byzantine",
            "partial_participation",
        }
        assert delta(constants) == pytest.approx(sum(decomposition.values()))

    def test_iid_data_zeroes_heterogeneity_term(self):
        constants = make_constants(gamma_heterogeneity=0.0)
        assert delta_decomposition(constants)["heterogeneity"] == 0.0

    def test_no_byzantine_still_pays_multi_server_price(self):
        """Even with B=0, aggregating on P servers leaves the 4/P term."""
        constants = make_constants(num_byzantine=0)
        decomposition = delta_decomposition(constants)
        assert decomposition["byzantine"] > 0.0  # 4P/P^2 = 4/P
        assert decomposition["byzantine"] == pytest.approx(
            4.0 / 10 * (3 * 1.5) ** 2
        )


class TestTheorem1:
    def test_gamma_picks_smoothness_branch(self):
        constants = make_constants()  # 8L/mu = 32 > E = 3
        assert theorem1_gamma(constants) == pytest.approx(32.0)

    def test_gamma_picks_local_steps_branch(self):
        constants = make_constants(mu=2.0, smoothness=2.0, local_steps=50)
        assert theorem1_gamma(constants) == pytest.approx(50.0)

    def test_learning_rate_schedule(self):
        constants = make_constants()
        assert theorem1_learning_rate(constants, 0) == pytest.approx(
            2.0 / (0.5 * 32.0)
        )

    def test_bound_decays_like_one_over_t(self):
        constants = make_constants()
        early = theorem1_bound(constants, 10)
        late = theorem1_bound(constants, 1000)
        assert late < early
        gamma = theorem1_gamma(constants)
        ratio = early / late
        assert ratio == pytest.approx((gamma + 1000) / (gamma + 10))

    def test_bound_positive(self):
        assert theorem1_bound(make_constants(), 0) > 0

    def test_rejects_negative_step(self):
        with pytest.raises(ConfigurationError):
            theorem1_bound(make_constants(), -1)
        with pytest.raises(ConfigurationError):
            theorem1_learning_rate(make_constants(), -1)

    @settings(max_examples=50, deadline=None)
    @given(
        byzantine=st.integers(0, 4),
        local_steps=st.integers(1, 10),
        step=st.integers(0, 10000),
    )
    def test_bound_monotone_in_byzantine_count(self, byzantine, local_steps,
                                               step):
        """More Byzantine servers can never improve the guarantee."""
        lesser = theorem1_bound(
            make_constants(num_byzantine=byzantine, local_steps=local_steps),
            step,
        )
        if byzantine + 1 <= 4:
            greater = theorem1_bound(
                make_constants(num_byzantine=byzantine + 1,
                               local_steps=local_steps),
                step,
            )
            assert greater >= lesser
