"""Tests for empirical power-law rate fitting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import ConfigurationError
from repro.theory import PowerLawFit, fit_power_law, halving_steps


class TestFitPowerLaw:
    def test_exact_one_over_t(self):
        steps = np.arange(1, 50, dtype=float)
        fit = fit_power_law(steps, 5.0 / steps)
        assert fit.exponent == pytest.approx(-1.0)
        assert fit.coefficient == pytest.approx(5.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_exact_inverse_sqrt(self):
        steps = np.arange(1, 50, dtype=float)
        fit = fit_power_law(steps, 2.0 / np.sqrt(steps))
        assert fit.exponent == pytest.approx(-0.5)

    def test_noisy_fit_close(self):
        rng = np.random.default_rng(0)
        steps = np.arange(1, 200, dtype=float)
        values = 3.0 / steps * np.exp(rng.normal(scale=0.05, size=steps.size))
        fit = fit_power_law(steps, values)
        assert fit.exponent == pytest.approx(-1.0, abs=0.05)
        assert fit.r_squared > 0.98

    def test_predict(self):
        fit = PowerLawFit(exponent=-1.0, coefficient=10.0, r_squared=1.0)
        assert fit.predict(5.0) == pytest.approx(2.0)
        with pytest.raises(ConfigurationError):
            fit.predict(0.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            fit_power_law([1.0, 2.0], [1.0, 0.5])  # too few points
        with pytest.raises(ConfigurationError):
            fit_power_law([0.0, 1.0, 2.0], [1.0, 1.0, 1.0])  # zero step
        with pytest.raises(ConfigurationError):
            fit_power_law([1.0, 2.0, 3.0], [1.0, -1.0, 1.0])  # negative value
        with pytest.raises(ConfigurationError):
            fit_power_law([1.0, 2.0, 3.0], [1.0, 2.0])  # shape mismatch

    @settings(max_examples=30, deadline=None)
    @given(
        exponent=st.floats(-2.0, -0.1),
        coefficient=st.floats(0.1, 100.0),
    )
    def test_recovers_arbitrary_power_laws(self, exponent, coefficient):
        steps = np.linspace(1.0, 100.0, 40)
        values = coefficient * steps ** exponent
        fit = fit_power_law(steps, values)
        assert fit.exponent == pytest.approx(exponent, abs=1e-6)
        assert fit.coefficient == pytest.approx(coefficient, rel=1e-6)


class TestHalvingSteps:
    def test_one_over_t_halves_on_doubling(self):
        steps = np.arange(1, 100, dtype=float)
        assert halving_steps(steps, 1.0 / steps) == pytest.approx(2.0)

    def test_inverse_sqrt_needs_quadrupling(self):
        steps = np.arange(1, 100, dtype=float)
        assert halving_steps(steps, 1.0 / np.sqrt(steps)) == pytest.approx(4.0)

    def test_non_decaying_is_infinite(self):
        steps = np.arange(1, 50, dtype=float)
        assert halving_steps(steps, steps) == float("inf")
