"""Tests for FedMSConfig validation and derived values."""

import pytest

from repro.common import ConfigurationError
from repro.core import FedMSConfig
from repro.core.config import UPLOAD_CODECS_ENV


class TestDefaults:
    def test_paper_settings_are_default(self):
        """Table II: K=50, P=10, E=3."""
        config = FedMSConfig()
        assert config.num_clients == 50
        assert config.num_servers == 10
        assert config.local_steps == 3

    def test_trim_ratio_defaults_to_b_over_p(self):
        config = FedMSConfig(num_servers=10, num_byzantine=2)
        assert config.resolved_trim_ratio == pytest.approx(0.2)

    def test_explicit_trim_ratio_wins(self):
        config = FedMSConfig(num_byzantine=2, trim_ratio=0.1)
        assert config.resolved_trim_ratio == pytest.approx(0.1)

    def test_byzantine_fraction(self):
        assert FedMSConfig(num_servers=10, num_byzantine=3).byzantine_fraction \
            == pytest.approx(0.3)


class TestValidation:
    def test_rejects_byzantine_majority(self):
        with pytest.raises(ConfigurationError, match="minority"):
            FedMSConfig(num_servers=10, num_byzantine=5)

    def test_accepts_byzantine_strict_minority(self):
        FedMSConfig(num_servers=10, num_byzantine=4)

    def test_rejects_trim_ratio_half(self):
        with pytest.raises(ConfigurationError):
            FedMSConfig(trim_ratio=0.5)

    def test_rejects_zero_clients(self):
        with pytest.raises(ConfigurationError):
            FedMSConfig(num_clients=0)

    def test_rejects_negative_byzantine(self):
        with pytest.raises(ConfigurationError):
            FedMSConfig(num_byzantine=-1)

    def test_rejects_unknown_strategy(self):
        with pytest.raises(ConfigurationError):
            FedMSConfig(upload_strategy="carrier_pigeon")

    def test_rejects_uploads_exceeding_servers(self):
        with pytest.raises(ConfigurationError):
            FedMSConfig(upload_strategy="multi", uploads_per_client=11,
                        num_servers=10)

    def test_rejects_eval_clients_above_k(self):
        with pytest.raises(ConfigurationError):
            FedMSConfig(num_clients=5, eval_clients=10)

    def test_rejects_nonpositive_lr(self):
        with pytest.raises(ConfigurationError):
            FedMSConfig(learning_rate=0.0)

    def test_rejects_zero_local_steps(self):
        with pytest.raises(ConfigurationError):
            FedMSConfig(local_steps=0)


class TestUploadCodecs:
    def test_default_is_identity(self, monkeypatch):
        monkeypatch.delenv(UPLOAD_CODECS_ENV, raising=False)
        assert FedMSConfig().resolved_upload_codecs == ()

    def test_explicit_chain_preserved(self):
        config = FedMSConfig(upload_codecs=["topk(0.05)", "int8"])
        assert tuple(config.resolved_upload_codecs) == ("topk(0.05)", "int8")

    def test_bad_chain_rejected_at_config_time(self):
        with pytest.raises(ConfigurationError, match="unknown codec"):
            FedMSConfig(upload_codecs=["gzip"])

    def test_terminal_mid_chain_rejected_at_config_time(self):
        with pytest.raises(ConfigurationError, match="terminal"):
            FedMSConfig(upload_codecs=["int8", "topk(0.05)"])

    def test_env_resolution(self, monkeypatch):
        monkeypatch.setenv(UPLOAD_CODECS_ENV, "topk(0.1),sign")
        assert tuple(FedMSConfig().resolved_upload_codecs) \
            == ("topk(0.1)", "sign")

    def test_explicit_field_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(UPLOAD_CODECS_ENV, "sign")
        config = FedMSConfig(upload_codecs=["int8"])
        assert tuple(config.resolved_upload_codecs) == ("int8",)

    def test_bad_env_chain_rejected(self, monkeypatch):
        monkeypatch.setenv(UPLOAD_CODECS_ENV, "warp_drive")
        with pytest.raises(ConfigurationError):
            FedMSConfig().resolved_upload_codecs
