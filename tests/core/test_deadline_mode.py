"""Deadline-driven rounds + health scoring on the flat Fed-MS trainer.

The acceptance scenarios of the asynchronous-aggregation milestone:
deadline mode must beat the barrier in simulated time under stragglers, a
crash-looping PS must be circuit-broken within bounded rounds and
readmitted after probation, exclusion must never push the counted quorum
below the degraded-quorum floor, stale broadcasts must be admitted within
the staleness bound without double-voting, and all of it must stay
bit-identical across the serial/thread/process execution backends.
"""

import warnings

import numpy as np
import pytest

from repro.attacks import make_attack
from repro.common import RngFactory
from repro.core import FedMSConfig, FedMSTrainer
from repro.core.filtering import quorum_floor
from repro.core.health import BreakerState
from repro.core.upload import RetryPolicy
from repro.data import ArrayDataset, iid_partition
from repro.models import SoftmaxRegression
from repro.simulation import FaultInjector, FaultPlan, ServerCrash


def make_blobs(n=300, num_classes=3, dim=6, seed=0):
    centers = np.random.default_rng(42).normal(scale=4.0,
                                               size=(num_classes, dim))
    rng = np.random.default_rng(seed)
    labels = np.arange(n) % num_classes
    features = centers[labels] + rng.normal(size=(n, dim))
    order = rng.permutation(n)
    return ArrayDataset(features[order], labels[order])


def make_trainer(num_clients=8, num_servers=10, num_byzantine=2,
                 seed=0, fault_injector=None, attack=None,
                 **config_kwargs):
    data = make_blobs(seed=seed)
    test = make_blobs(n=120, seed=seed + 1)
    parts = iid_partition(data, num_clients,
                          rng=RngFactory(seed).make("part"))
    config = FedMSConfig(
        num_clients=num_clients,
        num_servers=num_servers,
        num_byzantine=num_byzantine,
        local_steps=2,
        batch_size=8,
        learning_rate=0.2,
        eval_clients=2,
        seed=seed,
        **config_kwargs,
    )
    return FedMSTrainer(
        config,
        model_factory=lambda rng: SoftmaxRegression(6, 3, rng=rng),
        client_datasets=parts,
        test_dataset=test,
        attack=make_attack(attack) if attack else None,
        fault_injector=fault_injector,
    )


class TestDeadlineVsBarrier:
    def test_deadline_faster_under_stragglers(self):
        kwargs = dict(num_byzantine=0, straggler_rate=0.2)
        with make_trainer(**kwargs) as barrier:
            barrier.run(4, eval_every=10)
        with make_trainer(aggregation_mode="deadline", **kwargs) as deadline:
            deadline.run(4, eval_every=10)
        assert (deadline.history.total_simulated_time_s
                < barrier.history.total_simulated_time_s)

    def test_barrier_records_no_misses(self):
        with make_trainer(num_byzantine=0, straggler_rate=0.2) as trainer:
            trainer.run(3, eval_every=10)
        assert trainer.history.total_deadline_missed == 0
        assert trainer.history.total_late_admitted == 0

    def test_deadline_run_converges(self):
        with make_trainer(num_byzantine=0, aggregation_mode="deadline",
                          straggler_rate=0.2) as trainer:
            history = trainer.run(8, eval_every=8)
        assert history.final_accuracy is not None
        assert history.final_accuracy > 0.8


class TestStaleAdmission:
    def test_late_broadcasts_admitted_within_staleness(self):
        # A high straggler rate makes consecutive late rounds (the
        # admission precondition: only a sender late *again* delivers its
        # buffered broadcast) near-certain over a few rounds.
        with make_trainer(num_byzantine=0, aggregation_mode="deadline",
                          straggler_rate=0.45, max_staleness=1) as trainer:
            history = trainer.run(6, eval_every=10)
        assert history.total_deadline_missed > 0
        assert history.total_late_admitted > 0

    def test_no_admissions_with_zero_staleness(self):
        with make_trainer(num_byzantine=0, aggregation_mode="deadline",
                          straggler_rate=0.45, max_staleness=0) as trainer:
            history = trainer.run(6, eval_every=10)
        assert history.total_late_admitted == 0


class TestCircuitBreaker:
    def run_with_crash_loop(self, num_rounds=12, **kwargs):
        # PS 4 crashes hard for rounds 1-6, then stays healthy.
        plan = FaultPlan(crashes=(ServerCrash(4, 1, 7),))
        injector = FaultInjector(plan)
        trainer = make_trainer(num_byzantine=0, health_scoring=True,
                               fault_injector=injector, **kwargs)
        with trainer:
            history = trainer.run(num_rounds, eval_every=num_rounds)
        return history

    def test_crash_loop_opens_breaker_within_bounded_rounds(self):
        history = self.run_with_crash_loop()
        states = history.breaker_state_trace(4)
        # Decay 0.7 from 1.0 crosses 0.4 after 3 bad rounds: opened by
        # round 3 (crash window starts at round 1).
        assert BreakerState.OPEN in states[:4]

    def test_breaker_excludes_then_readmits_after_probation(self):
        history = self.run_with_crash_loop()
        excluded = history.excluded_server_trace
        assert any(4 in row for row in excluded)
        states = history.breaker_state_trace(4)
        closed_again = [i for i, s in enumerate(states)
                        if s == BreakerState.CLOSED
                        and BreakerState.OPEN in states[:i]]
        assert closed_again  # readmitted after the probation window
        # Once re-closed and healthy, it is no longer excluded.
        assert 4 not in excluded[closed_again[-1]]

    def test_health_scores_recorded_per_round(self):
        history = self.run_with_crash_loop(num_rounds=4)
        scores = history.health_score_trace(4)
        assert all(s is not None for s in scores)
        assert min(s for s in scores if s is not None) < 1.0


class TestQuorumFloorInvariant:
    def test_exclusions_never_breach_degraded_floor(self):
        # Few PSs and an aggressive crash schedule: the floor 2B+1 must
        # hold on the *counted* quorum every round regardless.
        plan = FaultPlan(crashes=(ServerCrash(0, 1, 8),
                                  ServerCrash(1, 2, 9)))
        injector = FaultInjector(plan)
        num_byzantine = 1
        with make_trainer(num_servers=5, num_byzantine=num_byzantine,
                          attack="noise", health_scoring=True,
                          aggregation_mode="deadline", straggler_rate=0.3,
                          fault_injector=injector) as trainer:
            history = trainer.run(10, eval_every=10)
        floor = quorum_floor(num_byzantine)
        for record in history.records:
            alive = record.alive_servers
            assert alive is not None
            counted = alive - len(record.excluded_servers)
            assert counted >= min(floor, alive)


class TestBackendBitIdentity:
    def run_backend(self, backend):
        with make_trainer(num_byzantine=0, aggregation_mode="deadline",
                          straggler_rate=0.3, health_scoring=True,
                          execution_backend=backend,
                          num_workers=2) as trainer:
            history = trainer.run(5, eval_every=5)
            vector = trainer.clients[0].model_vector()
        trace = [(r.train_loss, r.simulated_time_s, r.deadline_missed,
                  r.late_admitted, tuple(r.excluded_servers))
                 for r in history.records]
        return vector, trace

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_matches_serial(self, backend):
        serial_vec, serial_trace = self.run_backend("serial")
        other_vec, other_trace = self.run_backend(backend)
        assert np.array_equal(serial_vec, other_vec)
        assert serial_trace == other_trace


class TestRetryPolicyUnification:
    def test_config_resolves_single_policy(self):
        policy = RetryPolicy(max_retries=4, base_backoff_s=0.1)
        config = FedMSConfig(num_clients=4, num_servers=3,
                             num_byzantine=0, retry_policy=policy)
        assert config.resolved_retry_policy == policy

    def test_divergent_legacy_kwargs_warn(self):
        from repro.core import FaultConfig

        with pytest.warns(DeprecationWarning):
            FedMSConfig(
                num_clients=4, num_servers=3, num_byzantine=0,
                retry_policy=RetryPolicy(max_retries=5),
                faults=FaultConfig(max_upload_retries=1),
            )

    def test_consistent_kwargs_do_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            FedMSConfig(num_clients=4, num_servers=3, num_byzantine=0,
                        retry_policy=RetryPolicy(max_retries=2))
