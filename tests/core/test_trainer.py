"""Integration tests for the Fed-MS training loop.

These use a small linearly-separable blob task so full federated runs take
well under a second each.
"""

import numpy as np
import pytest

from repro.aggregation import make_rule
from repro.attacks import InconsistentAttack, RandomAttack, make_attack
from repro.common import ConfigurationError, RngFactory
from repro.core import FedMSConfig, FedMSTrainer, make_fedavg_trainer
from repro.data import ArrayDataset, iid_partition
from repro.models import SoftmaxRegression
from repro.simulation import Network


def make_blobs(n=300, num_classes=3, dim=6, seed=0):
    """Linearly separable Gaussian blobs with *fixed* class centers, so
    datasets generated from different sample seeds share one distribution."""
    centers = np.random.default_rng(42).normal(scale=4.0,
                                               size=(num_classes, dim))
    rng = np.random.default_rng(seed)
    labels = np.arange(n) % num_classes
    features = centers[labels] + rng.normal(size=(n, dim))
    order = rng.permutation(n)
    return ArrayDataset(features[order], labels[order])


def make_trainer(num_clients=8, num_servers=5, num_byzantine=2, attack=None,
                 filter_rule=None, seed=0, trim_ratio=None, network=None,
                 byzantine_ids=None, upload_strategy="sparse", lr=0.2):
    data = make_blobs(seed=seed)
    test = make_blobs(n=120, seed=seed + 1)
    parts = iid_partition(data, num_clients, rng=RngFactory(seed).make("part"))
    config = FedMSConfig(
        num_clients=num_clients,
        num_servers=num_servers,
        num_byzantine=num_byzantine,
        local_steps=2,
        batch_size=8,
        learning_rate=lr,
        trim_ratio=trim_ratio,
        upload_strategy=upload_strategy,
        eval_clients=2,
        seed=seed,
    )
    return FedMSTrainer(
        config,
        model_factory=lambda rng: SoftmaxRegression(6, 3, rng=rng),
        client_datasets=parts,
        test_dataset=test,
        attack=attack,
        filter_rule=filter_rule,
        byzantine_ids=byzantine_ids,
        network=network,
    )


class TestConstruction:
    def test_requires_attack_when_byzantine(self):
        with pytest.raises(ConfigurationError, match="attack"):
            make_trainer(num_byzantine=2, attack=None)

    def test_dataset_count_must_match(self):
        data = make_blobs()
        parts = iid_partition(data, 4, rng=RngFactory(0).make("p"))
        with pytest.raises(ConfigurationError):
            FedMSTrainer(
                FedMSConfig(num_clients=8, num_servers=3, num_byzantine=0),
                model_factory=lambda rng: SoftmaxRegression(6, 3, rng=rng),
                client_datasets=parts,
                test_dataset=data,
            )

    def test_byzantine_ids_resolved_randomly_by_default(self):
        trainer = make_trainer(attack=RandomAttack())
        assert len(trainer.byzantine_ids) == 2
        assert all(0 <= i < 5 for i in trainer.byzantine_ids)

    def test_byzantine_ids_override(self):
        trainer = make_trainer(attack=RandomAttack(), byzantine_ids=[0, 4])
        assert trainer.byzantine_ids == frozenset({0, 4})
        assert trainer.servers[0].is_byzantine
        assert trainer.servers[4].is_byzantine
        assert not trainer.servers[2].is_byzantine

    def test_byzantine_ids_wrong_count_rejected(self):
        with pytest.raises(ConfigurationError):
            make_trainer(attack=RandomAttack(), byzantine_ids=[0])

    def test_byzantine_ids_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            make_trainer(attack=RandomAttack(), byzantine_ids=[0, 7])

    def test_all_clients_share_initial_model(self):
        trainer = make_trainer(num_byzantine=0)
        first = trainer.clients[0].model_vector()
        for client in trainer.clients[1:]:
            np.testing.assert_array_equal(first, client.model_vector())


class TestRoundMechanics:
    def test_run_round_returns_record(self):
        trainer = make_trainer(num_byzantine=0)
        record = trainer.run_round()
        assert record.round_index == 0
        assert np.isfinite(record.train_loss)
        assert record.test_accuracy is not None

    def test_eval_every_skips_evaluation(self):
        trainer = make_trainer(num_byzantine=0)
        history = trainer.run(4, eval_every=2)
        assert history.evaluated_rounds == [1, 3]

    def test_final_round_always_evaluated(self):
        trainer = make_trainer(num_byzantine=0)
        history = trainer.run(3, eval_every=10)
        assert history.evaluated_rounds == [2]

    def test_upload_message_count_sparse(self):
        trainer = make_trainer(num_byzantine=0)
        record = trainer.run_round()
        assert record.upload_messages == 8  # K

    def test_upload_message_count_full(self):
        trainer = make_trainer(num_byzantine=0, upload_strategy="full")
        record = trainer.run_round()
        assert record.upload_messages == 8 * 5  # K * P

    def test_progress_callback_invoked(self):
        trainer = make_trainer(num_byzantine=0)
        seen = []
        trainer.run(3, progress=seen.append)
        assert [r.round_index for r in seen] == [0, 1, 2]

    def test_rejects_nonpositive_rounds(self):
        trainer = make_trainer(num_byzantine=0)
        with pytest.raises(ConfigurationError):
            trainer.run(0)
        with pytest.raises(ConfigurationError):
            trainer.run(1, eval_every=0)

    def test_clients_synchronized_after_round(self):
        """Under a consistent attack all clients adopt the same filtered
        model (Algorithm 1: identical inputs to an identical filter)."""
        trainer = make_trainer(attack=RandomAttack())
        trainer.run_round()
        first = trainer.clients[0].model_vector()
        for client in trainer.clients[1:]:
            np.testing.assert_allclose(first, client.model_vector())

    def test_inconsistent_attack_desynchronizes_clients(self):
        """A client-dependent attack sends different lies to different
        clients, so filtered models may differ across clients."""
        trainer = make_trainer(attack=InconsistentAttack(scale=50.0))
        trainer.run_round()
        first = trainer.clients[0].model_vector()
        assert any(
            not np.allclose(first, client.model_vector())
            for client in trainer.clients[1:]
        )

    def test_evaluate_scores_once_when_models_identical(self, monkeypatch):
        """After a lossless consistent round all eval clients hold the
        same model, so the test set is forward-passed only once."""
        from repro.core.client import Client

        trainer = make_trainer(attack=RandomAttack())
        trainer.run_round(evaluate=False)
        calls = []
        original = Client.evaluate

        def counting(self, *args, **kwargs):
            calls.append(self.client_id)
            return original(self, *args, **kwargs)

        monkeypatch.setattr(Client, "evaluate", counting)
        loss, acc = trainer._evaluate()
        assert len(calls) == 1
        assert np.isfinite(loss) and 0.0 <= acc <= 1.0

    def test_evaluate_falls_back_per_client_when_models_differ(
            self, monkeypatch):
        from repro.core.client import Client

        trainer = make_trainer(num_byzantine=0)
        trainer.run_round(evaluate=False)
        # Force divergence: nudge the second eval client's model.
        nudged = trainer.clients[1].model_vector()
        nudged[0] += 1e-6
        trainer.clients[1].set_model_vector(nudged)
        calls = []
        original = Client.evaluate

        def counting(self, *args, **kwargs):
            calls.append(self.client_id)
            return original(self, *args, **kwargs)

        monkeypatch.setattr(Client, "evaluate", counting)
        trainer._evaluate()
        assert len(calls) == trainer.config.eval_clients


class TestDeterminism:
    def test_same_seed_same_history(self):
        a = make_trainer(attack=make_attack("noise"), seed=5).run(3)
        b = make_trainer(attack=make_attack("noise"), seed=5).run(3)
        np.testing.assert_allclose(a.accuracies, b.accuracies)
        np.testing.assert_allclose(a.train_losses, b.train_losses)

    def test_different_seed_different_history(self):
        a = make_trainer(attack=make_attack("noise"), seed=5).run(3)
        b = make_trainer(attack=make_attack("noise"), seed=6).run(3)
        assert a.train_losses != b.train_losses


class TestByzantineResilience:
    """The paper's headline phenomena, on a problem small enough for CI."""

    def test_fed_ms_survives_random_attack(self):
        defended = make_trainer(attack=RandomAttack(), seed=1).run(15,
                                                                   eval_every=15)
        undefended = make_trainer(attack=RandomAttack(), seed=1,
                                  filter_rule=make_rule("mean")).run(
                                      15, eval_every=15)
        assert defended.final_accuracy > 0.85
        assert defended.final_accuracy > undefended.final_accuracy + 0.15
        # The undefended model's loss explodes even when a convex task keeps
        # some accuracy (random [-10, 10] weights dominate the average).
        defended_loss = defended.records[-1].test_loss
        undefended_loss = undefended.records[-1].test_loss
        assert undefended_loss > 3 * defended_loss

    def test_no_byzantine_matches_vanilla(self):
        """Fig. 3(a): with epsilon = 0 Fed-MS and vanilla FL coincide in
        final quality."""
        fed_ms = make_trainer(num_byzantine=0, seed=2).run(10, eval_every=10)
        vanilla = make_trainer(num_byzantine=0, seed=2,
                               filter_rule=make_rule("mean")).run(
                                   10, eval_every=10)
        assert abs(fed_ms.final_accuracy - vanilla.final_accuracy) < 0.1

    def test_under_trimmed_filter_fails_against_strong_attack(self):
        """Fed-MS- (beta < epsilon) does not defend: with 2 Byzantine of 5
        servers, trimming only 1 per tail lets the attack through."""
        weak = make_trainer(attack=RandomAttack(), seed=3,
                            trim_ratio=0.2).run(12, eval_every=12)
        strong = make_trainer(attack=RandomAttack(), seed=3,
                              trim_ratio=0.4).run(12, eval_every=12)
        assert strong.final_accuracy >= weak.final_accuracy

    def test_all_paper_attacks_run(self):
        for name in ("noise", "random", "safeguard", "backward"):
            history = make_trainer(attack=make_attack(name), seed=4).run(2)
            assert len(history) == 2


class TestLossyNetwork:
    def test_drops_disable_fast_path_and_still_train(self):
        network = Network(drop_probability=0.2,
                          rng=RngFactory(0).make("net"))
        trainer = make_trainer(num_byzantine=0, network=network)
        history = trainer.run(3)
        assert len(history) == 3
        assert network.stats.dropped_total > 0


class TestServerCrash:
    def test_silent_ps_tolerated(self):
        """A PS that stops transmitting mid-experiment (crash, jamming) just
        shrinks the filter's input from P to P-1 models; training continues
        and converges."""
        from repro.simulation import Message

        def dead_server_rule(message: Message) -> bool:
            return (message.sender.role == "server"
                    and message.sender.index == 0
                    and message.tag == "dissemination"
                    and message.round_index >= 3)

        network = Network(drop_rule=dead_server_rule)
        trainer = make_trainer(num_byzantine=0, network=network, seed=6)
        history = trainer.run(12, eval_every=12)
        assert history.final_accuracy > 0.85
        assert network.stats.dropped_total > 0

    def test_crashed_ps_still_counted_as_topology(self):
        """Uploads routed to the dead PS are not lost (only its
        disseminations are suppressed), so aggregation still succeeds."""
        from repro.simulation import Message

        network = Network(drop_rule=lambda m: (
            m.sender.role == "server" and m.sender.index == 1
            and m.tag == "dissemination"
        ))
        trainer = make_trainer(num_byzantine=0, network=network, seed=7)
        trainer.run(3)
        assert len(trainer.servers[1].aggregate_history) == 3


class TestFedAvgBaseline:
    def test_single_server_topology(self):
        data = make_blobs()
        parts = iid_partition(data, 6, rng=RngFactory(0).make("p"))
        trainer = make_fedavg_trainer(
            model_factory=lambda rng: SoftmaxRegression(6, 3, rng=rng),
            client_datasets=parts,
            test_dataset=make_blobs(n=90, seed=9),
            learning_rate=0.2,
        )
        assert len(trainer.servers) == 1
        history = trainer.run(10, eval_every=10)
        assert history.final_accuracy > 0.85
