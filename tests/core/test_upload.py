"""Tests for upload strategies and their communication-cost contracts."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import ConfigurationError, RngFactory
from repro.core import (
    FedMSConfig,
    FullUpload,
    MultiUpload,
    RetryPolicy,
    SparseUpload,
    make_upload_strategy,
)
from repro.core.config import FaultConfig


class TestSparseUpload:
    def test_one_server_per_client(self):
        assignment = SparseUpload().assign(20, 5, rng=RngFactory(0).make("u"))
        assert len(assignment) == 20
        assert all(len(targets) == 1 for targets in assignment)
        assert all(0 <= targets[0] < 5 for targets in assignment)

    def test_cost_is_k(self):
        assert SparseUpload().uploads_per_round(50, 10) == 50

    def test_roughly_uniform_over_servers(self):
        assignment = SparseUpload().assign(5000, 10, rng=RngFactory(0).make("u"))
        counts = np.bincount([t[0] for t in assignment], minlength=10)
        assert counts.min() > 350  # E = 500 per server
        assert counts.max() < 650

    def test_deterministic_given_seed(self):
        a = SparseUpload().assign(10, 3, rng=RngFactory(1).make("u"))
        b = SparseUpload().assign(10, 3, rng=RngFactory(1).make("u"))
        assert a == b


class TestFullUpload:
    def test_every_server_per_client(self):
        assignment = FullUpload().assign(4, 3, rng=RngFactory(0).make("u"))
        assert all(targets == [0, 1, 2] for targets in assignment)

    def test_cost_is_k_times_p(self):
        assert FullUpload().uploads_per_round(50, 10) == 500


class TestMultiUpload:
    def test_distinct_servers(self):
        assignment = MultiUpload(3).assign(20, 5, rng=RngFactory(0).make("u"))
        for targets in assignment:
            assert len(targets) == 3
            assert len(set(targets)) == 3

    def test_cost_scales_with_count(self):
        assert MultiUpload(3).uploads_per_round(50, 10) == 150

    def test_rejects_count_above_servers(self):
        with pytest.raises(ConfigurationError):
            MultiUpload(6).assign(2, 5, rng=RngFactory(0).make("u"))

    def test_rejects_nonpositive_count(self):
        with pytest.raises(ConfigurationError):
            MultiUpload(0)


def _config(**kwargs):
    kwargs.setdefault("num_clients", 6)
    kwargs.setdefault("num_servers", 4)
    kwargs.setdefault("num_byzantine", 0)
    return FedMSConfig(**kwargs)


class TestFactory:
    def test_builds_each_kind_from_config(self):
        assert isinstance(
            make_upload_strategy(_config(upload_strategy="sparse")),
            SparseUpload,
        )
        assert isinstance(
            make_upload_strategy(_config(upload_strategy="full")),
            FullUpload,
        )
        multi = make_upload_strategy(
            _config(upload_strategy="multi", uploads_per_client=2)
        )
        assert isinstance(multi, MultiUpload)
        assert multi.count == 2

    def test_unknown_name_rejected_at_config_time(self):
        with pytest.raises(ConfigurationError):
            _config(upload_strategy="smoke_signals")

    def test_legacy_name_form_is_deprecated(self):
        with pytest.warns(DeprecationWarning):
            strategy = make_upload_strategy("sparse")
        assert isinstance(strategy, SparseUpload)
        with pytest.warns(DeprecationWarning):
            multi = make_upload_strategy("multi", uploads_per_client=3)
        assert multi.count == 3

    def test_config_form_rejects_stray_kwarg(self):
        with pytest.raises(ConfigurationError):
            make_upload_strategy(_config(), uploads_per_client=2)

    def test_rejects_non_config_argument(self):
        with pytest.raises(ConfigurationError):
            make_upload_strategy(42)


class TestCostContract:
    @settings(max_examples=30, deadline=None)
    @given(num_clients=st.integers(1, 60), num_servers=st.integers(1, 12))
    def test_assignment_length_matches_declared_cost(self, num_clients,
                                                     num_servers):
        """For every strategy, the declared uploads_per_round equals the
        number of (client, server) pairs the assignment actually creates —
        the invariant the comm-cost benchmark relies on."""
        rng = RngFactory(0).make(f"u/{num_clients}/{num_servers}")
        strategies = [SparseUpload(), FullUpload()]
        if num_servers >= 2:
            strategies.append(MultiUpload(2))
        for strategy in strategies:
            assignment = strategy.assign(num_clients, num_servers, rng=rng)
            actual = sum(len(targets) for targets in assignment)
            assert actual == strategy.uploads_per_round(num_clients, num_servers)


class TestRetryPolicy:
    def test_backoff_grows_geometrically(self):
        policy = RetryPolicy(max_retries=3, base_backoff_s=0.1,
                             backoff_factor=2.0)
        assert policy.backoff_s(1) == pytest.approx(0.1)
        assert policy.backoff_s(2) == pytest.approx(0.2)
        assert policy.backoff_s(3) == pytest.approx(0.4)

    def test_backoff_rejects_attempt_zero(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy().backoff_s(0)

    def test_first_retry_hits_same_server(self):
        policy = RetryPolicy()
        rng = RngFactory(0).make("retry")
        assert policy.next_target(1, 3, [0, 1, 2, 3], rng=rng) == 3

    def test_later_retries_resample_alive_servers(self):
        policy = RetryPolicy()
        rng = RngFactory(0).make("retry")
        targets = {policy.next_target(2, 3, [0, 1, 2, 3], rng=rng)
                   for _ in range(50)}
        assert targets == {0, 1, 2}  # failed PS 3 is excluded

    def test_falls_back_to_failed_server_when_alone(self):
        policy = RetryPolicy()
        rng = RngFactory(0).make("retry")
        assert policy.next_target(2, 3, [3], rng=rng) == 3

    def test_no_alive_servers(self):
        policy = RetryPolicy()
        rng = RngFactory(0).make("retry")
        assert policy.next_target(2, 3, [], rng=rng) is None

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ConfigurationError):
            RetryPolicy(base_backoff_s=-0.1)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_factor=0.5)

    def test_from_fedms_config(self):
        config = _config(faults=FaultConfig(
            max_upload_retries=5, retry_backoff_s=0.25, backoff_factor=3.0,
        ))
        policy = RetryPolicy.from_config(config)
        assert policy.max_retries == 5
        assert policy.base_backoff_s == pytest.approx(0.25)
        assert policy.backoff_factor == pytest.approx(3.0)

    def test_from_bare_fault_config(self):
        policy = RetryPolicy.from_config(FaultConfig(max_upload_retries=7))
        assert policy.max_retries == 7
