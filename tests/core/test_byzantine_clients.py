"""Integration tests for the dual-adversary extension: Byzantine clients
(and optionally Byzantine PSs) with server-side robust aggregation."""

import numpy as np
import pytest

from repro.aggregation import make_rule
from repro.attacks import ClientScalingAttack, RandomAttack, make_client_attack
from repro.common import ConfigurationError, RngFactory
from repro.core import FedMSConfig, FedMSTrainer
from repro.data import ArrayDataset, iid_partition
from repro.models import SoftmaxRegression


def make_blobs(n=300, num_classes=3, dim=6, seed=0):
    centers = np.random.default_rng(42).normal(scale=4.0,
                                               size=(num_classes, dim))
    rng = np.random.default_rng(seed)
    labels = np.arange(n) % num_classes
    features = centers[labels] + rng.normal(size=(n, dim))
    order = rng.permutation(n)
    return ArrayDataset(features[order], labels[order])


def make_trainer(num_byzantine_clients=0, client_attack=None,
                 server_rule=None, attack=None, num_byzantine=0,
                 byzantine_client_ids=None, upload_strategy="sparse", seed=0):
    data = make_blobs(seed=seed)
    test = make_blobs(n=120, seed=seed + 1)
    parts = iid_partition(data, 10, rng=RngFactory(seed).make("part"))
    config = FedMSConfig(
        num_clients=10, num_servers=5, num_byzantine=num_byzantine,
        local_steps=2, batch_size=8, learning_rate=0.2, eval_clients=2,
        upload_strategy=upload_strategy, seed=seed,
    )
    return FedMSTrainer(
        config,
        model_factory=lambda rng: SoftmaxRegression(6, 3, rng=rng),
        client_datasets=parts,
        test_dataset=test,
        attack=attack,
        client_attack=client_attack,
        num_byzantine_clients=num_byzantine_clients,
        byzantine_client_ids=byzantine_client_ids,
        server_rule=server_rule,
    )


class TestConstruction:
    def test_requires_attack_when_byzantine_clients(self):
        with pytest.raises(ConfigurationError, match="client_attack"):
            make_trainer(num_byzantine_clients=2)

    def test_rejects_client_majority(self):
        with pytest.raises(ConfigurationError, match="minority"):
            make_trainer(num_byzantine_clients=5,
                         client_attack=ClientScalingAttack())

    def test_random_placement_by_default(self):
        trainer = make_trainer(num_byzantine_clients=3,
                               client_attack=ClientScalingAttack())
        assert len(trainer.byzantine_client_ids) == 3

    def test_explicit_placement(self):
        trainer = make_trainer(num_byzantine_clients=2,
                               client_attack=ClientScalingAttack(),
                               byzantine_client_ids=[0, 9])
        assert trainer.byzantine_client_ids == frozenset({0, 9})

    def test_placement_count_mismatch(self):
        with pytest.raises(ConfigurationError):
            make_trainer(num_byzantine_clients=2,
                         client_attack=ClientScalingAttack(),
                         byzantine_client_ids=[1])

    def test_placement_out_of_range(self):
        with pytest.raises(ConfigurationError):
            make_trainer(num_byzantine_clients=2,
                         client_attack=ClientScalingAttack(),
                         byzantine_client_ids=[0, 99])

    def test_no_byzantine_clients_by_default(self):
        trainer = make_trainer()
        assert trainer.byzantine_client_ids == frozenset()


class TestDualAdversaryTraining:
    def test_sign_flip_attack_disrupts_plain_averaging(self):
        """With plain-mean PSs, reversed client updates stall training
        (3 of 10 clients uploading -5x progress makes the average step
        backwards); a robust server rule (coordinate median) contains it.

        Note: a pure scaling attack cannot harm a *linear* model's accuracy
        (the decision boundary is scale-invariant), which is why this test
        uses the sign flip. Full upload is used because server-side
        robustness requires each PS to see enough uploads for a median to
        have a benign majority — under sparse upload a PS receives ~K/P
        uploads and a single Byzantine client can own a server."""
        from repro.attacks import ClientSignFlipAttack

        undefended = make_trainer(
            num_byzantine_clients=3,
            client_attack=ClientSignFlipAttack(scale=5.0),
            upload_strategy="full",
            seed=1,
        ).run(12, eval_every=12)
        defended = make_trainer(
            num_byzantine_clients=3,
            client_attack=ClientSignFlipAttack(scale=5.0),
            server_rule=make_rule("median"),
            upload_strategy="full",
            seed=1,
        ).run(12, eval_every=12)
        assert defended.final_accuracy > undefended.final_accuracy + 0.1

    def test_both_sides_byzantine(self):
        """Byzantine PSs *and* Byzantine clients, defenses on both sides:
        training still converges to a useful model."""
        trainer = make_trainer(
            num_byzantine=1,
            attack=RandomAttack(),
            num_byzantine_clients=2,
            client_attack=make_client_attack("client_sign_flip"),
            server_rule=make_rule("median"),
            upload_strategy="full",
            seed=2,
        )
        history = trainer.run(15, eval_every=15)
        assert history.final_accuracy > 0.7

    def test_honest_client_updates_untouched(self):
        """With Byzantine clients present, honest clients' uploads are the
        vectors their local training produced."""
        trainer = make_trainer(
            num_byzantine_clients=2,
            client_attack=ClientScalingAttack(factor=100.0),
            byzantine_client_ids=[0, 1],
            seed=3,
        )
        trainer.run_round()
        # Byzantine uploads dominate a plain mean; check aggregates moved
        # far from honest ones, i.e. the tampering actually reached a PS.
        norms = [np.linalg.norm(server.current_aggregate)
                 for server in trainer.servers]
        honest_norm = np.linalg.norm(trainer.clients[2].model_vector())
        assert max(norms) > honest_norm  # at least one PS was poisoned

    def test_deterministic(self):
        a = make_trainer(num_byzantine_clients=2,
                         client_attack=make_client_attack("client_noise"),
                         seed=5).run(3)
        b = make_trainer(num_byzantine_clients=2,
                         client_attack=make_client_attack("client_noise"),
                         seed=5).run(3)
        np.testing.assert_allclose(a.train_losses, b.train_losses)


class TestServerRule:
    def test_server_rule_applied_without_byzantine_clients(self):
        """A robust server rule is usable on its own (pure Yin et al.)."""
        trainer = make_trainer(server_rule=make_rule("trimmed_mean",
                                                     trim_ratio=0.2))
        history = trainer.run(10, eval_every=10)
        assert history.final_accuracy > 0.8
