"""Tests for the composable upload codec pipeline."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import ConfigurationError
from repro.core import (
    CodecPipeline,
    EncodedUpdate,
    Int8Quantizer,
    SignQuantizer,
    TopKSparsifier,
    available_codecs,
    make_codec,
    make_codec_pipeline,
)
from repro.core.codecs import (
    MIN_BROADCAST_KEEP_RATIO,
    CyclicSparsifier,
    IdentityCodec,
    broadcast_variant,
    parse_codec_spec,
)


def _vector(dim=500, seed=0, scale=1.0):
    return np.random.default_rng(seed).normal(scale=scale, size=dim)


finite_vectors = st.lists(
    st.floats(min_value=-1e6, max_value=1e6, allow_nan=False,
              allow_infinity=False, width=64),
    min_size=1, max_size=200,
).map(np.asarray)


class TestTopK:
    def test_keeps_largest_magnitudes(self):
        vector = np.array([0.1, -5.0, 0.2, 3.0, -0.05])
        decoded = make_codec_pipeline(["topk(0.4)"]).encode(vector).decode()
        np.testing.assert_allclose(decoded, [0.0, -5.0, 0.0, 3.0, 0.0])

    def test_full_ratio_is_lossless(self):
        vector = _vector()
        decoded = make_codec_pipeline(["topk(1.0)"]).encode(vector).decode()
        np.testing.assert_array_equal(decoded, vector)

    @settings(max_examples=30, deadline=None)
    @given(vector=finite_vectors,
           ratio=st.floats(min_value=0.01, max_value=1.0))
    def test_support_is_exact_and_rest_zero(self, vector, ratio):
        encoded = make_codec_pipeline([f"topk({ratio})"]).encode(vector)
        decoded = encoded.decode()
        support = decoded != 0.0
        # Values on the support round-trip exactly; off-support is zero
        # ("unchanged" once applied to a delta), never a clobbered weight.
        np.testing.assert_array_equal(decoded[support], vector[support])
        kept = np.abs(vector[support])
        dropped = np.abs(vector[~support])
        if kept.size and dropped.size:
            assert kept.min() >= dropped.max()

    def test_ratio_validation(self):
        for ratio in (0.0, -0.1, 1.5):
            with pytest.raises(ConfigurationError):
                TopKSparsifier(ratio)

    def test_at_least_one_coordinate(self):
        encoded = make_codec_pipeline(["topk(0.001)"]).encode(np.ones(3))
        assert np.count_nonzero(encoded.decode()) == 1


class TestCyclic:
    def test_support_is_shared_across_senders(self):
        # The trim-compatibility property: two different vectors encoded
        # with the same salt decode to the same support, so coordinate-wise
        # filters compare fresh values with fresh values.
        pipeline = make_codec_pipeline(["cyclic(0.25)"])
        a = pipeline.encode(_vector(seed=1), salt=7).decode()
        b = pipeline.encode(_vector(seed=2), salt=7).decode()
        np.testing.assert_array_equal(a != 0.0, b != 0.0)

    def test_support_cycles_with_salt(self):
        vector = _vector(dim=8) + 10.0  # no accidental zeros
        pipeline = make_codec_pipeline(["cyclic(0.25)"])
        supports = [
            np.flatnonzero(pipeline.encode(vector, salt=t).decode())
            for t in range(4)
        ]
        covered = np.sort(np.concatenate(supports))
        # One full period covers every coordinate exactly once.
        np.testing.assert_array_equal(covered, np.arange(8))
        # ...and the schedule is periodic in the salt.
        np.testing.assert_array_equal(
            supports[0],
            np.flatnonzero(pipeline.encode(vector, salt=4).decode()),
        )

    def test_values_on_support_round_trip_exactly(self):
        vector = _vector()
        decoded = make_codec_pipeline(["cyclic(0.2)"]).encode(
            vector, salt=3).decode()
        support = decoded != 0.0
        np.testing.assert_array_equal(decoded[support], vector[support])

    def test_no_index_arrays_transmitted(self):
        # The support is implicit in (salt, period): only the surviving
        # float values are charged, unlike top-k's explicit index array.
        vector = _vector(dim=1000)
        cyclic = make_codec_pipeline(["cyclic(0.1)"]).encode(vector, salt=0)
        assert cyclic.encoded_nbytes == 100 * 8

    def test_full_ratio_is_lossless(self):
        vector = _vector()
        decoded = make_codec_pipeline(["cyclic(1.0)"]).encode(
            vector, salt=5).decode()
        np.testing.assert_array_equal(decoded, vector)

    def test_small_dim_keeps_at_least_one(self):
        decoded = make_codec_pipeline(["cyclic(0.05)"]).encode(
            np.array([4.0, 2.0]), salt=6).decode()
        assert np.count_nonzero(decoded) >= 1

    def test_ratio_validation(self):
        for ratio in (0.0, -0.2, 1.01):
            with pytest.raises(ConfigurationError):
                CyclicSparsifier(ratio)

    def test_chains_with_quantizer(self):
        vector = _vector(scale=0.1)
        encoded = make_codec_pipeline(["cyclic(0.25)", "int8"]).encode(
            vector, salt=2)
        decoded = encoded.decode()
        support = np.zeros(vector.size, dtype=bool)
        support[2::4] = True
        assert np.all(decoded[~support] == 0.0)
        assert np.abs(decoded[support] - vector[support]).max() < 0.01


class TestBroadcastVariant:
    def test_topk_becomes_cyclic_with_ratio_floor(self):
        upload = make_codec_pipeline(["topk(0.05)", "int8"])
        broadcast = broadcast_variant(upload)
        assert broadcast.specs == (
            f"cyclic({MIN_BROADCAST_KEEP_RATIO:g})", "int8")

    def test_large_topk_ratio_carries_over(self):
        broadcast = broadcast_variant(make_codec_pipeline(["topk(0.5)"]))
        assert broadcast.specs == ("cyclic(0.5)",)

    def test_identity_stays_identity(self):
        assert broadcast_variant(make_codec_pipeline(None)).is_identity

    def test_quantizer_only_chain_unchanged(self):
        broadcast = broadcast_variant(make_codec_pipeline(["int8"]))
        assert broadcast.specs == ("int8",)


class TestInt8:
    @settings(max_examples=30, deadline=None)
    @given(vector=finite_vectors)
    def test_error_bounded_by_half_a_level(self, vector):
        encoded = make_codec_pipeline(["int8"]).encode(vector)
        error = np.abs(encoded.decode() - vector)
        span = vector.max() - vector.min()
        # Half a quantization level plus float32 rounding of the per-chunk
        # low/scale parameters.
        bound = span / (2 * Int8Quantizer.LEVELS) + 2e-5 * (
            1.0 + np.abs(vector).max()
        )
        assert error.max() <= bound

    def test_constant_chunk_is_exact(self):
        vector = np.full(100, 3.25)
        decoded = make_codec_pipeline(["int8"]).encode(vector).decode()
        np.testing.assert_allclose(decoded, vector, atol=1e-6)

    def test_chunk_validation(self):
        with pytest.raises(ConfigurationError):
            Int8Quantizer(0)


class TestSign:
    def test_decodes_to_signed_chunk_magnitude(self):
        vector = np.array([1.0, -3.0, 2.0, -2.0])
        decoded = make_codec_pipeline(["sign(2)"]).encode(vector).decode()
        np.testing.assert_allclose(decoded, [2.0, -2.0, 2.0, -2.0])

    @settings(max_examples=30, deadline=None)
    @given(vector=finite_vectors)
    def test_signs_survive(self, vector):
        decoded = make_codec_pipeline(["sign"]).encode(vector).decode()
        nonzero = vector != 0.0
        ok = (np.sign(decoded[nonzero]) == np.sign(vector[nonzero])) \
            | (decoded[nonzero] == 0.0)
        assert np.all(ok)


class TestChaining:
    def test_topk_then_int8_error_bounded_on_support(self):
        vector = _vector(2000, seed=3)
        encoded = make_codec_pipeline(["topk(0.1)", "int8"]).encode(vector)
        decoded = encoded.decode()
        support = decoded != 0.0
        kept = make_codec_pipeline(["topk(0.1)"]).encode(vector).decode()
        span = np.abs(kept[kept != 0.0]).max() * 2
        assert np.abs(decoded[support] - vector[support]).max() \
            <= span / 255 + 1e-4

    def test_terminal_must_be_last(self):
        with pytest.raises(ConfigurationError):
            make_codec_pipeline(["int8", "topk(0.1)"])
        with pytest.raises(ConfigurationError):
            make_codec_pipeline(["sign", "int8"])

    def test_chain_shrinks_bytes(self):
        vector = _vector(10_000)
        dense_nbytes = vector.nbytes
        topk = make_codec_pipeline(["topk(0.05)"]).encode(vector)
        chained = make_codec_pipeline(["topk(0.05)", "int8"]).encode(vector)
        assert topk.encoded_nbytes < dense_nbytes / 10
        assert chained.encoded_nbytes < topk.encoded_nbytes

    def test_encoded_nbytes_counts_all_arrays(self):
        encoded = make_codec_pipeline(["topk(0.5)"]).encode(_vector(100))
        carrier = encoded.carrier.nbytes
        sides = sum(side.nbytes for stage in encoded.stages
                    for side in stage.sides.values())
        assert encoded.encoded_nbytes == carrier + sides


class TestPipelineApi:
    def test_identity_default(self):
        pipeline = make_codec_pipeline(None)
        assert pipeline.is_identity
        assert make_codec_pipeline([]).is_identity
        assert not make_codec_pipeline(["topk(0.5)"]).is_identity

    def test_explicit_identity_codec(self):
        pipeline = make_codec_pipeline(["identity"])
        assert pipeline.is_identity
        vector = _vector(50)
        np.testing.assert_array_equal(pipeline.encode(vector).decode(),
                                      vector)

    def test_specs_round_trip(self):
        pipeline = make_codec_pipeline(["topk(0.05)", "int8"])
        assert pipeline.specs == ("topk(0.05)", "int8")
        rebuilt = make_codec_pipeline(pipeline.specs)
        vector = _vector(300)
        np.testing.assert_array_equal(rebuilt.encode(vector).decode(),
                                      pipeline.encode(vector).decode())

    def test_empty_vector_rejected(self):
        with pytest.raises(ConfigurationError):
            make_codec_pipeline(["topk(0.5)"]).encode(np.array([]))

    def test_encoded_update_pickles(self):
        import pickle

        encoded = make_codec_pipeline(["topk(0.1)", "int8"]).encode(
            _vector(500)
        )
        clone = pickle.loads(pickle.dumps(encoded))
        assert isinstance(clone, EncodedUpdate)
        np.testing.assert_array_equal(clone.decode(), encoded.decode())
        assert clone.encoded_nbytes == encoded.encoded_nbytes


class TestSpecParsing:
    def test_parse_forms(self):
        assert parse_codec_spec("topk") == ("topk", ())
        assert parse_codec_spec("topk(0.05)") == ("topk", (0.05,))
        assert parse_codec_spec(" int8( 512 ) ") == ("int8", (512.0,))

    def test_malformed_specs(self):
        for spec in ("topk(", "topk)0.1(", "to pk", "topk(a)", ""):
            with pytest.raises(ConfigurationError):
                make_codec(spec)

    def test_unknown_codec(self):
        with pytest.raises(ConfigurationError):
            make_codec("zstd")

    def test_wrong_arity(self):
        with pytest.raises(ConfigurationError):
            make_codec("topk(0.1, 0.2)")

    def test_available_codecs(self):
        names = available_codecs()
        assert {"identity", "topk", "sign", "int8"} <= set(names)


class TestDeterminism:
    def test_encode_is_deterministic(self):
        vector = _vector(700, seed=9)
        pipeline = make_codec_pipeline(["topk(0.1)", "int8"])
        first = pipeline.encode(vector)
        second = pipeline.encode(vector)
        np.testing.assert_array_equal(first.decode(), second.decode())
        assert first.encoded_nbytes == second.encoded_nbytes
