"""Trainer-level integration tests for the upload codec pipeline.

Byte accounting must reflect encoded sizes on every leg, the broadcast
pipeline must be the trim-compatible variant of the upload chain, and a
lossless chain must reproduce the uncompressed trajectory exactly.
"""

import numpy as np

from repro.attacks import RandomAttack
from repro.common import RngFactory
from repro.core import FedMSConfig, FedMSTrainer
from repro.data import ArrayDataset, iid_partition
from repro.models import SoftmaxRegression

DIM = 6 * 3 + 3  # SoftmaxRegression(6, 3): weights + bias


def make_blobs(n=300, num_classes=3, dim=6, seed=0):
    centers = np.random.default_rng(42).normal(scale=4.0,
                                               size=(num_classes, dim))
    rng = np.random.default_rng(seed)
    labels = np.arange(n) % num_classes
    features = centers[labels] + rng.normal(size=(n, dim))
    order = rng.permutation(n)
    return ArrayDataset(features[order], labels[order])


def make_trainer(upload_codecs, *, num_clients=8, num_servers=5,
                 num_byzantine=0, seed=0, **config_kwargs):
    data = make_blobs(seed=seed)
    test = make_blobs(n=120, seed=seed + 1)
    parts = iid_partition(data, num_clients, rng=RngFactory(seed).make("p"))
    config = FedMSConfig(
        num_clients=num_clients,
        num_servers=num_servers,
        num_byzantine=num_byzantine,
        local_steps=2,
        batch_size=8,
        upload_codecs=upload_codecs,
        eval_clients=2,
        seed=seed,
        **config_kwargs,
    )
    return FedMSTrainer(
        config,
        model_factory=lambda rng: SoftmaxRegression(6, 3, rng=rng),
        client_datasets=parts,
        test_dataset=test,
        attack=RandomAttack() if num_byzantine else None,
        byzantine_ids=list(range(num_byzantine)) if num_byzantine else None,
    )


def fingerprint(history):
    return (
        [r.train_loss for r in history.records],
        [r.test_loss for r in history.records],
        [r.test_accuracy for r in history.records],
    )


class TestByteAccounting:
    def test_upload_bytes_charged_at_encoded_size(self):
        trainer = make_trainer(["topk(0.2)", "int8"])
        record = trainer.run_round()
        dense_per_round = trainer.config.num_clients * DIM * 8
        assert record.upload_messages == trainer.config.num_clients
        assert 0 < record.upload_bytes < dense_per_round / 2

    def test_dissemination_bytes_charged_at_encoded_size(self):
        trainer = make_trainer(["topk(0.2)", "int8"])
        trainer.run_round()
        stats = trainer.network.stats
        dense_per_round = (trainer.config.num_clients
                           * trainer.config.num_servers * DIM * 8)
        assert 0 < stats.bytes_by_tag["dissemination"] < dense_per_round / 2

    def test_identity_run_charges_dense_bytes(self):
        trainer = make_trainer([])
        record = trainer.run_round()
        assert record.upload_bytes == trainer.config.num_clients * DIM * 8


class TestBroadcastPipeline:
    def test_derived_from_upload_chain_with_ratio_floor(self):
        trainer = make_trainer(["topk(0.05)", "int8"])
        assert trainer.codec.specs == ("topk(0.05)", "int8")
        assert trainer.broadcast_codec.specs == ("cyclic(0.25)", "int8")

    def test_identity_chain_stays_identity(self):
        trainer = make_trainer([])
        assert trainer.broadcast_codec.is_identity


class TestTrajectory:
    def test_lossless_chain_is_bit_identical_to_uncompressed(self):
        # topk(1.0) keeps every coordinate and round-trips float64 values
        # exactly, so the shared-reference delta plumbing must reproduce
        # the uncompressed run bit for bit — any divergence is a codec
        # bookkeeping bug, not compression loss.
        baseline = make_trainer([]).run(3)
        lossless = make_trainer(["topk(1.0)"]).run(3)
        assert fingerprint(baseline) == fingerprint(lossless)

    def test_compressed_run_still_trains_under_attack(self):
        history = make_trainer(
            ["topk(0.2)", "int8"], num_byzantine=2, seed=1,
            filter_rule_name="adaptive_trimmed_mean",
        ).run(6)
        assert history.final_accuracy > 0.5  # blobs are separable
