"""Tests for partial client participation."""

import numpy as np
import pytest

from repro.common import ConfigurationError, RngFactory
from repro.core import FedMSConfig, FedMSTrainer
from repro.data import ArrayDataset, iid_partition
from repro.models import SoftmaxRegression


def make_blobs(n=300, num_classes=3, dim=6, seed=0):
    centers = np.random.default_rng(42).normal(scale=4.0,
                                               size=(num_classes, dim))
    rng = np.random.default_rng(seed)
    labels = np.arange(n) % num_classes
    features = centers[labels] + rng.normal(size=(n, dim))
    order = rng.permutation(n)
    return ArrayDataset(features[order], labels[order])


def make_trainer(participation_fraction=1.0, seed=0):
    data = make_blobs(seed=seed)
    test = make_blobs(n=120, seed=seed + 1)
    parts = iid_partition(data, 10, rng=RngFactory(seed).make("p"))
    config = FedMSConfig(
        num_clients=10, num_servers=3, num_byzantine=0,
        local_steps=2, batch_size=8, learning_rate=0.2,
        participation_fraction=participation_fraction,
        eval_clients=2, seed=seed,
    )
    return FedMSTrainer(
        config,
        model_factory=lambda rng: SoftmaxRegression(6, 3, rng=rng),
        client_datasets=parts,
        test_dataset=test,
    )


class TestConfig:
    def test_participants_per_round(self):
        config = FedMSConfig(num_clients=50, participation_fraction=0.2)
        assert config.participants_per_round == 10

    def test_at_least_one_participant(self):
        config = FedMSConfig(num_clients=50, participation_fraction=0.001)
        assert config.participants_per_round == 1

    def test_rejects_zero_fraction(self):
        with pytest.raises(ConfigurationError):
            FedMSConfig(participation_fraction=0.0)

    def test_rejects_above_one(self):
        with pytest.raises(ConfigurationError):
            FedMSConfig(participation_fraction=1.5)


class TestPartialParticipation:
    def test_upload_count_matches_participants(self):
        trainer = make_trainer(participation_fraction=0.5)
        record = trainer.run_round()
        assert record.upload_messages == 5

    def test_full_participation_unchanged(self):
        trainer = make_trainer(participation_fraction=1.0)
        record = trainer.run_round()
        assert record.upload_messages == 10

    def test_all_clients_synchronized_after_round(self):
        """Non-participants still adopt the filtered global model."""
        trainer = make_trainer(participation_fraction=0.3)
        trainer.run_round()
        first = trainer.clients[0].model_vector()
        for client in trainer.clients[1:]:
            np.testing.assert_allclose(first, client.model_vector())

    def test_participant_sets_vary_across_rounds(self):
        trainer = make_trainer(participation_fraction=0.3)
        # Drive several rounds; the selection stream must not repeat one set.
        seen = set()
        original_train = {}
        for _ in range(6):
            chosen = trainer._participation_rng.choice(10, size=3,
                                                       replace=False)
            seen.add(tuple(sorted(int(i) for i in chosen)))
        assert len(seen) > 1

    def test_still_converges(self):
        history = make_trainer(participation_fraction=0.5, seed=2).run(
            15, eval_every=15
        )
        assert history.final_accuracy > 0.85

    def test_deterministic(self):
        a = make_trainer(participation_fraction=0.5, seed=4).run(3)
        b = make_trainer(participation_fraction=0.5, seed=4).run(3)
        np.testing.assert_allclose(a.train_losses, b.train_losses)
