"""Tests for filter resolution and the estimating filters in the trainer:
adaptive-beta trimmed mean and FedGreed-style loss-based selection, plus
the B-hat / rejected-model recording they feed into TrainingHistory."""

import numpy as np
import pytest

from repro.aggregation import make_rule, mean
from repro.attacks import make_attack
from repro.common import ConfigurationError, RngFactory
from repro.core import (
    FedMSConfig,
    FedMSTrainer,
    RootLossEvaluator,
    resolve_filter,
)
from repro.data import ArrayDataset, iid_partition
from repro.models import SoftmaxRegression
from repro.nn.serialization import to_vector, vector_size


def make_blobs(n=300, num_classes=3, dim=6, seed=0):
    centers = np.random.default_rng(42).normal(scale=4.0,
                                               size=(num_classes, dim))
    rng = np.random.default_rng(seed)
    labels = np.arange(n) % num_classes
    features = centers[labels] + rng.normal(size=(n, dim))
    order = rng.permutation(n)
    return ArrayDataset(features[order], labels[order])


def model_factory(rng):
    return SoftmaxRegression(6, 3, rng=rng)


def make_trainer(filter_rule_name=None, num_clients=6, num_servers=5,
                 num_byzantine=0, attack=None, byzantine_ids=None, seed=0,
                 network=None, fault_injector=None, **config_kwargs):
    data = make_blobs(seed=seed)
    test = make_blobs(n=120, seed=seed + 1)
    parts = iid_partition(data, num_clients, rng=RngFactory(seed).make("part"))
    config = FedMSConfig(
        num_clients=num_clients,
        num_servers=num_servers,
        num_byzantine=num_byzantine,
        local_steps=2,
        batch_size=8,
        learning_rate=0.2,
        eval_clients=2,
        filter_rule_name=filter_rule_name,
        seed=seed,
        **config_kwargs,
    )
    return FedMSTrainer(
        config,
        model_factory=model_factory,
        client_datasets=parts,
        test_dataset=test,
        attack=attack,
        byzantine_ids=byzantine_ids,
        network=network,
        fault_injector=fault_injector,
    )


class TestResolveFilter:
    def base_config(self, **kwargs):
        return FedMSConfig(num_clients=6, num_servers=5, num_byzantine=0,
                           **kwargs)

    def test_default_is_static_trimmed_mean(self):
        config = self.base_config(trim_ratio=0.2)
        resolved = resolve_filter(config)
        assert resolved.spec is not None
        assert resolved.spec.kind == "trim_ratio"
        assert resolved.degraded_trim_ratio == pytest.approx(0.2)
        assert resolved.info_fn is None
        assert not resolved.records_estimates

    def test_explicit_closure_wins_over_name(self):
        config = self.base_config(filter_rule_name="adaptive_trimmed_mean")
        custom = make_rule("median")
        resolved = resolve_filter(config, filter_rule=custom)
        assert resolved.rule is custom
        assert resolved.spec is None
        assert resolved.info_fn is None

    def test_mean_closure_gets_spec(self):
        resolved = resolve_filter(self.base_config(),
                                  filter_rule=make_rule("mean"))
        assert resolved.spec is not None
        assert resolved.spec.kind == "mean"

    def test_adaptive_has_info_but_no_spec(self):
        config = self.base_config(filter_rule_name="adaptive_trimmed_mean")
        resolved = resolve_filter(config)
        assert resolved.spec is None
        assert resolved.degraded_trim_ratio is None
        assert resolved.records_estimates
        stack = np.random.default_rng(0).normal(size=(5, 8))
        stack[3] += 50.0
        outcome = resolved.info_fn(stack)
        assert outcome.estimated_byzantine == 1
        assert outcome.rejected_rows == (3,)
        np.testing.assert_array_equal(outcome.vector, resolved.rule(stack))

    def test_loss_based_requires_root_ingredients(self):
        config = self.base_config(filter_rule_name="loss_based")
        with pytest.raises(ConfigurationError, match="root"):
            resolve_filter(config)

    def test_other_registry_names_resolve(self):
        config = self.base_config(filter_rule_name="median")
        resolved = resolve_filter(config)
        assert resolved.spec is None
        assert resolved.info_fn is None
        stack = np.random.default_rng(1).normal(size=(5, 4))
        np.testing.assert_array_equal(resolved.rule(stack),
                                      np.median(stack, axis=0))


class TestRootLossEvaluator:
    def make_evaluator(self, batch_size=32):
        return RootLossEvaluator(
            model_factory, make_blobs(n=100, seed=3), batch_size,
            include_buffers=True, flatten_inputs=False,
            rng=np.random.default_rng(0),
        )

    def test_deterministic_and_pure(self):
        evaluator = self.make_evaluator()
        rng = np.random.default_rng(1)
        vector = to_vector(model_factory(rng))
        other = to_vector(model_factory(np.random.default_rng(2)))
        first = evaluator(vector)
        evaluator(other)  # must not perturb later evaluations
        assert evaluator(vector) == first

    def test_neutral_model_scores_below_garbage(self):
        evaluator = self.make_evaluator()
        dim = vector_size(model_factory(np.random.default_rng(0)))
        # Large random weights: confidently wrong on most of the batch.
        garbage = np.random.default_rng(9).normal(scale=20.0, size=dim)
        neutral = np.zeros(dim)  # uniform predictions: loss = log(3)
        assert evaluator(neutral) < evaluator(garbage)

    def test_batch_clamped_to_dataset(self):
        evaluator = self.make_evaluator(batch_size=10_000)
        assert len(evaluator.labels) == 100

    def test_rejects_empty_dataset(self):
        with pytest.raises(ConfigurationError, match="non-empty"):
            RootLossEvaluator(
                model_factory, ArrayDataset(np.zeros((0, 6)),
                                            np.zeros(0, dtype=int)),
                32, include_buffers=True, flatten_inputs=False,
                rng=np.random.default_rng(0),
            )


class TestAdaptiveFilterInTrainer:
    # Full upload makes every honest PS's aggregate bit-identical, so the
    # dispersion estimator's verdict is exact: B-hat = the number of
    # tampering PSs, no small-sample noise from sparse-upload subsets.

    def test_records_estimates_without_attack(self):
        trainer = make_trainer("adaptive_trimmed_mean",
                               upload_strategy="full")
        record = trainer.run_round()
        assert record.estimated_byzantine == 0
        assert record.filtered_model_ids == []

    def test_sparse_upload_estimate_stays_feasible(self):
        """Sparse upload gives each PS a different client subset, so some
        honest dispersion is real; the estimate may be noisy but must stay
        below the trim-feasibility bound."""
        trainer = make_trainer("adaptive_trimmed_mean", num_servers=5)
        history = trainer.run(3)
        for estimate in history.estimated_byzantine_trace:
            assert estimate is not None and 0 <= estimate <= 2

    def test_flags_byzantine_servers(self):
        trainer = make_trainer(
            "adaptive_trimmed_mean", num_servers=5, num_byzantine=1,
            attack=make_attack("random"), byzantine_ids=[2],
            upload_strategy="full",
        )
        history = trainer.run(4)
        assert history.mean_estimated_byzantine >= 0.5
        assert set(history.filtered_model_id_counts) == {2}
        assert history.to_dict()["estimated_byzantine_trace"] == \
            history.estimated_byzantine_trace

    def test_colluding_cohort_beats_static_undertrim(self):
        """Acceptance core at unit scale: under a colluding attack the
        adaptive filter must hold the model near the honest mean where a
        static under-trimmed mean is dragged off."""
        kwargs = dict(num_servers=7, num_byzantine=2,
                      attack=make_attack("colluding", scale=3.0),
                      byzantine_ids=[0, 1], upload_strategy="full")
        adaptive = make_trainer("adaptive_trimmed_mean", **kwargs)
        adaptive_history = adaptive.run(6)
        # trim_ratio 1/7 trims one per tail: one colluder survives.
        undertrimmed = make_trainer(None, trim_ratio=1.0 / 7.0, **kwargs)
        under_history = undertrimmed.run(6)
        assert adaptive_history.final_accuracy >= \
            under_history.final_accuracy - 0.02
        assert set(adaptive_history.filtered_model_id_counts) == {0, 1}


class TestLossBasedFilterInTrainer:
    def test_runs_and_records(self):
        trainer = make_trainer("loss_based")
        record = trainer.run_round()
        assert record.estimated_byzantine is not None
        assert record.estimated_byzantine <= 4

    def test_converges_under_colluding_attack(self):
        """The loss-based rule's selling point: the colluders' shared lie
        ranks last on the trusted batch, so B copies of it are rejected
        in one decision."""
        trainer = make_trainer(
            "loss_based", num_servers=5, num_byzantine=2,
            attack=make_attack("colluding", scale=3.0),
            byzantine_ids=[0, 1],
        )
        history = trainer.run(8)
        assert history.final_accuracy > 0.85
        assert {0, 1} <= set(history.filtered_model_id_counts)

    def test_uses_explicit_root_dataset(self):
        data = make_blobs(seed=0)
        test = make_blobs(n=120, seed=1)
        root = make_blobs(n=50, seed=7)
        parts = iid_partition(data, 6, rng=RngFactory(0).make("part"))
        config = FedMSConfig(num_clients=6, num_servers=5, num_byzantine=0,
                             local_steps=2, batch_size=8,
                             filter_rule_name="loss_based",
                             root_batch_size=32)
        trainer = FedMSTrainer(
            config, model_factory=model_factory, client_datasets=parts,
            test_dataset=test, root_dataset=root,
        )
        record = trainer.run_round()
        assert record.estimated_byzantine is not None


class TestConfigFilterRuleName:
    def test_unknown_name_rejected_at_config_time(self):
        with pytest.raises(ConfigurationError, match="unknown aggregation"):
            FedMSConfig(filter_rule_name="nope")

    def test_krum_incompatible_with_topology(self):
        # krum needs P >= 2f + 3; P = 5 with f = 2 is too small.
        with pytest.raises(ConfigurationError, match="krum"):
            FedMSConfig(num_clients=6, num_servers=5, num_byzantine=2,
                        filter_rule_name="krum")

    def test_valid_names_accepted(self):
        for name in ("adaptive_trimmed_mean", "loss_based", "median"):
            config = FedMSConfig(num_clients=6, num_servers=5,
                                 num_byzantine=0, filter_rule_name=name)
            assert config.filter_rule_name == name

    def test_mad_threshold_validated(self):
        with pytest.raises(ConfigurationError, match="mad_threshold"):
            FedMSConfig(mad_threshold=0.0)

    def test_root_batch_size_validated(self):
        with pytest.raises(ConfigurationError):
            FedMSConfig(root_batch_size=0)
