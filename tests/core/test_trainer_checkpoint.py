"""Tests for saving/resuming a federated run."""

import numpy as np
import pytest

from repro.attacks import BackwardAttack, RandomAttack
from repro.common import RngFactory
from repro.core import FedMSConfig, FedMSTrainer
from repro.data import ArrayDataset, iid_partition
from repro.models import SoftmaxRegression


def make_blobs(n=240, num_classes=3, dim=6, seed=0):
    centers = np.random.default_rng(42).normal(scale=4.0,
                                               size=(num_classes, dim))
    rng = np.random.default_rng(seed)
    labels = np.arange(n) % num_classes
    features = centers[labels] + rng.normal(size=(n, dim))
    order = rng.permutation(n)
    return ArrayDataset(features[order], labels[order])


def make_trainer(seed=0, attack=None, num_byzantine=0):
    data = make_blobs(seed=seed)
    test = make_blobs(n=90, seed=seed + 1)
    parts = iid_partition(data, 8, rng=RngFactory(seed).make("p"))
    config = FedMSConfig(
        num_clients=8, num_servers=4, num_byzantine=num_byzantine,
        local_steps=2, batch_size=8, learning_rate=0.2, eval_clients=2,
        seed=seed,
    )
    return FedMSTrainer(
        config,
        model_factory=lambda rng: SoftmaxRegression(6, 3, rng=rng),
        client_datasets=parts,
        test_dataset=test,
        attack=attack,
    )


class TestTrainerCheckpoint:
    def test_roundtrip_restores_round_and_model(self, tmp_path):
        trainer = make_trainer()
        trainer.run(4)
        path = str(tmp_path / "run.npz")
        trainer.save_checkpoint(path)
        model_before = trainer.clients[0].model_vector()

        fresh = make_trainer()
        restored_round = fresh.load_checkpoint(path)
        assert restored_round == 4
        np.testing.assert_array_equal(
            fresh.clients[0].model_vector(), model_before
        )

    def test_all_clients_restored_to_shared_model(self, tmp_path):
        trainer = make_trainer()
        trainer.run(2)
        path = str(tmp_path / "run.npz")
        trainer.save_checkpoint(path)
        fresh = make_trainer(seed=0)
        fresh.load_checkpoint(path)
        first = fresh.clients[0].model_vector()
        for client in fresh.clients[1:]:
            np.testing.assert_array_equal(first, client.model_vector())

    def test_resumed_run_continues_training(self, tmp_path):
        trainer = make_trainer(seed=1)
        trainer.run(3, eval_every=3)
        before = trainer.history.final_accuracy
        path = str(tmp_path / "run.npz")
        trainer.save_checkpoint(path)

        resumed = make_trainer(seed=1)
        resumed.load_checkpoint(path)
        history = resumed.run(8, eval_every=8)
        assert history.records[-1].round_index == 10  # 3 saved + 8 more
        assert history.final_accuracy >= before - 0.1

    def test_server_history_restored_for_stateful_attacks(self, tmp_path):
        trainer = make_trainer(attack=BackwardAttack(), num_byzantine=1,
                               seed=2)
        trainer.run(3)
        path = str(tmp_path / "run.npz")
        trainer.save_checkpoint(path)
        fresh = make_trainer(attack=BackwardAttack(), num_byzantine=1, seed=2)
        fresh.load_checkpoint(path)
        for original, restored in zip(trainer.servers, fresh.servers):
            np.testing.assert_array_equal(
                original.current_aggregate, restored.current_aggregate
            )
        fresh.run_round()  # stateful attack runs against restored history

    def test_extension_added_automatically(self, tmp_path):
        trainer = make_trainer()
        trainer.run(1)
        base = str(tmp_path / "run")
        trainer.save_checkpoint(base)  # numpy appends .npz
        fresh = make_trainer()
        assert fresh.load_checkpoint(base) == 1

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            make_trainer().load_checkpoint(str(tmp_path / "missing.npz"))

    def test_checkpoint_under_attack(self, tmp_path):
        trainer = make_trainer(attack=RandomAttack(), num_byzantine=1, seed=3)
        trainer.run(3)
        path = str(tmp_path / "run.npz")
        trainer.save_checkpoint(path)
        fresh = make_trainer(attack=RandomAttack(), num_byzantine=1, seed=3)
        fresh.load_checkpoint(path)
        history = fresh.run(5, eval_every=5)
        assert np.isfinite(history.final_accuracy)
