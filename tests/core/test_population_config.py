"""Validation of the population / tier / churn config knobs."""

import pytest

from repro.common.errors import ConfigurationError
from repro.core.config import FedMSConfig


def make_config(**overrides):
    kwargs = dict(num_clients=20, num_servers=5, num_byzantine=0, seed=0)
    kwargs.update(overrides)
    return FedMSConfig(**kwargs)


class TestPopulationKnobs:
    def test_defaults_are_off(self):
        config = make_config()
        assert config.population_size is None
        assert config.tier_spec is None
        assert not config.has_churn
        assert config.resolved_tier_byzantine == ()

    def test_population_size_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            make_config(population_size=0)

    def test_sample_fraction_bounds(self):
        with pytest.raises(ConfigurationError):
            make_config(sample_fraction=0.0)
        with pytest.raises(ConfigurationError):
            make_config(sample_fraction=1.5)
        assert make_config(sample_fraction=1.0).sample_fraction == 1.0


class TestTierSpec:
    def test_normalized_to_tuple(self):
        config = make_config(tier_spec=[8, 2, 1])
        assert config.tier_spec == (8, 2, 1)

    def test_must_end_in_one(self):
        with pytest.raises(ConfigurationError):
            make_config(tier_spec=(8, 2))

    def test_must_be_non_increasing(self):
        with pytest.raises(ConfigurationError):
            make_config(tier_spec=(2, 8, 1))

    def test_byzantine_requires_tier_spec(self):
        with pytest.raises(ConfigurationError):
            make_config(tier_byzantine=(1, 0))

    def test_byzantine_length_must_match(self):
        with pytest.raises(ConfigurationError):
            make_config(tier_spec=(8, 2, 1), tier_byzantine=(1, 0))

    def test_global_tier_must_be_honest(self):
        with pytest.raises(ConfigurationError):
            make_config(tier_spec=(8, 2, 1), tier_byzantine=(0, 0, 1))

    def test_per_tier_quorum_feasibility(self):
        # (8, 2, 1): a tier-1 parent sees 4 children; B=2 needs q >= 5.
        with pytest.raises(ConfigurationError, match="infeasible"):
            make_config(tier_spec=(8, 2, 1), tier_byzantine=(2, 0, 0))
        # (10, 2, 1): 5 children per parent, B=2 is exactly feasible.
        config = make_config(tier_spec=(10, 2, 1), tier_byzantine=(2, 0, 0))
        assert config.resolved_tier_byzantine == (2, 0, 0)

    def test_resolved_budgets_default_to_zero(self):
        config = make_config(tier_spec=(8, 2, 1))
        assert config.resolved_tier_byzantine == (0, 0, 0)


class TestChurnKnobs:
    def test_has_churn(self):
        assert make_config(churn_join_rate=0.1).has_churn
        assert make_config(churn_leave_rate=0.1).has_churn
        assert not make_config().has_churn

    def test_rates_must_be_fractions(self):
        with pytest.raises(ConfigurationError):
            make_config(churn_join_rate=1.0)
        with pytest.raises(ConfigurationError):
            make_config(churn_leave_rate=-0.1)

    def test_rejoin_fraction_bounds(self):
        with pytest.raises(ConfigurationError):
            make_config(churn_rejoin_fraction=1.5)

    def test_dwell_rounds_positive(self):
        with pytest.raises(ConfigurationError):
            make_config(churn_dwell_rounds=0)
