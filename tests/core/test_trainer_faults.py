"""End-to-end tests of the fault-injection and graceful-degradation layer.

The acceptance scenario from the robustness milestone: with P = 10 PSs of
which 2 are Byzantine (Noise attack), two *additional* PSs crash
mid-training — one permanently, one with recovery — and the run must
complete every round, land within tolerance of the fault-free final
accuracy, and leave an auditable per-round availability trace in
:class:`~repro.core.history.TrainingHistory`.
"""

import numpy as np
import pytest

from repro.attacks import make_attack
from repro.common import ConfigurationError, RngFactory
from repro.core import FaultConfig, FedMSConfig, FedMSTrainer
from repro.data import ArrayDataset, iid_partition
from repro.models import SoftmaxRegression
from repro.simulation import (
    ClientDropout,
    FaultInjector,
    FaultPlan,
    Network,
    ServerCrash,
    ServerStraggler,
)


def make_blobs(n=300, num_classes=3, dim=6, seed=0):
    centers = np.random.default_rng(42).normal(scale=4.0,
                                               size=(num_classes, dim))
    rng = np.random.default_rng(seed)
    labels = np.arange(n) % num_classes
    features = centers[labels] + rng.normal(size=(n, dim))
    order = rng.permutation(n)
    return ArrayDataset(features[order], labels[order])


def make_trainer(num_clients=8, num_servers=10, num_byzantine=2,
                 attack=None, byzantine_ids=None, seed=0, network=None,
                 fault_injector=None, faults=None, lr=0.2,
                 **config_kwargs):
    data = make_blobs(seed=seed)
    test = make_blobs(n=120, seed=seed + 1)
    parts = iid_partition(data, num_clients, rng=RngFactory(seed).make("part"))
    config = FedMSConfig(
        num_clients=num_clients,
        num_servers=num_servers,
        num_byzantine=num_byzantine,
        local_steps=2,
        batch_size=8,
        learning_rate=lr,
        eval_clients=2,
        faults=faults,
        seed=seed,
        **config_kwargs,
    )
    return FedMSTrainer(
        config,
        model_factory=lambda rng: SoftmaxRegression(6, 3, rng=rng),
        client_datasets=parts,
        test_dataset=test,
        attack=attack,
        byzantine_ids=byzantine_ids,
        network=network,
        fault_injector=fault_injector,
    )


class TestFaultConfig:
    def test_defaults(self):
        faults = FaultConfig()
        assert faults.round_deadline_s == 1.0
        assert faults.max_upload_retries == 2

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FaultConfig(round_deadline_s=0.0)
        with pytest.raises(ConfigurationError):
            FaultConfig(max_upload_retries=-1)
        with pytest.raises(ConfigurationError):
            FaultConfig(retry_backoff_s=-1.0)
        with pytest.raises(ConfigurationError):
            FaultConfig(backoff_factor=0.9)

    def test_resolved_faults_defaults_when_unset(self):
        assert FedMSConfig().resolved_faults == FaultConfig()
        custom = FaultConfig(max_upload_retries=5)
        assert FedMSConfig(faults=custom).resolved_faults is custom

    def test_rejects_wrong_type(self):
        with pytest.raises(ConfigurationError):
            FedMSConfig(faults={"max_upload_retries": 5})


class TestInjectorWiring:
    def test_plan_validated_against_topology(self):
        injector = FaultInjector(FaultPlan(crashes=(ServerCrash(10, 0),)))
        with pytest.raises(ConfigurationError, match="PS 10"):
            make_trainer(num_byzantine=0, fault_injector=injector)

    def test_deadline_defaults_from_config(self):
        injector = FaultInjector(FaultPlan())
        make_trainer(num_byzantine=0, fault_injector=injector,
                     faults=FaultConfig(round_deadline_s=7.0))
        assert injector.round_deadline_s == 7.0

    def test_explicit_deadline_preserved(self):
        injector = FaultInjector(FaultPlan(), round_deadline_s=3.0)
        make_trainer(num_byzantine=0, fault_injector=injector)
        assert injector.round_deadline_s == 3.0

    def test_faultless_run_records_full_quorum(self):
        trainer = make_trainer(num_byzantine=0, num_servers=5,
                               fault_injector=FaultInjector(FaultPlan()))
        record = trainer.run_round()
        assert record.alive_servers == 5
        assert record.models_received == {k: 5 for k in range(8)}
        assert not record.degraded
        assert record.fault_events == []


class TestCrashDegradation:
    def test_single_crash_degrades_quorum(self):
        # P = 5, B = 0 with default beta = B/P = 0 -> trim count 0, so any
        # nonzero quorum stays feasible; the crash shows up as q = 4.
        injector = FaultInjector(FaultPlan(crashes=(ServerCrash(4, 1),)))
        trainer = make_trainer(num_byzantine=0, num_servers=5,
                               fault_injector=injector)
        trainer.run(3)
        records = trainer.history.records
        assert records[0].alive_servers == 5
        assert records[1].alive_servers == 4
        assert records[1].fault_events == ["server 4 crashed"]
        assert records[1].min_models_received == 4
        assert sorted(records[1].degraded_clients) == list(range(8))
        assert trainer.history.degraded_rounds == [1, 2]

    def test_infeasible_quorum_falls_back_to_previous_model(self):
        # P = 5 with beta = 0.2 -> B = 1; crashing 3 PSs leaves q = 2 = 2B,
        # so every client must keep its round-0 filtered model.
        crashes = tuple(ServerCrash(i, 1) for i in (2, 3, 4))
        injector = FaultInjector(FaultPlan(crashes=crashes))
        trainer = make_trainer(num_byzantine=1, num_servers=5,
                               attack=make_attack("noise", scale=0.05),
                               byzantine_ids=[0],
                               fault_injector=injector)
        trainer.run_round()
        before = [c.model_vector().copy() for c in trainer.clients]
        record = trainer.run_round()
        assert record.min_models_received == 2
        assert sorted(record.fallback_clients) == list(range(8))
        assert record.degraded_clients == []
        for client, previous in zip(trainer.clients, before):
            np.testing.assert_array_equal(client.model_vector(), previous)

    def test_recovery_restores_full_quorum(self):
        injector = FaultInjector(FaultPlan(crashes=(ServerCrash(4, 1, 3),)))
        trainer = make_trainer(num_byzantine=0, num_servers=5,
                               fault_injector=injector)
        trainer.run(4)
        quorums = trainer.history.min_models_received_per_round
        assert quorums == [5, 4, 4, 5]
        assert (3, "server 4 recovered") in injector.event_log

    def test_uploads_retry_around_a_crashed_server(self):
        injector = FaultInjector(FaultPlan(crashes=(ServerCrash(0, 0),)))
        trainer = make_trainer(num_byzantine=0, num_servers=2,
                               fault_injector=injector)
        trainer.run(4)
        # With only 2 PSs roughly half the assignments hit the crashed one
        # and must retry (same PS first, then the alive one).
        assert trainer.history.total_upload_retries > 0
        assert trainer.network.stats.retries_by_tag["upload"] == \
            trainer.history.total_upload_retries
        # Every upload eventually landed: delivered messages = K per round.
        assert trainer.history.total_upload_failures == 0
        assert trainer.network.stats.messages_by_tag["upload"] == 4 * 8

    def test_upload_failure_when_no_server_alive(self):
        crashes = tuple(ServerCrash(i, 1) for i in range(3))
        injector = FaultInjector(FaultPlan(crashes=crashes))
        trainer = make_trainer(num_byzantine=0, num_servers=3,
                               fault_injector=injector)
        trainer.run_round()
        record = trainer.run_round()
        assert record.alive_servers == 0
        assert record.upload_failures == 8
        assert sorted(record.fallback_clients) == list(range(8))


class TestDropoutAndStragglers:
    def test_offline_client_sits_out_and_mail_expires(self):
        injector = FaultInjector(FaultPlan(dropouts=(ClientDropout(3, 1, 2),)))
        trainer = make_trainer(num_byzantine=0, num_servers=5,
                               fault_injector=injector)
        trainer.run(3)
        records = trainer.history.records
        assert 3 not in records[1].models_received
        assert len(records[1].models_received) == 7
        # The 5 models disseminated to the offline client expired at the
        # round deadline.
        assert records[1].cleared_messages == 5
        assert trainer.network.stats.cleared_total == 5
        assert 3 in records[2].models_received

    def test_straggler_misses_deadline(self):
        injector = FaultInjector(FaultPlan(
            stragglers=(ServerStraggler(4, 1, 2, delay_s=9.0),)))
        trainer = make_trainer(num_byzantine=0, num_servers=5,
                               fault_injector=injector,
                               faults=FaultConfig(round_deadline_s=1.0))
        trainer.run(3)
        records = trainer.history.records
        assert records[0].min_models_received == 5
        assert records[1].min_models_received == 4
        assert records[2].min_models_received == 5
        assert any("straggling" in e for e in records[1].fault_events)

    def test_slow_straggler_within_deadline_is_harmless(self):
        injector = FaultInjector(FaultPlan(
            stragglers=(ServerStraggler(4, 1, 2, delay_s=0.5),)))
        trainer = make_trainer(num_byzantine=0, num_servers=5,
                               fault_injector=injector,
                               faults=FaultConfig(round_deadline_s=1.0))
        trainer.run(2)
        assert trainer.history.records[1].min_models_received == 5


class TestDeterminism:
    def _trace(self, seed=0):
        plan = FaultPlan(
            crashes=(ServerCrash(4, 1), ServerCrash(3, 2, 4)),
            dropouts=(ClientDropout(2, 1, 3),),
        )
        trainer = make_trainer(
            num_byzantine=1, num_servers=5,
            attack=make_attack("noise", scale=0.05), byzantine_ids=[0],
            seed=seed,
            network=Network(drop_probability=0.15,
                            rng=RngFactory(seed).make("net")),
            fault_injector=FaultInjector(plan),
        )
        history = trainer.run(6)
        return (
            trainer.network.stats.snapshot(),
            list(trainer.fault_injector.event_log),
            history.to_dict(),
            [(r.models_received, r.upload_retries, r.fallback_clients)
             for r in history.records],
        )

    def test_same_seed_and_plan_reproduce_the_full_trace(self):
        assert self._trace(seed=0) == self._trace(seed=0)

    def test_different_seed_changes_the_trace(self):
        # Sanity check that the determinism assertion above has teeth.
        assert self._trace(seed=0)[0] != self._trace(seed=1)[0]


class TestAcceptanceScenario:
    def test_two_crashes_under_byzantine_attack(self):
        """2 of P = 10 PSs crash mid-training (one permanently, one with
        recovery) on top of 20% Byzantine PSs running the Noise attack."""
        num_rounds = 12
        kwargs = dict(num_byzantine=2, num_servers=10,
                      attack=make_attack("noise", scale=0.05),
                      byzantine_ids=[0, 1])
        fault_free = make_trainer(**kwargs)
        reference = fault_free.run(num_rounds)

        plan = FaultPlan(crashes=(
            ServerCrash(9, 4),        # permanent
            ServerCrash(8, 5, 9),     # crash-recover window
        ))
        injector = FaultInjector(plan)
        trainer = make_trainer(fault_injector=injector, **kwargs)
        history = trainer.run(num_rounds)

        # Every round completed and was recorded.
        assert len(history) == num_rounds
        # The availability trace matches the plan: 10 alive, then 9, then 8
        # during the overlap, then 9 after the recovery.
        alive = [r.alive_servers for r in history.records]
        assert alive == [10] * 4 + [9] + [8] * 4 + [9] * 3
        quorums = history.min_models_received_per_round
        assert quorums[:4] == [10] * 4
        assert all(q == 9 for q in (quorums[4], *quorums[9:]))
        assert all(q == 8 for q in quorums[5:9])
        # Reduced quorums were filtered with the degraded trim count
        # (q >= 2B + 1 = 5 throughout), never by fallback.
        assert history.degraded_rounds == list(range(4, num_rounds))
        for record in history.records[4:]:
            assert sorted(record.degraded_clients) == list(range(8))
            assert record.fallback_clients == []
        assert (4, "server 9 crashed") in injector.event_log
        assert (9, "server 8 recovered") in injector.event_log

        # Training still converges to within tolerance of fault-free.
        assert reference.final_accuracy > 0.9
        assert history.final_accuracy >= reference.final_accuracy - 0.05

    def test_mimicry_attack_with_one_crash_under_adaptive_filter(self):
        """The colluding dispersion-mimicry attack combined with one PS
        crash: the adaptive-beta filter must keep estimating and trimming
        on the reduced quorum and still converge near the fault-free
        reference."""
        num_rounds = 12
        kwargs = dict(num_byzantine=2, num_servers=10,
                      attack=make_attack("dispersion_mimicry"),
                      byzantine_ids=[0, 1],
                      filter_rule_name="adaptive_trimmed_mean")
        fault_free = make_trainer(**kwargs)
        reference = fault_free.run(num_rounds)

        injector = FaultInjector(FaultPlan(crashes=(ServerCrash(9, 4),)))
        trainer = make_trainer(fault_injector=injector, **kwargs)
        history = trainer.run(num_rounds)

        assert len(history) == num_rounds
        alive = [r.alive_servers for r in history.records]
        assert alive == [10] * 4 + [9] * 8
        # The estimator kept producing per-round B-hat on the reduced
        # quorum (estimating rules never fall back to a static count).
        assert all(e is not None for e in history.estimated_byzantine_trace)
        for record in history.records:
            assert record.fallback_clients == []
        # The colluders' shared lie was flagged: both Byzantine PSs show
        # up among the rejected model ids over the run.
        rejected = set(history.filtered_model_id_counts)
        assert {0, 1} <= rejected

        assert reference.final_accuracy > 0.9
        assert history.final_accuracy >= reference.final_accuracy - 0.05
