"""HealthLedger: reputation scoring and the circuit-breaker state machine."""

import pytest

from repro.common.errors import ConfigurationError
from repro.core.health import BreakerState, HealthLedger, HealthPolicy


def drive(ledger, rounds):
    """Feed a list of per-round crashed-sets; return all events."""
    events = []
    for t, crashed in enumerate(rounds):
        events.extend(ledger.observe_round(t, crashed=crashed))
    return events


class TestPolicy:
    def test_defaults_valid(self):
        policy = HealthPolicy()
        assert policy.decay == 0.7
        assert policy.open_threshold == 0.4
        assert policy.probation_rounds == 2

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            HealthPolicy(decay=1.0)
        with pytest.raises(ConfigurationError):
            HealthPolicy(open_threshold=1.5)
        with pytest.raises(ConfigurationError):
            HealthPolicy(probation_rounds=0)

    def test_from_config_duck_typed(self):
        class Cfg:
            health_decay = 0.5
            health_open_threshold = 0.3
            health_probation_rounds = 4

        policy = HealthPolicy.from_config(Cfg())
        assert (policy.decay, policy.open_threshold,
                policy.probation_rounds) == (0.5, 0.3, 4)


class TestScoring:
    def test_clean_rounds_keep_score_high(self):
        ledger = HealthLedger(3)
        drive(ledger, [set()] * 5)
        assert all(score == pytest.approx(1.0)
                   for score in ledger.scores.values())
        assert ledger.open_servers() == frozenset()

    def test_sustained_crashes_open_breaker(self):
        ledger = HealthLedger(3)
        events = drive(ledger, [{1}] * 3)
        assert ledger.states[1] == BreakerState.OPEN
        assert any("circuit opened" in e for e in events)
        assert ledger.states[0] == BreakerState.CLOSED

    def test_single_bad_round_does_not_open(self):
        ledger = HealthLedger(2)
        drive(ledger, [{0}, set(), set()])
        assert ledger.states[0] == BreakerState.CLOSED


class TestBreakerLifecycle:
    def test_open_probation_close(self):
        ledger = HealthLedger(2)
        # 3 bad rounds open; probation_rounds clean rounds reach
        # half-open; one more clean round closes.
        events = drive(ledger, [{0}] * 3 + [set()] * 3)
        assert ledger.states[0] == BreakerState.CLOSED
        assert any("on probation" in e for e in events)
        assert any("circuit closed" in e for e in events)
        # The closing floor keeps the score at the threshold.
        assert ledger.scores[0] >= ledger.policy.open_threshold

    def test_bad_round_during_probation_reopens(self):
        ledger = HealthLedger(2)
        drive(ledger, [{0}] * 3 + [set()] * 2)  # now half-open
        assert ledger.states[0] == BreakerState.HALF_OPEN
        events = ledger.observe_round(5, crashed={0})
        assert ledger.states[0] == BreakerState.OPEN
        assert any("re-opened" in e for e in events)

    def test_bad_round_while_open_restarts_streak(self):
        ledger = HealthLedger(2)
        drive(ledger, [{0}] * 3 + [set()] + [{0}])  # streak broken
        assert ledger.states[0] == BreakerState.OPEN
        ledger.observe_round(5)
        assert ledger.states[0] == BreakerState.OPEN  # streak only 1


class TestEvidenceKinds:
    def test_straggling_and_filtered_count_as_bad(self):
        ledger = HealthLedger(3)
        ledger.observe_round(0, straggling={0}, filtered={1})
        assert ledger.scores[0] < 1.0
        assert ledger.scores[1] < 1.0
        assert ledger.scores[2] == pytest.approx(1.0)


class TestExclusionFloor:
    def make_open(self, num_servers, open_ids):
        ledger = HealthLedger(num_servers)
        for _ in range(3):
            drive(ledger, [set(open_ids)])
        assert ledger.open_servers() == frozenset(open_ids)
        return ledger

    def test_excludes_all_open_when_floor_allows(self):
        ledger = self.make_open(5, {0, 1})
        excluded = ledger.excluded_servers(range(5), quorum_floor=3)
        assert excluded == frozenset({0, 1})

    def test_floor_readmits_best_scored(self):
        ledger = self.make_open(5, {0, 1, 2, 3})
        # Give server 3 a better score via one clean observation round
        # for everyone except 0-2.
        ledger.observe_round(10, crashed={0, 1, 2})
        excluded = ledger.excluded_servers(range(5), quorum_floor=3)
        # Only 2 may be excluded; the worst-scored (0,1,2 tie broken by
        # id, descending) go first and 3 is readmitted.
        assert len(excluded) == 2
        assert 3 not in excluded

    def test_floor_larger_than_candidates_excludes_nothing(self):
        ledger = self.make_open(3, {0, 1, 2})
        assert ledger.excluded_servers(range(3),
                                       quorum_floor=5) == frozenset()

    def test_candidates_filter_applies(self):
        ledger = self.make_open(5, {0, 4})
        excluded = ledger.excluded_servers([1, 2, 3, 4], quorum_floor=2)
        assert excluded == frozenset({4})


class TestSnapshot:
    def test_snapshot_is_a_copy(self):
        ledger = HealthLedger(2)
        snap = ledger.snapshot()
        snap["scores"][0] = -1.0
        assert ledger.scores[0] == 1.0
        assert set(snap) == {"scores", "states"}
