"""Tests for the hierarchical (grouped) multi-server FL baseline."""

import numpy as np
import pytest

from repro.aggregation import make_rule
from repro.attacks import RandomAttack
from repro.common import ConfigurationError, RngFactory
from repro.core import FedMSConfig, FedMSTrainer, HierarchicalTrainer
from repro.data import ArrayDataset, iid_partition
from repro.models import SoftmaxRegression


def make_blobs(n=300, num_classes=3, dim=6, seed=0):
    centers = np.random.default_rng(42).normal(scale=4.0,
                                               size=(num_classes, dim))
    rng = np.random.default_rng(seed)
    labels = np.arange(n) % num_classes
    features = centers[labels] + rng.normal(size=(n, dim))
    order = rng.permutation(n)
    return ArrayDataset(features[order], labels[order])


def make_trainer(num_byzantine=0, attack=None, seed=0, groups=None,
                 inter_server_rule=None, num_clients=10, num_servers=5,
                 **config_kwargs):
    data = make_blobs(seed=seed)
    test = make_blobs(n=120, seed=seed + 1)
    parts = iid_partition(data, num_clients, rng=RngFactory(seed).make("p"))
    config = FedMSConfig(
        num_clients=num_clients, num_servers=num_servers,
        num_byzantine=num_byzantine, local_steps=2, batch_size=8,
        learning_rate=0.2, eval_clients=2, seed=seed,
        **config_kwargs,
    )
    return HierarchicalTrainer(
        config,
        model_factory=lambda rng: SoftmaxRegression(6, 3, rng=rng),
        client_datasets=parts,
        test_dataset=test,
        attack=attack,
        group_of_client=groups,
        inter_server_rule=inter_server_rule,
    )


class TestConstruction:
    def test_default_round_robin_grouping(self):
        trainer = make_trainer()
        assert trainer.group_of_client == [0, 1, 2, 3, 4, 0, 1, 2, 3, 4]

    def test_explicit_grouping(self):
        groups = [0, 0, 1, 1, 2, 2, 3, 3, 4, 4]
        trainer = make_trainer(groups=groups)
        assert trainer.group_of_client == groups

    def test_rejects_empty_group(self):
        with pytest.raises(ConfigurationError, match="empty"):
            make_trainer(groups=[0] * 10)

    def test_rejects_out_of_range_group(self):
        with pytest.raises(ConfigurationError):
            make_trainer(groups=[0, 1, 2, 3, 9] * 2)

    def test_rejects_wrong_group_count(self):
        with pytest.raises(ConfigurationError):
            make_trainer(groups=[0, 1, 2])

    def test_requires_attack_for_byzantine(self):
        with pytest.raises(ConfigurationError):
            make_trainer(num_byzantine=1)


class TestTraining:
    def test_converges_without_byzantine(self):
        history = make_trainer(seed=1).run(12, eval_every=12)
        assert history.final_accuracy > 0.85

    def test_upload_cost_is_k(self):
        trainer = make_trainer()
        record = trainer.run_round()
        assert record.upload_messages == 10

    def test_inter_server_traffic_counted(self):
        trainer = make_trainer()
        trainer.run_round()
        stats = trainer.network.stats.snapshot()
        # P * (P - 1) peer messages per round.
        assert stats["messages_by_tag"]["inter_server"] == 5 * 4

    def test_clients_in_same_group_share_model(self):
        trainer = make_trainer()
        trainer.run_round()
        group0 = [c for c, g in zip(trainer.clients, trainer.group_of_client)
                  if g == 0]
        first = group0[0].model_vector()
        for client in group0[1:]:
            np.testing.assert_array_equal(first, client.model_vector())

    def test_clients_in_different_groups_can_differ(self):
        """Group aggregates differ (different members), so without
        Byzantine PSs the global models still coincide — but under a
        Byzantine PS its group diverges from the rest."""
        trainer = make_trainer(num_byzantine=1, attack=RandomAttack())
        trainer.run_round()
        byzantine_group = next(iter(trainer.byzantine_ids))
        victim = next(c for c, g in
                      zip(trainer.clients, trainer.group_of_client)
                      if g == byzantine_group)
        benign = next(c for c, g in
                      zip(trainer.clients, trainer.group_of_client)
                      if g not in trainer.byzantine_ids)
        assert not np.allclose(victim.model_vector(), benign.model_vector())

    def test_deterministic(self):
        a = make_trainer(num_byzantine=1, attack=RandomAttack(), seed=3).run(3)
        b = make_trainer(num_byzantine=1, attack=RandomAttack(), seed=3).run(3)
        np.testing.assert_allclose(a.train_losses, b.train_losses)


class TestByzantineVulnerability:
    """The motivating comparison: grouped FL cannot protect the clients of
    a Byzantine PS, while Fed-MS protects everyone."""

    def _fed_ms(self, seed):
        data = make_blobs(seed=seed)
        test = make_blobs(n=120, seed=seed + 1)
        parts = iid_partition(data, 10, rng=RngFactory(seed).make("p"))
        config = FedMSConfig(num_clients=10, num_servers=5, num_byzantine=1,
                             local_steps=2, batch_size=8, learning_rate=0.2,
                             trim_ratio=0.2, eval_clients=5, seed=seed)
        return FedMSTrainer(
            config,
            model_factory=lambda rng: SoftmaxRegression(6, 3, rng=rng),
            client_datasets=parts,
            test_dataset=test,
            attack=RandomAttack(),
        )

    def test_byzantine_group_is_lost_without_fed_ms(self):
        hierarchical = make_trainer(num_byzantine=1, attack=RandomAttack(),
                                    seed=7)
        hier_history = hierarchical.run(12, eval_every=12)
        fed_ms_history = self._fed_ms(seed=7).run(12, eval_every=12)
        # 1 of 5 groups (20% of clients) is fully controlled: hierarchical
        # population accuracy is capped ~20% below Fed-MS's.
        assert fed_ms_history.final_accuracy > \
            hier_history.final_accuracy + 0.1

    def test_robust_inter_server_rule_does_not_save_victim_group(self):
        """Even a trimmed-mean inter-server exchange cannot help: the
        Byzantine PS simply lies to its own clients directly."""
        robust = make_trainer(
            num_byzantine=1, attack=RandomAttack(), seed=8,
            inter_server_rule=make_rule("trimmed_mean", trim_ratio=0.2),
        )
        history = robust.run(12, eval_every=12)
        clean = make_trainer(seed=8).run(12, eval_every=12)
        assert history.final_accuracy < clean.final_accuracy - 0.05


class TestIgnoredConfigWarning:
    """upload_strategy is the one knob grouping makes meaningless."""

    def _construct(self, **config_overrides):
        data = make_blobs()
        test = make_blobs(n=60, seed=1)
        parts = iid_partition(data, 10, rng=RngFactory(0).make("p"))
        kwargs = dict(num_clients=10, num_servers=5, num_byzantine=0,
                      local_steps=2, batch_size=8, seed=0)
        kwargs.update(config_overrides)
        return HierarchicalTrainer(
            FedMSConfig(**kwargs),
            model_factory=lambda rng: SoftmaxRegression(6, 3, rng=rng),
            client_datasets=parts,
            test_dataset=test,
        )

    def test_warns_on_non_default_upload_strategy(self):
        with pytest.warns(RuntimeWarning, match="upload_strategy='full'"):
            self._construct(upload_strategy="full")

    def test_upload_codecs_supported_without_warning(self):
        import warnings as warnings_module

        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error")
            trainer = self._construct(upload_codecs=["topk(0.1)", "int8"])
        assert trainer._codec_active
        trainer.run_round(evaluate=False)
        stats = trainer.network.stats
        dense = self._construct()
        dense.run_round(evaluate=False)
        # The encoded legs carry measurably fewer bytes than dense ones.
        for tag in ("upload", "inter_server", "dissemination"):
            assert (stats.bytes_by_tag[tag]
                    < dense.network.stats.bytes_by_tag[tag])

    def test_no_warning_for_default_config(self):
        import warnings as warnings_module

        with warnings_module.catch_warnings():
            warnings_module.simplefilter("error")
            self._construct()


class TestDeadlineMode:
    def test_deadline_beats_barrier_in_simulated_time(self):
        barrier = make_trainer(straggler_rate=0.3)
        barrier.run(3, eval_every=10)
        deadline = make_trainer(aggregation_mode="deadline",
                                straggler_rate=0.3)
        deadline.run(3, eval_every=10)
        assert (deadline.history.total_simulated_time_s
                < barrier.history.total_simulated_time_s)

    def test_late_exchanges_admitted_within_staleness(self):
        trainer = make_trainer(aggregation_mode="deadline",
                               straggler_rate=0.45, max_staleness=1)
        history = trainer.run(6, eval_every=10)
        assert history.total_deadline_missed > 0
        assert history.total_late_admitted > 0

    def test_zero_staleness_blocks_admission(self):
        trainer = make_trainer(aggregation_mode="deadline",
                               straggler_rate=0.45, max_staleness=0)
        history = trainer.run(6, eval_every=10)
        assert history.total_late_admitted == 0

    def test_deadline_run_converges(self):
        history = make_trainer(seed=1, aggregation_mode="deadline",
                               straggler_rate=0.2).run(12, eval_every=12)
        assert history.final_accuracy > 0.8
