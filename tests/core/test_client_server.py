"""Tests for Client and ParameterServer/ByzantineParameterServer."""

import numpy as np
import pytest

from repro.aggregation import make_rule
from repro.attacks import NoiseAttack, RandomAttack, SignFlipAttack
from repro.common import ProtocolError, RngFactory
from repro.core import ByzantineParameterServer, Client, ParameterServer
from repro.data import ArrayDataset
from repro.models import MLP, SoftmaxRegression
from repro.nn import InverseTimeDecay, to_vector


def make_client(client_id=0, n=40, seed=0, **kwargs):
    rngs = RngFactory(seed)
    rng = np.random.default_rng(seed)
    data = ArrayDataset(rng.normal(size=(n, 4)), rng.integers(0, 3, size=n))
    model = MLP(4, (8,), 3, rng=rngs.make("init"))
    return Client(client_id, model, data, batch_size=8,
                  rng=rngs.make("batches"), **kwargs)


class TestClient:
    def test_model_vector_roundtrip(self):
        client = make_client()
        vector = client.model_vector()
        client.set_model_vector(vector * 2.0)
        np.testing.assert_allclose(client.model_vector(), vector * 2.0)

    def test_local_train_changes_model(self):
        client = make_client()
        before = client.model_vector()
        after = client.local_train(round_index=0, local_steps=3)
        assert not np.array_equal(before, after)

    def test_local_train_records_loss(self):
        client = make_client()
        client.local_train(0, 2)
        assert client.last_train_loss is not None
        assert np.isfinite(client.last_train_loss)

    def test_local_train_step_count_affects_result(self):
        a = make_client(seed=3)
        b = make_client(seed=3)
        va = a.local_train(0, 1)
        vb = b.local_train(0, 5)
        assert not np.array_equal(va, vb)

    def test_lr_schedule_used_per_global_step(self):
        """With eta_t = phi/(gamma+t), round 1 must use later (smaller) rates
        than round 0, producing a smaller parameter displacement."""
        schedule = InverseTimeDecay(phi=1.0, gamma=1.0)
        a = make_client(seed=1, lr_schedule=schedule)
        start = a.model_vector()
        a.local_train(round_index=0, local_steps=3)
        early_move = np.linalg.norm(a.model_vector() - start)

        b = make_client(seed=1, lr_schedule=schedule)
        b.set_model_vector(start)
        b.local_train(round_index=50, local_steps=3)
        late_move = np.linalg.norm(b.model_vector() - start)
        assert late_move < early_move

    def test_filter_received_adopts_output(self):
        client = make_client()
        dim = client.model_vector().size
        models = [np.full(dim, float(v)) for v in [1, 2, 3, 4, 5]]
        result = client.filter_received(models, make_rule("trimmed_mean",
                                                          trim_ratio=0.2))
        np.testing.assert_allclose(result, 3.0)
        np.testing.assert_allclose(client.model_vector(), 3.0)

    def test_filter_received_empty_raises(self):
        client = make_client()
        with pytest.raises(ProtocolError):
            client.filter_received([], make_rule("mean"))

    def test_evaluate_returns_loss_and_accuracy(self):
        client = make_client()
        loss, acc = client.evaluate(client.dataset)
        assert np.isfinite(loss)
        assert 0.0 <= acc <= 1.0

    def test_flatten_inputs(self):
        rngs = RngFactory(0)
        rng = np.random.default_rng(0)
        images = rng.normal(size=(20, 3, 4, 4))
        data = ArrayDataset(images, rng.integers(0, 2, size=20))
        model = SoftmaxRegression(48, 2, rng=rngs.make("init"))
        client = Client(0, model, data, batch_size=5,
                        rng=rngs.make("b"), flatten_inputs=True)
        client.local_train(0, 2)  # would raise ShapeError without flattening
        loss, acc = client.evaluate(data)
        assert np.isfinite(loss)


class TestParameterServer:
    def test_aggregate_is_mean(self):
        server = ParameterServer(0)
        result = server.aggregate([np.array([1.0, 2.0]), np.array([3.0, 4.0])])
        np.testing.assert_array_equal(result, [2.0, 3.0])

    def test_history_accumulates(self):
        server = ParameterServer(0)
        server.aggregate([np.array([1.0])])
        server.aggregate([np.array([2.0])])
        assert len(server.aggregate_history) == 2
        np.testing.assert_array_equal(server.current_aggregate, [2.0])

    def test_empty_uploads_reuse_previous(self):
        server = ParameterServer(0)
        server.aggregate([np.array([5.0])])
        result = server.aggregate([])
        np.testing.assert_array_equal(result, [5.0])
        assert server.rounds_without_uploads == 1

    def test_empty_uploads_first_round_raise(self):
        with pytest.raises(ProtocolError):
            ParameterServer(0).aggregate([])

    def test_current_aggregate_before_any_round_raises(self):
        with pytest.raises(ProtocolError):
            ParameterServer(0).current_aggregate

    def test_history_bounded(self):
        server = ParameterServer(0, max_history=3)
        for i in range(10):
            server.aggregate([np.array([float(i)])])
        assert len(server.aggregate_history) == 3
        np.testing.assert_array_equal(server.current_aggregate, [9.0])

    def test_benign_dissemination_is_truth(self):
        server = ParameterServer(0)
        server.aggregate([np.array([1.0, 2.0])])
        result = server.disseminate(round_index=0)
        np.testing.assert_array_equal(result, [1.0, 2.0])
        assert not server.is_byzantine


class TestByzantineParameterServer:
    def make_server(self, attack):
        return ByzantineParameterServer(3, attack,
                                        rng=RngFactory(0).make("attack"))

    def test_aggregation_stays_honest(self):
        server = self.make_server(RandomAttack())
        result = server.aggregate([np.array([2.0]), np.array([4.0])])
        np.testing.assert_array_equal(result, [3.0])

    def test_dissemination_is_tampered(self):
        server = self.make_server(SignFlipAttack())
        server.aggregate([np.array([1.0, -2.0])])
        result = server.disseminate(round_index=0)
        np.testing.assert_array_equal(result, [-1.0, 2.0])
        assert server.is_byzantine

    def test_attack_sees_history(self):
        from repro.attacks import BackwardAttack

        server = self.make_server(BackwardAttack(delay=2))
        for i in range(5):
            server.aggregate([np.array([float(i)])])
        result = server.disseminate(round_index=4)
        np.testing.assert_array_equal(result, [2.0])

    def test_noise_attack_uses_server_rng(self):
        server = self.make_server(NoiseAttack(scale=1.0))
        server.aggregate([np.zeros(100)])
        a = server.disseminate(round_index=0)
        b = server.disseminate(round_index=0)
        # Consecutive draws differ (stream advances).
        assert not np.array_equal(a, b)
