"""Tests for TrainingHistory/RoundRecord."""

from repro.core import RoundRecord, TrainingHistory


def record(i, acc=None, loss=1.0, uploads=5, upload_bytes=40):
    return RoundRecord(round_index=i, train_loss=loss, test_accuracy=acc,
                       upload_messages=uploads, upload_bytes=upload_bytes)


class TestTrainingHistory:
    def test_empty_history(self):
        history = TrainingHistory()
        assert len(history) == 0
        assert history.final_accuracy is None
        assert history.best_accuracy is None
        assert history.accuracies == []

    def test_append_and_rounds(self):
        history = TrainingHistory()
        history.append(record(0))
        history.append(record(1))
        assert history.rounds == [0, 1]
        assert len(history) == 2

    def test_accuracies_skip_unevaluated_rounds(self):
        history = TrainingHistory()
        history.append(record(0, acc=0.2))
        history.append(record(1, acc=None))
        history.append(record(2, acc=0.5))
        assert history.accuracies == [0.2, 0.5]
        assert history.evaluated_rounds == [0, 2]

    def test_final_and_best_accuracy(self):
        history = TrainingHistory()
        history.append(record(0, acc=0.7))
        history.append(record(1, acc=0.4))
        assert history.final_accuracy == 0.4
        assert history.best_accuracy == 0.7

    def test_communication_totals(self):
        history = TrainingHistory()
        history.append(record(0, uploads=50, upload_bytes=400))
        history.append(record(1, uploads=50, upload_bytes=400))
        assert history.total_upload_messages == 100
        assert history.total_upload_bytes == 800

    def test_to_dict_roundtrip_keys(self):
        history = TrainingHistory()
        history.append(record(0, acc=0.3))
        summary = history.to_dict()
        assert summary["num_rounds"] == 1
        assert summary["final_accuracy"] == 0.3
        assert summary["accuracies"] == [0.3]
        assert summary["total_upload_messages"] == 5

    def test_train_losses(self):
        history = TrainingHistory()
        history.append(record(0, loss=2.0))
        history.append(record(1, loss=1.0))
        assert history.train_losses == [2.0, 1.0]


class TestEstimatingFilterFields:
    def make_history(self):
        history = TrainingHistory()
        history.append(RoundRecord(round_index=0, train_loss=1.0,
                                   estimated_byzantine=2,
                                   filtered_model_ids=[0, 3]))
        history.append(RoundRecord(round_index=1, train_loss=0.9,
                                   estimated_byzantine=1,
                                   filtered_model_ids=[3]))
        history.append(RoundRecord(round_index=2, train_loss=0.8))
        return history

    def test_defaults_are_empty(self):
        record = RoundRecord(round_index=0, train_loss=1.0)
        assert record.estimated_byzantine is None
        assert record.filtered_model_ids == []

    def test_trace_preserves_gaps(self):
        assert self.make_history().estimated_byzantine_trace == [2, 1, None]

    def test_mean_skips_missing_estimates(self):
        assert self.make_history().mean_estimated_byzantine == 1.5

    def test_mean_none_when_nothing_estimated(self):
        history = TrainingHistory()
        history.append(RoundRecord(round_index=0, train_loss=1.0))
        assert history.mean_estimated_byzantine is None

    def test_filtered_model_id_counts(self):
        assert self.make_history().filtered_model_id_counts == {0: 1, 3: 2}

    def test_to_dict_includes_robustness_fields(self):
        summary = self.make_history().to_dict()
        assert summary["estimated_byzantine_trace"] == [2, 1, None]
        assert summary["mean_estimated_byzantine"] == 1.5
        assert summary["filtered_model_id_counts"] == {0: 1, 3: 2}
