"""Tests for latency models and synchronous round-time accounting."""

import numpy as np
import pytest

from repro.common import ConfigurationError, RngFactory
from repro.core import FullUpload, SparseUpload
from repro.simulation import (
    ConstantLatency,
    LatencyModel,
    LogNormalLatency,
    UniformLatency,
    round_time,
)


@pytest.fixture()
def rng():
    return RngFactory(0).make("latency")


class TestConstantLatency:
    def test_base_plus_bandwidth(self, rng):
        model = ConstantLatency(base=0.01, bandwidth_bytes_per_s=1000.0)
        assert model.sample(size_bytes=500, rng=rng) == pytest.approx(0.51)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ConstantLatency(base=-1.0)
        with pytest.raises(ConfigurationError):
            ConstantLatency(bandwidth_bytes_per_s=0.0)


class TestUniformLatency:
    def test_in_range(self, rng):
        model = UniformLatency(0.1, 0.2, bandwidth_bytes_per_s=1e12)
        samples = [model.sample(size_bytes=8, rng=rng) for _ in range(200)]
        assert all(0.1 <= s <= 0.2 + 1e-9 for s in samples)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            UniformLatency(0.2, 0.1)


class TestLogNormalLatency:
    def test_median_roughly_matches(self, rng):
        model = LogNormalLatency(median=0.05, sigma=0.5,
                                 bandwidth_bytes_per_s=1e12)
        samples = [model.sample(size_bytes=8, rng=rng) for _ in range(3000)]
        assert np.median(samples) == pytest.approx(0.05, rel=0.1)

    def test_heavy_tail(self, rng):
        model = LogNormalLatency(median=0.05, sigma=1.0,
                                 bandwidth_bytes_per_s=1e12)
        samples = [model.sample(size_bytes=8, rng=rng) for _ in range(3000)]
        assert max(samples) > 10 * np.median(samples)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LogNormalLatency(median=0.0)
        with pytest.raises(ConfigurationError):
            LogNormalLatency(sigma=0.0)


class TestRoundTime:
    def _assignment(self, strategy, num_clients=10, num_servers=5, seed=0):
        return strategy.assign(num_clients, num_servers,
                               rng=RngFactory(seed).make("assign"))

    def test_breakdown_sums_to_total(self, rng):
        assignment = self._assignment(SparseUpload())
        total, breakdown = round_time(
            assignment, model_bytes=1000, latency=ConstantLatency(),
            num_servers=5, rng=rng, compute_seconds=1.5,
        )
        assert total == pytest.approx(sum(breakdown.values()))
        assert breakdown["compute"] == 1.5

    def test_full_upload_slower_than_sparse(self, rng):
        """Per-client sequential uplink: P uploads take ~P times longer."""
        sparse_total, sparse_parts = round_time(
            self._assignment(SparseUpload()), model_bytes=1000,
            latency=ConstantLatency(base=0.1), num_servers=5,
            rng=RngFactory(1).make("a"),
        )
        full_total, full_parts = round_time(
            self._assignment(FullUpload()), model_bytes=1000,
            latency=ConstantLatency(base=0.1), num_servers=5,
            rng=RngFactory(1).make("b"),
        )
        assert full_parts["upload"] == pytest.approx(
            5 * sparse_parts["upload"]
        )
        assert full_total > sparse_total

    def test_stragglers_dominate_with_heavy_tail(self):
        """The synchronous barrier waits for the slowest draw, so the round
        time under a heavy-tailed model exceeds the median link by a lot."""
        model = LogNormalLatency(median=0.05, sigma=1.0,
                                 bandwidth_bytes_per_s=1e12)
        total, parts = round_time(
            self._assignment(SparseUpload(), num_clients=50),
            model_bytes=8, latency=model, num_servers=10,
            rng=RngFactory(2).make("c"),
        )
        assert parts["dissemination"] > 3 * 0.05

    def test_validation(self, rng):
        with pytest.raises(ConfigurationError):
            round_time([], model_bytes=8, latency=ConstantLatency(),
                       num_servers=1, rng=rng)
        with pytest.raises(ConfigurationError):
            round_time([[0]], model_bytes=0, latency=ConstantLatency(),
                       num_servers=1, rng=rng)
        with pytest.raises(ConfigurationError):
            round_time([[0]], model_bytes=8, latency=ConstantLatency(),
                       num_servers=1, rng=rng, compute_seconds=-1.0)

    def test_base_model_abstract(self, rng):
        with pytest.raises(NotImplementedError):
            LatencyModel().sample(size_bytes=1, rng=rng)
