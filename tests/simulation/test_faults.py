"""Tests for the deterministic fault-injection layer."""

import numpy as np
import pytest

from repro.common import ConfigurationError, RngFactory
from repro.simulation import (
    ClientDropout,
    FaultInjector,
    FaultPlan,
    LinkPartition,
    Message,
    Network,
    NodeId,
    ServerCrash,
    ServerStraggler,
)


def make_message(sender, recipient, tag="upload", round_index=0):
    return Message(sender, recipient, np.zeros(4), tag=tag,
                   round_index=round_index)


class TestFaultEvents:
    def test_window_is_half_open(self):
        crash = ServerCrash(0, start_round=3, end_round=5)
        assert not crash.active(2)
        assert crash.active(3)
        assert crash.active(4)
        assert not crash.active(5)

    def test_permanent_fault_never_ends(self):
        crash = ServerCrash(0, start_round=3)
        assert crash.active(3)
        assert crash.active(10_000)

    def test_rejects_negative_start(self):
        with pytest.raises(ConfigurationError):
            ServerCrash(0, start_round=-1)

    def test_rejects_empty_window(self):
        with pytest.raises(ConfigurationError):
            ServerCrash(0, start_round=3, end_round=3)

    def test_rejects_negative_ids(self):
        with pytest.raises(ConfigurationError):
            ServerCrash(-1, start_round=0)
        with pytest.raises(ConfigurationError):
            ClientDropout(-1, start_round=0)
        with pytest.raises(ConfigurationError):
            LinkPartition(-1, 0, start_round=0)

    def test_straggler_rejects_nonpositive_delay(self):
        with pytest.raises(ConfigurationError):
            ServerStraggler(0, start_round=0, delay_s=0.0)


class TestFaultPlan:
    def test_empty_plan(self):
        plan = FaultPlan()
        assert plan.is_empty
        assert plan.crashed_servers(0) == frozenset()
        assert plan.offline_clients(0) == frozenset()
        assert plan.severed_links(0) == frozenset()
        assert plan.straggling_servers(0) == {}

    def test_queries_respect_windows(self):
        plan = FaultPlan(
            crashes=(ServerCrash(1, 2, 4), ServerCrash(3, 3)),
            dropouts=(ClientDropout(0, 1, 2),),
            partitions=(LinkPartition(2, 1, 0, 3),),
        )
        assert plan.crashed_servers(1) == frozenset()
        assert plan.crashed_servers(2) == {1}
        assert plan.crashed_servers(3) == {1, 3}
        assert plan.crashed_servers(4) == {3}
        assert plan.offline_clients(1) == {0}
        assert plan.offline_clients(2) == frozenset()
        assert plan.severed_links(2) == {(2, 1)}
        assert plan.severed_links(3) == frozenset()

    def test_overlapping_straggler_delays_take_max(self):
        plan = FaultPlan(stragglers=(
            ServerStraggler(0, 0, delay_s=1.0),
            ServerStraggler(0, 0, delay_s=3.0),
        ))
        assert plan.straggling_servers(0) == {0: 3.0}

    def test_accepts_lists_and_stores_tuples(self):
        plan = FaultPlan(crashes=[ServerCrash(0, 1)])
        assert isinstance(plan.crashes, tuple)

    def test_validate_topology(self):
        plan = FaultPlan(crashes=(ServerCrash(5, 0),))
        with pytest.raises(ConfigurationError, match="PS 5"):
            plan.validate_topology(num_clients=8, num_servers=5)
        FaultPlan(crashes=(ServerCrash(4, 0),)).validate_topology(
            num_clients=8, num_servers=5)
        with pytest.raises(ConfigurationError):
            FaultPlan(dropouts=(ClientDropout(8, 0),)).validate_topology(
                num_clients=8, num_servers=5)
        with pytest.raises(ConfigurationError):
            FaultPlan(partitions=(LinkPartition(0, 5, 0),)).validate_topology(
                num_clients=8, num_servers=5)

    def test_sample_is_deterministic_in_the_rng(self):
        kwargs = dict(num_clients=10, num_servers=6, num_rounds=20,
                      server_crash_rate=0.5, client_dropout_rate=0.5,
                      link_partition_rate=0.05)
        first = FaultPlan.sample(rng=np.random.default_rng(7), **kwargs)
        second = FaultPlan.sample(rng=np.random.default_rng(7), **kwargs)
        assert first == second
        assert not first.is_empty

    def test_sample_validates_rates(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.sample(num_clients=4, num_servers=3, num_rounds=10,
                             rng=np.random.default_rng(0),
                             server_crash_rate=1.5)

    def test_sample_needs_multiple_rounds(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.sample(num_clients=4, num_servers=3, num_rounds=1,
                             rng=np.random.default_rng(0))


class TestFaultInjector:
    def test_transition_events_only(self):
        injector = FaultInjector(FaultPlan(crashes=(ServerCrash(2, 1, 3),)))
        assert injector.begin_round(0) == []
        assert injector.begin_round(1) == ["server 2 crashed"]
        assert injector.begin_round(2) == []
        assert injector.begin_round(3) == ["server 2 recovered"]
        assert injector.event_log == [(1, "server 2 crashed"),
                                      (3, "server 2 recovered")]

    def test_liveness_queries(self):
        injector = FaultInjector(FaultPlan(
            crashes=(ServerCrash(1, 0),),
            dropouts=(ClientDropout(2, 0),),
            partitions=(LinkPartition(0, 0, 0),),
        ))
        injector.begin_round(0)
        assert not injector.server_alive(1)
        assert injector.server_alive(0)
        assert not injector.client_active(2)
        assert not injector.link_up(0, 0)
        assert injector.link_up(0, 2)
        assert injector.alive_servers(3) == [0, 2]
        assert injector.active_clients(4) == [0, 1, 3]

    def test_drops_traffic_to_and_from_crashed_server(self):
        injector = FaultInjector(FaultPlan(crashes=(ServerCrash(1, 0),)))
        injector.begin_round(0)
        assert injector.should_drop(
            make_message(NodeId.client(0), NodeId.server(1)))
        assert injector.should_drop(
            make_message(NodeId.server(1), NodeId.client(0),
                         tag="dissemination"))
        assert not injector.should_drop(
            make_message(NodeId.client(0), NodeId.server(0)))

    def test_drops_both_directions_of_severed_link(self):
        injector = FaultInjector(FaultPlan(
            partitions=(LinkPartition(3, 2, 0),)))
        injector.begin_round(0)
        assert injector.should_drop(
            make_message(NodeId.client(3), NodeId.server(2)))
        assert injector.should_drop(
            make_message(NodeId.server(2), NodeId.client(3)))
        assert not injector.should_drop(
            make_message(NodeId.client(3), NodeId.server(1)))

    def test_straggler_drops_only_past_deadline(self):
        plan = FaultPlan(stragglers=(ServerStraggler(0, 0, delay_s=2.0),))
        meets = FaultInjector(plan, round_deadline_s=5.0)
        meets.begin_round(0)
        assert not meets.should_drop(
            make_message(NodeId.server(0), NodeId.client(1),
                         tag="dissemination"))
        misses = FaultInjector(plan, round_deadline_s=1.0)
        events = misses.begin_round(0)
        assert any("straggling" in e for e in events)
        assert misses.should_drop(
            make_message(NodeId.server(0), NodeId.client(1),
                         tag="dissemination"))
        # Inbound traffic to a straggler is unaffected — it is alive.
        assert not misses.should_drop(
            make_message(NodeId.client(1), NodeId.server(0)))

    def test_no_deadline_means_stragglers_always_deliver(self):
        injector = FaultInjector(
            FaultPlan(stragglers=(ServerStraggler(0, 0, delay_s=100.0),)))
        injector.begin_round(0)
        assert not injector.should_drop(
            make_message(NodeId.server(0), NodeId.client(1),
                         tag="dissemination"))

    def test_rejects_nonpositive_deadline(self):
        with pytest.raises(ConfigurationError):
            FaultInjector(FaultPlan(), round_deadline_s=0.0)

    def test_composes_with_network_drop_accounting(self):
        injector = FaultInjector(FaultPlan(crashes=(ServerCrash(0, 0),)))
        injector.begin_round(0)
        network = Network()
        network.add_drop_rule(injector.should_drop)
        assert not network.send(
            make_message(NodeId.client(0), NodeId.server(0)))
        assert network.send(make_message(NodeId.client(0), NodeId.server(1)))
        assert network.stats.dropped_by_tag == {"upload": 1}
