"""VirtualClock: order-independent arrivals, deadlines, stage timing."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError
from repro.simulation.clock import VirtualClock, split_by_deadline


class TestArrivals:
    def test_deterministic_per_key(self):
        clock = VirtualClock(7)
        a = clock.arrival_s(3, "broadcast", 2)
        b = clock.arrival_s(3, "broadcast", 2)
        assert a == b
        assert a > 0.0

    def test_order_independent(self):
        clock = VirtualClock(7)
        forward = clock.arrivals(1, "exchange", [0, 1, 2, 3])
        backward = clock.arrivals(1, "exchange", [3, 2, 1, 0])
        assert forward == backward

    def test_distinct_streams_per_round_leg_key(self):
        clock = VirtualClock(7)
        base = clock.arrival_s(0, "broadcast", 0)
        assert clock.arrival_s(1, "broadcast", 0) != base
        assert clock.arrival_s(0, "exchange", 0) != base
        assert clock.arrival_s(0, "broadcast", 1) != base

    def test_different_seeds_differ(self):
        assert (VirtualClock(1).arrival_s(0, "broadcast", 0)
                != VirtualClock(2).arrival_s(0, "broadcast", 0))


class TestStragglers:
    def test_straggler_inflates_some_arrivals(self):
        plain = VirtualClock(7)
        slow = VirtualClock(7, straggler_rate=0.5, straggler_factor=10.0)
        keys = list(range(64))
        base = plain.arrivals(0, "broadcast", keys)
        inflated = slow.arrivals(0, "broadcast", keys)
        ratios = [inflated[k] / base[k] for k in keys]
        assert any(r == pytest.approx(10.0) for r in ratios)
        assert any(r == pytest.approx(1.0) for r in ratios)

    def test_rate_validation(self):
        with pytest.raises(ConfigurationError):
            VirtualClock(0, straggler_rate=1.0)
        with pytest.raises(ConfigurationError):
            VirtualClock(0, straggler_factor=0.5)


class TestDeadline:
    def test_quantile_calibration_monotone(self):
        clock = VirtualClock(7)
        assert (clock.deadline_for_quantile(0.5)
                < clock.deadline_for_quantile(0.95))

    def test_calibration_excludes_stragglers(self):
        # Stragglers must overshoot a deadline calibrated straggler-free.
        clock = VirtualClock(7, straggler_rate=0.3, straggler_factor=10.0)
        deadline = clock.deadline_for_quantile(0.95)
        arrivals = clock.arrivals(0, "broadcast", range(128))
        _, late = split_by_deadline(arrivals, deadline)
        assert late  # with 30% stragglers over 128 draws, some must miss

    def test_quantile_validation(self):
        with pytest.raises(ConfigurationError):
            VirtualClock(0).deadline_for_quantile(0.0)
        with pytest.raises(ConfigurationError):
            VirtualClock(0).deadline_for_quantile(0.5, draws=1)


class TestStageSeconds:
    def test_barrier_waits_for_slowest(self):
        clock = VirtualClock(0)
        arrivals = {0: 1.0, 1: 5.0, 2: 2.0}
        assert clock.stage_seconds(arrivals) == 5.0

    def test_deadline_caps_the_stage(self):
        clock = VirtualClock(0)
        arrivals = {0: 1.0, 1: 5.0, 2: 2.0}
        assert clock.stage_seconds(arrivals, deadline_s=3.0) == 3.0
        assert clock.stage_seconds(arrivals, deadline_s=9.0) == 5.0

    def test_empty_stage_is_free(self):
        assert VirtualClock(0).stage_seconds({}) == 0.0


class TestSplitByDeadline:
    def test_partition_and_ordering(self):
        arrivals = {3: 0.1, 1: 9.0, 2: 0.2, 0: 7.0}
        on_time, late = split_by_deadline(arrivals, 1.0)
        assert on_time == [2, 3]
        assert late == [0, 1]

    def test_boundary_is_on_time(self):
        on_time, late = split_by_deadline({0: 1.0}, 1.0)
        assert on_time == [0] and late == []
