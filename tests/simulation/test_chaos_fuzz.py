"""Chaos fuzzing: randomized fault x churn schedules must never wedge.

Each case draws a seeded random :class:`FaultPlan` (crashes, dropouts,
partitions, server stragglers) and :class:`ChurnPlan` (joins, leaves,
rejoins), layers them on a deadline-mode run, and asserts the structural
invariants that must hold under ANY schedule: the run completes, rounds
progress monotonically, quorum degradation never exceeds what the alive
set allows, byte accounting stays consistent, and the history serializes.
The plans are drawn from the seed, so every failure is replayable.
"""

import json

import numpy as np
import pytest

from repro.attacks import make_attack
from repro.common import RngFactory
from repro.core import FedMSConfig, FedMSTrainer
from repro.core.filtering import quorum_floor
from repro.data import ArrayDataset, iid_partition
from repro.models import SoftmaxRegression
from repro.population import (
    ChurnPlan,
    PopulationTrainer,
    make_blob_population,
    make_blob_test_dataset,
)
from repro.simulation import FaultInjector, FaultPlan

POPULATION = 32
FEATURES, CLASSES = 5, 3
FUZZ_SEEDS = [3, 17, 29, 41, 53]


def fuzz_plans(seed, *, num_rounds, num_servers, population):
    """One seed -> one replayable (FaultPlan, ChurnPlan) pair."""
    fault_rng = np.random.default_rng(seed)
    churn_rng = np.random.default_rng(seed + 1000)
    faults = FaultPlan.sample(
        num_clients=population, num_servers=num_servers,
        num_rounds=num_rounds, rng=fault_rng,
        server_crash_rate=0.3, recover_fraction=0.6,
        client_dropout_rate=0.15, dropout_rounds=2,
        link_partition_rate=0.02, partition_rounds=2,
        server_straggler_rate=0.3, straggler_rounds=2,
        straggler_delay_s=3.0,
    )
    churn = ChurnPlan.sample(
        population_size=population, num_rounds=num_rounds,
        rng=churn_rng, join_rate=0.2, leave_rate=0.2,
        rejoin_fraction=0.5, dwell_rounds=2,
    )
    return faults, churn


class TestPopulationChaos:
    NUM_ROUNDS = 6
    NUM_SERVERS = 9

    def run_fuzzed(self, seed):
        faults, churn = fuzz_plans(
            seed, num_rounds=self.NUM_ROUNDS,
            num_servers=self.NUM_SERVERS, population=POPULATION,
        )
        config = FedMSConfig(
            num_clients=POPULATION, num_servers=self.NUM_SERVERS,
            num_byzantine=0, seed=seed, local_steps=2, batch_size=8,
            learning_rate=0.1, population_size=POPULATION,
            sample_fraction=0.3, tier_spec=(6, 2, 1),
            tier_byzantine=(1, 0, 0),
            aggregation_mode="deadline", straggler_rate=0.3,
            max_staleness=1, upload_codecs=("topk(0.5)",),
        )
        specs = make_blob_population(
            POPULATION, samples_per_client=16, feature_dim=FEATURES,
            num_classes=CLASSES, seed=seed, heterogeneity=0.2,
        )
        test = make_blob_test_dataset(num_samples=60,
                                      feature_dim=FEATURES,
                                      num_classes=CLASSES, seed=seed)
        trainer = PopulationTrainer(
            config,
            model_factory=lambda rng: SoftmaxRegression(FEATURES, CLASSES,
                                                        rng=rng),
            shard_specs=specs,
            test_dataset=test,
            attack=make_attack("sign_flip"),
            churn_plan=churn,
            fault_plan=faults,
        )
        with trainer:
            history = trainer.run(self.NUM_ROUNDS)
            stats = trainer.network.stats.snapshot()
        return history, stats

    @pytest.mark.parametrize("seed", FUZZ_SEEDS)
    def test_run_completes_with_monotone_rounds(self, seed):
        history, _ = self.run_fuzzed(seed)
        assert [r.round_index for r in history.records] == \
            list(range(self.NUM_ROUNDS))

    @pytest.mark.parametrize("seed", FUZZ_SEEDS)
    def test_membership_and_timing_invariants(self, seed):
        history, _ = self.run_fuzzed(seed)
        for record in history.records:
            assert 0 <= record.num_active_clients <= POPULATION
            assert record.num_sampled_clients <= record.num_active_clients
            assert record.simulated_time_s is not None
            assert record.simulated_time_s >= 0.0
            assert record.deadline_missed >= 0
            assert record.late_admitted >= 0
        # Admissions can never outnumber the misses that buffered them.
        assert (history.total_late_admitted
                <= history.total_deadline_missed)

    @pytest.mark.parametrize("seed", FUZZ_SEEDS)
    def test_byte_accounting_consistent(self, seed):
        _, stats = self.run_fuzzed(seed)
        assert stats["offered_bytes_total"] >= stats["bytes_total"]
        dropped = sum(stats["dropped_bytes_by_tag"].values())
        assert stats["offered_bytes_total"] == \
            stats["bytes_total"] + dropped

    @pytest.mark.parametrize("seed", FUZZ_SEEDS)
    def test_history_serializes(self, seed):
        history, _ = self.run_fuzzed(seed)
        payload = json.dumps(history.to_dict())
        assert json.loads(payload)["num_rounds"] == self.NUM_ROUNDS

    def test_replayable(self):
        one, _ = self.run_fuzzed(FUZZ_SEEDS[0])
        two, _ = self.run_fuzzed(FUZZ_SEEDS[0])
        assert one.train_losses == two.train_losses
        assert one.excluded_server_trace == two.excluded_server_trace


class TestFlatChaosWithHealth:
    """The flat trainer under fuzzed crash loops with the breaker armed."""

    NUM_ROUNDS = 8
    NUM_SERVERS = 10
    NUM_BYZANTINE = 2

    def run_fuzzed(self, seed):
        faults, _ = fuzz_plans(seed, num_rounds=self.NUM_ROUNDS,
                               num_servers=self.NUM_SERVERS,
                               population=8)
        centers = np.random.default_rng(42).normal(
            scale=4.0, size=(CLASSES, FEATURES))
        rng = np.random.default_rng(seed)
        labels = np.arange(240) % CLASSES
        features = centers[labels] + rng.normal(size=(240, FEATURES))
        data = ArrayDataset(features, labels)
        parts = iid_partition(data, 8, rng=RngFactory(seed).make("p"))
        config = FedMSConfig(
            num_clients=8, num_servers=self.NUM_SERVERS,
            num_byzantine=self.NUM_BYZANTINE, seed=seed,
            local_steps=2, batch_size=8, learning_rate=0.2,
            eval_clients=2, aggregation_mode="deadline",
            straggler_rate=0.3, health_scoring=True,
        )
        trainer = FedMSTrainer(
            config,
            model_factory=lambda rng: SoftmaxRegression(FEATURES, CLASSES,
                                                        rng=rng),
            client_datasets=parts,
            test_dataset=data,
            attack=make_attack("noise"),
            fault_injector=FaultInjector(faults),
        )
        with trainer:
            return trainer.run(self.NUM_ROUNDS, eval_every=self.NUM_ROUNDS)

    @pytest.mark.parametrize("seed", FUZZ_SEEDS)
    def test_exclusions_respect_quorum_floor(self, seed):
        history = self.run_fuzzed(seed)
        floor = quorum_floor(self.NUM_BYZANTINE)
        for record in history.records:
            assert record.alive_servers is not None
            counted = record.alive_servers - len(record.excluded_servers)
            assert counted >= min(floor, record.alive_servers)

    @pytest.mark.parametrize("seed", FUZZ_SEEDS)
    def test_completes_and_scores_every_server(self, seed):
        history = self.run_fuzzed(seed)
        assert len(history) == self.NUM_ROUNDS
        last = history.records[-1]
        assert set(last.health_scores) == set(range(self.NUM_SERVERS))
        assert all(0.0 <= s <= 1.0 for s in last.health_scores.values())
