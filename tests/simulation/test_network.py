"""Tests for the network transport, traffic accounting and scheduler."""

import numpy as np
import pytest

from repro.common import ConfigurationError, RngFactory
from repro.simulation import Message, Network, NodeId, RoundScheduler


def make_message(sender=None, recipient=None, size=4, tag="upload", round_index=0):
    return Message(
        sender or NodeId.client(0),
        recipient or NodeId.server(0),
        np.zeros(size),
        tag=tag,
        round_index=round_index,
    )


class TestNodeId:
    def test_equality_and_hash(self):
        assert NodeId.client(1) == NodeId.client(1)
        assert NodeId.client(1) != NodeId.server(1)
        assert len({NodeId.client(1), NodeId.client(1)}) == 1

    def test_rejects_unknown_role(self):
        with pytest.raises(ConfigurationError):
            NodeId("router", 0)

    def test_rejects_negative_index(self):
        with pytest.raises(ConfigurationError):
            NodeId.client(-1)


class TestMessage:
    def test_size_bytes_from_payload(self):
        message = make_message(size=10)
        assert message.size_bytes == 80  # 10 float64

    def test_size_bytes_respects_encoded_payloads(self):
        # Regression: size_bytes used to charge nbytes of whatever numpy
        # saw, so compressed payloads were billed at dense size. Any
        # payload advertising encoded_nbytes must be charged exactly that.
        class FakeEncoded:
            encoded_nbytes = 17

        message = Message(NodeId.client(0), NodeId.server(0), FakeEncoded(),
                          tag="upload", round_index=0)
        assert message.size_bytes == 17

    def test_encoded_update_charged_below_dense(self):
        from repro.core.codecs import make_codec_pipeline

        rng = np.random.default_rng(0)
        dense = rng.normal(size=1000)
        encoded = make_codec_pipeline(["topk(0.05)", "int8"]).encode(dense)
        message = Message(NodeId.client(0), NodeId.server(0), encoded,
                          tag="upload", round_index=0)
        assert message.size_bytes == encoded.encoded_nbytes
        assert message.size_bytes < dense.nbytes / 10

    def test_repr_mentions_tag(self):
        assert "upload" in repr(make_message())


class TestNetwork:
    def test_send_receive_roundtrip(self):
        network = Network()
        message = make_message()
        assert network.send(message)
        received = network.receive(NodeId.server(0))
        assert received == [message]

    def test_receive_drains_queue(self):
        network = Network()
        network.send(make_message())
        network.receive(NodeId.server(0))
        assert network.receive(NodeId.server(0)) == []

    def test_queues_are_per_recipient(self):
        network = Network()
        network.send(make_message(recipient=NodeId.server(0)))
        network.send(make_message(recipient=NodeId.server(1)))
        assert len(network.receive(NodeId.server(1))) == 1
        assert len(network.receive(NodeId.server(0))) == 1

    def test_pending_count(self):
        network = Network()
        network.send(make_message())
        assert network.pending_count(NodeId.server(0)) == 1
        assert network.pending_count(NodeId.server(1)) == 0

    def test_ordering_preserved(self):
        network = Network()
        first = make_message(round_index=1)
        second = make_message(round_index=2)
        network.send(first)
        network.send(second)
        rounds = [m.round_index for m in network.receive(NodeId.server(0))]
        assert rounds == [1, 2]

    def test_stats_accumulate(self):
        network = Network()
        network.send(make_message(size=10, tag="upload"))
        network.send(make_message(size=5, tag="dissemination"))
        stats = network.stats.snapshot()
        assert stats["messages_total"] == 2
        assert stats["bytes_total"] == 120
        assert stats["messages_by_tag"] == {"upload": 1, "dissemination": 1}
        assert stats["bytes_by_tag"]["upload"] == 80

    def test_stats_reset(self):
        network = Network()
        network.send(make_message())
        network.stats.reset()
        assert network.stats.messages_total == 0

    def test_clear_drops_queues_not_stats(self):
        network = Network()
        network.send(make_message())
        network.clear()
        assert network.receive(NodeId.server(0)) == []
        assert network.stats.messages_total == 1

    def test_clear_returns_count_and_records_it(self):
        network = Network()
        network.send(make_message(recipient=NodeId.server(0)))
        network.send(make_message(recipient=NodeId.server(1)))
        assert network.clear() == 2
        assert network.stats.cleared_total == 2
        assert network.clear() == 0
        assert network.stats.cleared_total == 2

    def test_random_drops(self):
        network = Network(drop_probability=0.5, rng=RngFactory(0).make("net"))
        outcomes = [network.send(make_message()) for _ in range(200)]
        delivered = sum(outcomes)
        assert 60 < delivered < 140
        assert network.stats.dropped_total == 200 - delivered

    def test_drop_rule_targets_messages(self):
        network = Network(drop_rule=lambda m: m.tag == "upload")
        assert not network.send(make_message(tag="upload"))
        assert network.send(make_message(tag="dissemination"))
        assert network.stats.dropped_total == 1

    def test_dropped_messages_not_counted_in_traffic(self):
        network = Network(drop_rule=lambda m: True)
        network.send(make_message())
        assert network.stats.messages_total == 0

    def test_drops_attributed_per_tag(self):
        network = Network(drop_rule=lambda m: m.tag == "upload")
        network.send(make_message(tag="upload"))
        network.send(make_message(tag="upload"))
        network.send(make_message(tag="dissemination"))
        stats = network.stats.snapshot()
        assert stats["dropped_total"] == 2
        assert stats["dropped_by_tag"] == {"upload": 2}

    def test_dropped_bytes_attributed_per_tag(self):
        network = Network(drop_rule=lambda m: m.tag == "upload")
        network.send(make_message(tag="upload", size=10))      # 80 bytes lost
        network.send(make_message(tag="upload", size=5))       # 40 bytes lost
        network.send(make_message(tag="dissemination", size=4))
        stats = network.stats.snapshot()
        assert stats["dropped_bytes_total"] == 120
        assert stats["dropped_bytes_by_tag"] == {"upload": 120}
        # delivered + dropped = what senders offered
        assert stats["offered_bytes_total"] == 120 + 32
        assert network.stats.bytes_total == 32

    def test_retry_accounting(self):
        stats = Network().stats
        stats.record_retry("upload")
        stats.record_retry("upload")
        snapshot = stats.snapshot()
        assert snapshot["retries_total"] == 2
        assert snapshot["retries_by_tag"] == {"upload": 2}

    def test_reset_clears_failure_counters(self):
        network = Network(drop_rule=lambda m: True)
        network.send(make_message())
        network.stats.record_retry("upload")
        network.stats.record_cleared(3)
        network.stats.reset()
        snapshot = network.stats.snapshot()
        assert snapshot["dropped_total"] == 0
        assert snapshot["dropped_by_tag"] == {}
        assert snapshot["dropped_bytes_total"] == 0
        assert snapshot["dropped_bytes_by_tag"] == {}
        assert snapshot["cleared_total"] == 0
        assert snapshot["retries_total"] == 0
        assert snapshot["retries_by_tag"] == {}

    def test_is_lossless(self):
        assert Network().is_lossless
        assert not Network(drop_rule=lambda m: False).is_lossless
        assert not Network(drop_probability=0.1,
                           rng=RngFactory(0).make("net")).is_lossless
        network = Network()
        network.add_drop_rule(lambda m: False)
        assert not network.is_lossless

    def test_extra_drop_rules_compose_as_disjunction(self):
        network = Network(drop_rule=lambda m: m.tag == "upload")
        network.add_drop_rule(lambda m: m.recipient == NodeId.server(1))
        assert not network.send(make_message(tag="upload"))
        assert not network.send(
            make_message(tag="dissemination", recipient=NodeId.server(1)))
        assert network.send(make_message(tag="dissemination"))

    def test_drop_probability_requires_rng(self):
        with pytest.raises(ConfigurationError):
            Network(drop_probability=0.5)

    def test_rejects_bad_probability(self):
        with pytest.raises(ConfigurationError):
            Network(drop_probability=1.0, rng=RngFactory(0).make("net"))


class TestRoundScheduler:
    def test_phases_run_in_order(self):
        scheduler = RoundScheduler()
        calls = []
        scheduler.add_phase("a", lambda t: calls.append(("a", t)))
        scheduler.add_phase("b", lambda t: calls.append(("b", t)))
        scheduler.run(2)
        assert calls == [("a", 0), ("b", 0), ("a", 1), ("b", 1)]

    def test_round_index_advances(self):
        scheduler = RoundScheduler()
        scheduler.add_phase("a", lambda t: None)
        assert scheduler.run_round() == 0
        assert scheduler.run_round() == 1
        assert scheduler.round_index == 2

    def test_duplicate_phase_rejected(self):
        scheduler = RoundScheduler()
        scheduler.add_phase("a", lambda t: None)
        with pytest.raises(ConfigurationError):
            scheduler.add_phase("a", lambda t: None)

    def test_empty_scheduler_rejected(self):
        with pytest.raises(ConfigurationError):
            RoundScheduler().run_round()

    def test_phase_timing_recorded(self):
        scheduler = RoundScheduler()
        scheduler.add_phase("a", lambda t: None)
        scheduler.run(3)
        assert scheduler.phase_seconds["a"] >= 0.0

    def test_rejects_nonpositive_rounds(self):
        scheduler = RoundScheduler()
        scheduler.add_phase("a", lambda t: None)
        with pytest.raises(ConfigurationError):
            scheduler.run(0)

    def test_round_hooks_run_before_phases(self):
        scheduler = RoundScheduler()
        calls = []
        scheduler.add_round_hook(lambda t: calls.append(("hook", t)))
        scheduler.add_phase("a", lambda t: calls.append(("a", t)))
        scheduler.run(2)
        assert calls == [("hook", 0), ("a", 0), ("hook", 1), ("a", 1)]

    def test_set_round_index(self):
        scheduler = RoundScheduler()
        scheduler.add_phase("a", lambda t: None)
        scheduler.set_round_index(5)
        assert scheduler.run_round() == 5
        with pytest.raises(ConfigurationError):
            scheduler.set_round_index(-1)
