"""Backend equivalence and degradation tests.

The execution layer's contract is that the backend is a pure wall-clock
choice: for the same seed, serial, thread and process runs produce
bit-identical :class:`~repro.core.history.TrainingHistory` — including
under fault injection. These tests pin that contract, plus the failure
mode: a broken worker pool must degrade to serial with a warning, not
hang, and must not change results.
"""

import os
import warnings
from concurrent.futures.process import BrokenProcessPool

import numpy as np
import pytest

from repro.attacks import make_attack
from repro.common import ConfigurationError, RngFactory
from repro.core import FedMSConfig, FedMSTrainer
from repro.core.config import (
    _EXECUTION_BACKENDS,
    EXECUTION_BACKEND_ENV,
    NUM_WORKERS_ENV,
)
from repro.data import ArrayDataset, iid_partition
from repro.execution import (
    EXECUTION_BACKENDS,
    ProcessPoolBackend,
    SerialBackend,
    ThreadBackend,
    make_backend,
    resolve_num_workers,
)
from repro.models import SoftmaxRegression
from repro.simulation import FaultInjector, FaultPlan, ServerCrash

BACKENDS = ("serial", "thread", "process")


def make_blobs(n=240, num_classes=3, dim=6, seed=0):
    centers = np.random.default_rng(42).normal(scale=4.0,
                                               size=(num_classes, dim))
    rng = np.random.default_rng(seed)
    labels = np.arange(n) % num_classes
    features = centers[labels] + rng.normal(size=(n, dim))
    order = rng.permutation(n)
    return ArrayDataset(features[order], labels[order])


def make_trainer(backend, *, num_clients=6, num_servers=5, num_byzantine=1,
                 seed=3, num_workers=2, fault_injector=None, **config_kwargs):
    data = make_blobs(seed=seed)
    test = make_blobs(n=90, seed=seed + 1)
    parts = iid_partition(data, num_clients, rng=RngFactory(seed).make("part"))
    config = FedMSConfig(
        num_clients=num_clients,
        num_servers=num_servers,
        num_byzantine=num_byzantine,
        local_steps=2,
        batch_size=8,
        eval_clients=2,
        execution_backend=backend,
        num_workers=num_workers,
        seed=seed,
        **config_kwargs,
    )
    return FedMSTrainer(
        config,
        model_factory=lambda rng: SoftmaxRegression(6, 3, rng=rng),
        client_datasets=parts,
        test_dataset=test,
        attack=make_attack("sign_flip") if num_byzantine else None,
        byzantine_ids=list(range(num_byzantine)) if num_byzantine else None,
        fault_injector=fault_injector,
    )


def run_history(backend, num_rounds=3, **kwargs):
    with make_trainer(backend, **kwargs) as trainer:
        history = trainer.run(num_rounds)
        degraded = bool(getattr(trainer.execution, "degraded", False))
    return history, degraded


def history_fingerprint(history):
    return (
        [r.train_loss for r in history.records],
        [r.test_loss for r in history.records],
        [r.test_accuracy for r in history.records],
        [r.models_received for r in history.records],
        [r.degraded_clients for r in history.records],
        [r.fallback_clients for r in history.records],
        [r.estimated_byzantine for r in history.records],
        [r.filtered_model_ids for r in history.records],
    )


class TestBitIdentity:
    def test_all_backends_bit_identical(self):
        fingerprints = {}
        for backend in BACKENDS:
            history, degraded = run_history(backend)
            assert not degraded, f"{backend} backend degraded unexpectedly"
            fingerprints[backend] = history_fingerprint(history)
        assert fingerprints["serial"] == fingerprints["thread"]
        assert fingerprints["serial"] == fingerprints["process"]

    def test_bit_identical_under_ps_crash(self):
        # A crashed PS shrinks quorums, exercising the degraded-quorum
        # filter fan-out; the backends must still agree bit for bit.
        plan = FaultPlan(crashes=(ServerCrash(4, 1), ServerCrash(3, 2, 4)))
        fingerprints = {}
        for backend in BACKENDS:
            history, _ = run_history(
                backend, num_rounds=4,
                fault_injector=FaultInjector(plan),
            )
            fingerprints[backend] = history_fingerprint(history)
        assert fingerprints["serial"] == fingerprints["thread"]
        assert fingerprints["serial"] == fingerprints["process"]

    def test_serial_rerun_is_deterministic(self):
        first, _ = run_history("serial")
        second, _ = run_history("serial")
        assert history_fingerprint(first) == history_fingerprint(second)

    def test_adaptive_trimmed_mean_bit_identical(self):
        # The estimating rules run in the main process, but their inputs
        # come from backend-trained clients: the whole loop (including the
        # recorded B-hat trace) must still agree bit for bit.
        fingerprints = {}
        for backend in BACKENDS:
            history, _ = run_history(
                backend, filter_rule_name="adaptive_trimmed_mean"
            )
            fingerprints[backend] = history_fingerprint(history)
        assert fingerprints["serial"] == fingerprints["thread"]
        assert fingerprints["serial"] == fingerprints["process"]

    def test_adaptive_bit_identical_under_ps_crash(self):
        plan = FaultPlan(crashes=(ServerCrash(4, 1),))
        fingerprints = {}
        for backend in BACKENDS:
            history, _ = run_history(
                backend, num_rounds=3,
                filter_rule_name="adaptive_trimmed_mean",
                fault_injector=FaultInjector(plan),
            )
            fingerprints[backend] = history_fingerprint(history)
        assert fingerprints["serial"] == fingerprints["thread"]
        assert fingerprints["serial"] == fingerprints["process"]

    def test_loss_based_bit_identical(self):
        fingerprints = {}
        for backend in BACKENDS:
            history, _ = run_history(backend,
                                     filter_rule_name="loss_based")
            fingerprints[backend] = history_fingerprint(history)
        assert fingerprints["serial"] == fingerprints["thread"]
        assert fingerprints["serial"] == fingerprints["process"]

    def test_codecs_bit_identical(self):
        # Codecs are deterministic pure functions of (vector, salt), so
        # compressed runs — encoded filter payloads travelling through
        # executor queues, workers decoding against the shared reference —
        # must stay bit-identical too.
        fingerprints = {}
        for backend in BACKENDS:
            history, degraded = run_history(
                backend, upload_codecs=["topk(0.2)", "int8"]
            )
            assert not degraded, f"{backend} backend degraded unexpectedly"
            fingerprints[backend] = history_fingerprint(history)
        assert fingerprints["serial"] == fingerprints["thread"]
        assert fingerprints["serial"] == fingerprints["process"]

    def test_codecs_bit_identical_under_ps_crash(self):
        # Degraded quorums change which encoded broadcasts each client
        # decodes; the shared-reference bookkeeping must not diverge.
        plan = FaultPlan(crashes=(ServerCrash(4, 1), ServerCrash(3, 2, 4)))
        fingerprints = {}
        for backend in BACKENDS:
            history, _ = run_history(
                backend, num_rounds=4,
                upload_codecs=["topk(0.2)", "int8"],
                fault_injector=FaultInjector(plan),
            )
            fingerprints[backend] = history_fingerprint(history)
        assert fingerprints["serial"] == fingerprints["thread"]
        assert fingerprints["serial"] == fingerprints["process"]

    def test_codecs_adaptive_filter_bit_identical(self):
        # Estimating rules decode in the main process (no FilterSpec);
        # the memoized decode path must agree with worker-side decodes.
        fingerprints = {}
        for backend in BACKENDS:
            history, _ = run_history(
                backend, upload_codecs=["topk(0.2)", "int8"],
                filter_rule_name="adaptive_trimmed_mean",
            )
            fingerprints[backend] = history_fingerprint(history)
        assert fingerprints["serial"] == fingerprints["thread"]
        assert fingerprints["serial"] == fingerprints["process"]


class TestWorkerCrash:
    def test_broken_pool_degrades_to_serial(self):
        with make_trainer("process") as trainer:
            backend = trainer.execution
            assert isinstance(backend, ProcessPoolBackend)
            reference, _ = run_history("serial")
            # Kill a worker out from under the backend: the next round
            # must warn and fall back, not hang or crash the run.
            # Waiting on the kill future guarantees the executor has
            # noticed the death before the round runs.
            future = backend._executor.submit(os._exit, 1)
            with pytest.raises(BrokenProcessPool):
                future.result()
            with pytest.warns(RuntimeWarning, match="degrad"):
                history = trainer.run(3)
            assert backend.degraded
            assert history_fingerprint(history) == \
                history_fingerprint(reference)

    def test_degraded_pool_stays_serial(self):
        with make_trainer("process") as trainer:
            backend = trainer.execution
            future = backend._executor.submit(os._exit, 1)
            with pytest.raises(BrokenProcessPool):
                future.result()
            with pytest.warns(RuntimeWarning):
                trainer.run_round(evaluate=False)
            assert backend.degraded
            # Subsequent rounds run without a pool and without warnings.
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                trainer.run_round(evaluate=False)


class TestFactory:
    def test_registry_matches_config_mirror(self):
        # config.py keeps a literal copy to avoid a circular import;
        # this is the assertion that keeps the two in sync.
        assert tuple(EXECUTION_BACKENDS) == tuple(_EXECUTION_BACKENDS)

    def test_backend_classes(self):
        for backend, expected in (("serial", SerialBackend),
                                  ("thread", ThreadBackend),
                                  ("process", ProcessPoolBackend)):
            with make_trainer(backend) as trainer:
                assert isinstance(trainer.execution, expected)
                assert trainer.execution.name == backend

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError):
            FedMSConfig(execution_backend="gpu")

    def test_close_is_idempotent(self):
        trainer = make_trainer("process")
        trainer.run_round(evaluate=False)
        trainer.close()
        trainer.close()

    def test_resolve_num_workers(self):
        assert resolve_num_workers(3, max_useful=8) == 3
        assert resolve_num_workers(16, max_useful=4) == 4  # capped
        auto = resolve_num_workers(0, max_useful=8)
        assert 1 <= auto <= 8
        with pytest.raises(ConfigurationError):
            resolve_num_workers(-1, max_useful=4)


class TestEnvironmentResolution:
    def test_explicit_field_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(EXECUTION_BACKEND_ENV, "thread")
        config = FedMSConfig(execution_backend="serial")
        assert config.resolved_execution_backend == "serial"

    def test_env_backend(self, monkeypatch):
        monkeypatch.setenv(EXECUTION_BACKEND_ENV, "thread")
        assert FedMSConfig().resolved_execution_backend == "thread"

    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(EXECUTION_BACKEND_ENV, raising=False)
        assert FedMSConfig().resolved_execution_backend == "serial"

    def test_bad_env_backend_rejected(self, monkeypatch):
        monkeypatch.setenv(EXECUTION_BACKEND_ENV, "bogus")
        with pytest.raises(ConfigurationError):
            FedMSConfig().resolved_execution_backend

    def test_env_workers(self, monkeypatch):
        monkeypatch.setenv(NUM_WORKERS_ENV, "5")
        assert FedMSConfig().resolved_num_workers == 5

    def test_bad_env_workers_rejected(self, monkeypatch):
        monkeypatch.setenv(NUM_WORKERS_ENV, "many")
        with pytest.raises(ConfigurationError):
            FedMSConfig().resolved_num_workers

    def test_negative_workers_rejected(self):
        with pytest.raises(ConfigurationError):
            FedMSConfig(num_workers=-1)
