"""Shared-memory transport and job-spec tests."""

import numpy as np
import pytest

from repro.aggregation import mean, trimmed_mean, trimmed_mean_by_count
from repro.common import ConfigurationError
from repro.data import ArrayDataset
from repro.execution import (
    FilterSpec,
    SharedDatasetStore,
    SharedNDArray,
    SharedVectorBuffer,
    WorkerSpec,
)
from repro.models import SoftmaxRegression


def make_dataset(n, dim=4, num_classes=3, seed=0):
    rng = np.random.default_rng(seed)
    return ArrayDataset(rng.normal(size=(n, dim)),
                        rng.integers(0, num_classes, size=n))


class TestSharedNDArray:
    def test_roundtrip(self):
        shared = SharedNDArray((3, 4), np.float64)
        try:
            shared.array[:] = np.arange(12.0).reshape(3, 4)
            assert shared.array[2, 3] == 11.0
            assert shared.array.dtype == np.float64
        finally:
            shared.close()

    def test_close_is_idempotent(self):
        shared = SharedNDArray((2,), np.float64)
        shared.close()
        shared.close()


class TestSharedVectorBuffer:
    def test_starts_and_results_are_distinct(self):
        buffers = SharedVectorBuffer(4, 6)
        try:
            buffers.starts[:] = 1.0
            buffers.results[:] = 2.0
            assert buffers.starts.shape == (4, 6)
            assert np.all(buffers.starts == 1.0)
            assert np.all(buffers.results == 2.0)
            assert buffers.nbytes == 2 * 4 * 6 * 8
        finally:
            buffers.close()


class TestSharedDatasetStore:
    def test_datasets_match_originals(self):
        originals = [make_dataset(10, seed=0), make_dataset(7, seed=1)]
        store = SharedDatasetStore(originals)
        try:
            views = store.datasets()
            assert len(views) == 2
            for view, original in zip(views, originals):
                np.testing.assert_array_equal(view.features,
                                              original.features)
                np.testing.assert_array_equal(view.labels, original.labels)
        finally:
            store.close()

    def test_views_are_zero_copy(self):
        store = SharedDatasetStore([make_dataset(5)])
        try:
            view = store.datasets()[0]
            assert not view.features.flags.owndata
            assert not view.labels.flags.owndata
        finally:
            store.close()

    def test_nbytes_accounts_for_payload(self):
        originals = [make_dataset(10), make_dataset(6, seed=2)]
        store = SharedDatasetStore(originals)
        try:
            expected = sum(d.features.nbytes + d.labels.nbytes
                           for d in originals)
            assert store.nbytes >= expected
        finally:
            store.close()


class TestFilterSpec:
    def setup_method(self):
        self.stack = np.random.default_rng(0).normal(size=(7, 5))

    def test_mean(self):
        np.testing.assert_array_equal(FilterSpec("mean")(self.stack),
                                      mean(self.stack))

    def test_trim_ratio(self):
        np.testing.assert_array_equal(
            FilterSpec("trim_ratio", 0.2)(self.stack),
            trimmed_mean(self.stack, trim_ratio=0.2),
        )

    def test_trim_count(self):
        np.testing.assert_array_equal(
            FilterSpec("trim_count", 2)(self.stack),
            trimmed_mean_by_count(self.stack, 2),
        )

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            FilterSpec("median")


class TestWorkerSpec:
    def make_spec(self, **overrides):
        datasets = [make_dataset(8), make_dataset(8, seed=1)]
        kwargs = dict(
            seed=0, local_steps=2, batch_size=4, learning_rate=0.1,
            weight_decay=0.0, include_buffers=True, flatten_inputs=False,
            model_dim=15, num_clients=2,
            model_factory=lambda rng: SoftmaxRegression(4, 3, rng=rng),
            datasets=datasets, lr_schedule=None,
        )
        kwargs.update(overrides)
        return WorkerSpec(**kwargs)

    def test_valid(self):
        spec = self.make_spec()
        assert spec.num_clients == 2

    def test_dataset_count_must_match(self):
        with pytest.raises(ConfigurationError):
            self.make_spec(num_clients=3)

    def test_model_dim_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            self.make_spec(model_dim=0)
