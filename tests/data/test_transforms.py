"""Tests for data transforms."""

import numpy as np
import pytest

from repro.common import ConfigurationError, RngFactory, ShapeError
from repro.data import (
    Compose,
    Flatten,
    Normalize,
    RandomCrop,
    RandomHorizontalFlip,
    fit_normalizer,
)


def make_batch(n=8, c=3, h=8, w=8, seed=0):
    return np.random.default_rng(seed).normal(loc=2.0, scale=3.0,
                                              size=(n, c, h, w))


class TestNormalize:
    def test_standardizes(self):
        batch = make_batch(n=64)
        normalizer = fit_normalizer(batch)
        out = normalizer(batch)
        np.testing.assert_allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-10)
        np.testing.assert_allclose(out.std(axis=(0, 2, 3)), 1.0, atol=1e-10)

    def test_applies_train_statistics_to_test(self):
        train = make_batch(seed=0)
        test = make_batch(seed=1)
        normalizer = fit_normalizer(train)
        out = normalizer(test)
        assert out.shape == test.shape
        assert not np.allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-3)

    def test_constant_channel_handled(self):
        batch = np.zeros((4, 2, 3, 3))
        normalizer = fit_normalizer(batch)
        out = normalizer(batch)
        assert np.all(np.isfinite(out))

    def test_rejects_channel_mismatch(self):
        normalizer = Normalize(np.zeros(3), np.ones(3))
        with pytest.raises(ShapeError):
            normalizer(make_batch(c=4))

    def test_rejects_bad_std(self):
        with pytest.raises(ConfigurationError):
            Normalize(np.zeros(3), np.zeros(3))

    def test_fit_rejects_flat_input(self):
        with pytest.raises(ShapeError):
            fit_normalizer(np.zeros((4, 12)))


class TestRandomHorizontalFlip:
    def test_p_zero_identity(self):
        batch = make_batch()
        flip = RandomHorizontalFlip(0.0, rng=RngFactory(0).make("f"))
        np.testing.assert_array_equal(flip(batch), batch)

    def test_p_one_mirrors_all(self):
        batch = make_batch()
        flip = RandomHorizontalFlip(1.0, rng=RngFactory(0).make("f"))
        np.testing.assert_array_equal(flip(batch), batch[:, :, :, ::-1])

    def test_input_not_modified(self):
        batch = make_batch()
        before = batch.copy()
        RandomHorizontalFlip(1.0, rng=RngFactory(0).make("f"))(batch)
        np.testing.assert_array_equal(batch, before)

    def test_roughly_p_fraction_flipped(self):
        batch = make_batch(n=400)
        flip = RandomHorizontalFlip(0.25, rng=RngFactory(0).make("f"))
        out = flip(batch)
        flipped = sum(
            not np.array_equal(out[i], batch[i]) for i in range(400)
        )
        assert 60 < flipped < 140

    def test_rejects_bad_p(self):
        with pytest.raises(ConfigurationError):
            RandomHorizontalFlip(1.5)


class TestRandomCrop:
    def test_shape_preserved(self):
        batch = make_batch()
        crop = RandomCrop(padding=2, rng=RngFactory(0).make("c"))
        assert crop(batch).shape == batch.shape

    def test_content_is_a_shifted_window(self):
        """Every output is the input shifted by at most `padding` pixels
        (with zeros entering at the border)."""
        batch = np.ones((1, 1, 4, 4))
        crop = RandomCrop(padding=2, rng=RngFactory(3).make("c"))
        out = crop(batch)
        # All values are 0 or 1, and the ones form a contiguous block.
        assert set(np.unique(out)) <= {0.0, 1.0}

    def test_deterministic_given_rng(self):
        batch = make_batch()
        a = RandomCrop(2, rng=RngFactory(1).make("c"))(batch)
        b = RandomCrop(2, rng=RngFactory(1).make("c"))(batch)
        np.testing.assert_array_equal(a, b)

    def test_rejects_bad_padding(self):
        with pytest.raises(ConfigurationError):
            RandomCrop(0)


class TestComposeAndFlatten:
    def test_compose_order(self):
        batch = make_batch()
        pipeline = Compose([
            fit_normalizer(batch),
            Flatten(),
        ])
        out = pipeline(batch)
        assert out.shape == (8, 3 * 8 * 8)

    def test_empty_compose_is_identity(self):
        batch = make_batch()
        np.testing.assert_array_equal(Compose([])(batch), batch)

    def test_flatten(self):
        assert Flatten()(make_batch()).shape == (8, 192)

    def test_reprs(self):
        pipeline = Compose([Flatten(), RandomCrop(2)])
        assert "Flatten" in repr(pipeline)
        assert "RandomCrop" in repr(pipeline)
