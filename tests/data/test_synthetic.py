"""Tests for the synthetic CIFAR-10 generator and the real-CIFAR loader shim."""

import os
import pickle

import numpy as np
import pytest

from repro.common import ConfigurationError, RngFactory
from repro.data import (
    SyntheticCifar10Config,
    cifar10_available,
    class_prototypes,
    load_cifar10,
    make_synthetic_cifar10,
)
from repro.data.synthetic import IMAGE_SHAPE, NUM_CLASSES


class TestPrototypes:
    def test_shape(self):
        assert class_prototypes().shape == (10, 3, 32, 32)

    def test_deterministic(self):
        np.testing.assert_array_equal(class_prototypes(), class_prototypes())

    def test_classes_distinct(self):
        protos = class_prototypes()
        for a in range(10):
            for b in range(a + 1, 10):
                assert np.abs(protos[a] - protos[b]).mean() > 0.05


class TestSyntheticCifar10:
    def test_shapes_and_labels(self):
        train, test = make_synthetic_cifar10(100, 50, rng=RngFactory(0).make("d"))
        assert train.features.shape == (100,) + IMAGE_SHAPE
        assert test.features.shape == (50,) + IMAGE_SHAPE
        assert set(np.unique(train.labels)) <= set(range(NUM_CLASSES))

    def test_labels_balanced(self):
        train, _ = make_synthetic_cifar10(100, 10, rng=RngFactory(0).make("d"))
        hist = train.label_histogram(10)
        assert hist.min() == hist.max() == 10

    def test_deterministic_given_seed(self):
        a, _ = make_synthetic_cifar10(20, 10, rng=RngFactory(5).make("d"))
        b, _ = make_synthetic_cifar10(20, 10, rng=RngFactory(5).make("d"))
        np.testing.assert_array_equal(a.features, b.features)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_train_test_differ(self):
        train, test = make_synthetic_cifar10(50, 50, rng=RngFactory(0).make("d"))
        assert not np.array_equal(train.features[:50], test.features)

    def test_noise_increases_distance_from_prototype(self):
        quiet = SyntheticCifar10Config(noise_scale=0.01, max_shift=0,
                                       flip_probability=0.0,
                                       contrast_range=(1.0, 1.0))
        loud = SyntheticCifar10Config(noise_scale=2.0, max_shift=0,
                                      flip_probability=0.0,
                                      contrast_range=(1.0, 1.0))
        protos = class_prototypes()
        quiet_train, _ = make_synthetic_cifar10(50, 10, rng=RngFactory(0).make("d"),
                                                config=quiet)
        loud_train, _ = make_synthetic_cifar10(50, 10, rng=RngFactory(0).make("d"),
                                               config=loud)
        quiet_err = np.abs(quiet_train.features - protos[quiet_train.labels]).mean()
        loud_err = np.abs(loud_train.features - protos[loud_train.labels]).mean()
        assert loud_err > 10 * quiet_err

    def test_rejects_bad_sizes(self):
        with pytest.raises(ConfigurationError):
            make_synthetic_cifar10(0, 10, rng=RngFactory(0).make("d"))

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            SyntheticCifar10Config(noise_scale=-1.0)
        with pytest.raises(ConfigurationError):
            SyntheticCifar10Config(max_shift=-1)
        with pytest.raises(ConfigurationError):
            SyntheticCifar10Config(flip_probability=1.5)
        with pytest.raises(ConfigurationError):
            SyntheticCifar10Config(contrast_range=(0.0, 1.0))

    def test_linear_model_cannot_solve_but_cnn_signal_exists(self):
        """The classes overlap in pixel space but are separable in principle:
        the class-conditional means match the prototypes."""
        config = SyntheticCifar10Config(noise_scale=1.5, max_shift=0,
                                        flip_probability=0.0,
                                        contrast_range=(1.0, 1.0))
        train, _ = make_synthetic_cifar10(2000, 10, rng=RngFactory(0).make("d"),
                                          config=config)
        protos = class_prototypes()
        for label in range(NUM_CLASSES):
            mask = train.labels == label
            class_mean = train.features[mask].mean(axis=0)
            error = np.abs(class_mean - protos[label]).mean()
            assert error < 0.25


class TestRealCifar10Loader:
    def test_unavailable_without_files(self, tmp_path):
        assert not cifar10_available(str(tmp_path))

    def test_load_raises_when_missing(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_cifar10(str(tmp_path))

    def test_loads_fake_batches(self, tmp_path):
        """Write miniature batches in the real CIFAR-10 pickle format."""
        rng = np.random.default_rng(0)
        for name in [f"data_batch_{i}" for i in range(1, 6)] + ["test_batch"]:
            batch = {
                b"data": rng.integers(0, 256, size=(20, 3072), dtype=np.uint8),
                b"labels": rng.integers(0, 10, size=20).tolist(),
            }
            with open(os.path.join(tmp_path, name), "wb") as handle:
                pickle.dump(batch, handle)
        assert cifar10_available(str(tmp_path))
        train, test = load_cifar10(str(tmp_path))
        assert train.features.shape == (100, 3, 32, 32)
        assert test.features.shape == (20, 3, 32, 32)
        # Normalized: near-zero mean, near-unit std per channel.
        assert abs(train.features.mean()) < 0.1

    def test_env_variable_resolution(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CIFAR10_DIR", str(tmp_path))
        assert not cifar10_available()  # dir exists but files missing
