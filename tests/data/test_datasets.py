"""Tests for ArrayDataset/Subset/DataLoader."""

import numpy as np
import pytest

from repro.common import ConfigurationError, RngFactory, ShapeError
from repro.data import ArrayDataset, DataLoader, Subset


def make_dataset(n=20, num_classes=4):
    rng = np.random.default_rng(0)
    return ArrayDataset(rng.normal(size=(n, 3)), np.arange(n) % num_classes)


class TestArrayDataset:
    def test_len_and_getitem(self):
        data = make_dataset(10)
        assert len(data) == 10
        x, y = data[3]
        assert x.shape == (3,)
        assert y == 3

    def test_fancy_indexing(self):
        data = make_dataset(10)
        x, y = data[[0, 2, 4]]
        assert x.shape == (3, 3)
        np.testing.assert_array_equal(y, [0, 2, 0])

    def test_labels_cast_to_int64(self):
        data = ArrayDataset(np.zeros((3, 2)), np.array([0.0, 1.0, 2.0]))
        assert data.labels.dtype == np.int64

    def test_num_classes(self):
        assert make_dataset(num_classes=4).num_classes == 4

    def test_label_histogram(self):
        data = make_dataset(10, num_classes=4)
        hist = data.label_histogram()
        assert hist.sum() == 10
        np.testing.assert_array_equal(hist, [3, 3, 2, 2])

    def test_label_histogram_with_explicit_classes(self):
        data = ArrayDataset(np.zeros((2, 1)), np.array([0, 1]))
        assert data.label_histogram(5).shape == (5,)

    def test_rejects_row_mismatch(self):
        with pytest.raises(ShapeError):
            ArrayDataset(np.zeros((3, 2)), np.zeros(4))

    def test_rejects_2d_labels(self):
        with pytest.raises(ShapeError):
            ArrayDataset(np.zeros((3, 2)), np.zeros((3, 1)))


class TestSubset:
    def test_subset_selects_rows(self):
        data = make_dataset(10)
        sub = data.subset([1, 3, 5])
        assert len(sub) == 3
        np.testing.assert_array_equal(sub.labels, data.labels[[1, 3, 5]])

    def test_subset_out_of_range(self):
        with pytest.raises(ConfigurationError):
            make_dataset(5).subset([7])

    def test_empty_subset_allowed(self):
        sub = make_dataset(5).subset([])
        assert len(sub) == 0

    def test_subset_keeps_indices(self):
        sub = make_dataset(10).subset([2, 4])
        np.testing.assert_array_equal(sub.indices, [2, 4])


class TestDataLoader:
    def test_batch_shapes(self):
        loader = DataLoader(make_dataset(20), 8, rng=RngFactory(0).make("b"))
        x, y = loader.sample_batch()
        assert x.shape == (8, 3)
        assert y.shape == (8,)

    def test_batch_capped_at_dataset_size(self):
        loader = DataLoader(make_dataset(5), 100, rng=RngFactory(0).make("b"))
        x, _ = loader.sample_batch()
        assert x.shape[0] == 5

    def test_no_duplicates_within_batch(self):
        data = make_dataset(20)
        data.features[:, 0] = np.arange(20)  # unique marker per row
        loader = DataLoader(data, 10, rng=RngFactory(0).make("b"))
        x, _ = loader.sample_batch()
        assert len(set(x[:, 0])) == 10

    def test_batches_vary_across_calls(self):
        loader = DataLoader(make_dataset(100), 10, rng=RngFactory(0).make("b"))
        a, _ = loader.sample_batch()
        b, _ = loader.sample_batch()
        assert not np.array_equal(a, b)

    def test_deterministic_given_seed(self):
        a, _ = DataLoader(make_dataset(50), 10, rng=RngFactory(1).make("b")).sample_batch()
        b, _ = DataLoader(make_dataset(50), 10, rng=RngFactory(1).make("b")).sample_batch()
        np.testing.assert_array_equal(a, b)

    def test_epoch_covers_every_row_once(self):
        data = make_dataset(23)
        data.features[:, 0] = np.arange(23)
        loader = DataLoader(data, 5, rng=RngFactory(0).make("b"))
        seen = np.concatenate([x[:, 0] for x, _ in loader.epoch()])
        assert sorted(seen) == list(range(23))

    def test_rejects_empty_dataset(self):
        empty = ArrayDataset(np.zeros((0, 2)), np.zeros(0))
        with pytest.raises(ConfigurationError):
            DataLoader(empty, 4, rng=RngFactory(0).make("b"))

    def test_rejects_nonpositive_batch(self):
        with pytest.raises(ConfigurationError):
            DataLoader(make_dataset(5), 0, rng=RngFactory(0).make("b"))
