"""Tests for IID / Dirichlet / shard partitioning and heterogeneity stats."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import ConfigurationError, RngFactory
from repro.data import (
    ArrayDataset,
    dirichlet_partition,
    effective_classes_per_client,
    iid_partition,
    label_distribution_matrix,
    mean_client_entropy,
    mean_total_variation_distance,
    shard_partition,
)


def make_dataset(n=500, num_classes=10):
    rng = np.random.default_rng(7)
    labels = np.arange(n) % num_classes
    rng.shuffle(labels)
    return ArrayDataset(rng.normal(size=(n, 2)), labels)


def covers_exactly(partitions, dataset):
    all_indices = np.concatenate([p.indices for p in partitions])
    return sorted(all_indices.tolist()) == list(range(len(dataset)))


class TestIidPartition:
    def test_covers_dataset(self):
        data = make_dataset()
        parts = iid_partition(data, 10, rng=RngFactory(0).make("p"))
        assert covers_exactly(parts, data)

    def test_balanced_sizes(self):
        parts = iid_partition(make_dataset(100), 10, rng=RngFactory(0).make("p"))
        assert all(len(p) == 10 for p in parts)

    def test_roughly_uniform_labels(self):
        data = make_dataset(1000)
        parts = iid_partition(data, 10, rng=RngFactory(0).make("p"))
        assert mean_total_variation_distance(parts, 10) < 0.15

    def test_rejects_more_clients_than_samples(self):
        with pytest.raises(ConfigurationError):
            iid_partition(make_dataset(5), 10, rng=RngFactory(0).make("p"))


class TestDirichletPartition:
    def test_covers_dataset(self):
        data = make_dataset()
        parts = dirichlet_partition(data, 10, alpha=1.0, rng=RngFactory(0).make("p"))
        assert covers_exactly(parts, data)

    def test_min_samples_respected(self):
        data = make_dataset(500)
        parts = dirichlet_partition(
            data, 10, alpha=0.5, rng=RngFactory(0).make("p"),
            min_samples_per_client=5,
        )
        assert min(len(p) for p in parts) >= 5

    def test_heterogeneity_decreases_with_alpha(self):
        """The Fig. 4 phenomenon: higher D_alpha -> more similar clients."""
        data = make_dataset(2000)
        distances = []
        for alpha in [0.1, 1.0, 10.0, 1000.0]:
            parts = dirichlet_partition(
                data, 10, alpha=alpha, rng=RngFactory(3).make(f"p{alpha}")
            )
            distances.append(mean_total_variation_distance(parts, 10))
        assert distances[0] > distances[1] > distances[3]
        assert distances[3] < 0.1  # alpha=1000 is effectively IID

    def test_deterministic_given_seed(self):
        data = make_dataset()
        a = dirichlet_partition(data, 5, alpha=1.0, rng=RngFactory(2).make("p"))
        b = dirichlet_partition(data, 5, alpha=1.0, rng=RngFactory(2).make("p"))
        for pa, pb in zip(a, b):
            np.testing.assert_array_equal(pa.indices, pb.indices)

    def test_rejects_bad_alpha(self):
        with pytest.raises(ConfigurationError):
            dirichlet_partition(make_dataset(), 5, alpha=0.0,
                                rng=RngFactory(0).make("p"))

    def test_rejects_unsatisfiable_min_samples(self):
        with pytest.raises(ConfigurationError):
            dirichlet_partition(make_dataset(50), 10, alpha=1.0,
                                rng=RngFactory(0).make("p"),
                                min_samples_per_client=10)

    @settings(max_examples=10, deadline=None)
    @given(alpha=st.floats(0.1, 100.0), num_clients=st.integers(2, 20))
    def test_always_covers_dataset(self, alpha, num_clients):
        data = make_dataset(400)
        parts = dirichlet_partition(
            data, num_clients, alpha=alpha,
            rng=RngFactory(0).make(f"p/{alpha}/{num_clients}"),
        )
        assert covers_exactly(parts, data)


class TestShardPartition:
    def test_covers_dataset(self):
        data = make_dataset()
        parts = shard_partition(data, 10, shards_per_client=2,
                                rng=RngFactory(0).make("p"))
        assert covers_exactly(parts, data)

    def test_pathological_few_classes_per_client(self):
        data = make_dataset(1000)
        parts = shard_partition(data, 10, shards_per_client=2,
                                rng=RngFactory(0).make("p"))
        effective = effective_classes_per_client(parts, 10)
        assert np.mean(effective) <= 3.5  # far below the 10 of an IID split

    def test_rejects_too_many_shards(self):
        with pytest.raises(ConfigurationError):
            shard_partition(make_dataset(10), 10, shards_per_client=5,
                            rng=RngFactory(0).make("p"))


class TestStats:
    def test_distribution_matrix_shape_and_sum(self):
        data = make_dataset(300)
        parts = iid_partition(data, 6, rng=RngFactory(0).make("p"))
        matrix = label_distribution_matrix(parts, 10)
        assert matrix.shape == (6, 10)
        assert matrix.sum() == 300

    def test_tv_distance_zero_for_identical_laws(self):
        data = make_dataset(100, num_classes=2)
        # Every client gets one sample of each class.
        parts = [data.subset([i, i + 50]) for i in range(50)]
        # indices i in [0,50) have labels alternating; construct directly:
        labels = data.labels
        class0 = np.flatnonzero(labels == 0)
        class1 = np.flatnonzero(labels == 1)
        parts = [data.subset([class0[i], class1[i]]) for i in range(10)]
        assert mean_total_variation_distance(parts, 2) == pytest.approx(0.0)

    def test_entropy_bounds(self):
        data = make_dataset(1000)
        parts = iid_partition(data, 5, rng=RngFactory(0).make("p"))
        entropy = mean_client_entropy(parts, 10)
        assert 0.0 <= entropy <= np.log(10) + 1e-9
        assert entropy > 0.9 * np.log(10)  # IID is near-maximal

    def test_single_class_client_entropy_zero(self):
        data = make_dataset(100, num_classes=2)
        class0 = np.flatnonzero(data.labels == 0)
        parts = [data.subset(class0)]
        assert mean_client_entropy(parts, 2) == pytest.approx(0.0)

    def test_empty_client_handled(self):
        data = make_dataset(100)
        parts = [data.subset([]), data.subset(np.arange(100))]
        value = mean_total_variation_distance(parts, 10)
        assert np.isfinite(value)
