"""Tests for aggregation rules, including the paper's worked example and
property-based robustness checks mirroring Lemma 2."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.common import ConfigurationError, ShapeError
from repro.aggregation import (
    coordinate_median,
    degraded_trim_count,
    geometric_median,
    krum,
    krum_index,
    mean,
    multi_krum,
    trim_count,
    trimmed_mean,
    trimmed_mean_by_count,
)


class TestMean:
    def test_average(self):
        stack = np.array([[1.0, 2.0], [3.0, 4.0]])
        np.testing.assert_array_equal(mean(stack), [2.0, 3.0])

    def test_rejects_1d(self):
        with pytest.raises(ShapeError):
            mean(np.array([1.0, 2.0]))

    def test_rejects_empty(self):
        with pytest.raises(ShapeError):
            mean(np.zeros((0, 3)))


class TestTrimCount:
    def test_paper_setting(self):
        # P = 10 PSs, beta = 0.2 -> drop 2 from each tail.
        assert trim_count(10, 0.2) == 2

    def test_floor_behavior(self):
        assert trim_count(5, 0.2) == 1
        assert trim_count(4, 0.2) == 0

    def test_rejects_half_or_more(self):
        with pytest.raises(ConfigurationError):
            trim_count(10, 0.5)

    def test_rejects_trimming_everything(self):
        # floor(0.49 * 2) = 0 is fine; floor(0.4 * 5) = 2, 2*2 < 5 fine;
        # but 3 models at 0.4 -> count 1, 2*1 < 3 fine. Construct a failure:
        with pytest.raises(ConfigurationError):
            trim_count(2, 0.5)


class TestDegradedTrimCount:
    # The acceptance setting: P = 10, beta = 0.2 -> B = 2, so the filter
    # stays feasible down to q = 2B + 1 = 5 and falls back below that.

    @pytest.mark.parametrize("quorum", list(range(10, 4, -1)))
    def test_feasible_quorums_keep_absolute_tolerance(self, quorum):
        assert degraded_trim_count(quorum, 10, 0.2) == 2

    def test_boundary_quorum_is_infeasible(self):
        # q = 2B: trimming B per tail leaves no benign majority.
        assert degraded_trim_count(4, 10, 0.2) is None

    def test_below_boundary_is_infeasible(self):
        assert degraded_trim_count(3, 10, 0.2) is None
        assert degraded_trim_count(1, 10, 0.2) is None

    def test_zero_trim_is_always_feasible(self):
        assert degraded_trim_count(1, 10, 0.0) == 0

    def test_rejects_nonpositive_quorum(self):
        with pytest.raises(ConfigurationError):
            degraded_trim_count(0, 10, 0.2)

    def test_rejects_quorum_above_expected(self):
        with pytest.raises(ConfigurationError):
            degraded_trim_count(11, 10, 0.2)


class TestTrimmedMeanByCount:
    def test_matches_ratio_form_on_full_stack(self):
        stack = np.arange(20.0).reshape(10, 2)
        np.testing.assert_allclose(trimmed_mean_by_count(stack, 2),
                                   trimmed_mean(stack, 0.2))

    def test_degraded_stack_trims_absolute_count(self):
        # 5 rows with B = 2 per tail keeps only the median row.
        stack = np.array([[1.0], [2.0], [3.0], [4.0], [100.0]])
        np.testing.assert_array_equal(trimmed_mean_by_count(stack, 2), [3.0])

    def test_count_zero_is_plain_mean(self):
        stack = np.array([[1.0], [5.0]])
        np.testing.assert_array_equal(trimmed_mean_by_count(stack, 0), [3.0])

    def test_rejects_negative_count(self):
        with pytest.raises(ConfigurationError):
            trimmed_mean_by_count(np.zeros((3, 2)), -1)

    def test_rejects_trimming_everything(self):
        with pytest.raises(ConfigurationError):
            trimmed_mean_by_count(np.zeros((4, 2)), 2)


class TestTrimmedMean:
    def test_paper_worked_example(self):
        """Section IV-B: trmean_0.2{1,2,3,4,5} = (2+3+4)/3 = 3."""
        stack = np.array([[1.0], [2.0], [3.0], [4.0], [5.0]])
        assert trimmed_mean(stack, 0.2)[0] == pytest.approx(3.0)

    def test_zero_ratio_equals_mean(self):
        rng = np.random.default_rng(0)
        stack = rng.normal(size=(7, 5))
        np.testing.assert_allclose(trimmed_mean(stack, 0.0), mean(stack))

    def test_coordinates_trimmed_independently(self):
        stack = np.array([
            [0.0, 100.0],
            [1.0, 1.0],
            [2.0, 2.0],
            [3.0, 3.0],
            [100.0, 0.0],
        ])
        result = trimmed_mean(stack, 0.2)
        np.testing.assert_allclose(result, [2.0, 2.0])

    def test_ignores_extreme_outliers(self):
        stack = np.vstack([np.full((8, 3), 1.0), np.full((2, 3), 1e12)])
        result = trimmed_mean(stack, 0.2)
        np.testing.assert_allclose(result, 1.0)

    def test_output_within_input_range(self):
        rng = np.random.default_rng(1)
        stack = rng.normal(size=(9, 4))
        result = trimmed_mean(stack, 0.25)
        assert np.all(result >= stack.min(axis=0) - 1e-12)
        assert np.all(result <= stack.max(axis=0) + 1e-12)

    @settings(max_examples=100, deadline=None)
    @given(
        stack=arrays(np.float64, (10, 3),
                     elements=st.floats(-100, 100)),
        ratio=st.floats(0.0, 0.49),
    )
    def test_permutation_invariance(self, stack, ratio):
        rng = np.random.default_rng(0)
        permuted = stack[rng.permutation(10)]
        np.testing.assert_allclose(
            trimmed_mean(stack, ratio), trimmed_mean(permuted, ratio), atol=1e-9
        )

    @settings(max_examples=100, deadline=None)
    @given(data=st.data())
    def test_lemma2_order_statistic_bound(self, data):
        """Lemma 2's core inequality: after tampering B of P scalars,
        the trimmed mean (beta = B/P) stays within the [min, max] of the
        *benign* values.

        This is the robustness property that makes the filter safe: no
        matter what the B Byzantine values are, the output cannot be pulled
        outside the benign hull.
        """
        p = data.draw(st.integers(3, 15))
        b = data.draw(st.integers(0, (p - 1) // 2))
        benign = data.draw(
            arrays(np.float64, (p - b,), elements=st.floats(-1e6, 1e6))
        )
        byzantine = data.draw(
            arrays(np.float64, (b,),
                   elements=st.floats(-1e9, 1e9))
        )
        stack = np.concatenate([benign, byzantine]).reshape(-1, 1)
        result = trimmed_mean(stack, b / p if p else 0.0)
        assert benign.min() - 1e-6 <= result[0] <= benign.max() + 1e-6


class TestCoordinateMedian:
    def test_simple(self):
        stack = np.array([[1.0, 5.0], [2.0, 6.0], [100.0, -50.0]])
        np.testing.assert_array_equal(coordinate_median(stack), [2.0, 5.0])

    def test_majority_benign_bound(self):
        stack = np.vstack([np.zeros((6, 2)), np.full((5, 2), 1e9)])
        np.testing.assert_array_equal(coordinate_median(stack), [0.0, 0.0])


class TestGeometricMedian:
    def test_single_row(self):
        stack = np.array([[3.0, 4.0]])
        np.testing.assert_array_equal(geometric_median(stack), [3.0, 4.0])

    def test_symmetric_points(self):
        stack = np.array([[1.0, 0.0], [-1.0, 0.0], [0.0, 1.0], [0.0, -1.0]])
        np.testing.assert_allclose(geometric_median(stack), [0.0, 0.0], atol=1e-6)

    def test_collinear_points_median(self):
        stack = np.array([[0.0], [1.0], [10.0]])
        np.testing.assert_allclose(geometric_median(stack), [1.0], atol=1e-4)

    def test_robust_to_single_outlier(self):
        stack = np.vstack([np.zeros((10, 3)), np.full((1, 3), 1e6)])
        result = geometric_median(stack)
        assert np.linalg.norm(result) < 1.0

    def test_iterate_on_data_point(self):
        """Weiszfeld must survive the iterate landing exactly on an input."""
        stack = np.array([[0.0, 0.0], [2.0, 0.0], [0.0, 2.0], [2.0, 2.0],
                          [1.0, 1.0]])
        result = geometric_median(stack)
        np.testing.assert_allclose(result, [1.0, 1.0], atol=1e-5)


class TestKrum:
    def _cluster_with_outliers(self, outliers):
        rng = np.random.default_rng(0)
        benign = rng.normal(size=(8, 4)) * 0.01
        bad = np.full((outliers, 4), 100.0)
        return np.vstack([benign, bad])

    def test_selects_from_benign_cluster(self):
        stack = self._cluster_with_outliers(2)
        index = krum_index(stack, num_byzantine=2)
        assert index < 8

    def test_krum_returns_row(self):
        stack = self._cluster_with_outliers(2)
        result = krum(stack, num_byzantine=2)
        assert any(np.array_equal(result, row) for row in stack[:8])

    def test_multi_krum_excludes_outliers(self):
        stack = self._cluster_with_outliers(2)
        result = multi_krum(stack, num_byzantine=2)
        assert np.linalg.norm(result) < 1.0

    def test_rejects_too_many_byzantine(self):
        with pytest.raises(ConfigurationError):
            krum(np.zeros((4, 2)), num_byzantine=2)

    def test_rejects_negative_byzantine(self):
        with pytest.raises(ConfigurationError):
            krum(np.zeros((5, 2)), num_byzantine=-1)

    def test_multi_krum_num_selected_validation(self):
        stack = self._cluster_with_outliers(1)
        with pytest.raises(ConfigurationError):
            multi_krum(stack, num_byzantine=1, num_selected=0)


class TestBulyan:
    def _cluster_with_outliers(self, outliers, benign=12):
        rng = np.random.default_rng(0)
        good = rng.normal(size=(benign, 4)) * 0.01
        bad = np.full((outliers, 4), 100.0)
        return np.vstack([good, bad])

    def test_excludes_outliers(self):
        from repro.aggregation import bulyan

        stack = self._cluster_with_outliers(2)  # n=14 >= 4*2+3
        result = bulyan(stack, 2)
        assert np.linalg.norm(result) < 1.0

    def test_zero_byzantine_is_defined(self):
        from repro.aggregation import bulyan, mean

        rng = np.random.default_rng(1)
        stack = rng.normal(size=(5, 3))
        # f=0: theta = n, trimmed average keeps all values -> plain mean.
        np.testing.assert_allclose(bulyan(stack, 0), mean(stack), atol=1e-12)

    def test_rejects_insufficient_n(self):
        from repro.aggregation import bulyan
        from repro.common import ConfigurationError

        with pytest.raises(ConfigurationError):
            bulyan(np.zeros((10, 2)), 2)  # needs n >= 11

    def test_rejects_negative_f(self):
        from repro.aggregation import bulyan
        from repro.common import ConfigurationError

        with pytest.raises(ConfigurationError):
            bulyan(np.zeros((12, 2)), -1)


class TestRegistry:
    def test_all_names_build(self):
        from repro.aggregation import available_rules, make_rule

        stack = np.random.default_rng(0).normal(size=(12, 3))
        for name in available_rules():
            # loss_based is the one rule that cannot run without an
            # external loss oracle; give it a trivial one.
            rule = make_rule(name, trim_ratio=0.2, num_byzantine=2,
                             loss_fn=lambda vector: float(vector[0]))
            assert rule(stack).shape == (3,)

    def test_unknown_name(self):
        from repro.aggregation import make_rule

        with pytest.raises(ConfigurationError):
            make_rule("nope")

    def test_trimmed_mean_rule_uses_ratio(self):
        from repro.aggregation import make_rule

        stack = np.array([[1.0], [2.0], [3.0], [4.0], [5.0]])
        rule = make_rule("trimmed_mean", trim_ratio=0.2)
        assert rule(stack)[0] == pytest.approx(3.0)


class TestGeometricMedianConvergence:
    def test_non_convergence_raises(self):
        from repro.common import ConvergenceError

        stack = np.random.default_rng(0).normal(size=(10, 5))
        with pytest.raises(ConvergenceError):
            geometric_median(stack, max_iterations=1)

    def test_repeated_point_optimum(self):
        """Weiszfeld's hard case: the optimum IS a repeated data point."""
        stack = np.array([
            [0.0, 0.0], [0.0, 0.0], [0.0, 0.0],
            [10.0, 0.0], [0.0, 10.0],
        ])
        result = geometric_median(stack)
        assert np.linalg.norm(result) < 1e-3

    def test_all_rows_identical(self):
        stack = np.tile(np.array([2.0, -3.0, 1.0]), (6, 1))
        np.testing.assert_allclose(geometric_median(stack),
                                   [2.0, -3.0, 1.0], atol=1e-6)

    def test_two_point_tie(self):
        """With two rows every point between them is optimal; the smoothed
        iteration must still settle somewhere on the segment."""
        stack = np.array([[0.0, 0.0], [1.0, 0.0]])
        result = geometric_median(stack)
        assert -1e-6 <= result[0] <= 1.0 + 1e-6
        assert abs(result[1]) < 1e-6


class TestMadOutlierScores:
    def test_clean_stack_scores_low(self):
        from repro.aggregation import mad_outlier_scores

        stack = np.random.default_rng(0).normal(size=(11, 20))
        assert np.all(mad_outlier_scores(stack) < 3.5)

    def test_planted_outlier_scores_high(self):
        from repro.aggregation import mad_outlier_scores

        stack = np.random.default_rng(1).normal(size=(11, 20))
        stack[4] += 100.0
        scores = mad_outlier_scores(stack)
        assert scores[4] > 3.5
        assert np.argmax(scores) == 4

    def test_identical_rows_score_zero(self):
        from repro.aggregation import mad_outlier_scores

        stack = np.tile(np.arange(5.0), (7, 1))
        np.testing.assert_array_equal(mad_outlier_scores(stack),
                                      np.zeros(7))

    def test_degenerate_mad_still_flags_planted_row(self):
        from repro.aggregation import mad_outlier_scores

        # 6 of 7 rows coincide -> distance MAD is zero, but the planted
        # row must still be scorable (MAD floored at a relative epsilon).
        stack = np.zeros((7, 4))
        stack[6] = 50.0
        scores = mad_outlier_scores(stack)
        assert scores[6] > 3.5
        assert np.all(scores[:6] <= 0.0)

    def test_degenerate_mad_flags_colluding_pair(self):
        from repro.aggregation import mad_outlier_scores

        # The colluding-attack shape under full broadcast: 5 honest rows
        # bit-identical, 2 colluders bit-identical somewhere else. The
        # pair must not dilute its own outlier score.
        stack = np.zeros((7, 4))
        stack[0] = 10.0
        stack[1] = 10.0
        scores = mad_outlier_scores(stack)
        assert scores[0] > 3.5
        assert scores[1] > 3.5
        assert np.all(scores[2:] <= 0.0)


class TestAdaptiveTrimmedMean:
    def test_estimates_planted_count(self):
        from repro.aggregation import estimate_byzantine_count

        rng = np.random.default_rng(2)
        stack = rng.normal(size=(10, 30))
        stack[1] += 40.0
        stack[7] -= 40.0
        assert estimate_byzantine_count(stack) == 2

    def test_zero_estimate_on_clean_stack(self):
        from repro.aggregation import (adaptive_trimmed_mean,
                                       estimate_byzantine_count, mean)

        stack = np.random.default_rng(3).normal(size=(9, 12))
        assert estimate_byzantine_count(stack) == 0
        np.testing.assert_allclose(adaptive_trimmed_mean(stack),
                                   mean(stack))

    def test_info_reports_flagged_rows(self):
        from repro.aggregation import adaptive_trimmed_mean_info

        stack = np.random.default_rng(4).normal(size=(8, 16))
        stack[0] += 60.0
        stack[5] += 55.0
        vector, b_hat, flagged = adaptive_trimmed_mean_info(stack)
        assert b_hat == 2
        assert flagged == (0, 5)
        assert vector.shape == (16,)

    def test_estimate_clamped_to_feasible_trim(self):
        from repro.aggregation import adaptive_trimmed_mean_info

        # 4 of 5 rows are wild -> naive count would trim everything; the
        # estimate must stay at floor((n-1)/2) = 2 so a survivor remains.
        stack = np.zeros((5, 3))
        for i, magnitude in zip(range(1, 5), (100.0, 200.0, 300.0, 400.0)):
            stack[i] = magnitude
        _, b_hat, flagged = adaptive_trimmed_mean_info(stack)
        assert b_hat <= 2
        assert len(flagged) == b_hat

    def test_matches_static_oracle_on_planted_attack(self):
        from repro.aggregation import adaptive_trimmed_mean

        rng = np.random.default_rng(5)
        stack = rng.normal(size=(10, 25))
        stack[2] += 80.0
        stack[8] += 80.0
        np.testing.assert_allclose(adaptive_trimmed_mean(stack),
                                   trimmed_mean_by_count(stack, 2))

    def test_deterministic(self):
        from repro.aggregation import adaptive_trimmed_mean_info

        stack = np.random.default_rng(6).normal(size=(7, 9))
        stack[3] += 30.0
        first = adaptive_trimmed_mean_info(stack)
        second = adaptive_trimmed_mean_info(stack.copy())
        np.testing.assert_array_equal(first[0], second[0])
        assert first[1:] == second[1:]

    def test_rejects_bad_threshold(self):
        from repro.aggregation import adaptive_trimmed_mean

        with pytest.raises(ConfigurationError):
            adaptive_trimmed_mean(np.zeros((3, 2)), threshold=0.0)


class TestLossBasedSelection:
    @staticmethod
    def target_loss(target):
        return lambda vector: float(np.linalg.norm(vector - target))

    def test_rejects_poisoned_cohort(self):
        from repro.aggregation import loss_based_selection_info

        target = np.zeros(6)
        rng = np.random.default_rng(7)
        stack = rng.normal(scale=0.1, size=(7, 6))
        stack[4] = 100.0
        stack[5] = 100.0
        stack[6] = 100.0
        vector, selected = loss_based_selection_info(
            stack, self.target_loss(target)
        )
        assert set(selected) <= {0, 1, 2, 3}
        assert np.linalg.norm(vector) < 1.0

    def test_accepts_all_honest_models(self):
        from repro.aggregation import loss_based_selection_info

        target = np.ones(4)
        stack = np.stack([
            target + 0.01, target - 0.01, target + 0.005, target - 0.005,
        ])
        _, selected = loss_based_selection_info(
            stack, self.target_loss(target)
        )
        assert len(selected) >= 2

    def test_single_row_is_returned(self):
        from repro.aggregation import loss_based_selection

        stack = np.array([[3.0, 4.0]])
        np.testing.assert_array_equal(
            loss_based_selection(stack, lambda v: 0.0), [3.0, 4.0]
        )

    def test_non_finite_losses_sort_last(self):
        from repro.aggregation import loss_based_selection_info

        stack = np.array([[0.0, 0.0], [1.0, 1.0], [2.0, 2.0]])

        def loss(vector):
            if vector[0] > 1.5:
                return float("nan")
            return float(np.abs(vector).sum())

        _, selected = loss_based_selection_info(stack, loss)
        assert 2 not in selected

    def test_deterministic_on_ties(self):
        from repro.aggregation import loss_based_selection_info

        stack = np.array([[1.0, 0.0], [0.0, 1.0], [0.5, 0.5]])
        runs = [loss_based_selection_info(stack, lambda v: 1.0)
                for _ in range(2)]
        np.testing.assert_array_equal(runs[0][0], runs[1][0])
        assert runs[0][1] == runs[1][1]


class TestValidateRuleParams:
    def test_unknown_rule(self):
        from repro.aggregation import validate_rule_params

        with pytest.raises(ConfigurationError, match="unknown aggregation"):
            validate_rule_params("nope")

    def test_trim_ratio_bounds(self):
        from repro.aggregation import validate_rule_params

        with pytest.raises(ConfigurationError, match="trim_ratio"):
            validate_rule_params("trimmed_mean", trim_ratio=0.5)
        with pytest.raises(ConfigurationError, match="trim_ratio"):
            validate_rule_params("trimmed_mean", trim_ratio=-0.1)

    def test_krum_needs_enough_models(self):
        from repro.aggregation import validate_rule_params

        with pytest.raises(ConfigurationError, match="2 \\* 2 \\+ 3|n >= 7"):
            validate_rule_params("krum", num_byzantine=2, num_models=6)
        validate_rule_params("krum", num_byzantine=2, num_models=7)

    def test_bulyan_needs_4f_plus_3(self):
        from repro.aggregation import validate_rule_params

        with pytest.raises(ConfigurationError, match="n >= 7"):
            validate_rule_params("bulyan", num_byzantine=1, num_models=6)
        validate_rule_params("bulyan", num_byzantine=1, num_models=7)

    def test_loss_based_requires_loss_fn(self):
        from repro.aggregation import make_rule, validate_rule_params

        with pytest.raises(ConfigurationError, match="loss_fn"):
            validate_rule_params("loss_based")
        with pytest.raises(ConfigurationError, match="loss_fn"):
            make_rule("loss_based")

    def test_mad_threshold_must_be_positive(self):
        from repro.aggregation import validate_rule_params

        with pytest.raises(ConfigurationError, match="mad_threshold"):
            validate_rule_params("adaptive_trimmed_mean", mad_threshold=-1.0)

    def test_num_models_must_be_positive(self):
        from repro.aggregation import validate_rule_params

        with pytest.raises(ConfigurationError, match="num_models"):
            validate_rule_params("trimmed_mean", trim_ratio=0.2,
                                 num_models=0)
        # Any ratio below 0.5 leaves a survivor, whatever the stack size.
        validate_rule_params("trimmed_mean", trim_ratio=0.4, num_models=2)
