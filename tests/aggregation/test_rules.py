"""Tests for aggregation rules, including the paper's worked example and
property-based robustness checks mirroring Lemma 2."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.common import ConfigurationError, ShapeError
from repro.aggregation import (
    coordinate_median,
    degraded_trim_count,
    geometric_median,
    krum,
    krum_index,
    mean,
    multi_krum,
    trim_count,
    trimmed_mean,
    trimmed_mean_by_count,
)


class TestMean:
    def test_average(self):
        stack = np.array([[1.0, 2.0], [3.0, 4.0]])
        np.testing.assert_array_equal(mean(stack), [2.0, 3.0])

    def test_rejects_1d(self):
        with pytest.raises(ShapeError):
            mean(np.array([1.0, 2.0]))

    def test_rejects_empty(self):
        with pytest.raises(ShapeError):
            mean(np.zeros((0, 3)))


class TestTrimCount:
    def test_paper_setting(self):
        # P = 10 PSs, beta = 0.2 -> drop 2 from each tail.
        assert trim_count(10, 0.2) == 2

    def test_floor_behavior(self):
        assert trim_count(5, 0.2) == 1
        assert trim_count(4, 0.2) == 0

    def test_rejects_half_or_more(self):
        with pytest.raises(ConfigurationError):
            trim_count(10, 0.5)

    def test_rejects_trimming_everything(self):
        # floor(0.49 * 2) = 0 is fine; floor(0.4 * 5) = 2, 2*2 < 5 fine;
        # but 3 models at 0.4 -> count 1, 2*1 < 3 fine. Construct a failure:
        with pytest.raises(ConfigurationError):
            trim_count(2, 0.5)


class TestDegradedTrimCount:
    # The acceptance setting: P = 10, beta = 0.2 -> B = 2, so the filter
    # stays feasible down to q = 2B + 1 = 5 and falls back below that.

    @pytest.mark.parametrize("quorum", list(range(10, 4, -1)))
    def test_feasible_quorums_keep_absolute_tolerance(self, quorum):
        assert degraded_trim_count(quorum, 10, 0.2) == 2

    def test_boundary_quorum_is_infeasible(self):
        # q = 2B: trimming B per tail leaves no benign majority.
        assert degraded_trim_count(4, 10, 0.2) is None

    def test_below_boundary_is_infeasible(self):
        assert degraded_trim_count(3, 10, 0.2) is None
        assert degraded_trim_count(1, 10, 0.2) is None

    def test_zero_trim_is_always_feasible(self):
        assert degraded_trim_count(1, 10, 0.0) == 0

    def test_rejects_nonpositive_quorum(self):
        with pytest.raises(ConfigurationError):
            degraded_trim_count(0, 10, 0.2)

    def test_rejects_quorum_above_expected(self):
        with pytest.raises(ConfigurationError):
            degraded_trim_count(11, 10, 0.2)


class TestTrimmedMeanByCount:
    def test_matches_ratio_form_on_full_stack(self):
        stack = np.arange(20.0).reshape(10, 2)
        np.testing.assert_allclose(trimmed_mean_by_count(stack, 2),
                                   trimmed_mean(stack, 0.2))

    def test_degraded_stack_trims_absolute_count(self):
        # 5 rows with B = 2 per tail keeps only the median row.
        stack = np.array([[1.0], [2.0], [3.0], [4.0], [100.0]])
        np.testing.assert_array_equal(trimmed_mean_by_count(stack, 2), [3.0])

    def test_count_zero_is_plain_mean(self):
        stack = np.array([[1.0], [5.0]])
        np.testing.assert_array_equal(trimmed_mean_by_count(stack, 0), [3.0])

    def test_rejects_negative_count(self):
        with pytest.raises(ConfigurationError):
            trimmed_mean_by_count(np.zeros((3, 2)), -1)

    def test_rejects_trimming_everything(self):
        with pytest.raises(ConfigurationError):
            trimmed_mean_by_count(np.zeros((4, 2)), 2)


class TestTrimmedMean:
    def test_paper_worked_example(self):
        """Section IV-B: trmean_0.2{1,2,3,4,5} = (2+3+4)/3 = 3."""
        stack = np.array([[1.0], [2.0], [3.0], [4.0], [5.0]])
        assert trimmed_mean(stack, 0.2)[0] == pytest.approx(3.0)

    def test_zero_ratio_equals_mean(self):
        rng = np.random.default_rng(0)
        stack = rng.normal(size=(7, 5))
        np.testing.assert_allclose(trimmed_mean(stack, 0.0), mean(stack))

    def test_coordinates_trimmed_independently(self):
        stack = np.array([
            [0.0, 100.0],
            [1.0, 1.0],
            [2.0, 2.0],
            [3.0, 3.0],
            [100.0, 0.0],
        ])
        result = trimmed_mean(stack, 0.2)
        np.testing.assert_allclose(result, [2.0, 2.0])

    def test_ignores_extreme_outliers(self):
        stack = np.vstack([np.full((8, 3), 1.0), np.full((2, 3), 1e12)])
        result = trimmed_mean(stack, 0.2)
        np.testing.assert_allclose(result, 1.0)

    def test_output_within_input_range(self):
        rng = np.random.default_rng(1)
        stack = rng.normal(size=(9, 4))
        result = trimmed_mean(stack, 0.25)
        assert np.all(result >= stack.min(axis=0) - 1e-12)
        assert np.all(result <= stack.max(axis=0) + 1e-12)

    @settings(max_examples=100, deadline=None)
    @given(
        stack=arrays(np.float64, (10, 3),
                     elements=st.floats(-100, 100)),
        ratio=st.floats(0.0, 0.49),
    )
    def test_permutation_invariance(self, stack, ratio):
        rng = np.random.default_rng(0)
        permuted = stack[rng.permutation(10)]
        np.testing.assert_allclose(
            trimmed_mean(stack, ratio), trimmed_mean(permuted, ratio), atol=1e-9
        )

    @settings(max_examples=100, deadline=None)
    @given(data=st.data())
    def test_lemma2_order_statistic_bound(self, data):
        """Lemma 2's core inequality: after tampering B of P scalars,
        the trimmed mean (beta = B/P) stays within the [min, max] of the
        *benign* values.

        This is the robustness property that makes the filter safe: no
        matter what the B Byzantine values are, the output cannot be pulled
        outside the benign hull.
        """
        p = data.draw(st.integers(3, 15))
        b = data.draw(st.integers(0, (p - 1) // 2))
        benign = data.draw(
            arrays(np.float64, (p - b,), elements=st.floats(-1e6, 1e6))
        )
        byzantine = data.draw(
            arrays(np.float64, (b,),
                   elements=st.floats(-1e9, 1e9))
        )
        stack = np.concatenate([benign, byzantine]).reshape(-1, 1)
        result = trimmed_mean(stack, b / p if p else 0.0)
        assert benign.min() - 1e-6 <= result[0] <= benign.max() + 1e-6


class TestCoordinateMedian:
    def test_simple(self):
        stack = np.array([[1.0, 5.0], [2.0, 6.0], [100.0, -50.0]])
        np.testing.assert_array_equal(coordinate_median(stack), [2.0, 5.0])

    def test_majority_benign_bound(self):
        stack = np.vstack([np.zeros((6, 2)), np.full((5, 2), 1e9)])
        np.testing.assert_array_equal(coordinate_median(stack), [0.0, 0.0])


class TestGeometricMedian:
    def test_single_row(self):
        stack = np.array([[3.0, 4.0]])
        np.testing.assert_array_equal(geometric_median(stack), [3.0, 4.0])

    def test_symmetric_points(self):
        stack = np.array([[1.0, 0.0], [-1.0, 0.0], [0.0, 1.0], [0.0, -1.0]])
        np.testing.assert_allclose(geometric_median(stack), [0.0, 0.0], atol=1e-6)

    def test_collinear_points_median(self):
        stack = np.array([[0.0], [1.0], [10.0]])
        np.testing.assert_allclose(geometric_median(stack), [1.0], atol=1e-4)

    def test_robust_to_single_outlier(self):
        stack = np.vstack([np.zeros((10, 3)), np.full((1, 3), 1e6)])
        result = geometric_median(stack)
        assert np.linalg.norm(result) < 1.0

    def test_iterate_on_data_point(self):
        """Weiszfeld must survive the iterate landing exactly on an input."""
        stack = np.array([[0.0, 0.0], [2.0, 0.0], [0.0, 2.0], [2.0, 2.0],
                          [1.0, 1.0]])
        result = geometric_median(stack)
        np.testing.assert_allclose(result, [1.0, 1.0], atol=1e-5)


class TestKrum:
    def _cluster_with_outliers(self, outliers):
        rng = np.random.default_rng(0)
        benign = rng.normal(size=(8, 4)) * 0.01
        bad = np.full((outliers, 4), 100.0)
        return np.vstack([benign, bad])

    def test_selects_from_benign_cluster(self):
        stack = self._cluster_with_outliers(2)
        index = krum_index(stack, num_byzantine=2)
        assert index < 8

    def test_krum_returns_row(self):
        stack = self._cluster_with_outliers(2)
        result = krum(stack, num_byzantine=2)
        assert any(np.array_equal(result, row) for row in stack[:8])

    def test_multi_krum_excludes_outliers(self):
        stack = self._cluster_with_outliers(2)
        result = multi_krum(stack, num_byzantine=2)
        assert np.linalg.norm(result) < 1.0

    def test_rejects_too_many_byzantine(self):
        with pytest.raises(ConfigurationError):
            krum(np.zeros((4, 2)), num_byzantine=2)

    def test_rejects_negative_byzantine(self):
        with pytest.raises(ConfigurationError):
            krum(np.zeros((5, 2)), num_byzantine=-1)

    def test_multi_krum_num_selected_validation(self):
        stack = self._cluster_with_outliers(1)
        with pytest.raises(ConfigurationError):
            multi_krum(stack, num_byzantine=1, num_selected=0)


class TestBulyan:
    def _cluster_with_outliers(self, outliers, benign=12):
        rng = np.random.default_rng(0)
        good = rng.normal(size=(benign, 4)) * 0.01
        bad = np.full((outliers, 4), 100.0)
        return np.vstack([good, bad])

    def test_excludes_outliers(self):
        from repro.aggregation import bulyan

        stack = self._cluster_with_outliers(2)  # n=14 >= 4*2+3
        result = bulyan(stack, 2)
        assert np.linalg.norm(result) < 1.0

    def test_zero_byzantine_is_defined(self):
        from repro.aggregation import bulyan, mean

        rng = np.random.default_rng(1)
        stack = rng.normal(size=(5, 3))
        # f=0: theta = n, trimmed average keeps all values -> plain mean.
        np.testing.assert_allclose(bulyan(stack, 0), mean(stack), atol=1e-12)

    def test_rejects_insufficient_n(self):
        from repro.aggregation import bulyan
        from repro.common import ConfigurationError

        with pytest.raises(ConfigurationError):
            bulyan(np.zeros((10, 2)), 2)  # needs n >= 11

    def test_rejects_negative_f(self):
        from repro.aggregation import bulyan
        from repro.common import ConfigurationError

        with pytest.raises(ConfigurationError):
            bulyan(np.zeros((12, 2)), -1)


class TestRegistry:
    def test_all_names_build(self):
        from repro.aggregation import available_rules, make_rule

        stack = np.random.default_rng(0).normal(size=(12, 3))
        for name in available_rules():
            rule = make_rule(name, trim_ratio=0.2, num_byzantine=2)
            assert rule(stack).shape == (3,)

    def test_unknown_name(self):
        from repro.aggregation import make_rule

        with pytest.raises(ConfigurationError):
            make_rule("nope")

    def test_trimmed_mean_rule_uses_ratio(self):
        from repro.aggregation import make_rule

        stack = np.array([[1.0], [2.0], [3.0], [4.0], [5.0]])
        rule = make_rule("trimmed_mean", trim_ratio=0.2)
        assert rule(stack)[0] == pytest.approx(3.0)
