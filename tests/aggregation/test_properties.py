"""Property-based invariants of the aggregation rules.

Robust aggregators used as model filters must commute with the symmetries
of model space that training itself commutes with:

* **permutation invariance** — the filter cannot depend on which PS a model
  came from (clients cannot tell benign from Byzantine sources);
* **translation equivariance** — ``rule(stack + c) = rule(stack) + c``;
* **positive-scale equivariance** — ``rule(s * stack) = s * rule(stack)``;
* **benign-hull containment** — the coordinatewise trimmed mean never
  leaves the benign values' hull when at most ``B`` rows are tampered.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.aggregation import (
    bulyan,
    coordinate_median,
    geometric_median,
    mean,
    multi_krum,
    trimmed_mean,
)

FINITE = st.floats(-1e6, 1e6)


def stacks(rows=st.integers(3, 12), cols=st.integers(1, 6)):
    return st.tuples(rows, cols).flatmap(
        lambda shape: arrays(np.float64, shape, elements=FINITE)
    )


RULES = [
    ("mean", lambda s: mean(s)),
    ("trimmed_mean_0.2", lambda s: trimmed_mean(s, 0.2)),
    ("median", lambda s: coordinate_median(s)),
    ("geometric_median", lambda s: geometric_median(s)),
]

GM_SMOOTHING = 1e-6  # geometric_median's default relative smoothing


def rule_atol(name, *stacks):
    """Absolute tolerance for a rule's outputs on the given inputs.

    The smoothed geometric median is an O(smoothing * scale) approximation
    of the exact minimizer (see its docstring), so its invariants hold up
    to that documented error; the closed-form rules are exact.
    """
    if name != "geometric_median":
        return 1e-6
    scale = max(float(np.max(np.abs(s))) for s in stacks) or 1.0
    return 1e-6 + 100.0 * GM_SMOOTHING * scale


@pytest.mark.parametrize("name,rule", RULES, ids=[r[0] for r in RULES])
class TestSharedInvariants:
    @settings(max_examples=60, deadline=None)
    @given(stack=stacks(), seed=st.integers(0, 2**16))
    def test_permutation_invariance(self, name, rule, stack, seed):
        rng = np.random.default_rng(seed)
        permuted = stack[rng.permutation(stack.shape[0])]
        np.testing.assert_allclose(rule(stack), rule(permuted),
                                   atol=rule_atol(name, stack), rtol=1e-6)

    @settings(max_examples=60, deadline=None)
    @given(stack=stacks(), shift=st.floats(-1e3, 1e3))
    def test_translation_equivariance(self, name, rule, stack, shift):
        shifted = rule(stack + shift)
        np.testing.assert_allclose(
            shifted, rule(stack) + shift,
            atol=rule_atol(name, stack, stack + shift), rtol=1e-6,
        )

    @settings(max_examples=60, deadline=None)
    @given(stack=stacks(), scale=st.floats(0.01, 100.0))
    def test_positive_scale_equivariance(self, name, rule, stack, scale):
        np.testing.assert_allclose(
            rule(stack * scale), rule(stack) * scale,
            atol=rule_atol(name, stack, stack * scale) * max(scale, 1.0),
            rtol=1e-5,
        )

    @settings(max_examples=60, deadline=None)
    @given(stack=stacks())
    def test_output_in_coordinate_hull(self, name, rule, stack):
        """Every considered rule stays inside the per-coordinate hull of
        its inputs (geometric median stays in the convex hull, which is
        contained in the box hull)."""
        result = rule(stack)
        slack = rule_atol(name, stack)
        lower = stack.min(axis=0) - slack
        upper = stack.max(axis=0) + slack
        assert np.all(result >= lower)
        assert np.all(result <= upper)

    @settings(max_examples=30, deadline=None)
    @given(row=arrays(np.float64, (4,), elements=FINITE),
           copies=st.integers(3, 10))
    def test_identical_inputs_fixed_point(self, name, rule, row, copies):
        stack = np.tile(row, (copies, 1))
        np.testing.assert_allclose(rule(stack), row,
                                   atol=rule_atol(name, stack), rtol=1e-6)


class TestSelectionRules:
    """Krum-family rules select rows, so permutation invariance holds up to
    ties; check the weaker property on generic (tie-free) inputs."""

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 2**16))
    def test_multi_krum_permutation_invariance(self, seed):
        rng = np.random.default_rng(seed)
        stack = rng.normal(size=(8, 4))
        permuted = stack[rng.permutation(8)]
        np.testing.assert_allclose(
            multi_krum(stack, 1), multi_krum(permuted, 1), atol=1e-9
        )

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 2**16))
    def test_bulyan_output_in_hull(self, seed):
        rng = np.random.default_rng(seed)
        stack = rng.normal(size=(12, 3))
        result = bulyan(stack, 2)
        assert np.all(result >= stack.min(axis=0) - 1e-9)
        assert np.all(result <= stack.max(axis=0) + 1e-9)


class TestTrimmedMeanRobustnessProperty:
    @settings(max_examples=80, deadline=None)
    @given(data=st.data())
    def test_bounded_influence_of_byzantine_rows(self, data):
        """Replacing B rows arbitrarily moves the beta-trimmed mean by at
        most the benign spread — never proportionally to the attack
        magnitude (the property a plain mean lacks)."""
        p = data.draw(st.integers(5, 12))
        b = data.draw(st.integers(1, (p - 1) // 2))
        dim = data.draw(st.integers(1, 4))
        benign = data.draw(arrays(np.float64, (p, dim),
                                  elements=st.floats(-10, 10)))
        attack_magnitude = data.draw(st.floats(1e3, 1e9))
        tampered = benign.copy()
        tampered[:b] = attack_magnitude
        beta = b / p
        clean = trimmed_mean(benign, beta)
        attacked = trimmed_mean(tampered, beta)
        benign_spread = benign.max() - benign.min()
        assert np.all(np.abs(attacked - clean) <= benign_spread + 1e-9)

    @settings(max_examples=50, deadline=None)
    @given(stack=stacks(rows=st.integers(3, 12)),
           ratio=st.floats(0.0, 0.49))
    def test_floor_stability(self, stack, ratio):
        """Ratios mapping to the same per-tail trim count give identical
        outputs — beta only matters through floor(beta * P)."""
        p = stack.shape[0]
        count = int(np.floor(ratio * p))
        equivalent_ratio = count / p  # smallest ratio with the same count
        np.testing.assert_allclose(
            trimmed_mean(stack, ratio),
            trimmed_mean(stack, equivalent_ratio),
            atol=1e-9,
        )

    @settings(max_examples=50, deadline=None)
    @given(stack=stacks(rows=st.just(5)))
    def test_maximal_trimming_equals_median_for_odd_p(self, stack):
        """With P odd and the largest legal trim count (P-1)/2, exactly the
        median survives in each coordinate."""
        np.testing.assert_allclose(
            trimmed_mean(stack, 0.49), coordinate_median(stack), atol=1e-9
        )
