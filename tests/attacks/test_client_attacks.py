"""Tests for the Byzantine-client extension attacks."""

import numpy as np
import pytest

from repro.common import ConfigurationError, RngFactory
from repro.attacks import (
    ClientAttack,
    ClientAttackContext,
    ClientNoiseAttack,
    ClientSameValueAttack,
    ClientScalingAttack,
    ClientSignFlipAttack,
    available_client_attacks,
    make_client_attack,
)


def make_context(honest=None, global_model=None, seed=0):
    honest = np.asarray(honest if honest is not None else [2.0, 3.0])
    global_model = np.asarray(
        global_model if global_model is not None else [1.0, 1.0]
    )
    return ClientAttackContext(
        round_index=3,
        client_id=7,
        honest_update=honest,
        global_model=global_model,
        rng=RngFactory(seed).make("client_attack"),
    )


class TestClientSignFlip:
    def test_reverses_progress(self):
        # honest progress = (1, 2); upload = global - progress = (0, -1)
        result = ClientSignFlipAttack().tamper(make_context())
        np.testing.assert_array_equal(result, [0.0, -1.0])

    def test_scale(self):
        result = ClientSignFlipAttack(scale=2.0).tamper(make_context())
        np.testing.assert_array_equal(result, [-1.0, -3.0])

    def test_rejects_bad_scale(self):
        with pytest.raises(ConfigurationError):
            ClientSignFlipAttack(scale=0.0)


class TestClientNoise:
    def test_centered_on_honest_update(self):
        context = make_context(honest=np.zeros(5000),
                               global_model=np.zeros(5000))
        result = ClientNoiseAttack(scale=1.0).tamper(context)
        assert abs(result.mean()) < 0.1
        assert abs(result.std() - 1.0) < 0.1

    def test_rejects_bad_scale(self):
        with pytest.raises(ConfigurationError):
            ClientNoiseAttack(scale=-1.0)


class TestClientScaling:
    def test_inflates_progress(self):
        result = ClientScalingAttack(factor=10.0).tamper(make_context())
        # global + 10 * progress = (1,1) + 10*(1,2) = (11, 21)
        np.testing.assert_array_equal(result, [11.0, 21.0])

    def test_rejects_factor_one(self):
        with pytest.raises(ConfigurationError):
            ClientScalingAttack(factor=1.0)


class TestClientSameValue:
    def test_constant_vector(self):
        result = ClientSameValueAttack(value=5.0).tamper(make_context())
        np.testing.assert_array_equal(result, [5.0, 5.0])


class TestRegistry:
    def test_all_attacks_run(self):
        context = make_context()
        for name in available_client_attacks():
            attack = make_client_attack(name)
            assert isinstance(attack, ClientAttack)
            assert attack.tamper(context).shape == (2,)

    def test_kwargs_forwarded(self):
        attack = make_client_attack("client_scaling", factor=50.0)
        assert attack.factor == 50.0

    def test_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            make_client_attack("client_nope")

    def test_base_is_abstract(self):
        with pytest.raises(NotImplementedError):
            ClientAttack().tamper(make_context())
