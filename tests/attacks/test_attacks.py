"""Tests for the Byzantine PS attack catalog."""

import numpy as np
import pytest

from repro.common import ConfigurationError, RngFactory
from repro.attacks import (
    PAPER_ATTACKS,
    AdaptiveTrimmedMeanAttack,
    Attack,
    AttackContext,
    BackwardAttack,
    ColludingAttack,
    DispersionMimicryAttack,
    IdentityAttack,
    InconsistentAttack,
    NoiseAttack,
    RandomAttack,
    SafeguardAttack,
    SignFlipAttack,
    ZeroAttack,
    available_attacks,
    make_attack,
)


def make_context(aggregate=None, history=(), round_index=5, client_id=None,
                 all_aggregates=None, seed=0):
    if aggregate is None:
        aggregate = np.array([1.0, 2.0, 3.0])
    return AttackContext(
        round_index=round_index,
        server_id=1,
        true_aggregate=np.asarray(aggregate, dtype=float),
        previous_aggregates=[np.asarray(h, dtype=float) for h in history],
        rng=RngFactory(seed).make("attack"),
        all_server_aggregates=all_aggregates,
        client_id=client_id,
    )


class TestIdentityAttack:
    def test_returns_copy_of_truth(self):
        context = make_context()
        result = IdentityAttack().tamper(context)
        np.testing.assert_array_equal(result, context.true_aggregate)
        assert result is not context.true_aggregate


class TestNoiseAttack:
    def test_perturbs_but_centers_on_truth(self):
        context = make_context(aggregate=np.zeros(10000))
        result = NoiseAttack(scale=1.0).tamper(context)
        assert abs(result.mean()) < 0.05
        assert abs(result.std() - 1.0) < 0.05

    def test_does_not_modify_input(self):
        context = make_context()
        before = context.true_aggregate.copy()
        NoiseAttack().tamper(context)
        np.testing.assert_array_equal(context.true_aggregate, before)

    def test_scale_controls_magnitude(self):
        small = NoiseAttack(scale=0.1).tamper(make_context(np.zeros(1000)))
        large = NoiseAttack(scale=10.0).tamper(make_context(np.zeros(1000)))
        assert large.std() > 10 * small.std()

    def test_rejects_bad_scale(self):
        with pytest.raises(ConfigurationError):
            NoiseAttack(scale=0.0)


class TestRandomAttack:
    def test_ignores_truth_entirely(self):
        context = make_context(aggregate=np.full(1000, 1e9))
        result = RandomAttack().tamper(context)
        assert np.all(result >= -10.0)
        assert np.all(result <= 10.0)

    def test_paper_default_interval(self):
        attack = RandomAttack()
        assert attack.low == -10.0
        assert attack.high == 10.0

    def test_rejects_inverted_interval(self):
        with pytest.raises(ConfigurationError):
            RandomAttack(low=5.0, high=-5.0)


class TestSafeguardAttack:
    def test_reverse_gradient_formula(self):
        previous = np.array([1.0, 1.0])
        current = np.array([2.0, 0.0])
        context = make_context(aggregate=current, history=[previous])
        result = SafeguardAttack(gamma=0.6).tamper(context)
        pseudo_gradient = current - previous
        np.testing.assert_allclose(result, current - 0.6 * pseudo_gradient)

    def test_honest_on_first_round(self):
        context = make_context(history=[])
        result = SafeguardAttack().tamper(context)
        np.testing.assert_array_equal(result, context.true_aggregate)

    def test_uses_most_recent_history(self):
        history = [np.zeros(2), np.array([5.0, 5.0])]
        current = np.array([6.0, 6.0])
        result = SafeguardAttack(gamma=1.0).tamper(
            make_context(aggregate=current, history=history)
        )
        np.testing.assert_allclose(result, [5.0, 5.0])

    def test_rejects_bad_gamma(self):
        with pytest.raises(ConfigurationError):
            SafeguardAttack(gamma=0.0)


class TestBackwardAttack:
    def test_replays_t_minus_delay(self):
        history = [np.full(2, float(i)) for i in range(5)]  # a_1..a_5
        context = make_context(history=history)
        result = BackwardAttack(delay=2).tamper(context)
        np.testing.assert_array_equal(result, history[3])

    def test_clamps_to_oldest_when_history_short(self):
        history = [np.array([7.0])]
        result = BackwardAttack(delay=5).tamper(make_context(history=history))
        np.testing.assert_array_equal(result, [7.0])

    def test_honest_with_no_history(self):
        context = make_context(history=[])
        result = BackwardAttack().tamper(context)
        np.testing.assert_array_equal(result, context.true_aggregate)

    def test_rejects_bad_delay(self):
        with pytest.raises(ConfigurationError):
            BackwardAttack(delay=0)


class TestSignFlipAttack:
    def test_negates(self):
        result = SignFlipAttack().tamper(make_context([1.0, -2.0]))
        np.testing.assert_array_equal(result, [-1.0, 2.0])

    def test_scaling(self):
        result = SignFlipAttack(scale=3.0).tamper(make_context([1.0]))
        np.testing.assert_array_equal(result, [-3.0])


class TestZeroAttack:
    def test_zeros(self):
        result = ZeroAttack().tamper(make_context([1.0, 2.0]))
        np.testing.assert_array_equal(result, [0.0, 0.0])


class TestInconsistentAttack:
    def test_client_dependent_flag(self):
        assert InconsistentAttack().is_client_dependent
        assert not NoiseAttack().is_client_dependent

    def test_different_clients_get_different_models(self):
        attack = InconsistentAttack()
        a = attack.tamper(make_context(client_id=0))
        b = attack.tamper(make_context(client_id=1))
        assert not np.array_equal(a, b)

    def test_same_client_same_round_deterministic(self):
        attack = InconsistentAttack()
        a = attack.tamper(make_context(client_id=3, seed=0))
        b = attack.tamper(make_context(client_id=3, seed=99))
        np.testing.assert_array_equal(a, b)

    def test_varies_across_rounds(self):
        attack = InconsistentAttack()
        a = attack.tamper(make_context(client_id=0, round_index=1))
        b = attack.tamper(make_context(client_id=0, round_index=2))
        assert not np.array_equal(a, b)


class TestAdaptiveTrimmedMeanAttack:
    def test_hides_inside_benign_spread(self):
        rng = np.random.default_rng(0)
        benign = rng.normal(size=(8, 50))
        attack = AdaptiveTrimmedMeanAttack(z_max=1.0)
        result = attack.tamper(make_context(all_aggregates=benign))
        benign_mean = benign.mean(axis=0)
        benign_std = benign.std(axis=0)
        np.testing.assert_allclose(result, benign_mean - benign_std)

    def test_fallback_without_knowledge(self):
        result = AdaptiveTrimmedMeanAttack().tamper(make_context([1.0, -1.0]))
        np.testing.assert_array_equal(result, [-1.0, 1.0])

    def test_rejects_bad_z(self):
        with pytest.raises(ConfigurationError):
            AdaptiveTrimmedMeanAttack(z_max=0.0)


class TestColludingAttack:
    def test_identical_across_colluding_servers(self):
        """All colluders emit one bit-identical lie, whatever their rng."""
        aggregates = np.random.default_rng(1).normal(size=(5, 20))
        attack = ColludingAttack()
        results = []
        for server_seed in (11, 22):
            context = AttackContext(
                round_index=3,
                server_id=server_seed,
                true_aggregate=aggregates[0],
                previous_aggregates=[],
                rng=RngFactory(server_seed).make("attack"),
                all_server_aggregates=aggregates,
            )
            results.append(attack.tamper(context))
        np.testing.assert_array_equal(results[0], results[1])

    def test_direction_varies_across_rounds(self):
        aggregates = np.zeros((4, 10))
        attack = ColludingAttack()
        a = attack.tamper(make_context(all_aggregates=aggregates,
                                       round_index=1))
        b = attack.tamper(make_context(all_aggregates=aggregates,
                                       round_index=2))
        assert not np.array_equal(a, b)

    def test_pushes_off_the_benign_mean(self):
        aggregates = np.random.default_rng(2).normal(size=(6, 30))
        result = ColludingAttack(scale=5.0).tamper(
            make_context(all_aggregates=aggregates)
        )
        assert np.linalg.norm(result - aggregates.mean(axis=0)) > 1.0

    def test_fallback_without_knowledge(self):
        context = make_context(aggregate=np.ones(4))
        result = ColludingAttack().tamper(context)
        assert result.shape == (4,)
        assert not np.array_equal(result, context.true_aggregate)

    def test_rejects_bad_scale(self):
        with pytest.raises(ConfigurationError):
            ColludingAttack(scale=0.0)


class TestDispersionMimicryAttack:
    def test_honest_without_knowledge(self):
        context = make_context()
        result = DispersionMimicryAttack().tamper(context)
        np.testing.assert_array_equal(result, context.true_aggregate)
        assert result is not context.true_aggregate

    def test_honest_below_three_models(self):
        context = make_context(all_aggregates=np.ones((2, 3)))
        result = DispersionMimicryAttack().tamper(context)
        np.testing.assert_array_equal(result, context.true_aggregate)

    def test_identical_across_colluding_servers(self):
        aggregates = np.random.default_rng(3).normal(size=(5, 20))
        attack = DispersionMimicryAttack()
        results = [
            attack.tamper(make_context(all_aggregates=aggregates))
            for _ in range(2)
        ]
        np.testing.assert_array_equal(results[0], results[1])

    def test_distance_is_envelope_times_worst_honest(self):
        aggregates = np.random.default_rng(4).normal(size=(7, 40))
        envelope = 2.5
        result = DispersionMimicryAttack(envelope=envelope).tamper(
            make_context(all_aggregates=aggregates)
        )
        center = np.median(aggregates, axis=0)
        honest_max = np.sqrt(
            ((aggregates - center) ** 2).sum(axis=1)
        ).max()
        np.testing.assert_allclose(
            np.linalg.norm(result - center), envelope * honest_max
        )

    def test_sign_pattern_fixed_across_rounds(self):
        """The per-coordinate bias direction must compound, not cancel."""
        aggregates = np.random.default_rng(5).normal(size=(5, 30))
        attack = DispersionMimicryAttack()
        center = np.median(aggregates, axis=0)
        a = attack.tamper(make_context(all_aggregates=aggregates,
                                       round_index=1)) - center
        b = attack.tamper(make_context(all_aggregates=aggregates,
                                       round_index=9)) - center
        np.testing.assert_array_equal(np.sign(a), np.sign(b))

    def test_degenerate_spread_copies_center(self):
        aggregates = np.tile(np.arange(4.0), (5, 1))
        result = DispersionMimicryAttack().tamper(
            make_context(all_aggregates=aggregates)
        )
        np.testing.assert_array_equal(result, np.arange(4.0))

    def test_rejects_bad_envelope(self):
        with pytest.raises(ConfigurationError):
            DispersionMimicryAttack(envelope=0.0)


class TestRegistry:
    def test_paper_attacks_registered(self):
        for name in PAPER_ATTACKS:
            assert name in available_attacks()

    def test_all_attacks_instantiate_and_run(self):
        context = make_context(history=[np.zeros(3)],
                               all_aggregates=np.zeros((4, 3)))
        for name in available_attacks():
            attack = make_attack(name)
            assert isinstance(attack, Attack)
            result = attack.tamper(context)
            assert result.shape == (3,)

    def test_kwargs_forwarded(self):
        attack = make_attack("noise", scale=7.0)
        assert attack.scale == 7.0

    def test_unknown_attack(self):
        with pytest.raises(ConfigurationError):
            make_attack("not_an_attack")

    def test_base_attack_is_abstract(self):
        with pytest.raises(NotImplementedError):
            Attack().tamper(make_context())
