"""Lazy materialization: descriptors, slot pooling, shard specs."""

import numpy as np
import pytest

from repro.common.errors import ConfigurationError, ProtocolError
from repro.common.rng import RngFactory
from repro.models import SoftmaxRegression
from repro.population import (
    ArrayShardSpec,
    BlobShardSpec,
    ClientPopulation,
    make_blob_population,
    make_blob_test_dataset,
)


def make_population(size=20):
    specs = make_blob_population(size, samples_per_client=12, feature_dim=4,
                                 num_classes=3, seed=0)
    return ClientPopulation(
        specs,
        model_factory=lambda rng: SoftmaxRegression(4, 3, rng=rng),
        batch_size=4,
        rngs=RngFactory(0),
        batch_seed=0,
    )


class TestShardSpecs:
    def test_blob_shard_materializes_deterministically(self):
        spec = BlobShardSpec(num_samples=10, feature_dim=4, num_classes=3,
                             centers_seed=1, shard_seed=2)
        one, two = spec.materialize(), spec.materialize()
        np.testing.assert_array_equal(one.features, two.features)
        np.testing.assert_array_equal(one.labels, two.labels)

    def test_population_shards_differ_but_share_centers(self):
        specs = make_blob_population(5, samples_per_client=10, feature_dim=4,
                                     num_classes=3, seed=0)
        assert len({s.shard_seed for s in specs}) == 5
        assert len({s.centers_seed for s in specs}) == 1

    def test_heterogeneity_sets_primary_classes(self):
        specs = make_blob_population(10, samples_per_client=10, feature_dim=4,
                                     num_classes=3, seed=0,
                                     heterogeneity=0.5)
        skewed = [s for s in specs if s.primary_class is not None]
        assert len(skewed) == 5

    def test_array_shard_spec_wraps_arrays(self):
        spec = ArrayShardSpec(np.zeros((6, 4)), np.zeros(6, dtype=np.int64))
        assert spec.num_samples == 6
        assert len(spec.materialize()) == 6

    def test_test_dataset_is_deterministic(self):
        one = make_blob_test_dataset(num_samples=50, feature_dim=4,
                                     num_classes=3, seed=7)
        two = make_blob_test_dataset(num_samples=50, feature_dim=4,
                                     num_classes=3, seed=7)
        np.testing.assert_array_equal(one.features, two.features)


class TestLazyMaterialization:
    def test_only_materialized_clients_hold_state(self):
        population = make_population(20)
        for cid in (1, 5, 9):
            population.materialize(cid, round_index=0)
        assert population.materialized_count == 3
        assert population.materialized_ids == [1, 5, 9]
        assert population.holds_model(5)
        assert not population.holds_model(2)

    def test_release_returns_slots_to_pool(self):
        population = make_population(20)
        client = population.materialize(3, round_index=0)
        client.last_train_loss = 0.5
        population.release_all()
        assert population.materialized_count == 0
        assert not population.holds_model(3)
        assert client.dataset is None
        assert population.descriptors[3].last_train_loss == 0.5

    def test_slots_are_reused_across_rounds(self):
        population = make_population(20)
        for round_index in range(4):
            for cid in range(round_index * 5, round_index * 5 + 5):
                population.materialize(cid, round_index)
            population.release_all()
        # 20 distinct clients trained, but only 5 slots ever existed.
        assert population.num_slots == 5
        assert population.peak_materialized == 5

    def test_materialize_is_idempotent_within_round(self):
        population = make_population(10)
        one = population.materialize(2, round_index=0)
        two = population.materialize(2, round_index=0)
        assert one is two
        assert population.descriptors[2].rounds_participated == 1

    def test_descriptor_statistics(self):
        population = make_population(10)
        population.materialize(4, round_index=0)
        population.release_all()
        population.materialize(4, round_index=3)
        descriptor = population.descriptors[4]
        assert descriptor.rounds_participated == 2
        assert descriptor.last_round == 3

    def test_rejects_out_of_range_id(self):
        with pytest.raises(ProtocolError):
            make_population(5).materialize(5, round_index=0)

    def test_rejects_specs_without_materialize(self):
        with pytest.raises(ConfigurationError):
            ClientPopulation(
                [object()],
                model_factory=lambda rng: SoftmaxRegression(4, 3, rng=rng),
                batch_size=4, rngs=RngFactory(0), batch_seed=0,
            )
